"""Low-overhead metrics registry: counters, gauges, bucketed histograms.

The serving stack (index mutations, graph walks, caches, replicas, the
WAL) needs one place to answer "what is p99 walk latency or cache hit
rate *right now*" without a metrics dependency the container does not
ship. This module is that place:

* :class:`Counter` / :class:`Gauge` — a locked float each;
* :class:`Histogram` — fixed log-spaced buckets, so p50/p90/p99/p999
  come from cumulative bucket counts with linear interpolation inside
  the landing bucket — **no samples are stored**, memory is O(buckets)
  no matter how many observations arrive;
* :class:`MetricsRegistry` — named, labelled, get-or-create access to
  all three, with :meth:`~MetricsRegistry.snapshot` (plain dict),
  :meth:`~MetricsRegistry.to_prometheus` (text exposition) and
  :meth:`~MetricsRegistry.to_json` exports.

Thread-safety is per-metric (one small lock each), so two shards
observing different histograms never contend. A registry created with
``enabled=False`` hands out shared null metrics whose methods are
no-ops — the instrumented hot paths keep their handles and pay one
attribute call, which is what keeps the measured overhead of the whole
telemetry layer under the 5% gate (``bench_serving.py --mixed``).
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
]

# Log-spaced (factor 2) latency bounds in seconds: 10µs .. ~10.5s.
# Factor-2 buckets bound the interpolation error of any quantile to
# the bucket's width; every serving-path latency this repo measures
# (walks in the ms range, fsyncs in the 100µs range) lands mid-range.
LATENCY_BUCKETS: tuple[float, ...] = tuple(1e-5 * (2.0**i) for i in range(21))

# Power-of-two count bounds for discrete size/hop/evaluation histograms.
COUNT_BUCKETS: tuple[float, ...] = tuple(float(2**i) for i in range(15))

_QUANTILES = ((0.5, "p50"), (0.9, "p90"), (0.99, "p99"), (0.999, "p999"))


def _label_suffix(labels: tuple) -> str:
    """Render a sorted label tuple as ``{a="x",b="y"}`` (or ``""``)."""
    if not labels:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in labels) + "}"


class Counter:
    """A monotonically increasing named value."""

    kind = "counter"

    def __init__(self, name: str, labels: tuple = ()) -> None:
        """Create the counter at zero (use the registry, not this)."""
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current total."""
        with self._lock:
            return self._value


class Gauge:
    """A named value that can go up and down (lag, sizes, rates)."""

    kind = "gauge"

    def __init__(self, name: str, labels: tuple = ()) -> None:
        """Create the gauge at zero (use the registry, not this)."""
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current value."""
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with sample-free quantile estimates.

    ``bounds`` are the inclusive upper edges of the finite buckets
    (ascending); one implicit overflow bucket catches everything
    larger. Each observation is a bisect + two adds under the metric's
    lock — O(log buckets), no sample storage — and quantiles are read
    back by walking the cumulative counts and interpolating linearly
    inside the landing bucket (the Prometheus ``histogram_quantile``
    rule), clamped to the observed min/max so estimates never leave
    the data's range.
    """

    kind = "histogram"

    def __init__(
        self, name: str, bounds: tuple[float, ...] = LATENCY_BUCKETS, labels: tuple = ()
    ) -> None:
        """Create an empty histogram over ``bounds`` upper edges."""
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be ascending and non-empty")
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        self._counts = [0] * (len(self.bounds) + 1)  # +1 = overflow
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def reset(self) -> None:
        """Forget every observation (for refreshed distributions)."""
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._sum = 0.0
            self._min = float("inf")
            self._max = float("-inf")

    @property
    def count(self) -> int:
        """Total observations recorded."""
        with self._lock:
            return sum(self._counts)

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    def percentile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 < q <= 1``), 0.0 when empty."""
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        with self._lock:
            counts = list(self._counts)
            lo, hi = self._min, self._max
        total = sum(counts)
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0.0
        for idx, n in enumerate(counts):
            if n == 0:
                continue
            if cumulative + n >= rank:
                if idx >= len(self.bounds):
                    return hi  # overflow bucket: best estimate is the max
                upper = self.bounds[idx]
                lower = self.bounds[idx - 1] if idx > 0 else 0.0
                estimate = lower + (upper - lower) * (rank - cumulative) / n
                return min(max(estimate, lo), hi)
            cumulative += n
        return hi  # pragma: no cover - rank <= total always lands above

    def snapshot(self) -> dict:
        """Count, sum, min/max and the standard quantile estimates."""
        with self._lock:
            counts = list(self._counts)
            total = sum(counts)
            out = {
                "count": total,
                "sum": self._sum,
                "min": self._min if total else 0.0,
                "max": self._max if total else 0.0,
            }
        for q, key in _QUANTILES:
            out[key] = self.percentile(q) if total else 0.0
        return out

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ``inf`` last."""
        with self._lock:
            counts = list(self._counts)
        out: list[tuple[float, int]] = []
        cumulative = 0
        for bound, n in zip(self.bounds, counts):
            cumulative += n
            out.append((bound, cumulative))
        out.append((float("inf"), cumulative + counts[-1]))
        return out


class _NullMetric:
    """Shared no-op stand-in handed out by a disabled registry."""

    name = "disabled"
    labels: tuple = ()
    bounds = LATENCY_BUCKETS
    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """No-op."""

    def set(self, value: float) -> None:
        """No-op."""

    def observe(self, value: float) -> None:
        """No-op."""

    def reset(self) -> None:
        """No-op."""

    def percentile(self, q: float) -> float:
        """Always 0.0."""
        return 0.0

    def snapshot(self) -> dict:
        """Always empty-shaped."""
        return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0}

    def bucket_counts(self) -> list:
        """Always empty."""
        return []


_NULL = _NullMetric()


class MetricsRegistry:
    """Named, labelled get-or-create access to the metric types.

    Args:
        enabled: ``False`` turns the whole registry into null metrics —
            handles stay valid, every mutation is a no-op, exports are
            empty. The overhead benchmark serves one tape against an
            enabled and one against a disabled registry to measure the
            telemetry layer's true cost.
    """

    def __init__(self, enabled: bool = True) -> None:
        """Create an empty registry."""
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, tuple], object] = {}

    # ------------------------------------------------------------------
    # Get-or-create handles
    # ------------------------------------------------------------------

    def _get(self, cls, name: str, labels: dict, **kwargs):
        if not self.enabled:
            return _NULL
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, labels=key[1], **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, **labels) -> Counter:
        """The counter registered under ``name`` + ``labels``."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """The gauge registered under ``name`` + ``labels``."""
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, bounds: tuple[float, ...] = LATENCY_BUCKETS, **labels
    ) -> Histogram:
        """The histogram registered under ``name`` + ``labels``."""
        return self._get(Histogram, name, labels, bounds=bounds)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def _sorted_metrics(self) -> list:
        with self._lock:
            return [m for _, m in sorted(self._metrics.items(), key=lambda kv: kv[0])]

    def snapshot(self) -> dict:
        """Everything, as a plain dict: counters, gauges, histograms."""
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for metric in self._sorted_metrics():
            full = metric.name + _label_suffix(metric.labels)
            if metric.kind == "counter":
                out["counters"][full] = metric.value
            elif metric.kind == "gauge":
                out["gauges"][full] = metric.value
            else:
                out["histograms"][full] = metric.snapshot()
        return out

    def to_json(self, indent: int | None = None) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition (``# TYPE`` lines + samples)."""
        lines: list[str] = []
        typed: set[str] = set()
        for metric in self._sorted_metrics():
            if metric.name not in typed:
                lines.append(f"# TYPE {metric.name} {metric.kind}")
                typed.add(metric.name)
            if metric.kind in ("counter", "gauge"):
                lines.append(
                    f"{metric.name}{_label_suffix(metric.labels)} {metric.value:g}"
                )
                continue
            for bound, cumulative in metric.bucket_counts():
                le = "+Inf" if bound == float("inf") else f"{bound:g}"
                labels = metric.labels + (("le", le),)
                lines.append(f"{metric.name}_bucket{_label_suffix(labels)} {cumulative}")
            suffix = _label_suffix(metric.labels)
            lines.append(f"{metric.name}_sum{suffix} {metric.sum:g}")
            lines.append(f"{metric.name}_count{suffix} {metric.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Drop every registered metric (tests and fresh benchmark arms)."""
        with self._lock:
            self._metrics.clear()
