"""Unified telemetry for the serving stack: metrics, traces, journal view.

Three pieces, one import:

* :class:`MetricsRegistry` (:mod:`repro.obs.registry`) — counters,
  gauges and fixed-bucket latency histograms (p50/p90/p99/p999 without
  storing samples), with snapshot / Prometheus-text / JSON export;
* :class:`Tracer` (:mod:`repro.obs.trace`) — per-query nested trace
  spans with a recent-trace ring buffer and a slow-query log;
* :class:`JournalMetrics` (:mod:`repro.obs.journal`) — a derived
  metrics collection consuming the mutation journal (mutation rates,
  re-split counts, cluster-size distributions, consumer lag).

Every instrumented component (``GraphSearcher``, the query engines,
``ReplicaSet``, the WAL, ``OnlineIndex``) takes optional ``registry=``
/ ``tracer=`` arguments and defaults to the **process-wide** instances
returned by :func:`metrics` and :func:`tracer` — so a default stack
shares one registry and one ``repro metrics-dump`` sees every layer.
:func:`set_metrics` / :func:`set_tracer` swap the defaults (the
overhead benchmark swaps in disabled instances to measure the
telemetry layer's cost; tests swap in fresh ones for isolation).

The full metric catalog, trace span schema and exposition formats are
documented in ``docs/observability.md``.
"""

from __future__ import annotations

from .journal import JournalMetrics
from .registry import (
    COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
)
from .trace import Span, Tracer, format_span

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "JournalMetrics",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "format_span",
    "metrics",
    "set_metrics",
    "set_tracer",
    "tracer",
]

_DEFAULT_REGISTRY = MetricsRegistry()
_DEFAULT_TRACER = Tracer()


def metrics() -> MetricsRegistry:
    """The process-wide default registry components bind to."""
    return _DEFAULT_REGISTRY


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry; returns the previous one.

    Components capture their metric handles at construction, so swap
    **before** building the stack you want observed (or isolated).
    """
    global _DEFAULT_REGISTRY
    previous = _DEFAULT_REGISTRY
    _DEFAULT_REGISTRY = registry
    return previous


def tracer() -> Tracer:
    """The process-wide default tracer components bind to."""
    return _DEFAULT_TRACER


def set_tracer(instance: Tracer) -> Tracer:
    """Swap the default tracer; returns the previous one."""
    global _DEFAULT_TRACER
    previous = _DEFAULT_TRACER
    _DEFAULT_TRACER = instance
    return previous
