"""JournalMetrics — a derived metrics view over the mutation journal.

The ROADMAP's declarative-pipeline item (after the krt framework in
SNIPPETS.md) frames every journal consumer as *transform + seq cursor +
resync recipe*. This module was the first consumer written explicitly
in that shape, and with ``repro.deltas`` landed it is the template: a
:class:`~repro.deltas.DerivedView` whose derived collection is not
another index but a set of metrics computed from the stream itself.

* **transform** — :meth:`JournalMetrics.apply` folds one
  :class:`~repro.deltas.Delta` into the per-op mutation counter, the
  edge added/removed counters and the re-split counters, and stamps a
  sliding window for the mutation rate. O(|edges|) per event, no index
  reads on the hot path.
* **seq cursor** — the inherited ``seq`` tracks the last journal
  version folded in (the same currency replicas and the WAL replay
  by), exported as the ``journal_seq`` gauge; :meth:`collect` turns
  attached consumer cursors (replica sets, durable logs) into
  ``journal_lag`` gauges.
* **resync recipe** — :meth:`resync` recomputes every derived gauge
  (cluster-size distribution, cluster counts) from the live index
  state, exactly what a consumer does after an unshippable event; it
  runs automatically on ``rebuild``.

Per-cluster size distributions are refreshed by :meth:`collect` (called
by dashboards right before reading), not per mutation — scanning the
member lists on every event would tax the write path for a number only
read occasionally.
"""

from __future__ import annotations

import threading
from collections import deque
from time import perf_counter

from ..deltas.view import DerivedView
from .registry import COUNT_BUCKETS, MetricsRegistry

__all__ = ["JournalMetrics"]


class JournalMetrics(DerivedView):
    """Derives operational metrics from an index's mutation journal.

    Args:
        index: the :class:`~repro.online.OnlineIndex` whose journal to
            consume (registered on the index's delta bus at
            construction; :meth:`close` detaches).
        registry: the :class:`~repro.obs.MetricsRegistry` to publish
            into (default: the process-wide registry).
        window_s: sliding-window length for ``journal_mutation_rate``.
    """

    name = "journal_metrics"

    def __init__(
        self,
        index,
        registry: MetricsRegistry | None = None,
        window_s: float = 60.0,
    ) -> None:
        """Register on ``index``'s bus and seed the derived gauges."""
        from . import metrics  # deferred: repro.obs re-exports this class

        super().__init__()
        self.index = index
        self.registry = registry if registry is not None else metrics()
        self.window_s = float(window_s)
        self._lock = threading.Lock()
        self._stamps: deque[float] = deque()
        self._counts: dict[str, int] = {}
        reg = self.registry
        self._g_seq = reg.gauge("journal_seq")
        self._g_rate = reg.gauge("journal_mutation_rate")
        self._c_added = reg.counter("journal_edges_added_total")
        self._c_removed = reg.counter("journal_edges_removed_total")
        self._c_resplits = reg.counter("journal_resplits_total")
        self._c_moved = reg.counter("journal_resplit_moved_total")
        self._g_clusters = reg.gauge("journal_clusters")
        self._g_max_cluster = reg.gauge("journal_max_cluster_size")
        self._h_cluster = reg.histogram("journal_cluster_size", bounds=COUNT_BUCKETS)
        self._lag_sources: dict[str, object] = {}
        # Index totals already folded in (attach may follow prior churn).
        self._resplits_seen = 0
        self._moved_seen = 0
        index.deltas.register(self)
        self.resync()

    # ------------------------------------------------------------------
    # Transform: one journal event -> counter increments
    # ------------------------------------------------------------------

    def apply(self, delta) -> None:
        """Fold one :class:`~repro.deltas.Delta` into the metrics."""
        event = delta.event
        added = removed = 0
        for _u, _v, was_added, *_ in delta.edges:
            if was_added:
                added += 1
            else:
                removed += 1
        with self._lock:
            self._counts[event] = self._counts.get(event, 0) + 1
            self._stamps.append(perf_counter())
        self.registry.counter("journal_mutations_total", op=event).inc()
        if added:
            self._c_added.inc(added)
        if removed:
            self._c_removed.inc(removed)
        self._g_seq.set(int(delta.seq))
        if event == "resplit":
            # One journal event may split recursively; the index's own
            # counters say how many clusters it actually opened.
            stats = self.index.stats()
            new = stats["resplits_total"] - self._resplits_seen
            moved = stats["resplit_moved"] - self._moved_seen
            self._resplits_seen = stats["resplits_total"]
            self._moved_seen = stats["resplit_moved"]
            if new > 0:
                self._c_resplits.inc(new)
            if moved > 0:
                self._c_moved.inc(moved)
        elif event == "rebuild":
            self.resync()

    # ------------------------------------------------------------------
    # Cursors and lag
    # ------------------------------------------------------------------

    def attach_lag(self, name: str, fn) -> None:
        """Register a consumer lag source for :meth:`collect`.

        ``fn`` is a zero-arg callable returning mutations shipped but
        not yet applied by that consumer (e.g.
        :meth:`repro.serve.ReplicaSet.lag` or
        :meth:`repro.persist.DurableIndex.lag`), published as the
        ``journal_lag{consumer=...}`` gauge.
        """
        self._lag_sources[str(name)] = fn

    def mutation_rate(self) -> float:
        """Journal events per second over the sliding window."""
        now = perf_counter()
        with self._lock:
            while self._stamps and now - self._stamps[0] > self.window_s:
                self._stamps.popleft()
            n = len(self._stamps)
        if n == 0:
            return 0.0
        return n / self.window_s

    def counts(self) -> dict[str, int]:
        """Per-op journal event counts since attach (ground truth for tests)."""
        with self._lock:
            return dict(self._counts)

    # ------------------------------------------------------------------
    # Resync recipe + collection
    # ------------------------------------------------------------------

    def resync(self) -> None:
        """Recompute every derived gauge from the live index state.

        The consumer's answer to an unshippable event (``rebuild``
        resets cluster ids wholesale): throw the derived state away and
        rebuild it from the source of truth, exactly like a replica
        resyncing from a snapshot.
        """
        stats = self.index.stats()
        with self._lock:
            self.seq = int(self.index.version)
            self._resplits_seen = stats["resplits_total"]
            self._moved_seen = stats["resplit_moved"]
        self._g_seq.set(self.seq)
        self._refresh_clusters(stats)

    def _refresh_clusters(self, stats: dict) -> None:
        """Re-derive the cluster-size distribution gauges/histogram."""
        self._g_clusters.set(stats["clusters"])
        self._g_max_cluster.set(stats["max_cluster_size"])
        sizes = [len(m) for m in self.index._members if m]
        self._h_cluster.reset()
        for size in sizes:
            self._h_cluster.observe(size)

    def collect(self) -> None:
        """Refresh the pull-style gauges (call right before reading).

        Updates the mutation-rate gauge, the per-cluster size
        distribution and one ``journal_lag{consumer=...}`` gauge per
        attached lag source.
        """
        self._g_rate.set(self.mutation_rate())
        self._refresh_clusters(self.index.stats())
        for name, fn in self._lag_sources.items():
            self.registry.gauge("journal_lag", consumer=name).set(float(fn()))
