"""Per-query trace spans: nested timings, recent-trace ring, slow log.

A metric histogram says *that* p99 crept up; a trace says *where one
slow query spent it*. :class:`Tracer` hands the serving code a
``span()`` context manager; spans opened while another span is active
on the same thread nest under it, so one query produces a small tree::

    query 4.1ms {k=10}
      search 3.9ms
        route 0.2ms
        seed 0.8ms {n_seeds=41}
        walk 2.4ms {hops=7, evaluations=213}
        rerank 0.5ms
      cache_store 0.1ms

Completed **root** spans land in a bounded ring buffer (most recent
first) and, when their duration crosses ``slow_ms``, in a separate
slow-query log — the dashboard's "show me one bad query" answer.

The span stack is ``threading.local``, so shard workers trace
concurrently without locks on the hot path; only the two bounded
deques are locked. A disabled tracer yields one shared no-op span —
the same near-zero-cost contract as the disabled
:class:`~repro.obs.registry.MetricsRegistry`.
"""

from __future__ import annotations

import threading
from collections import deque
from time import perf_counter

__all__ = ["Span", "Tracer", "format_span"]


class Span:
    """One timed operation inside a trace tree.

    Attributes:
        name: operation label (``"walk"``, ``"cache_store"``, …).
        tags: free-form annotations set at open time or via :meth:`note`.
        children: spans opened (and closed) while this one was active.
        duration: seconds, set when the span closes (None while open).
    """

    __slots__ = ("name", "_tags", "_children", "start", "duration", "_tracer")

    def __init__(
        self, name: str, tags: dict | None = None, _tracer: "Tracer | None" = None
    ) -> None:
        """Open a span now (use :meth:`Tracer.span`, not this)."""
        self.name = name
        # Tag/children dicts are allocated lazily: most spans on the
        # serving hot path carry neither, and the two allocations were
        # a measurable slice of the per-span cost.
        self._tags = tags
        self._children: list[Span] | None = None
        self.start = 0.0  # armed by __enter__
        self.duration: float | None = None
        self._tracer = _tracer

    @property
    def tags(self) -> dict:
        """Free-form annotations (open-time kwargs + :meth:`note`)."""
        if self._tags is None:
            self._tags = {}
        return self._tags

    @property
    def children(self) -> "list[Span]":
        """Spans opened (and closed) while this one was active."""
        if self._children is None:
            self._children = []
        return self._children

    def __enter__(self) -> "Span":
        """Spans are their own context managers (no generator overhead)."""
        if self._tracer is not None:
            self._tracer._stack().append(self)
        self.start = perf_counter()  # armed last: exclude setup cost
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Close: record duration, pop the stack, attach to the tree."""
        self.duration = perf_counter() - self.start
        if self._tracer is not None:
            self._tracer._close(self)
        return False

    def note(self, **tags) -> None:
        """Attach tags discovered mid-span (hop counts, sizes, …)."""
        if self._tags is None:
            self._tags = tags
        else:
            self._tags.update(tags)

    def to_dict(self) -> dict:
        """The span tree as plain data (JSON-friendly)."""
        return {
            "name": self.name,
            "duration_ms": None if self.duration is None else self.duration * 1e3,
            "tags": dict(self._tags or {}),
            "children": [child.to_dict() for child in self._children or []],
        }


class _NullSpan:
    """Shared stand-in yielded by a disabled tracer."""

    name = "disabled"
    tags: dict = {}
    children: list = []
    duration = 0.0

    def __enter__(self) -> "_NullSpan":
        """Return the shared singleton — nothing is allocated."""
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """No-op; exceptions propagate."""
        return False

    def note(self, **tags) -> None:
        """No-op."""

    def to_dict(self) -> dict:
        """Empty-shaped tree."""
        return {"name": self.name, "duration_ms": 0.0, "tags": {}, "children": []}


_NULL_SPAN = _NullSpan()


def format_span(span: Span, indent: int = 0) -> str:
    """Render a span tree as the indented text the dashboards print."""
    ms = 0.0 if span.duration is None else span.duration * 1e3
    tags = (
        " {" + ", ".join(f"{k}={v}" for k, v in span.tags.items()) + "}"
        if span.tags
        else ""
    )
    lines = ["  " * indent + f"{span.name} {ms:.2f}ms{tags}"]
    for child in span.children:
        lines.append(format_span(child, indent + 1))
    return "\n".join(lines)


class Tracer:
    """Produces nested :class:`Span` trees and keeps the recent ones.

    Args:
        capacity: root spans retained in the recent-trace ring buffer.
        slow_ms: root spans at least this many milliseconds long are
            also retained in the slow-query log (its own ring of
            ``capacity`` entries).
        enabled: ``False`` yields a shared no-op span from
            :meth:`span` — tracing evaporates at one attribute check.
    """

    def __init__(
        self, capacity: int = 128, slow_ms: float = 50.0, enabled: bool = True
    ) -> None:
        """Create a tracer with empty ring buffers."""
        self.enabled = bool(enabled)
        self.slow_ms = float(slow_ms)
        self._recent: deque[Span] = deque(maxlen=int(capacity))
        self._slow: deque[Span] = deque(maxlen=int(capacity))
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self) -> list:
        try:
            return self._local.stack
        except AttributeError:
            stack = self._local.stack = []
            return stack

    def span(self, name: str, **tags):
        """Open a span; nests under the thread's current span, if any.

        Returns a context manager (the :class:`Span` itself — a plain
        ``__enter__``/``__exit__`` object, cheaper than a generator).
        """
        if not self.enabled:
            return _NULL_SPAN
        return Span(name, tags or None, _tracer=self)

    def _close(self, span: Span) -> None:
        """Pop a finished span and attach it to its parent (or record)."""
        stack = self._stack()
        stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            self._record(span)

    def _record(self, root: Span) -> None:
        with self._lock:
            self._recent.append(root)
            if root.duration is not None and root.duration * 1e3 >= self.slow_ms:
                self._slow.append(root)

    def recent(self, n: int | None = None) -> list[Span]:
        """The most recent completed root spans, newest first."""
        with self._lock:
            out = list(self._recent)
        out.reverse()
        return out if n is None else out[: int(n)]

    def slow(self, n: int | None = None) -> list[Span]:
        """Recent root spans that crossed ``slow_ms``, newest first."""
        with self._lock:
            out = list(self._slow)
        out.reverse()
        return out if n is None else out[: int(n)]

    def clear(self) -> None:
        """Drop both ring buffers (fresh benchmark arms, tests)."""
        with self._lock:
            self._recent.clear()
            self._slow.clear()
