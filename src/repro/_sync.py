"""A small readers-writer lock (no intra-package dependencies).

The serving subsystem lets multiple shard workers walk the graph while
an :class:`~repro.online.OnlineIndex` takes mutations from another
thread. Walks only read; mutations patch numpy rows in place, so a walk
observing a half-applied mutation could follow garbage edges. The
classic fix: any number of concurrent readers, writers exclusive.

Semantics chosen for this codebase:

* **write is reentrant** — ``refill`` runs under the write lock and
  issues a self-query whose walk takes the read lock;
* **a thread holding write may read** — same reason;
* **writers are preferred** — arriving readers queue behind a waiting
  writer, so a mutation storm cannot be starved by query traffic.

No read→write upgrade (a reader acquiring write would deadlock against
itself); none of the call paths here needs one.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["RWLock"]


class RWLock:
    """Readers-writer lock with reentrant, read-permitting writers."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer: int | None = None  # ident of the thread holding write
        self._write_depth = 0
        self._waiting_writers = 0

    @contextmanager
    def read(self):
        """Shared acquisition; never blocks the thread holding write."""
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                # The writer reading its own half-applied state is the
                # refill self-query; it sees a consistent snapshot
                # because it *is* the mutation.
                own_write = True
            else:
                own_write = False
                while self._writer is not None or self._waiting_writers:
                    self._cond.wait()
                self._readers += 1
        try:
            yield self
        finally:
            if not own_write:
                with self._cond:
                    self._readers -= 1
                    if self._readers == 0:
                        self._cond.notify_all()

    @contextmanager
    def write(self):
        """Exclusive acquisition; reentrant for the owning thread."""
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._write_depth += 1
            else:
                self._waiting_writers += 1
                while self._writer is not None or self._readers:
                    self._cond.wait()
                self._waiting_writers -= 1
                self._writer = me
                self._write_depth = 1
        try:
            yield self
        finally:
            with self._cond:
                self._write_depth -= 1
                if self._write_depth == 0:
                    self._writer = None
                    self._cond.notify_all()
