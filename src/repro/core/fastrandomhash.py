"""FastRandomHash — the paper's clustering hash (§II-D).

A generative hash ``h : I -> [1, b]`` assigns each item a random bucket;
the FastRandomHash of a user is the *minimum* hash over her profile:

    H(u) = min_{i in P_u} h(i)                              (Eq. 3)

Unlike MinHash, the hash space is a small fixed interval ``[1, b]``
rather than the item universe, which keeps the number of clusters
bounded (and intentionally causes collisions — Theorems 1-2 bound
their effect). Splitting a cluster of index ``η`` re-hashes its users
with the values ``<= η`` masked out:

    H\\η(u) = min { h(i) : i in P_u, h(i) > η }

Both operations are computed for whole user batches with one
``np.minimum.reduceat`` sweep over the CSR profile layout.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Dataset
from .hashing import GenerativeHash

__all__ = ["FastRandomHash", "UNDEFINED"]

# Sentinel returned when H\eta(u) is undefined (no item hashed above
# eta). One past any valid hash value, so min-reductions ignore it.
UNDEFINED = np.iinfo(np.int32).max


class FastRandomHash:
    """FastRandomHash function over one generative hash."""

    def __init__(self, generative: GenerativeHash) -> None:
        self.generative = generative

    @property
    def n_buckets(self) -> int:
        """Size ``b`` of the hash interval."""
        return self.generative.n_buckets

    def user_hashes(self, dataset: Dataset) -> np.ndarray:
        """``H(u)`` for every user of ``dataset``; empty profiles map
        to :data:`UNDEFINED`."""
        item_hashes = self.generative(dataset.indices)
        return _segment_min(item_hashes, dataset.indptr)

    def user_hashes_excluding(
        self, dataset: Dataset, users: np.ndarray, eta: int
    ) -> np.ndarray:
        """``H\\eta(u)`` for each user in ``users``.

        Items whose hash is ``<= eta`` are ignored; users left with no
        item get :data:`UNDEFINED` (they stay in the parent cluster).
        """
        users = np.asarray(users, dtype=np.int64)
        sizes = dataset.profile_sizes[users]
        indptr = np.zeros(users.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=indptr[1:])
        flat = np.empty(int(indptr[-1]), dtype=np.int32)
        for pos, u in enumerate(users):
            flat[indptr[pos] : indptr[pos + 1]] = dataset.profile(int(u))
        hashes = self.generative(flat).astype(np.int64)
        hashes[hashes <= eta] = UNDEFINED
        return _segment_min(hashes, indptr)

    def profile_hash_path(self, profile: np.ndarray) -> np.ndarray:
        """The full recursive-split descent path of one profile.

        Splitting re-hashes with ``H\\eta``, i.e. the minimum hash value
        strictly above the previous one — so the sequence of values a
        user can take under repeated splitting is exactly the sorted
        distinct hash values of her items: ``path[0] = H(u)``,
        ``path[i+1] = H\\path[i](u)``.
        """
        profile = np.asarray(profile)
        if profile.size == 0:
            return np.empty(0, dtype=np.int64)
        return np.unique(self.generative(profile).astype(np.int64))


def _segment_min(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-segment minimum; empty segments get :data:`UNDEFINED`."""
    n = indptr.size - 1
    out = np.full(n, UNDEFINED, dtype=np.int64)
    nonempty = np.flatnonzero(np.diff(indptr) > 0)
    if values.size and nonempty.size:
        mins = np.minimum.reduceat(values.astype(np.int64), indptr[nonempty])
        out[nonempty] = mins
    return out
