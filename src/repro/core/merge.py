"""Step 3 of Cluster-and-Conquer: merging partial KNN graphs (Alg. 3).

Each user appears in ``t`` clusters (one per hashing configuration) and
is connected to up to ``t * k`` candidate neighbours; the merge keeps
the best ``k`` per user in a bounded heap. Similarity values computed
by the local solvers travel with the edges, so no similarity is ever
recomputed during the merge — the paper's "careful to reuse similarity
values" optimisation.
"""

from __future__ import annotations

from typing import Iterable

from ..graph.knn_graph import KNNGraph
from .local_knn import PartialKNN

__all__ = ["merge_partials"]


def merge_partials(partials: Iterable[PartialKNN], n_users: int, k: int) -> KNNGraph:
    """Merge per-cluster partial KNN graphs into the global graph."""
    graph = KNNGraph(n_users, k)
    for partial in partials:
        for pos, user in enumerate(partial.users):
            ids, scores = partial.neighborhood(pos)
            if ids.size:
                graph.add_batch(int(user), ids, scores)
    return graph
