"""Hash-function substrate for FastRandomHash, GoldFinger and MinHash.

The paper computes its FastRandomHash functions with Jenkins' hash; any
cheap integer hash with good avalanche behaviour works (only uniformity
over ``[1, b]`` matters for Theorems 1-2). We use the splitmix64
finaliser, which is branch-free and fully vectorisable with numpy
uint64 arithmetic, seeded per hash function.
"""

from __future__ import annotations

import numpy as np

from .._mix import splitmix64, splitmix64_array

__all__ = [
    "splitmix64",
    "splitmix64_array",
    "GenerativeHash",
    "make_hash_family",
    "MinHashPermutation",
    "make_minhash_family",
]


class GenerativeHash:
    """A generative hash function ``h : I -> [1, b]`` (paper §II-D).

    The per-item hash values are materialised once as a lookup table so
    that hashing a whole dataset is a single fancy-indexing operation.
    """

    def __init__(self, n_items: int, n_buckets: int, seed: int) -> None:
        if n_buckets < 1:
            raise ValueError("n_buckets must be >= 1")
        self.n_buckets = int(n_buckets)
        self.seed = int(seed)
        raw = splitmix64_array(np.arange(n_items, dtype=np.uint64), seed)
        # Values in [1, b], matching the paper's J1,b K convention.
        self.table = (raw % np.uint64(n_buckets)).astype(np.int32) + 1

    def __call__(self, items: np.ndarray) -> np.ndarray:
        """Hash values of ``items`` (vectorised table lookup)."""
        return self.table[items]

    def extend(self, n_items: int) -> None:
        """Extend the lookup table to cover ``n_items`` item ids.

        splitmix64 hashes each id independently, so existing entries
        are untouched — hash values stay stable as the item universe
        grows (required by the online-update subsystem).
        """
        old = self.table.size
        if n_items <= old:
            return
        raw = splitmix64_array(np.arange(old, n_items, dtype=np.uint64), self.seed)
        new = (raw % np.uint64(self.n_buckets)).astype(np.int32) + 1
        self.table = np.concatenate([self.table, new])


def make_hash_family(n_items: int, n_buckets: int, t: int, seed: int = 0) -> list[GenerativeHash]:
    """``t`` independent generative hash functions over ``n_items``."""
    seeds = np.random.SeedSequence(seed).generate_state(t)
    return [GenerativeHash(n_items, n_buckets, int(s)) for s in seeds]


class MinHashPermutation:
    """A min-wise independent permutation of the item set (MinHash).

    Classic LSH/MinHash hashes a user to the minimum of a random
    permutation over her items; the hash space is the item universe
    itself (size ``m``), which is what makes MinHash fragment sparse
    datasets — the contrast FastRandomHash exploits (paper §II-E).
    """

    def __init__(self, n_items: int, seed: int) -> None:
        self.seed = int(seed)
        rng = np.random.default_rng(seed)
        self.table = rng.permutation(n_items).astype(np.int64)

    def __call__(self, items: np.ndarray) -> np.ndarray:
        """Permuted ranks of ``items``."""
        return self.table[items]


def make_minhash_family(n_items: int, t: int, seed: int = 0) -> list[MinHashPermutation]:
    """``t`` independent MinHash permutations over ``n_items``."""
    seeds = np.random.SeedSequence(seed).generate_state(t)
    return [MinHashPermutation(n_items, int(s)) for s in seeds]
