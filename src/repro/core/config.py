"""Configuration of the Cluster-and-Conquer algorithm."""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["C2Params", "paper_params"]


@dataclass(frozen=True)
class C2Params:
    """Parameters of one Cluster-and-Conquer run (paper §IV-C defaults).

    Attributes:
        k: neighbourhood size of the output graph.
        n_buckets: ``b``, clusters per hash function (paper: 4096).
        n_hashes: ``t``, number of hash functions (paper: 8; 15 for
            DBLP and Gowalla).
        split_threshold: ``N``, maximum cluster size before recursive
            splitting (paper: 2000; 4000 for ml20M); ``None`` disables
            splitting (ablation).
        rho: Hyrec iteration bound in the brute-force/Hyrec switch
            ``|C| < rho * k**2`` (paper: 5).
        delta: termination threshold of the local greedy solver.
        max_iterations: iteration cap of the local greedy solver.
        hash_family: ``"frh"`` (FastRandomHash, the contribution) or
            ``"minhash"`` (Table IV ablation: t MinHash permutations,
            no splitting).
        n_workers: thread-pool width for Step 2 (1 = serial).
        schedule: ``"largest_first"`` (paper) or ``"fifo"`` (ablation).
        seed: RNG seed for hash functions and local solvers.
    """

    k: int = 30
    n_buckets: int = 4096
    n_hashes: int = 8
    split_threshold: int | None = 2000
    rho: int = 5
    delta: float = 0.001
    max_iterations: int = 30
    hash_family: str = "frh"
    n_workers: int = 1
    schedule: str = "largest_first"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.n_buckets < 1:
            raise ValueError("n_buckets must be >= 1")
        if self.n_hashes < 1:
            raise ValueError("n_hashes must be >= 1")
        if self.split_threshold is not None and self.split_threshold < 2:
            raise ValueError("split_threshold must be >= 2 (or None)")
        if self.hash_family not in ("frh", "minhash"):
            raise ValueError(f"unknown hash_family {self.hash_family!r}")

    def with_(self, **changes) -> "C2Params":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


def paper_params(dataset_name: str, n_workers: int = 1, seed: int = 0) -> C2Params:
    """The paper's per-dataset parameter choices (§IV-C).

    ``t = 15`` for DBLP and Gowalla, ``N = 4000`` for ml20M, defaults
    elsewhere.
    """
    n_hashes = 15 if dataset_name in ("DBLP", "GW") else 8
    split_threshold = 4000 if dataset_name == "ml20M" else 2000
    return C2Params(
        n_hashes=n_hashes,
        split_threshold=split_threshold,
        n_workers=n_workers,
        seed=seed,
    )
