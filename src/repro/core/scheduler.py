"""Step 2 scheduling: largest-first parallel processing of clusters.

The paper stores clusters in a synchronized, size-ordered priority
queue drained by a thread pool, so the biggest clusters start first
and cannot straggle at the end of the computation. We reproduce this
with a ``ThreadPoolExecutor`` fed in sorted order — submission order
equals dequeue order, which is exactly the priority-queue discipline.
Each worker computes its cluster's partial KNN in isolation (no
synchronisation between clusters, the paper's key parallelism claim);
numpy kernels release the GIL, so threads overlap on real hardware.

A FIFO mode is kept for the scheduling ablation benchmark.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

from .clustering import Cluster

__all__ = ["run_clusters", "makespan_lower_bound"]

T = TypeVar("T")


def run_clusters(
    clusters: Sequence[Cluster],
    solve: Callable[[Cluster], T],
    n_workers: int = 1,
    order: str = "largest_first",
) -> list[T]:
    """Run ``solve`` over every cluster; returns results in input order.

    Args:
        clusters: work items.
        solve: per-cluster solver (must be thread-safe across clusters).
        n_workers: thread-pool size; ``1`` runs inline (deterministic,
            no pool overhead — the default for tests).
        order: ``"largest_first"`` (paper) or ``"fifo"`` (ablation).
    """
    if order not in ("largest_first", "fifo"):
        raise ValueError(f"unknown scheduling order {order!r}")
    indexed = list(enumerate(clusters))
    if order == "largest_first":
        indexed.sort(key=lambda pair: pair[1].size, reverse=True)

    results: list[T] = [None] * len(clusters)  # type: ignore[list-item]
    if n_workers <= 1:
        for pos, cluster in indexed:
            results[pos] = solve(cluster)
        return results

    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        futures = [(pos, pool.submit(solve, cluster)) for pos, cluster in indexed]
        for pos, future in futures:
            results[pos] = future.result()
    return results


def makespan_lower_bound(sizes: Sequence[int], n_workers: int) -> float:
    """Lower bound on parallel completion time under the paper's cost
    model (work per cluster ∝ ``size²`` for brute-forced clusters).

    Used by the scheduling ablation to show why balanced clusters and
    largest-first dispatch matter: ``max(max_cluster_work,
    total_work / n_workers)``.
    """
    work = [float(s) * s for s in sizes]
    if not work:
        return 0.0
    return max(max(work), sum(work) / max(1, n_workers))
