"""Step 1 of Cluster-and-Conquer: FastRandomHash clustering with
recursive splitting of oversized clusters (paper §II-D, Alg. 1, Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..data.dataset import Dataset
from .fastrandomhash import UNDEFINED, FastRandomHash
from .hashing import GenerativeHash, MinHashPermutation

__all__ = [
    "Cluster",
    "ClusteringResult",
    "cluster_dataset",
    "group_by_value",
    "minhash_cluster_dataset",
]


@dataclass(frozen=True)
class Cluster:
    """A sub-dataset produced by one hashing configuration.

    Attributes:
        users: global user ids in the cluster.
        config: index of the hash function that produced it.
        eta: the hash value ``η`` whose minimum formed this cluster —
            also the exclusion threshold used if it must be split.
        splittable: False for residual clusters (re-splitting them with
            the same ``η`` would be a no-op).
        path: the split lineage ``(η₀, η₁, ..., η)`` from the top-level
            bucket down to this cluster. Identifies a cluster uniquely
            within its configuration (``eta`` alone does not: different
            subtrees can produce children with equal η), which is what
            lets the online router replay the descent for one profile.
            Empty for externally constructed clusters; treated as
            ``(eta,)`` then.
    """

    users: np.ndarray
    config: int
    eta: int
    splittable: bool = True
    path: tuple = ()

    @property
    def size(self) -> int:
        """Number of users in the cluster."""
        return int(self.users.size)

    @property
    def lineage(self) -> tuple:
        """``path`` with the single-bucket fallback applied."""
        return self.path if self.path else (self.eta,)


@dataclass(frozen=True)
class ClusteringResult:
    """All clusters across the ``t`` configurations, plus diagnostics.

    ``split_paths`` records the ``(config, lineage)`` of every cluster
    that was recursively split. Together with the clusters themselves
    this is enough to replay the split descent for a *single* (new or
    changed) user profile — the primitive the online-update subsystem
    routes with (see :class:`repro.online.ClusterRouter`).
    """

    clusters: list[Cluster]
    n_configs: int
    n_splits: int
    split_paths: frozenset = frozenset()

    def sizes(self) -> np.ndarray:
        """Cluster sizes, descending."""
        return np.sort(np.array([c.size for c in self.clusters], dtype=np.int64))[::-1]

    def config_clusters(self, config: int) -> list[Cluster]:
        """Clusters belonging to hashing configuration ``config``."""
        return [c for c in self.clusters if c.config == config]


def group_by_value(users: np.ndarray, values: np.ndarray) -> list[tuple[int, np.ndarray]]:
    """Group ``users`` by their hash ``values``; returns (value, users) pairs.

    Groups come back in ascending hash-value order; within a group the
    original order of ``users`` is preserved (stable sort). Shared by
    the batch splitter below and the online re-split
    (:meth:`repro.online.OnlineIndex._resplit`), which relies on the
    order guarantee to keep primary and replica member lists identical.
    """
    order = np.argsort(values, kind="stable")
    users, values = users[order], values[order]
    boundaries = np.flatnonzero(np.diff(values)) + 1
    groups = np.split(users, boundaries)
    keys = values[np.concatenate([[0], boundaries])] if users.size else []
    return [(int(k), g) for k, g in zip(keys, groups)]


def split_cluster(
    dataset: Dataset,
    frh: FastRandomHash,
    cluster: Cluster,
    threshold: int,
    split_paths: set | None = None,
) -> tuple[list[Cluster], int]:
    """Recursively split ``cluster`` until every piece is <= ``threshold``.

    Implements the paper's rule: users are re-hashed with
    ``H\\η``; users with an undefined hash or alone in their new
    cluster stay in the (residual) parent, which becomes unsplittable.
    Returns the resulting clusters and the number of split operations.
    When ``split_paths`` is given, the ``(config, lineage)`` of every
    cluster that gets split is added to it (consumed by the online
    cluster router to replay the descent for a single profile).
    """
    if not cluster.splittable or cluster.size <= threshold:
        return [cluster], 0
    if split_paths is not None:
        split_paths.add((cluster.config, cluster.lineage))

    new_hashes = frh.user_hashes_excluding(dataset, cluster.users, cluster.eta)
    stay_mask = new_hashes == UNDEFINED
    moved = cluster.users[~stay_mask]
    moved_hashes = new_hashes[~stay_mask]

    stay_users = [cluster.users[stay_mask]]
    children: list[Cluster] = []
    for value, members in group_by_value(moved, moved_hashes):
        if members.size <= 1:
            stay_users.append(members)  # singletons remain in C
        else:
            children.append(
                Cluster(
                    users=members,
                    config=cluster.config,
                    eta=value,
                    path=cluster.lineage + (value,),
                )
            )

    residual_users = np.concatenate(stay_users) if stay_users else np.empty(0, dtype=np.int64)
    out: list[Cluster] = []
    n_splits = 1
    if residual_users.size:
        out.append(replace(cluster, users=residual_users, splittable=False))
    for child in children:
        pieces, splits = split_cluster(dataset, frh, child, threshold, split_paths)
        out.extend(pieces)
        n_splits += splits
    return out, n_splits


def cluster_dataset(
    dataset: Dataset,
    hashes: list[GenerativeHash],
    split_threshold: int | None = 2000,
) -> ClusteringResult:
    """Cluster ``dataset`` with ``t = len(hashes)`` FastRandomHash
    functions (Alg. 1), then recursively split oversized clusters.

    ``split_threshold=None`` disables splitting (ablation switch).
    """
    clusters: list[Cluster] = []
    n_splits = 0
    split_paths: set = set()
    all_users = np.arange(dataset.n_users, dtype=np.int64)
    for config, gen in enumerate(hashes):
        frh = FastRandomHash(gen)
        user_hashes = frh.user_hashes(dataset)
        for value, members in group_by_value(all_users, user_hashes):
            cluster = Cluster(users=members, config=config, eta=value, path=(value,))
            if split_threshold is not None:
                pieces, splits = split_cluster(
                    dataset, frh, cluster, split_threshold, split_paths
                )
                clusters.extend(pieces)
                n_splits += splits
            else:
                clusters.append(cluster)
    return ClusteringResult(
        clusters=clusters,
        n_configs=len(hashes),
        n_splits=n_splits,
        split_paths=frozenset(split_paths),
    )


def minhash_cluster_dataset(
    dataset: Dataset,
    permutations: list[MinHashPermutation],
) -> ClusteringResult:
    """MinHash bucketing (LSH-style): one configuration per permutation.

    The hash space is the item universe itself (``b = m``), so no
    recursive splitting is applied — this is both the LSH baseline's
    bucketing and the Table IV "C²/MinHash" ablation.
    """
    clusters: list[Cluster] = []
    all_users = np.arange(dataset.n_users, dtype=np.int64)
    for config, perm in enumerate(permutations):
        ranks = perm(dataset.indices).astype(np.int64)
        user_min = np.full(dataset.n_users, UNDEFINED, dtype=np.int64)
        nonempty = np.flatnonzero(dataset.profile_sizes > 0)
        if nonempty.size:
            mins = np.minimum.reduceat(ranks, dataset.indptr[nonempty])
            user_min[nonempty] = mins
        for value, members in group_by_value(all_users, user_min):
            clusters.append(
                Cluster(
                    users=members, config=config, eta=value,
                    splittable=False, path=(value,),
                )
            )
    return ClusteringResult(clusters=clusters, n_configs=len(permutations), n_splits=0)
