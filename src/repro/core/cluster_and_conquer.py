"""Cluster-and-Conquer (C²) — the paper's main contribution (§II).

Pipeline: FastRandomHash clustering (+ recursive splitting) → parallel
per-cluster KNN (brute force / Hyrec hybrid, largest-first schedule) →
bounded-heap merge. Every similarity goes through the provided
:class:`SimilarityEngine` (GoldFinger by default, exact for the
Table V ablation).
"""

from __future__ import annotations

import time

import numpy as np

from ..result import BuildResult, track_build
from ..similarity.engine import SimilarityEngine
from .clustering import Cluster, cluster_dataset, minhash_cluster_dataset
from .config import C2Params
from .hashing import make_hash_family, make_minhash_family
from .local_knn import solve_cluster
from .merge import merge_partials
from .scheduler import run_clusters

__all__ = ["cluster_and_conquer"]


def cluster_and_conquer(
    engine: SimilarityEngine,
    params: C2Params | None = None,
    keep_clustering: bool = False,
) -> BuildResult:
    """Build an approximate KNN graph with Cluster-and-Conquer.

    Args:
        engine: similarity oracle over the dataset (GoldFinger-backed
            to match the paper's setup, exact for ablations).
        params: algorithm parameters; defaults to :class:`C2Params`.
        keep_clustering: also store the :class:`ClusteringResult` and
            the hash family in ``extra`` (``"clustering"``/``"hashes"``)
            so an :class:`repro.online.OnlineIndex` can take over the
            built graph for incremental maintenance.

    Returns:
        A :class:`BuildResult`; ``extra`` carries per-step timings and
        clustering diagnostics (``n_clusters``, ``cluster_sizes``,
        ``n_splits``).
    """
    params = params or C2Params()
    dataset = engine.dataset

    with track_build(engine) as info:
        # -- Step 1: clustering ----------------------------------------
        t0 = time.perf_counter()
        if params.hash_family == "frh":
            hashes = make_hash_family(
                dataset.n_items, params.n_buckets, params.n_hashes, seed=params.seed
            )
            clustering = cluster_dataset(dataset, hashes, params.split_threshold)
        else:  # "minhash": Table IV ablation / LSH-style bucketing
            hashes = make_minhash_family(dataset.n_items, params.n_hashes, seed=params.seed)
            clustering = minhash_cluster_dataset(dataset, hashes)
        t_cluster = time.perf_counter() - t0

        # -- Step 2: scheduled local KNN computations -------------------
        t0 = time.perf_counter()

        def solve(cluster: Cluster):
            return solve_cluster(
                engine,
                cluster.users,
                params.k,
                rho=params.rho,
                delta=params.delta,
                max_iterations=params.max_iterations,
                seed=params.seed + cluster.config,
            )

        partials = run_clusters(
            clustering.clusters,
            solve,
            n_workers=params.n_workers,
            order=params.schedule,
        )
        t_local = time.perf_counter() - t0

        # -- Step 3: merge ----------------------------------------------
        t0 = time.perf_counter()
        graph = merge_partials(partials, dataset.n_users, params.k)
        t_merge = time.perf_counter() - t0

    sizes = clustering.sizes()
    extra_state = (
        {"clustering": clustering, "hashes": hashes} if keep_clustering else {}
    )
    return BuildResult(
        graph=graph,
        seconds=info["seconds"],
        comparisons=info["comparisons"],
        iterations=0,
        extra={
            "n_clusters": len(clustering.clusters),
            "n_splits": clustering.n_splits,
            "cluster_sizes": sizes,
            "max_cluster_size": int(sizes[0]) if sizes.size else 0,
            "time_clustering": t_cluster,
            "time_local_knn": t_local,
            "time_merge": t_merge,
            "params": params,
            **extra_state,
        },
    )
