"""Step 2 of Cluster-and-Conquer: the per-cluster KNN solver (Alg. 2).

The hybrid rule follows the paper's cost model: brute force computes
``|C|(|C|-1)/2`` similarities while Hyrec is bounded by
``ρ k² |C| / 2``, so brute force wins when ``|C| < ρ k²`` (with
``ρ = 5`` iterations, the paper's setting). The split threshold
``N = 2000`` is deliberately below ``ρ k² = 4500`` "to privilege Brute
Force which tends to deliver better sub-KNNs than Hyrec".
"""

from __future__ import annotations

import numpy as np

from ..graph.heap import EMPTY
from ..graph.knn_graph import KNNGraph
from ..similarity.engine import SimilarityEngine

__all__ = ["PartialKNN", "solve_cluster", "brute_force_local", "hyrec_local"]

_ROW_BLOCK = 512


class PartialKNN:
    """Partial KNN graph of one cluster, in global user ids.

    ``ids[p]`` / ``scores[p]`` describe the neighbourhood found for
    ``users[p]`` within the cluster (``EMPTY`` marks unused slots).
    """

    def __init__(self, users: np.ndarray, ids: np.ndarray, scores: np.ndarray) -> None:
        self.users = users
        self.ids = ids
        self.scores = scores

    def neighborhood(self, pos: int) -> tuple[np.ndarray, np.ndarray]:
        """Valid ``(ids, scores)`` of the ``pos``-th cluster member."""
        mask = self.ids[pos] != EMPTY
        return self.ids[pos][mask], self.scores[pos][mask]


def brute_force_local(engine: SimilarityEngine, users: np.ndarray, k: int) -> PartialKNN:
    """Exact local KNN: all ``|C|(|C|-1)/2`` pairs within the cluster.

    Row-blocked so memory stays ``O(block * |C|)`` even for the large
    unsplit buckets the LSH baseline produces. The engine is charged
    the analytic pair count once.
    """
    users = np.asarray(users, dtype=np.int64)
    c = users.size
    ids = np.full((c, k), EMPTY, dtype=np.int32)
    scores = np.full((c, k), -np.inf, dtype=np.float64)
    if c < 2:
        return PartialKNN(users, ids, scores)

    engine.charge(c * (c - 1) // 2)
    take = min(k, c - 1)
    for start in range(0, c, _ROW_BLOCK):
        stop = min(start + _ROW_BLOCK, c)
        block = engine.block(users[start:stop], users, counted=False)
        # Exclude self-similarity before the top-k selection.
        rows = np.arange(start, stop)
        block[rows - start, rows] = -np.inf
        top = np.argpartition(-block, take - 1, axis=1)[:, :take]
        rows_local = np.arange(stop - start)[:, None]
        ids[start:stop, :take] = users[top].astype(np.int32)
        scores[start:stop, :take] = block[rows_local, top]
    return PartialKNN(users, ids, scores)


def hyrec_local(
    engine: SimilarityEngine,
    users: np.ndarray,
    k: int,
    delta: float = 0.001,
    max_iterations: int = 30,
    seed: int = 0,
) -> PartialKNN:
    """Hyrec restricted to a cluster (greedy neighbours-of-neighbours).

    Used when a cluster is too large for brute force. Operates on a
    local index space; similarities are evaluated on the global engine.
    """
    users = np.asarray(users, dtype=np.int64)
    c = users.size
    graph = KNNGraph(c, k)
    rng = np.random.default_rng(seed)

    # Random initial k-degree graph within the cluster.
    for lu in range(c):
        take = min(k, c - 1)
        if take <= 0:
            continue
        cands = rng.choice(c - 1, size=take, replace=False)
        cands[cands >= lu] += 1
        sims = engine.one_to_many(int(users[lu]), users[cands])
        graph.add_batch(lu, cands, sims)

    for _ in range(max_iterations):
        updates = 0
        rev_targets: list[np.ndarray] = []
        rev_sources: list[np.ndarray] = []
        rev_scores: list[np.ndarray] = []
        for lu in range(c):
            nbrs = graph.neighbors(lu)
            if nbrs.size == 0:
                continue
            non = graph.heaps.ids[nbrs]
            cands = np.unique(non[non != EMPTY])
            cands = cands[(cands != lu) & ~np.isin(cands, nbrs)]
            if cands.size == 0:
                continue
            sims = engine.one_to_many(int(users[lu]), users[cands])
            updates += graph.add_batch(lu, cands, sims)
            rev_targets.append(cands)
            rev_sources.append(np.full(cands.size, lu, dtype=np.int64))
            rev_scores.append(sims)
        updates += _apply_reverse(graph, rev_targets, rev_sources, rev_scores)
        if updates < delta * k * c:
            break

    ids, scores = graph.to_arrays()
    global_ids = np.where(ids != EMPTY, users[np.clip(ids, 0, None)], EMPTY).astype(np.int32)
    return PartialKNN(users, global_ids, scores)


def _apply_reverse(
    graph: KNNGraph,
    targets: list[np.ndarray],
    sources: list[np.ndarray],
    scores: list[np.ndarray],
) -> int:
    """Apply accumulated symmetric updates, grouped per target user."""
    if not targets:
        return 0
    t = np.concatenate(targets)
    s = np.concatenate(sources)
    sc = np.concatenate(scores)
    order = np.argsort(t, kind="stable")
    t, s, sc = t[order], s[order], sc[order]
    boundaries = np.flatnonzero(np.diff(t)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [t.size]])
    updates = 0
    for lo, hi in zip(starts, ends):
        updates += graph.add_batch(int(t[lo]), s[lo:hi], sc[lo:hi])
    return updates


def solve_cluster(
    engine: SimilarityEngine,
    users: np.ndarray,
    k: int,
    rho: int = 5,
    delta: float = 0.001,
    max_iterations: int = 30,
    seed: int = 0,
) -> PartialKNN:
    """Alg. 2: brute force if ``|C| < ρ k²``, Hyrec otherwise."""
    users = np.asarray(users, dtype=np.int64)
    if users.size < rho * k * k:
        return brute_force_local(engine, users, k)
    return hyrec_local(
        engine, users, k, delta=delta, max_iterations=max_iterations, seed=seed
    )
