"""Cluster-and-Conquer core: hashing, clustering, scheduling, merging."""

from .cluster_and_conquer import cluster_and_conquer
from .clustering import Cluster, ClusteringResult, cluster_dataset, minhash_cluster_dataset
from .config import C2Params, paper_params
from .fastrandomhash import UNDEFINED, FastRandomHash
from .hashing import (
    GenerativeHash,
    MinHashPermutation,
    make_hash_family,
    make_minhash_family,
    splitmix64,
    splitmix64_array,
)
from .local_knn import PartialKNN, brute_force_local, hyrec_local, solve_cluster
from .merge import merge_partials
from .scheduler import makespan_lower_bound, run_clusters
from . import theory

__all__ = [
    "C2Params",
    "Cluster",
    "ClusteringResult",
    "FastRandomHash",
    "GenerativeHash",
    "MinHashPermutation",
    "PartialKNN",
    "UNDEFINED",
    "brute_force_local",
    "cluster_and_conquer",
    "cluster_dataset",
    "hyrec_local",
    "make_hash_family",
    "make_minhash_family",
    "makespan_lower_bound",
    "merge_partials",
    "minhash_cluster_dataset",
    "paper_params",
    "run_clusters",
    "solve_cluster",
    "splitmix64",
    "splitmix64_array",
    "theory",
]
