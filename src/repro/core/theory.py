"""Theoretical properties of FastRandomHash (paper §III).

Theorem 1 brackets the probability that two users share a
FastRandomHash value around their Jaccard similarity, up to a collision
term ``κ/ℓ``; Theorem 2 is a Chernoff-style concentration bound on that
collision density. This module provides the closed-form bounds, exact
per-hash quantities (Eq. 6), and Monte-Carlo estimators used by the
property tests and the `bench_theory_bounds` benchmark.

Note on the paper's numeric example (§III): the text says ``d = 0.5``,
but the quoted numbers (margin 0.078, upper 3·0.078 ≈ 0.234,
probability 0.998) are only consistent with ``d = 1.5`` — with
``d = 0.5`` the probability bound evaluates to ≈ 0.58. We therefore
expose :func:`paper_numeric_example` with ``d = 1.5`` and record the
discrepancy in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .hashing import GenerativeHash

__all__ = [
    "theorem1_lower_bound",
    "theorem1_upper_bound",
    "collision_density_threshold",
    "theorem2_probability_bound",
    "count_collisions",
    "same_hash_probability",
    "empirical_same_hash_probability",
    "paper_numeric_example",
    "NumericExample",
]


def theorem1_lower_bound(jaccard: float, kappa: int, ell: int) -> float:
    """Eq. (4): ``J - κ/ℓ <= P[H(u1) = H(u2)]``."""
    if ell <= 0:
        raise ValueError("ell must be positive")
    return jaccard - kappa / ell


def theorem1_upper_bound(jaccard: float, kappa: int, ell: int) -> float:
    """Eq. (9) upper bound in exact form: ``(J + κ/ℓ) / (1 - κ/ℓ)``.

    Tighter than the expanded ``J + 3κ/ℓ + O((κ/ℓ)²)`` of Eq. (5) and
    valid for every ``κ < ℓ``.
    """
    if not 0 <= kappa < ell:
        raise ValueError("kappa must satisfy 0 <= kappa < ell")
    x = kappa / ell
    return (jaccard + x) / (1 - x)


def collision_density_threshold(ell: int, b: int, d: float) -> float:
    """Theorem 2 threshold: ``κ/ℓ < (1 + d)(ℓ - 1) / (2b)``."""
    if d <= 0:
        raise ValueError("d must be positive")
    return (1 + d) * (ell - 1) / (2 * b)


def theorem2_probability_bound(ell: int, b: int, d: float) -> float:
    """Theorem 2: lower bound on ``P[κ/ℓ < threshold]``.

    ``1 - (e^d / (1+d)^(1+d))^(ℓ(ℓ-1)/(2b))``.
    """
    if d <= 0:
        raise ValueError("d must be positive")
    base = np.exp(d) / (1 + d) ** (1 + d)
    exponent = ell * (ell - 1) / (2 * b)
    return float(1.0 - base**exponent)


def count_collisions(hash_fn: GenerativeHash, profile_union: np.ndarray) -> int:
    """``κ = ℓ - |h(P1 ∪ P2)|``: collisions when projecting the union."""
    ell = int(profile_union.size)
    return ell - int(np.unique(hash_fn(profile_union)).size)


def same_hash_probability(
    hash_fn: GenerativeHash, profile1: np.ndarray, profile2: np.ndarray
) -> float:
    """Eq. (6): exact ``P[H(u1) = H(u2)]`` for one fixed generative hash.

    The probability (over the randomness of *which* hash function is
    drawn, conditioned on this one's collision pattern) equals
    ``|h(P1) ∩ h(P2)| / |h(P1 ∪ P2)|``.
    """
    h1 = np.unique(hash_fn(np.asarray(profile1)))
    h2 = np.unique(hash_fn(np.asarray(profile2)))
    inter = np.intersect1d(h1, h2, assume_unique=True).size
    union = np.union1d(h1, h2).size
    return inter / union if union else 0.0


def empirical_same_hash_probability(
    profile1: np.ndarray,
    profile2: np.ndarray,
    n_items: int,
    n_buckets: int,
    n_trials: int = 1000,
    seed: int = 0,
) -> float:
    """Monte-Carlo ``P[H(u1) = H(u2)]`` over random generative hashes."""
    seeds = np.random.SeedSequence(seed).generate_state(n_trials)
    hits = 0
    p1 = np.asarray(profile1)
    p2 = np.asarray(profile2)
    for s in seeds:
        hash_fn = GenerativeHash(n_items, n_buckets, int(s))
        if int(hash_fn(p1).min()) == int(hash_fn(p2).min()):
            hits += 1
    return hits / n_trials


@dataclass(frozen=True)
class NumericExample:
    """The §III worked example: margins around J and their probability."""

    ell: int
    b: int
    d: float
    lower_margin: float
    upper_margin: float
    probability: float


def paper_numeric_example(ell: int = 256, b: int = 4096, d: float = 1.5) -> NumericExample:
    """Reproduce the paper's numeric example (§III).

    With ``ℓ = 256``, ``b = 4096`` and ``d = 1.5`` (see module note on
    the paper's ``d = 0.5`` typo) this yields
    ``J - 0.078 <= P <= J + 0.234`` with probability ``≈ 0.998``.
    """
    margin = collision_density_threshold(ell, b, d)
    return NumericExample(
        ell=ell,
        b=b,
        d=d,
        lower_margin=margin,
        upper_margin=3 * margin,
        probability=theorem2_probability_bound(ell, b, d),
    )
