"""The delta bus: one seq-stamped mutation stream, many derived views.

:class:`DeltaBus` is the framework half of the declarative pipeline
(:class:`~repro.deltas.DerivedView` is the consumer half). The owning
:class:`~repro.online.OnlineIndex` publishes exactly one
:class:`Delta` per mutation — seq-stamped with the post-mutation
version, so the stream is gapless and strictly monotonic — and the bus
handles everything consumers used to hand-roll: ordered delivery,
per-view seq cursors, lag reporting, and counted resyncs.

Cost model: the bus itself is O(views) pointer work per mutation. The
one genuinely expensive export — annotating journal edges with their
post-mutation scores into a shippable
:class:`~repro.online.ReplicaDelta` — is only performed while at least
one registered view declares ``needs_scored`` (replica shipping, the
WAL, secondary indexes that read profile payloads), exactly the
old ``subscribe_deltas`` economy.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["Delta", "DeltaBus"]


@dataclass(frozen=True)
class Delta:
    """One journal event, self-describing — the unit the bus delivers.

    Attributes:
        seq: index version after the mutation (strictly monotonic; a
            view's cursor advances to this after a successful apply).
        event: ``add_user`` / ``add_items`` / ``remove_user`` /
            ``refill`` / ``resplit`` / ``rebuild``.
        user: the mutated user id (-1 for ``resplit`` / ``rebuild``,
            which change many users at once).
        edges: per-edge structural changes as ``(u, v, added)`` triples
            in application order — empty for ``rebuild``, whose edge
            set is replaced wholesale (views answer with ``resync()``).
        items: profile payload — the full cleaned profile for
            ``add_user``, the genuinely added item ids for
            ``add_items``, ``None`` otherwise.
        n_users: user-slot count after the mutation (views growing
            per-user state read it instead of back-referencing the
            index).
        n_items: item-universe size after the mutation.
        resplit: payload of an online re-split (``None`` otherwise):
            ``{"config", "marks", "members", "unsplittable"}`` — the
            final member lists of every touched cluster, which is what
            route-keyed caches evict by.
        replica: the scored shippable
            :class:`~repro.online.ReplicaDelta`, present only when some
            registered view declared ``needs_scored`` (``None``
            otherwise — the cheap default).
    """

    seq: int
    event: str
    user: int
    edges: list = field(default_factory=list)
    items: object | None = None
    n_users: int = 0
    n_items: int = 0
    resplit: dict | None = None
    replica: object | None = None


class DeltaBus:
    """Owns one index's mutation stream and its registered views.

    Args:
        source: the publishing index — anything with a monotonically
            increasing ``version`` (the bus's :attr:`seq` mirrors it,
            so cursors and lags are always in journal currency).

    Views are delivered in ``(priority, registration order)``: the
    internal reverse-adjacency view runs at priority 0 (front ends may
    read in-edge state from their hooks), ordinary consumers at the
    default 10, and trailing auditors like
    :class:`~repro.deltas.AntiEntropy` at 90 so they observe every
    sibling's post-apply state.
    """

    def __init__(self, source) -> None:
        self._source = source
        self._views: list = []
        self._lock = threading.Lock()
        self.published_total = 0
        self.resyncs_total = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    @property
    def seq(self) -> int:
        """The stream's high-water mark (the source index's version)."""
        return int(self._source.version)

    def register(self, view):
        """Attach ``view`` to the stream; returns the view.

        The view's cursor is initialised to the current :attr:`seq` —
        a freshly registered view is by definition caught up with the
        state it derived from (register under the same lock discipline
        you read that state under; every in-repo consumer registers
        right after deriving from the live index). Returns the view so
        ``engine._view = index.deltas.register(_CacheView(...))`` reads
        naturally.
        """
        with self._lock:
            if view in self._views:
                raise ValueError(f"view {view.name!r} is already registered")
            view._bind(self)
            self._views.append(view)
            self._views.sort(key=lambda v: v.priority)  # stable: ties keep order
        return view

    def unregister(self, view) -> None:
        """Detach ``view`` from the stream.

        Raises:
            ValueError: the view is not registered (matching the old
                ``list.remove`` contract the unsubscribe shims keep).
        """
        with self._lock:
            self._views.remove(view)
            view._bind(None)

    def views(self) -> tuple:
        """The registered views, in delivery order."""
        with self._lock:
            return tuple(self._views)

    def view(self, name: str):
        """The first registered view named ``name`` (or ``None``)."""
        for v in self.views():
            if v.name == name:
                return v
        return None

    @property
    def needs_scored(self) -> bool:
        """Whether any registered view wants the scored replica export."""
        with self._lock:
            return any(v.needs_scored for v in self._views)

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------

    def publish(self, delta: Delta) -> None:
        """Deliver one mutation to every view, in delivery order.

        Called by the owning index inside the mutation (under its write
        lock), so views observe a consistent post-mutation index and
        run strictly in seq order. A view exception propagates into the
        mutation — a consumer that must never break the write path
        (the replica tier) contains its own failures and resyncs
        internally, exactly as before the pipeline.
        """
        self.published_total += 1
        for view in self.views():
            view._deliver(delta)

    def resync(self, view) -> None:
        """Run ``view``'s resync recipe and fast-forward its cursor.

        The bus-level entry point counts the repair (``resyncs_total``
        here and on the view) and stamps the cursor to the current
        :attr:`seq` — after a from-scratch rebuild the view reflects
        everything published so far, by construction.
        """
        view.resync()
        view.seq = self.seq
        view.resyncs_total += 1
        self.resyncs_total += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def lags(self) -> dict:
        """Per-view lag in journal events, keyed by view name."""
        seq = self.seq
        return {v.name: max(0, seq - v.seq) for v in self.views()}

    def stats(self) -> dict:
        """Operational counters for dashboards and tests."""
        views = self.views()
        return {
            "component": "delta_bus",
            "seq": self.seq,
            "views": [v.name for v in views],
            "published_total": self.published_total,
            "resyncs_total": self.resyncs_total,
            "needs_scored": any(v.needs_scored for v in views),
            "lag": max(
                (max(0, self.seq - v.seq) for v in views), default=0
            ),
        }
