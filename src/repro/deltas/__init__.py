"""Declarative delta pipeline: derived collections over the mutation journal.

The paper's C²-graph stays cheap to maintain online because every
mutation describes itself as a journaled delta — and by PR 7 the repo
had six independent consumers of that journal (reverse-adjacency
maintenance, result-cache invalidation in both query engines, replica
shipping, the durable WAL, and the journal metrics view), each with its
own hand-rolled subscribe / replay / seq-cursor / resync logic. This
package unifies them behind one derived-collection abstraction, after
the krt framework's "collections derived from collections via
transformation functions, with the framework owning state and change
propagation":

* :class:`Delta` — one journal event, self-describing: seq, event
  kind, mutated user, per-edge structural changes, profile payload,
  re-split routing payload, and (when some consumer asked for it) the
  scored shippable :class:`~repro.online.ReplicaDelta`.
* :class:`DeltaBus` — owns the stream. The index publishes exactly one
  :class:`Delta` per mutation, seq-stamped monotonically; the bus
  delivers it to every registered view in priority order, keeps each
  view's cursor, reports per-view lag, and counts resyncs.
* :class:`DerivedView` — the contract every consumer half-implemented
  before: ``apply(delta)`` (the transformation function), a persisted
  ``seq`` cursor, a ``resync()`` recipe (rebuild the derived state
  from the source of truth — the answer to any event deltas cannot
  express), and ``snapshot()``/``hydrate()`` hooks for shipping the
  derived state across processes.
* :class:`AntiEntropy` — the first consumer built *on top of* the
  abstraction instead of before it: a view that periodically compares
  replica edge digests against the primary oracle and auto-resyncs any
  replica that silently diverged.

Registration is ``index.deltas.register(view)``; the pre-pipeline
entry points ``OnlineIndex.subscribe`` / ``subscribe_deltas`` survive
as one-release deprecation shims that wrap the callback in a
:class:`CallbackView` / :class:`ReplicaDeltaView`.

See ``docs/architecture.md`` ("The life of a delta") for the end-to-end
walkthrough and ``examples/derived_views.py`` for building a custom
view (a toy item→users secondary index).
"""

from __future__ import annotations

from .antientropy import AntiEntropy
from .bus import Delta, DeltaBus
from .view import CallbackView, DerivedView, ReplicaDeltaView

__all__ = [
    "AntiEntropy",
    "CallbackView",
    "Delta",
    "DeltaBus",
    "DerivedView",
    "ReplicaDeltaView",
]
