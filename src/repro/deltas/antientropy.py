"""Anti-entropy: a trailing auditor view that detects and repairs drift.

Delta shipping keeps replicas convergent *if nothing is lost* — the
seq guard in :meth:`~repro.online.OnlineIndex.apply_delta` catches
gaps, but a replica corrupted in place (a bad pickle round-trip, a
bit-flipped snapshot, an operator poking at worker state) holds the
*right version* with the *wrong edges*, which no seq check can see.
PR 5 left this as a follow-up; the delta pipeline makes it a
15-minute consumer: :class:`AntiEntropy` is a :class:`DerivedView`
that rides the same bus as the shipping it audits, periodically
compares every replica's :func:`~repro.graph.heap.edge_digest`
against the primary oracle, and resyncs any replica whose digest
diverged at a matching version.

It runs at priority 90 — after every sibling view has applied the
same delta — so in thread mode a check observes fully-shipped
replicas and a clean run really means convergence.
"""

from __future__ import annotations

from .view import DerivedView

__all__ = ["AntiEntropy"]


class AntiEntropy(DerivedView):
    """Audit replica edge digests against the primary; resync on drift.

    Args:
        index: the primary :class:`~repro.online.OnlineIndex` (the
            oracle — its live heap table is digested at check time).
        replicas: the audited :class:`~repro.serve.ReplicaSet` (any
            object with ``replica_states() -> list[(version, digest)]``
            and ``resync_replica(i)``).
        every: run a check each ``every`` published deltas (default 64;
            ``check()`` can also be called directly, e.g. from a cron).

    A replica is *diverged* when it reports the primary's version with
    a different digest — same journal prefix, different edges, which
    incremental shipping can never repair. A replica still catching up
    (older version) is merely *lagging* and is left to the transport.
    Divergence triggers ``replicas.resync_replica(i)`` and is counted;
    ``stats()`` feeds the serving dashboards.
    """

    name = "anti_entropy"
    priority = 90

    def __init__(self, index, replicas, every: int = 64) -> None:
        super().__init__()
        if every < 1:
            raise ValueError("every must be >= 1")
        self._index = index
        self._replicas = replicas
        self.every = int(every)
        self._since_check = 0
        self.checks_total = 0
        self.divergences_total = 0
        self.repairs_total = 0

    def apply(self, delta) -> None:
        """Count down to the next audit; run it every ``every`` deltas."""
        self._since_check += 1
        if self._since_check >= self.every:
            self.check()

    def check(self) -> int:
        """Audit every replica now; returns how many were repaired.

        Digests the primary's heap table (safe from inside ``apply``:
        the index's write lock is reentrant for its holder, and reads
        outside the bus take no lock the digest needs), asks the
        replica tier for its ``(version, digest)`` pairs, and resyncs
        every replica whose version matches but digest does not.
        """
        self._since_check = 0
        self.checks_total += 1
        from ..graph.heap import edge_digest

        want = (int(self._index.version), edge_digest(self._index.graph.heaps))
        repaired = 0
        for i, got in enumerate(self._replicas.replica_states()):
            if got[0] == want[0] and got[1] != want[1]:
                self.divergences_total += 1
                self._replicas.resync_replica(i)
                repaired += 1
                self.repairs_total += 1
        return repaired

    def resync(self) -> None:
        """The auditor's own resync recipe is simply a full check."""
        self.check()

    def stats(self) -> dict:
        """Operational counters for dashboards and tests."""
        return {
            "component": "anti_entropy",
            "seq": self.seq,
            "every": self.every,
            "checks_total": self.checks_total,
            "divergences_total": self.divergences_total,
            "repairs_total": self.repairs_total,
        }
