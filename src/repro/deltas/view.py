"""DerivedView — the consumer contract of the declarative pipeline.

A derived view is a collection maintained *from* the mutation journal
rather than recomputed from the index: the reverse-adjacency in-edge
sets, a result cache's validity, a replica's entire state, the WAL's
on-disk suffix, a metrics rollup, a secondary index. Before this
package each of those re-implemented the same four-part shape by hand;
:class:`DerivedView` names the shape once:

* ``apply(delta)`` — the transformation function: fold one journal
  event into the derived state. O(|delta|), runs inside the mutation.
* ``seq`` — the persisted cursor: the last journal seq reflected in
  the derived state. The bus advances it after every successful apply;
  ``lag`` is the distance to the stream's high-water mark.
* ``resync()`` — the recipe for rebuilding the derived state from the
  source of truth. This is the answer to everything deltas cannot
  express: a ``rebuild`` event, a detected divergence, a gap after
  detachment. :class:`~repro.obs.JournalMetrics` was the first
  consumer written explicitly in this shape and is the template.
* ``snapshot()`` / ``hydrate()`` — optional hooks for shipping the
  derived state across processes (a view whose resync is expensive can
  be checkpointed and restored instead of rebuilt).

The two ``Callback*`` views wrap the pre-pipeline ``subscribe`` /
``subscribe_deltas`` callbacks so the deprecated entry points keep
working for one release.
"""

from __future__ import annotations

__all__ = ["CallbackView", "DerivedView", "ReplicaDeltaView"]


class DerivedView:
    """Base class for one derived collection over the delta stream.

    Args:
        name: view name for lag reporting and dashboards (defaults to
            the class-level :attr:`name`, then the class name).

    Class attributes subclasses tune:

    * ``needs_scored`` — declare ``True`` to receive the scored
      shippable :class:`~repro.online.ReplicaDelta` (profile payloads,
      routing changes, edge scores) on ``delta.replica``. Export work
      is only spent while some registered view asks for it.
    * ``priority`` — delivery order (lower runs earlier; default 10).
      Reserved bands: 0 for state other views may read back out of the
      index (reverse adjacency), 90 for trailing auditors
      (:class:`~repro.deltas.AntiEntropy`).
    """

    name: str = ""
    needs_scored: bool = False
    priority: int = 10

    def __init__(self, name: str | None = None) -> None:
        if name is not None:
            self.name = str(name)
        elif not self.name:
            self.name = type(self).__name__
        self.seq = -1
        self.applied_total = 0
        self.resyncs_total = 0
        self._bus = None

    # ------------------------------------------------------------------
    # The contract
    # ------------------------------------------------------------------

    def apply(self, delta) -> None:
        """Fold one journal event into the derived state (transform)."""
        raise NotImplementedError

    def resync(self) -> None:
        """Rebuild the derived state from the source of truth.

        Called (via :meth:`DeltaBus.resync`, which also fast-forwards
        the cursor and counts the repair) whenever the incremental path
        cannot express what happened — a ``rebuild``, a divergence, a
        missed gap. Subclasses with derived state must implement it;
        the default raises so a consumer cannot silently skip the
        recipe.
        """
        raise NotImplementedError

    def snapshot(self):
        """Opaque picklable snapshot of the derived state (or ``None``).

        Optional hook: a view whose :meth:`resync` is expensive can be
        checkpointed with ``(view.snapshot(), view.seq)`` and restored
        elsewhere with :meth:`hydrate` — the same economics as the
        index's own snapshot + WAL-tail recovery.
        """
        return None

    def hydrate(self, state, seq: int) -> None:
        """Restore the derived state from a :meth:`snapshot` payload.

        Sets the cursor to ``seq`` (the seq the snapshot was taken at);
        the next deltas applied bring the view forward incrementally.
        The default only restores the cursor — subclasses that
        implement :meth:`snapshot` override the state half.
        """
        self.seq = int(seq)

    # ------------------------------------------------------------------
    # Cursor plumbing (bus side)
    # ------------------------------------------------------------------

    @property
    def lag(self) -> int:
        """Journal events published but not yet reflected in this view."""
        if self._bus is None:
            return 0
        return max(0, self._bus.seq - self.seq)

    def close(self) -> None:
        """Detach from the bus (idempotent)."""
        if self._bus is not None:
            self._bus.unregister(self)

    def _bind(self, bus) -> None:
        """Bus-side registration hook: adopt the stream's cursor."""
        self._bus = bus
        if bus is not None:
            self.seq = bus.seq

    def _deliver(self, delta) -> None:
        """Apply one delta and advance the cursor (bus side)."""
        self.apply(delta)
        self.seq = delta.seq
        self.applied_total += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r} seq={self.seq}>"


class CallbackView(DerivedView):
    """Deprecation shim: a pre-pipeline ``subscribe`` callback as a view.

    Wraps ``callback(event, user, deltas)`` — the 3-arg edge-triple
    channel result caches and the journal metrics used to attach
    through. Kept for one release behind the ``OnlineIndex.subscribe``
    shim; new code registers a real :class:`DerivedView`.
    """

    name = "legacy_callback"

    def __init__(self, callback) -> None:
        super().__init__()
        self.callback = callback

    def apply(self, delta) -> None:
        """Replay the delta on the legacy 3-arg callback."""
        self.callback(delta.event, delta.user, delta.edges)

    def resync(self) -> None:
        """No-op: the legacy channel never had a resync contract."""


class ReplicaDeltaView(DerivedView):
    """Deprecation shim: a ``subscribe_deltas`` callback as a view.

    Wraps ``callback(delta: ReplicaDelta)`` — the scored shippable
    channel replicas and the WAL used to attach through. Declares
    ``needs_scored`` so the bus keeps exporting the annotated form.
    """

    name = "legacy_delta_callback"
    needs_scored = True

    def __init__(self, callback) -> None:
        super().__init__()
        self.callback = callback

    def apply(self, delta) -> None:
        """Forward the scored export to the legacy callback."""
        if delta.replica is not None:
            self.callback(delta.replica)

    def resync(self) -> None:
        """No-op: the legacy channel never had a resync contract."""
