"""User-based collaborative filtering on top of a KNN graph (§V-B).

The paper's "simple collaborative filtering procedure": an item unseen
by ``u`` is scored by the summed similarity of the neighbours whose
profiles contain it; the top ``r`` items are recommended. This is the
end-to-end application used to show that approximate KNN graphs are
"good enough" (Table III).
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Dataset
from ..graph.knn_graph import KNNGraph

__all__ = ["recommend_from_neighbors", "recommend_items", "recommend_all"]


def recommend_from_neighbors(
    dataset: Dataset,
    profile: np.ndarray,
    neighbor_ids: np.ndarray,
    neighbor_scores: np.ndarray,
    n_recommendations: int = 30,
) -> np.ndarray:
    """Top items for a profile, scored by neighbour-similarity sums.

    The scoring core shared by the graph-based path
    (:func:`recommend_items`) and the query-serving path, where the
    neighbours come from a :class:`~repro.serve.GraphSearcher` answer
    for a profile that need not belong to any indexed user. Items
    already in the profile are excluded; items with zero score are
    never recommended.
    """
    profile = np.asarray(profile, dtype=np.int64)
    scores = np.zeros(dataset.n_items, dtype=np.float64)
    for v, s in zip(neighbor_ids, neighbor_scores):
        if s > 0:
            scores[dataset.profile(int(v))] += s
    scores[profile[profile < dataset.n_items]] = 0.0
    candidates = np.flatnonzero(scores > 0)
    if candidates.size == 0:
        return np.empty(0, dtype=np.int64)
    take = min(n_recommendations, candidates.size)
    top = candidates[np.argpartition(-scores[candidates], take - 1)[:take]]
    return top[np.argsort(-scores[top], kind="stable")]


def recommend_items(
    dataset: Dataset,
    graph: KNNGraph,
    user: int,
    n_recommendations: int = 30,
) -> np.ndarray:
    """Top items for an indexed ``user``, from their graph neighbours."""
    nbrs, sims = graph.neighborhood(user)
    return recommend_from_neighbors(
        dataset, dataset.profile(user), nbrs, sims, n_recommendations
    )


def recommend_all(
    dataset: Dataset,
    graph: KNNGraph,
    n_recommendations: int = 30,
) -> list[np.ndarray]:
    """Recommendations for every user (list indexed by user id)."""
    return [
        recommend_items(dataset, graph, u, n_recommendations)
        for u in range(dataset.n_users)
    ]
