"""Recommendation-quality evaluation with cross-validation (Table III).

For each fold, a KNN graph is built on the training profiles, 30 items
are recommended to every user, and recall is measured against the
held-out items: ``|recommended ∩ hidden| / |hidden|``, averaged over
users with a non-empty test set, then over the 5 folds — the paper's
protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..data.cv import k_fold_split
from ..data.dataset import Dataset
from ..graph.knn_graph import KNNGraph
from .cf import recommend_items

__all__ = ["RecallResult", "recall_at", "evaluate_recall"]

# A graph builder takes the fold's training dataset and returns a graph.
GraphBuilder = Callable[[Dataset], KNNGraph]


@dataclass(frozen=True)
class RecallResult:
    """Cross-validated recommendation recall."""

    mean_recall: float
    fold_recalls: tuple[float, ...]
    n_folds: int


def recall_at(
    train: Dataset,
    graph: KNNGraph,
    test_indptr: np.ndarray,
    test_indices: np.ndarray,
    n_recommendations: int = 30,
) -> float:
    """Mean per-user recall of top-``n`` recommendations on one fold."""
    recalls = []
    for u in range(train.n_users):
        hidden = test_indices[test_indptr[u] : test_indptr[u + 1]]
        if hidden.size == 0:
            continue
        recommended = recommend_items(train, graph, u, n_recommendations)
        hits = np.intersect1d(recommended, hidden, assume_unique=True).size
        recalls.append(hits / hidden.size)
    return float(np.mean(recalls)) if recalls else 0.0


def evaluate_recall(
    dataset: Dataset,
    builder: GraphBuilder,
    n_folds: int = 5,
    n_recommendations: int = 30,
    seed: int = 0,
) -> RecallResult:
    """Cross-validated recall of recommendations from ``builder``'s graphs."""
    folds = k_fold_split(dataset, n_folds=n_folds, seed=seed)
    fold_recalls = []
    for fold in folds:
        graph = builder(fold.train)
        fold_recalls.append(
            recall_at(
                fold.train,
                graph,
                fold.test_indptr,
                fold.test_indices,
                n_recommendations,
            )
        )
    return RecallResult(
        mean_recall=float(np.mean(fold_recalls)),
        fold_recalls=tuple(fold_recalls),
        n_folds=n_folds,
    )
