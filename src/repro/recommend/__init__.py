"""Recommendation application: user-based CF + recall evaluation."""

from .cf import recommend_all, recommend_from_neighbors, recommend_items
from .evaluation import RecallResult, evaluate_recall, recall_at

__all__ = [
    "RecallResult",
    "evaluate_recall",
    "recall_at",
    "recommend_all",
    "recommend_from_neighbors",
    "recommend_items",
]
