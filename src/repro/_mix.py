"""Low-level integer mixing primitives (no intra-package dependencies).

Kept dependency-free so both the similarity substrate (GoldFinger) and
the core hashing module can use them without import cycles.
"""

from __future__ import annotations

import numpy as np

__all__ = ["splitmix64_array", "splitmix64"]

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def splitmix64_array(values: np.ndarray, seed: int) -> np.ndarray:
    """Vectorised splitmix64 finaliser over a uint64 array.

    Deterministic in ``(values, seed)``; output is uniformly
    distributed over the full uint64 range for distinct inputs.
    """
    with np.errstate(over="ignore"):
        z = values.astype(np.uint64) + np.uint64(seed) * _GOLDEN + _GOLDEN
        z = (z ^ (z >> np.uint64(30))) * _MIX1
        z = (z ^ (z >> np.uint64(27))) * _MIX2
        return z ^ (z >> np.uint64(31))


def splitmix64(value: int, seed: int) -> int:
    """Scalar convenience wrapper around :func:`splitmix64_array`."""
    return int(splitmix64_array(np.asarray([value], dtype=np.uint64), seed)[0])
