"""Sharded query serving — one front end, N searcher workers.

A single :class:`~repro.serve.engine.QueryEngine` walks queries one at
a time; a CPU-bound serving tier wants the deduped misses of each
batch spread across workers. :class:`ShardedQueryEngine` keeps the
front-end duties in one place — canonicalisation, the shared LRU
result cache with partial invalidation, batch dedup — and partitions
the remaining misses by a stable hash of the canonical profile across
``n_shards`` workers:

* ``executor="thread"`` (default): one :class:`GraphSearcher` per
  shard on a shared :class:`~concurrent.futures.ThreadPoolExecutor`.
  The similarity kernels spend their time in numpy/scipy calls that
  release the GIL, and walks take the index's readers-writer lock, so
  queries overlap each other and only serialise against mutations —
  this is the mode that stays correct under write storms.
* ``executor="process"``: workers hold a pickled **snapshot** of the
  index and answer from it with zero shared state. A mutation marks
  the pool stale and the next batch re-forks it from the live index —
  cheap for read-mostly tiers, wasteful under write storms (use
  threads there). Results are identical to thread mode because the
  searcher is deterministic in the index state.

Sharding never changes answers: the same deterministic searcher
configuration runs in every worker, so a sharded batch returns exactly
what a single-worker engine would (property-tested).
"""

from __future__ import annotations

import pickle
import threading
import zlib
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np

from ..online.index import OnlineIndex
from .engine import _ResultCache
from .searcher import GraphSearcher, SearchResult

__all__ = ["ShardedQueryEngine"]


# Process-mode worker state: each worker process builds one searcher
# from the snapshot shipped at pool (re)creation and serves from it.
_WORKER: dict = {}


def _proc_init(payload: bytes, searcher_kwargs: dict) -> None:
    index = pickle.loads(payload)
    _WORKER["searcher"] = GraphSearcher(index, **searcher_kwargs)


def _proc_search(profiles: list, k: int) -> list[SearchResult]:
    searcher = _WORKER["searcher"]
    return [searcher.top_k(p, k=k) for p in profiles]


class ShardedQueryEngine:
    """Batch query serving partitioned across ``n_shards`` workers.

    Args:
        index: the maintained index to serve from.
        n_shards: worker count; deduped batch misses are partitioned
            by a stable hash of the canonical profile.
        k: default neighbours per query.
        cache_size: shared front-end LRU size (0 disables caching).
        invalidation: cache mode, ``"partial"`` (default) or
            ``"full"`` — same contracts as :class:`QueryEngine`.
        executor: ``"thread"`` (default; safe under concurrent
            mutations) or ``"process"`` (snapshot workers, re-forked
            after mutations — read-mostly tiers).
        searcher_kwargs: forwarded to each shard's
            :class:`GraphSearcher` (``ef``, ``budget``, ``rerank``, …).
    """

    def __init__(
        self,
        index: OnlineIndex,
        n_shards: int = 2,
        *,
        k: int = 10,
        cache_size: int = 1024,
        invalidation: str = "partial",
        executor: str = "thread",
        searcher_kwargs: dict | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if executor not in ("thread", "process"):
            raise ValueError("executor must be 'thread' or 'process'")
        self.index = index
        self.n_shards = int(n_shards)
        self.default_k = int(k)
        self.executor = executor
        self.searcher_kwargs = dict(searcher_kwargs or {})
        self._cache = _ResultCache(cache_size, mode=invalidation)
        self._stats_lock = threading.Lock()
        self.n_queries = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.dedup_hits = 0
        self._pool_lock = threading.Lock()
        self._stale = True  # process pool not yet forked
        if executor == "thread":
            self._searchers = [
                GraphSearcher(index, **self.searcher_kwargs)
                for _ in range(self.n_shards)
            ]
            # Rebuild-mode searchers mutate private CSR state; a
            # per-shard lock keeps a shard reentrant when two batches
            # land on it concurrently.
            self._shard_locks = [threading.Lock() for _ in range(self.n_shards)]
            self._pool = ThreadPoolExecutor(
                max_workers=self.n_shards, thread_name_prefix="repro-shard"
            )
        else:
            self._searchers = []
            self._shard_locks = []
            self._pool = None
        index.subscribe(self._on_mutation)

    # ------------------------------------------------------------------

    def _on_mutation(self, event: str, user: int, deltas) -> None:
        self._cache.on_mutation(event, user)
        if self.executor == "process":
            self._stale = True  # workers hold a pre-mutation snapshot

    def _shard_of(self, key: tuple) -> int:
        """Stable profile→shard assignment (independent of batch order)."""
        return zlib.crc32(key[0]) % self.n_shards

    def _run_shard(self, shard: int, items: list, k: int) -> list:
        searcher = self._searchers[shard]
        out = []
        with self._shard_locks[shard]:
            for key, profile in items:
                out.append((key, searcher.top_k(profile, k=k)))
        return out

    def _ensure_process_pool(self) -> ProcessPoolExecutor:
        """(Re)fork the worker pool if stale; caller holds ``_pool_lock``.

        The stale flag is cleared *before* the snapshot is taken: a
        mutation landing mid-pickle re-raises it (one redundant re-fork,
        never a lost one), and the snapshot itself is read under the
        index lock so a concurrent mutation cannot tear it.
        """
        if self._pool is None or self._stale:
            if self._pool is not None:
                self._pool.shutdown()
            self._stale = False
            with self.index.lock.read():
                payload = pickle.dumps(self.index)
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_shards,
                initializer=_proc_init,
                initargs=(payload, self.searcher_kwargs),
            )
        return self._pool

    # ------------------------------------------------------------------

    def search(self, profile, k: int | None = None) -> SearchResult:
        """Top-k neighbours of one profile (cached)."""
        return self.search_many([profile], k=k)[0]

    def search_many(self, profiles, k: int | None = None) -> list[SearchResult]:
        """Serve a batch: cache, dedup, then fan the misses out.

        Thread-safe — the concurrency tests hammer one engine from
        many threads while mutations stream in; the shared cache and
        counters take their own locks and every walk runs under the
        index's read lock.
        """
        k = int(k if k is not None else self.default_k)
        results: list[SearchResult | None] = [None] * len(profiles)
        canon: list[np.ndarray] = []
        misses: OrderedDict[tuple, list[int]] = OrderedDict()
        hits = 0
        for pos, profile in enumerate(profiles):
            ids = np.unique(np.asarray(profile, dtype=np.int64))
            canon.append(ids)
            key = (ids.tobytes(), k)
            hit = self._cache.get(key, self.index.version)
            if hit is not None:
                hits += 1
                results[pos] = hit
            else:
                misses.setdefault(key, []).append(pos)

        answered: dict[tuple, SearchResult] = {}
        if misses:
            version = self.index.version
            shards: dict[int, list[tuple[tuple, np.ndarray]]] = {}
            for key, positions in misses.items():
                shards.setdefault(self._shard_of(key), []).append(
                    (key, canon[positions[0]])
                )
            if self.executor == "thread":
                futures = [
                    self._pool.submit(self._run_shard, shard, items, k)
                    for shard, items in shards.items()
                ]
            else:
                # Submit under the pool lock: another thread's re-fork
                # (or close()) must not shut this pool down between the
                # staleness check and the submits.
                with self._pool_lock:
                    pool = self._ensure_process_pool()
                    futures = [
                        pool.submit(_proc_search, [p for _, p in items], k)
                        for items in shards.values()
                    ]
            if self.executor == "thread":
                for future in futures:
                    for key, result in future.result():
                        answered[key] = result
            else:
                for future, items in zip(futures, shards.values()):
                    for (key, _), result in zip(items, future.result()):
                        answered[key] = result
            for key, result in answered.items():
                self._cache.put(
                    key, version, result, live_version=lambda: self.index.version
                )
            for key, positions in misses.items():
                for pos in positions:
                    results[pos] = answered[key]

        with self._stats_lock:
            self.n_queries += len(profiles)
            self.cache_hits += hits
            self.cache_misses += len(misses)
            self.dedup_hits += sum(len(p) - 1 for p in misses.values())
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Detach from the index and shut the worker pool down.

        As with :meth:`QueryEngine.close`, a closed partial-mode cache
        is cleared — nothing would ever evict mutated answers from it.
        """
        self.index.unsubscribe(self._on_mutation)
        if self._cache.mode == "partial":
            self._cache.clear()
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown()
                self._pool = None

    def stats(self) -> dict:
        """Operational counters for dashboards and tests."""
        with self._stats_lock:
            return {
                "n_queries": self.n_queries,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "dedup_hits": self.dedup_hits,
                "invalidations": self._cache.invalidations,
                "invalidation_mode": self._cache.mode,
                "cached_entries": len(self._cache),
                "n_shards": self.n_shards,
                "executor": self.executor,
                "index_version": self.index.version,
            }
