"""Sharded query serving — one front end, N searcher workers.

A single :class:`~repro.serve.engine.QueryEngine` walks queries one at
a time; a CPU-bound serving tier wants the deduped misses of each
batch spread across workers. :class:`ShardedQueryEngine` keeps the
front-end duties in one place — canonicalisation, the shared LRU
result cache with partial invalidation, batch dedup — and partitions
the remaining misses by a stable hash of the canonical profile across
``n_shards`` workers:

* ``executor="thread"`` (default): one :class:`GraphSearcher` per
  shard on a shared :class:`~concurrent.futures.ThreadPoolExecutor`.
  The similarity kernels spend their time in numpy/scipy calls that
  release the GIL, and walks take the index's readers-writer lock, so
  queries overlap each other and only serialise against mutations —
  this is the mode that stays correct under write storms.
* ``executor="process"``: workers hold a pickled **snapshot** of the
  index and answer from it with zero shared state. A mutation marks
  the pool stale and the next batch re-forks it from the live index —
  cheap for read-mostly tiers, wasteful under write storms (use
  threads there). Results are identical to thread mode because the
  searcher is deterministic in the index state.

``replicas=True`` upgrades either executor to the **replica tier**
(:class:`~repro.serve.replica.ReplicaSet`): every shard owns a full
clone of the index — its own graph, reverse adjacency, router and
fingerprints — and converges after each primary mutation by applying
the shipped journal deltas instead of re-reading (threads) or
re-forking (processes) shared state. Walks then touch no primary lock
at all, and batch misses are routed across the replicas by a
configurable policy: ``"round_robin"`` (default — any replica can
serve any query, so spread them evenly), ``"least_loaded"`` (route to
the replica with the fewest in-flight misses) or ``"hash"`` (the
stable profile-hash partition the shared-state modes use).

Sharding never changes answers: the same deterministic searcher
configuration runs in every worker against converged state, so a
sharded batch returns exactly what a single-worker engine would
(property-tested).
"""

from __future__ import annotations

import pickle
import threading
import zlib
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from time import perf_counter

import numpy as np

from .. import obs
from ..online.index import OnlineIndex
from .engine import (
    AsyncSearchMixin,
    _CacheView,
    _ResultCache,
    _resplit_clusters,
    _signup_contacts,
)
from .replica import ReplicaSet
from .searcher import GraphSearcher, SearchResult

__all__ = ["ShardedQueryEngine"]


# Process-mode worker state: each worker process builds one searcher
# from the snapshot shipped at pool (re)creation and serves from it.
_WORKER: dict = {}


def _proc_init(payload: bytes, searcher_kwargs: dict) -> None:
    index = pickle.loads(payload)
    _WORKER["searcher"] = GraphSearcher(index, **searcher_kwargs)


def _proc_search(profiles: list, k: int) -> list[SearchResult]:
    searcher = _WORKER["searcher"]
    return [searcher.top_k(p, k=k) for p in profiles]


class ShardedQueryEngine(AsyncSearchMixin):
    """Batch query serving partitioned across ``n_shards`` workers.

    Args:
        index: the maintained index to serve from (the primary, when
            replicas are on — mutations always apply there, once).
        n_shards: worker (or replica) count; deduped batch misses are
            spread across them.
        k: default neighbours per query.
        cache_size: shared front-end LRU size (0 disables caching).
        invalidation: cache mode, ``"partial"`` (default) or
            ``"full"`` — same contracts as :class:`QueryEngine`.
        executor: ``"thread"`` (default; safe under concurrent
            mutations) or ``"process"`` (snapshot workers, re-forked
            after mutations — read-mostly tiers; with ``replicas=True``
            the re-forking is replaced by delta shipping).
        replicas: give every shard its own replica index converging by
            shipped journal deltas (see module docstring) instead of
            sharing the primary's state.
        routing: miss-routing policy across replicas —
            ``"round_robin"`` (default with replicas),
            ``"least_loaded"`` or ``"hash"``. Shared-state shards
            (``replicas=False``) always hash-partition.
        searcher_kwargs: forwarded to each shard's
            :class:`GraphSearcher` (``ef``, ``budget``, ``rerank``, …).
        hydrate: forwarded to :class:`ReplicaSet` — bootstrap the
            initial replicas from persisted state (e.g.
            :meth:`repro.persist.DurableIndex.hydrate`) instead of
            cloning the live primary. Requires ``replicas=True``.
        registry: :class:`~repro.obs.MetricsRegistry` for the cache
            and batch metrics, labelled ``frontend="sharded"``
            (default: the process-wide registry).
        tracer: :class:`~repro.obs.Tracer` forwarded to the per-shard
            searchers (worker threads record their own ``search``
            root spans).
    """

    def __init__(
        self,
        index: OnlineIndex,
        n_shards: int = 2,
        *,
        k: int = 10,
        cache_size: int = 1024,
        invalidation: str = "partial",
        executor: str = "thread",
        replicas: bool = False,
        routing: str | None = None,
        searcher_kwargs: dict | None = None,
        hydrate=None,
        registry=None,
        tracer=None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if executor not in ("thread", "process"):
            raise ValueError("executor must be 'thread' or 'process'")
        if routing is None:
            routing = "round_robin" if replicas else "hash"
        if routing not in ("hash", "round_robin", "least_loaded"):
            raise ValueError(
                "routing must be 'hash', 'round_robin' or 'least_loaded'"
            )
        if not replicas and routing != "hash":
            raise ValueError(
                "routing policies require replicas=True "
                "(shared-state shards are hash-partitioned)"
            )
        if hydrate is not None and not replicas:
            raise ValueError("hydrate requires replicas=True")
        self.index = index
        self.n_shards = int(n_shards)
        self.default_k = int(k)
        self.executor = executor
        self.replicas = bool(replicas)
        self.routing = routing
        self.searcher_kwargs = dict(searcher_kwargs or {})
        reg = registry if registry is not None else obs.metrics()
        self.tracer = tracer if tracer is not None else obs.tracer()
        self._cache = _ResultCache(
            cache_size, mode=invalidation, registry=reg, frontend="sharded"
        )
        self._stats_lock = threading.Lock()
        self.n_queries = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.dedup_hits = 0
        self._c_hits = reg.counter("cache_hits_total", frontend="sharded")
        self._c_misses = reg.counter("cache_misses_total", frontend="sharded")
        self._c_dedup = reg.counter("cache_dedup_total", frontend="sharded")
        self._h_batch = reg.histogram("serve_batch_seconds", frontend="sharded")
        # Per-shard series: one aggregated frontend="sharded" line
        # cannot show a hot or straggling shard, so misses and batch
        # time are also recorded under a shard label.
        self._c_shard_misses = [
            reg.counter("shard_misses_total", frontend="sharded", shard=str(i))
            for i in range(self.n_shards)
        ]
        self._h_shard_batch = [
            reg.histogram("shard_batch_seconds", frontend="sharded", shard=str(i))
            for i in range(self.n_shards)
        ]
        self._pool_lock = threading.Lock()
        self._stale = True  # process pool not yet forked
        self.reforks = 0  # legacy process-snapshot pool re-creations
        self._init_async()
        self._replica_set: ReplicaSet | None = None
        self._route_lock = threading.Lock()
        self._rr = 0  # round-robin cursor
        self._inflight = [0] * self.n_shards  # least-loaded accounting
        if self.replicas:
            self._replica_set = ReplicaSet(
                index,
                self.n_shards,
                mode=executor,
                searcher_kwargs=self.searcher_kwargs,
                hydrate=hydrate,
                registry=reg,
            )
            self._searchers = []
            self._shard_locks = []
            # Dispatch pool: thread replicas walk on these workers;
            # process replicas use them to overlap waiting on the N
            # pinned worker pools.
            self._pool = ThreadPoolExecutor(
                max_workers=self.n_shards, thread_name_prefix="repro-replica"
            )
        elif executor == "thread":
            self._searchers = [
                GraphSearcher(
                    index, registry=registry, tracer=tracer, **self.searcher_kwargs
                )
                for _ in range(self.n_shards)
            ]
            # Rebuild-mode searchers mutate private CSR state; a
            # per-shard lock keeps a shard reentrant when two batches
            # land on it concurrently.
            self._shard_locks = [threading.Lock() for _ in range(self.n_shards)]
            self._pool = ThreadPoolExecutor(
                max_workers=self.n_shards, thread_name_prefix="repro-shard"
            )
        else:
            self._searchers = []
            self._shard_locks = []
            self._pool = None
        self._view = index.deltas.register(_CacheView(self, "sharded_cache"))

    # ------------------------------------------------------------------

    @property
    def replica_set(self) -> ReplicaSet | None:
        """The backing :class:`ReplicaSet` (``None`` without replicas)."""
        return self._replica_set

    def _on_delta(self, delta) -> None:
        self._cache.on_mutation(
            delta.event,
            delta.user,
            touched=_signup_contacts(delta.event, delta.edges),
            clusters=_resplit_clusters(delta),
        )
        if self.executor == "process" and not self.replicas:
            self._stale = True  # workers hold a pre-mutation snapshot

    def _shard_of(self, key: tuple) -> int:
        """Stable profile→shard assignment (independent of batch order)."""
        return zlib.crc32(key[0]) % self.n_shards

    def _route_miss(self, key: tuple) -> int:
        """Pick the shard for one deduped miss; caller holds ``_route_lock``.

        Replicas converge to identical state, so any of them may serve
        any query — the policy only shapes load. Hash keeps the stable
        assignment (and is the only sound choice for shared-state
        shards); round-robin spreads a batch evenly; least-loaded
        routes around stragglers using in-flight miss counts.
        """
        if self.routing == "round_robin":
            shard = self._rr % self.n_shards
            self._rr += 1
            return shard
        if self.routing == "least_loaded":
            return min(range(self.n_shards), key=lambda i: self._inflight[i])
        return self._shard_of(key)

    def _run_shard(self, shard: int, items: list, k: int) -> list:
        t0 = perf_counter()
        searcher = self._searchers[shard]
        out = []
        with self._shard_locks[shard]:
            for key, profile in items:
                out.append((key, searcher.top_k(profile, k=k)))
        self._c_shard_misses[shard].inc(len(items))
        self._h_shard_batch[shard].observe(perf_counter() - t0)
        return out

    def _run_replica(self, shard: int, items: list, k: int) -> list:
        t0 = perf_counter()
        try:
            results = self._replica_set.search(
                shard, [profile for _, profile in items], k
            )
            self._c_shard_misses[shard].inc(len(items))
            self._h_shard_batch[shard].observe(perf_counter() - t0)
            return [(key, result) for (key, _), result in zip(items, results)]
        finally:
            if self.routing == "least_loaded":
                with self._route_lock:
                    self._inflight[shard] -= len(items)

    def _ensure_process_pool(self) -> ProcessPoolExecutor:
        """(Re)fork the worker pool if stale; caller holds ``_pool_lock``.

        The stale flag is cleared *before* the snapshot is taken: a
        mutation landing mid-pickle re-raises it (one redundant re-fork,
        never a lost one), and the snapshot itself is read under the
        index lock so a concurrent mutation cannot tear it.
        """
        if self._pool is None or self._stale:
            if self._pool is not None:
                self._pool.shutdown()
            self._stale = False
            self.reforks += 1
            payload = self.index.snapshot_bytes()
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_shards,
                initializer=_proc_init,
                initargs=(payload, self.searcher_kwargs),
            )
        return self._pool

    # ------------------------------------------------------------------

    def search(self, profile, k: int | None = None) -> SearchResult:
        """Top-k neighbours of one profile (cached)."""
        return self.search_many([profile], k=k)[0]

    def search_many(self, profiles, k: int | None = None) -> list[SearchResult]:
        """Serve a batch: cache, dedup, then fan the misses out.

        Thread-safe — the concurrency tests hammer one engine from
        many threads while mutations stream in; the shared cache and
        counters take their own locks and every walk runs under the
        index's read lock.
        """
        t_batch = perf_counter()
        k = int(k if k is not None else self.default_k)
        results: list[SearchResult | None] = [None] * len(profiles)
        canon: list[np.ndarray] = []
        misses: OrderedDict[tuple, list[int]] = OrderedDict()
        hits = 0
        for pos, profile in enumerate(profiles):
            ids = np.unique(np.asarray(profile, dtype=np.int64))
            canon.append(ids)
            key = (ids.tobytes(), k)
            hit = self._cache.get(key, self.index.version)
            if hit is not None:
                hits += 1
                results[pos] = hit
            else:
                misses.setdefault(key, []).append(pos)

        answered: dict[tuple, SearchResult] = {}
        if misses:
            version = self.index.version
            shards: dict[int, list[tuple[tuple, np.ndarray]]] = {}
            if self._replica_set is not None:
                with self._route_lock:
                    for key, positions in misses.items():
                        shard = self._route_miss(key)
                        if self.routing == "least_loaded":
                            self._inflight[shard] += 1
                        shards.setdefault(shard, []).append(
                            (key, canon[positions[0]])
                        )
            else:
                for key, positions in misses.items():
                    shards.setdefault(self._shard_of(key), []).append(
                        (key, canon[positions[0]])
                    )
            if self._replica_set is not None:
                futures = [
                    self._pool.submit(self._run_replica, shard, items, k)
                    for shard, items in shards.items()
                ]
                for future in futures:
                    for key, result in future.result():
                        answered[key] = result
            elif self.executor == "thread":
                futures = [
                    self._pool.submit(self._run_shard, shard, items, k)
                    for shard, items in shards.items()
                ]
                for future in futures:
                    for key, result in future.result():
                        answered[key] = result
            else:
                # Submit under the pool lock: another thread's re-fork
                # (or close()) must not shut this pool down between the
                # staleness check and the submits.
                with self._pool_lock:
                    pool = self._ensure_process_pool()
                    t_sub = perf_counter()
                    futures = [
                        pool.submit(_proc_search, [p for _, p in items], k)
                        for items in shards.values()
                    ]
                for future, (shard, items) in zip(futures, shards.items()):
                    for (key, _), result in zip(items, future.result()):
                        answered[key] = result
                    self._c_shard_misses[shard].inc(len(items))
                    self._h_shard_batch[shard].observe(perf_counter() - t_sub)
            for key, result in answered.items():
                self._cache.put(
                    key, version, result, live_version=lambda: self.index.version
                )
            for key, positions in misses.items():
                for pos in positions:
                    results[pos] = answered[key]

        dedup = sum(len(p) - 1 for p in misses.values())
        with self._stats_lock:
            self.n_queries += len(profiles)
            self.cache_hits += hits
            self.cache_misses += len(misses)
            self.dedup_hits += dedup
        if hits:
            self._c_hits.inc(hits)
        if misses:
            self._c_misses.inc(len(misses))
        if dedup:
            self._c_dedup.inc(dedup)
        self._h_batch.observe(perf_counter() - t_batch)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Detach from the index and shut the worker pool down.

        As with :meth:`QueryEngine.close`, a closed partial-mode cache
        is cleared — nothing would ever evict mutated answers from it.
        """
        self._view.close()
        if self._cache.mode == "partial":
            self._cache.clear()
        if self._replica_set is not None:
            self._replica_set.close()
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown()
                self._pool = None

    def stats(self) -> dict:
        """Operational counters for dashboards and tests.

        Same canonical vocabulary as :meth:`QueryEngine.stats` (see
        ``docs/observability.md``); the pre-unification spellings were
        dropped after their one-release grace window.
        """
        with self._stats_lock:
            out = {
                "component": "sharded_query_engine",
                "queries_total": self.n_queries,
                "cache_hits_total": self.cache_hits,
                "cache_misses_total": self.cache_misses,
                "dedup_hits_total": self.dedup_hits,
                "evictions_total": self._cache.invalidations,
                "resplit_evictions_total": self._cache.resplit_evictions,
                "resplit_kept": self._cache.resplit_kept,
                "invalidation_mode": self._cache.mode,
                "cache_entries": len(self._cache),
                "n_shards": self.n_shards,
                "executor": self.executor,
                "routing": self.routing,
                "reforks_total": self.reforks,
                "version": self.index.version,
            }
        if self._replica_set is not None:
            replica = self._replica_set.stats()
            out.update(
                replica_mode=replica["mode"],
                deltas_shipped_total=replica["deltas_shipped_total"],
                resyncs_total=replica["resyncs_total"],
                replica_lag=replica["lag"],
                replica_serving=replica["serving"],
            )
        return out
