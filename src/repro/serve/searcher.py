"""Graph-walk top-k search — the read path of the KNN service.

A built C² graph answers "who are this profile's nearest neighbours?"
only for users that were indexed. Serving real traffic needs the same
answer for *arbitrary* profiles — an anonymous visitor, a user typing
ratings right now, a recommendation request from another service —
without the n similarity evaluations a brute-force scan costs.

:class:`GraphSearcher` does it in two phases, both metered through the
engine's ``charge()`` protocol so served queries spend from the same
similarity budget as builds and updates:

1. **Cluster-routed seeding** — the query profile is routed through
   the recorded FastRandomHash clustering
   (:meth:`~repro.online.OnlineIndex.seed_candidates`, one
   :class:`~repro.online.ClusterRouter` descent per configuration).
   The members of the destination clusters are exactly the users a
   batch run would have compared the profile against, so the walk
   starts in the right neighbourhood instead of a random corner of the
   graph.
2. **Best-first beam search** — the classic greedy walk of the
   NN-Descent / HNSW lineage over the KNN graph's edges: keep the
   ``ef`` best users seen so far, repeatedly expand the best
   unexpanded candidate's neighbour list, stop when the best remaining
   candidate cannot improve the result set. Expansion follows edges in
   *both* directions: a directed top-k graph is a poor navigation
   structure on its own — u's true neighbour v often keeps the edge
   v→u when u's list has no room for v — and walking in-edges too
   recovers roughly ten recall points at equal evaluation budget.

The in-edge direction comes from the index's **incrementally
maintained** :class:`~repro.graph.reverse.ReverseAdjacency`
(:meth:`OnlineIndex.reverse_index`), patched per edge from each
mutation's journal — so a write storm costs O(changed edges) of
read-side maintenance, not an O(n·k) rebuild on the first query after
every mutation. The old version-stamped full rebuild is retained
(``reverse="rebuild"``) as a dependency-free fallback and as the
oracle the property tests compare the maintained index against.

For estimate backends (GoldFinger/Bloom), ``rerank="exact"`` re-scores
the walk's final frontier — the ``ef`` best candidates, not just the
returned ``k`` — with exact similarities over the raw profiles before
truncation, recovering the ~5 recall points fingerprint noise costs at
equal walk budget for ``ef`` extra (counted) exact evaluations.

The walk ships two interchangeable implementations selected by
``walk_impl``:

* ``"numpy"`` (default) — array-at-a-time kernels: a reusable
  visited/excluded bitmap cleared via touched-index lists, one fancy-
  indexing mask pass per hop over the batched candidate fan-out, a
  lexsort top-``ef`` seed initialisation, and a vectorised admission
  prefilter in front of an exact scalar tail that preserves the heap's
  tie semantics bit-for-bit.
* ``"python"`` — the original per-node loop, kept as the **scalar
  oracle**: ``tests/test_prop_search_vec.py`` pins the two
  implementations to identical ids, scores, ``evaluations``, ``hops``
  and ``routed`` on randomized indexes and parameter combinations.

Both expand candidates in sorted-id order (``_adjacent``), so budget
truncation — which keeps a prefix of the per-hop candidate list — is
deterministic regardless of heap slot layout or set iteration order.

Because C² graphs are cluster-local by construction, a handful of hops
reaches the true neighbourhood: recall@10 ≥ 0.9 of a brute-force scan
at a few percent of its evaluations (``benchmarks/bench_serving.py``).
"""

from __future__ import annotations

import heapq
import os
import threading
import zlib
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from .. import obs
from ..graph.heap import EMPTY
from ..online.index import OnlineIndex
from ..similarity.engine import SimilarityEngine
from ..similarity.jaccard import profile_intersections

__all__ = ["SearchResult", "GraphSearcher", "brute_force_top_k"]


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one top-k query.

    Attributes:
        ids: neighbour user ids, best first.
        scores: matching similarities (engine's metric).
        evaluations: similarity evaluations this query charged.
        hops: beam-search expansions performed (0 = seeds sufficed).
        routed: cluster ids the query's seeds were routed through
            (one per hashing configuration that matched). A re-split
            changes *only* routing — no edges, no profiles — so a
            cached result is affected by one iff its query routed into
            a re-split cluster; the result cache keys its re-split
            eviction on exactly this set.
    """

    ids: np.ndarray
    scores: np.ndarray
    evaluations: int
    hops: int
    routed: tuple = field(default=())

    def __len__(self) -> int:
        return int(self.ids.size)


class GraphSearcher:
    """Answers ``top_k(profile)`` over a maintained :class:`OnlineIndex`.

    Args:
        index: the index to search; its engine, graph and recorded
            clustering are all reused.
        ef: beam width — the size of the best-seen set the walk
            maintains. Larger = better recall, more evaluations.
        per_config: cluster members taken as seeds per hashing
            configuration (deterministically subsampled).
        budget: optional hard cap on similarity evaluations per query;
            the walk stops early rather than exceed it.
        use_reverse_edges: also expand along in-edges (default; see
            module docstring). Disable to walk out-edges only.
        reverse: where in-edges come from. ``"incremental"`` (default)
            reads the index's maintained
            :meth:`~repro.online.OnlineIndex.reverse_index`;
            ``"rebuild"`` keeps a private CSR copy rebuilt O(n·k) after
            every mutation — the pre-incremental behaviour, kept as a
            fallback and as the property tests' oracle.
        rerank: ``"exact"`` re-scores the final frontier with exact
            similarities over raw profiles before truncating to ``k``
            (counted; recovers estimate-backend recall). ``None``
            returns engine scores untouched.
        walk_impl: ``"numpy"`` (default) walks with the vectorised
            kernels; ``"python"`` forces the scalar per-node loop —
            the oracle the differential suite compares against, and a
            debugging fallback. ``None`` reads ``REPRO_WALK_IMPL``
            from the environment (defaulting to ``"numpy"``), which is
            how the CI matrix runs every serve suite under both.
        registry: :class:`~repro.obs.MetricsRegistry` for the stage
            timing/hop/evaluation metrics (default: the process-wide
            registry, see ``docs/observability.md`` for the catalog).
        tracer: :class:`~repro.obs.Tracer` for per-query spans
            (``search`` → ``route``/``seed``/``walk``/``rerank``).
    """

    def __init__(
        self,
        index: OnlineIndex,
        *,
        ef: int = 32,
        per_config: int = 16,
        budget: int | None = None,
        use_reverse_edges: bool = True,
        reverse: str = "incremental",
        rerank: str | None = None,
        walk_impl: str | None = None,
        registry=None,
        tracer=None,
    ) -> None:
        if ef < 1:
            raise ValueError("ef must be >= 1")
        if reverse not in ("incremental", "rebuild"):
            raise ValueError("reverse must be 'incremental' or 'rebuild'")
        if rerank not in (None, "exact"):
            raise ValueError("rerank must be None or 'exact'")
        if walk_impl is None:
            walk_impl = os.environ.get("REPRO_WALK_IMPL", "numpy")
        if walk_impl not in ("numpy", "python"):
            raise ValueError("walk_impl must be 'numpy' or 'python'")
        self.index = index
        self.walk_impl = walk_impl
        # Scratch buffers for the numpy kernels are thread-local: a
        # QueryEngine shares one searcher across worker threads, and a
        # bitmap mid-clear in one walk must not leak into another.
        self._scratch = threading.local()
        self.ef = int(ef)
        self.per_config = int(per_config)
        self.budget = budget
        self.use_reverse_edges = bool(use_reverse_edges)
        self.reverse = reverse
        self.rerank = rerank
        self._rev_version = -1  # index.version the rebuild-mode copy matches
        self._rev_sources = np.empty(0, dtype=np.int64)
        self._rev_indptr = np.zeros(1, dtype=np.int64)
        reg = registry if registry is not None else obs.metrics()
        self.tracer = tracer if tracer is not None else obs.tracer()
        self._m_queries = reg.counter("serve_queries_total")
        self._h_query = reg.histogram("serve_query_seconds")
        self._h_seed = reg.histogram("serve_seed_seconds")
        self._h_walk = reg.histogram("serve_walk_seconds")
        self._h_rerank = reg.histogram("serve_rerank_seconds")
        self._h_hops = reg.histogram("serve_walk_hops", bounds=obs.COUNT_BUCKETS)
        self._h_evals = reg.histogram(
            "serve_walk_evaluations", bounds=obs.COUNT_BUCKETS
        )

    @property
    def engine(self) -> SimilarityEngine:
        """The counted similarity engine queries are charged to."""
        return self.index.engine

    def top_k(
        self,
        profile,
        k: int = 10,
        *,
        ef: int | None = None,
        budget: int | None = None,
        exclude=(),
        extra_seeds=None,
    ) -> SearchResult:
        """The ``k`` most similar indexed users to an arbitrary profile.

        Deterministic: the same profile against the same index state
        returns the same result (which is what makes the serving
        layer's cache sound).

        Args:
            profile: item ids (any iterable; deduplicated). Items the
                index has never seen are fine — they simply cannot
                match anyone.
            k: neighbours to return.
            ef: beam width override (clamped to at least ``k``).
            budget: evaluation-cap override for this query.
            exclude: user ids never to return (a user querying for her
                own neighbours excludes herself).
            extra_seeds: extra entry points for the walk, e.g. the
                surviving edges of a degraded row being refilled.
        """
        profile = np.unique(np.asarray(profile, dtype=np.int64))
        ef = max(int(ef or self.ef), int(k))
        budget = budget if budget is not None else self.budget
        t0 = perf_counter()
        with self.tracer.span("search", k=int(k), profile_size=int(profile.size)) as sp:
            # Walks read shared graph state that mutations patch in
            # place; the index's readers-writer lock keeps the two
            # apart (many concurrent walks, mutations exclusive — see
            # ShardedQueryEngine).
            with self.index.lock.read():
                result = self._walk(profile, int(k), ef, budget, exclude, extra_seeds)
            sp.note(hops=result.hops, evaluations=result.evaluations)
        self._m_queries.inc()
        self._h_query.observe(perf_counter() - t0)
        self._h_hops.observe(result.hops)
        self._h_evals.observe(result.evaluations)
        return result

    def _walk(self, profile, k, ef, budget, exclude, extra_seeds) -> SearchResult:
        engine = self.index.engine
        graph = self.index.graph
        active = self.index.dataset.active_mask()
        excluded = {int(u) for u in exclude}
        before = engine.comparisons
        query = engine.prepare_query(profile)

        t_seed = perf_counter()
        with self.tracer.span("route") as sp:
            seeds, routed = self._seeds(profile, ef, active, excluded, extra_seeds)
            sp.note(clusters=len(routed))
        if budget is not None and seeds.size > budget:
            seeds = seeds[:budget]
        if seeds.size == 0:
            self._h_seed.observe(perf_counter() - t_seed)
            return SearchResult(
                ids=np.empty(0, dtype=np.int64),
                scores=np.empty(0, dtype=np.float64),
                evaluations=0,
                hops=0,
                routed=routed,
            )
        with self.tracer.span("seed", n_seeds=int(seeds.size)):
            sims = engine.query_many(query, seeds)
        self._h_seed.observe(perf_counter() - t_seed)

        rev = self._reverse_source()
        core = (
            self._walk_core_numpy
            if self.walk_impl == "numpy"
            else self._walk_core_python
        )
        t_walk = perf_counter()
        with self.tracer.span("walk") as walk_span:
            pool, hops, evals = core(
                engine, graph, query, active, excluded, seeds, sims, ef, budget, rev
            )
            walk_span.note(hops=hops, evaluations=evals)
        self._h_walk.observe(perf_counter() - t_walk)
        if self.rerank == "exact" and pool:
            # Re-score the whole final frontier (ef candidates), not
            # just the top k of the estimates — the candidates exact
            # scoring promotes into the top k are precisely the ones
            # estimate noise demoted out of it.
            t_rerank = perf_counter()
            with self.tracer.span("rerank", n_candidates=len(pool)):
                cands = np.array([v for _, v in pool], dtype=np.int64)
                exact = self._exact_scores(profile, cands)
                engine.charge(cands.size)
                order = np.lexsort((cands, -exact))[:k]
                ids, scores = cands[order], exact[order]
            self._h_rerank.observe(perf_counter() - t_rerank)
        else:
            best = pool[:k]
            ids = np.array([v for _, v in best], dtype=np.int64)
            scores = np.array([s for s, _ in best], dtype=np.float64)
        return SearchResult(
            ids=ids,
            scores=scores,
            evaluations=engine.comparisons - before,
            hops=hops,
            routed=routed,
        )

    # ------------------------------------------------------------------
    # Walk cores — one beam search, two implementations. Both return
    # ``(pool, hops, evals)`` where ``pool`` is the final best-seen set
    # sorted by (score desc, id asc). The python core is the scalar
    # oracle; the numpy core must match it bit-for-bit (see
    # tests/test_prop_search_vec.py).
    # ------------------------------------------------------------------

    def _walk_core_python(
        self, engine, graph, query, active, excluded, seeds, sims, ef, budget, rev
    ):
        """The original per-node loop — kept as the differential oracle.

        Bounded best-seen set (min-heap on ``(score, -id)``: ties evict
        the larger id so results are deterministic) and expansion
        frontier (max-heap on ``(-score, id)``).
        """
        result: list[tuple[float, int]] = []
        frontier: list[tuple[float, int]] = []
        visited = {int(v) for v in seeds}
        for v, s in zip(seeds, sims):
            heapq.heappush(frontier, (-float(s), int(v)))
            heapq.heappush(result, (float(s), -int(v)))
            if len(result) > ef:
                heapq.heappop(result)

        hops = 0
        evals = int(seeds.size)
        while frontier:
            neg_score, node = heapq.heappop(frontier)
            if len(result) >= ef and -neg_score < result[0][0]:
                break  # the best remaining candidate cannot improve the set
            fresh = [
                int(v)
                for v in self._adjacent(graph, node, rev)
                if int(v) not in visited and active[v] and int(v) not in excluded
            ]
            if not fresh:
                continue
            if budget is not None and evals + len(fresh) > budget:
                fresh = fresh[: budget - evals]
                if not fresh:
                    break
            hops += 1
            cands = np.asarray(fresh, dtype=np.int64)
            batch = engine.query_many(query, cands)
            evals += cands.size
            visited.update(fresh)
            for v, s in zip(fresh, batch):
                if len(result) < ef or s > result[0][0]:
                    heapq.heappush(frontier, (-float(s), int(v)))
                    heapq.heappush(result, (float(s), -int(v)))
                    if len(result) > ef:
                        heapq.heappop(result)
        pool = sorted(((s, -neg_id) for s, neg_id in result), key=lambda t: (-t[0], t[1]))
        return pool, hops, evals

    def _walk_core_numpy(
        self, engine, graph, query, active, excluded, seeds, sims, ef, budget, rev
    ):
        """Array-at-a-time walk, bit-equivalent to the python oracle.

        Per hop: one fancy-indexing mask pass filters the batched
        candidate fan-out against a reusable visited/excluded bitmap
        (cleared via touched-index lists, never reallocated), one
        ``query_many`` scores the survivors, and a vectorised
        ``> current-min`` prefilter shrinks the exact scalar admission
        tail to the candidates that can actually enter the best-seen
        set. Candidates stay in sorted-id order throughout, so budget
        prefix truncation matches the oracle exactly. The best-seen
        set itself stays a heap: a batched top-ef rebuild would break
        tie semantics (an incumbent at the current min score must not
        be evicted by a tying candidate the heap would reject).
        """
        n = active.size
        blocked = self._blocked_bitmap(n)
        touched: list[np.ndarray] = []
        try:
            if excluded:
                excl = np.fromiter(excluded, dtype=np.int64, count=len(excluded))
                excl = excl[(excl >= 0) & (excl < n)]
                if excl.size:
                    blocked[excl] = True
                    touched.append(excl)
            blocked[seeds] = True
            touched.append(seeds)

            # Seed phase: pushing every seed and popping the minimum
            # down to ef is exactly "top-ef by (score desc, id asc)" —
            # one lexsort replaces the per-seed heap churn. The
            # frontier takes every seed regardless.
            order = np.lexsort((seeds, -sims))[:ef]
            result = [(float(sims[i]), -int(seeds[i])) for i in order]
            heapq.heapify(result)
            frontier = list(zip((-sims).tolist(), seeds.tolist()))
            heapq.heapify(frontier)

            hops = 0
            evals = int(seeds.size)
            while frontier:
                neg_score, node = heapq.heappop(frontier)
                if len(result) >= ef and -neg_score < result[0][0]:
                    break
                out, incoming = self._adjacent_parts(graph, node, rev)
                if incoming is not None and incoming.size:
                    cands = np.concatenate([out, incoming])  # promotes to int64
                else:
                    cands = out
                fresh = cands[active[cands] & ~blocked[cands]]
                if fresh.size == 0:
                    continue
                # Sorted-unique by hand: same result as np.unique on
                # these small per-hop arrays at a fraction of the
                # per-call overhead.
                fresh.sort()
                if fresh.size > 1:
                    keep = np.empty(fresh.size, dtype=bool)
                    keep[0] = True
                    np.not_equal(fresh[1:], fresh[:-1], out=keep[1:])
                    fresh = fresh[keep]
                if budget is not None and evals + fresh.size > budget:
                    fresh = fresh[: budget - evals]
                    if fresh.size == 0:
                        break
                hops += 1
                batch = engine.query_many(query, fresh)
                evals += fresh.size
                blocked[fresh] = True
                touched.append(fresh)
                if len(result) >= ef:
                    # Admission needs s > current min, and the min only
                    # rises — s > min-before-batch is a sound prefilter.
                    live = np.flatnonzero(batch > result[0][0])
                    if live.size == 0:
                        continue
                    fvals = fresh[live].tolist()
                    svals = batch[live].tolist()
                else:
                    fvals = fresh.tolist()
                    svals = batch.tolist()
                for v, s in zip(fvals, svals):
                    if len(result) < ef or s > result[0][0]:
                        heapq.heappush(frontier, (-s, v))
                        heapq.heappush(result, (s, -v))
                        if len(result) > ef:
                            heapq.heappop(result)
            pool = sorted(
                ((s, -neg_id) for s, neg_id in result), key=lambda t: (-t[0], t[1])
            )
            return pool, hops, evals
        finally:
            for arr in touched:
                blocked[arr] = False

    def _blocked_bitmap(self, n: int) -> np.ndarray:
        """This thread's reusable visited/excluded bitmap, ≥ ``n`` wide.

        Allocated once per (searcher, thread) and grown geometrically;
        the walk core clears exactly the entries it set (touched-index
        lists), so consecutive queries see all-False without an O(n)
        wipe per query.
        """
        buf = getattr(self._scratch, "blocked", None)
        if buf is None or buf.size < n:
            grow = 0 if buf is None else 2 * buf.size
            buf = np.zeros(max(n, grow), dtype=bool)
            self._scratch.blocked = buf
        return buf

    def _reverse_source(self):
        """Where this walk reads in-edges from (None = out-edges only).

        Incremental mode returns the index's maintained
        :class:`~repro.graph.reverse.ReverseAdjacency` (built once,
        patched per mutation); rebuild mode refreshes the private CSR
        copy and returns this searcher as the marker for it.
        """
        if not self.use_reverse_edges:
            return None
        if self.reverse == "incremental":
            return self.index.reverse_index()
        self._refresh_reverse_index()
        return self

    def _refresh_reverse_index(self) -> None:
        """(Re)build the rebuild-mode in-edge CSR if the graph mutated.

        One vectorised O(n·k) group-by, amortised over every query
        served between two index mutations. This is the pre-incremental
        fallback — and the from-scratch oracle the property tests pit
        the maintained reverse index against.
        """
        if self._rev_version == self.index.version:
            return
        heaps = self.index.graph.heaps
        valid = heaps.ids.ravel() != EMPTY
        dst = heaps.ids.ravel()[valid].astype(np.int64)
        src = np.repeat(np.arange(heaps.n, dtype=np.int64), heaps.k)[valid]
        order = np.argsort(dst, kind="stable")
        self._rev_sources = src[order]
        self._rev_indptr = np.searchsorted(
            dst[order], np.arange(heaps.n + 1, dtype=np.int64)
        )
        self._rev_version = self.index.version

    def _adjacent_parts(self, graph, node: int, rev):
        """``(out, incoming)`` neighbour arrays of ``node``.

        ``incoming`` is ``None`` when in-edges are disabled; both
        reverse sources return it sorted by id. ``out`` is in heap slot
        order (arbitrary).
        """
        out = graph.neighbors(node)
        if rev is None:
            return out, None
        if rev is self:  # rebuild-mode CSR copy
            incoming = self._rev_sources[
                self._rev_indptr[node] : self._rev_indptr[node + 1]
            ]
        else:  # the index's maintained ReverseAdjacency
            incoming = rev.holders(node)
        return out, incoming

    def _adjacent(self, graph, node: int, rev) -> np.ndarray:
        """Neighbours of ``node`` in either edge direction, sorted by id.

        Sorted unconditionally: budget truncation keeps a *prefix* of
        the per-hop candidate list, so candidate order must not depend
        on heap slot layout (which varies with mutation history even
        between graphs holding identical edge sets).
        """
        out, incoming = self._adjacent_parts(graph, node, rev)
        if incoming is None or incoming.size == 0:
            return np.sort(out)
        return np.unique(np.concatenate([out.astype(np.int64), incoming]))

    def _exact_scores(self, profile: np.ndarray, users: np.ndarray) -> np.ndarray:
        """Exact similarity of ``profile`` vs ``users`` from raw profiles.

        Used by ``rerank="exact"``: estimate backends keep serving the
        walk from fingerprints, only the final frontier pays for exact
        scoring (the caller charges the engine for these evaluations).
        Honours the engine's metric where it has one (exact cosine
        engines re-rank with cosine).
        """
        inter, sizes = profile_intersections(self.index.dataset, profile, users)
        if getattr(self.engine, "metric", "jaccard") == "cosine":
            denom = np.sqrt(float(profile.size) * sizes)
        else:
            denom = profile.size + sizes - inter
        out = np.zeros(users.size, dtype=np.float64)
        nz = denom > 0
        out[nz] = inter[nz] / denom[nz]
        return out

    def _seeds(
        self,
        profile: np.ndarray,
        ef: int,
        active: np.ndarray,
        excluded: set[int],
        extra_seeds,
    ) -> tuple[np.ndarray, tuple]:
        """Entry points: routed cluster peers + caller seeds + top-up.

        Returns ``(seeds, routed)`` where ``routed`` is the cluster-id
        tuple routing matched (recorded on the
        :class:`SearchResult` so the result cache can evict exactly
        the answers a re-split re-routes). The top-up draws
        deterministically-seeded random active users when routing
        finds fewer than ``ef`` entry points (a profile of never-seen
        items misses every recorded lineage); without it the walk
        would have nowhere to start.
        """
        routed_seeds, routed = self.index.seed_candidates(
            profile, per_config=self.per_config, with_route=True
        )
        pools = [routed_seeds]
        if extra_seeds is not None:
            extra = np.asarray(extra_seeds, dtype=np.int64)
            if extra.size:
                pools.append(extra[active[extra]])
        seeds = np.unique(np.concatenate(pools))
        if excluded:
            seeds = seeds[~np.isin(seeds, np.fromiter(excluded, dtype=np.int64))]
        if seeds.size < ef:
            pool = self.index.dataset.active_users()
            pool = pool[~np.isin(pool, seeds)]
            if excluded:
                pool = pool[~np.isin(pool, np.fromiter(excluded, dtype=np.int64))]
            want = min(ef - seeds.size, pool.size)
            if want > 0:
                rng = np.random.default_rng(
                    (self.index.params.seed, zlib.crc32(profile.tobytes()))
                )
                extra = rng.choice(pool, size=want, replace=False)
                seeds = np.unique(np.concatenate([seeds, extra]))
        return seeds.astype(np.int64), routed


def brute_force_top_k(
    engine: SimilarityEngine,
    profile,
    k: int = 10,
    users: np.ndarray | None = None,
) -> SearchResult:
    """Reference answer: score the profile against every (active) user.

    Costs one evaluation per candidate — the denominator for the
    "fraction of a brute-force query" numbers the serving benchmarks
    report, and the ground truth for recall@k.
    """
    if users is None:
        dataset = engine.dataset
        if hasattr(dataset, "active_users"):
            users = dataset.active_users()
        else:
            users = np.arange(engine.n_users, dtype=np.int64)
    users = np.asarray(users, dtype=np.int64)
    before = engine.comparisons
    query = engine.prepare_query(np.unique(np.asarray(profile, dtype=np.int64)))
    sims = engine.query_many(query, users)
    order = np.lexsort((users, -sims))[: int(k)]
    return SearchResult(
        ids=users[order],
        scores=sims[order],
        evaluations=engine.comparisons - before,
        hops=0,
    )
