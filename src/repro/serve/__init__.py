"""Query serving over maintained C² KNN graphs — the read path.

The batch pipeline builds the graph, ``repro.online`` keeps it fresh;
this package answers traffic against it: top-k neighbour queries for
arbitrary (including out-of-index) profiles via cluster-routed
graph-walk search (:class:`GraphSearcher`, with optional exact
re-ranking for estimate backends), a batching/caching front end with
sync and ``asyncio`` entry points and partial cache invalidation
(:class:`QueryEngine`), a multi-worker variant that partitions deduped
batches across thread or process shards (:class:`ShardedQueryEngine`)
— optionally backed by per-shard replica indexes that converge via
shipped journal deltas instead of shared state (:class:`ReplicaSet`) —
and an adapter that turns served neighbours into item recommendations
(:class:`Recommender`). Every similarity a query spends is counted
through the engine's ``charge()`` protocol, so serving cost is
comparable with build and update cost in the same currency.
"""

from .engine import QueryEngine
from .recommender import Recommender
from .replica import ReplicaSet
from .searcher import GraphSearcher, SearchResult, brute_force_top_k
from .sharded import ShardedQueryEngine

__all__ = [
    "GraphSearcher",
    "QueryEngine",
    "Recommender",
    "ReplicaSet",
    "SearchResult",
    "ShardedQueryEngine",
    "brute_force_top_k",
]
