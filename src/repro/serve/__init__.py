"""Query serving over maintained C² KNN graphs — the read path.

The batch pipeline builds the graph, ``repro.online`` keeps it fresh;
this package answers traffic against it: top-k neighbour queries for
arbitrary (including out-of-index) profiles via cluster-routed
graph-walk search (:class:`GraphSearcher`), a batching/caching front
end with sync and ``asyncio`` entry points (:class:`QueryEngine`), and
an adapter that turns served neighbours into item recommendations
(:class:`Recommender`). Every similarity a query spends is counted
through the engine's ``charge()`` protocol, so serving cost is
comparable with build and update cost in the same currency.
"""

from .engine import QueryEngine
from .recommender import Recommender
from .searcher import GraphSearcher, SearchResult, brute_force_top_k

__all__ = [
    "GraphSearcher",
    "QueryEngine",
    "Recommender",
    "SearchResult",
    "brute_force_top_k",
]
