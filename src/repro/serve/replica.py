"""Per-shard replica indexes fed by journal-delta shipping.

PR 3's sharded serving has two multi-core ceilings the ROADMAP calls
out: every thread shard walks **one shared graph** under a single
readers-writer lock (mutations stall all shards at once), and the
process pool **re-forks its entire snapshot** after any mutation. This
module replaces both with replication:

* each replica is a full :meth:`~repro.online.OnlineIndex.clone` of
  the primary — its own profiles, fingerprints, routing tables, graph
  heaps and :class:`~repro.graph.reverse.ReverseAdjacency` — so a
  walk touches **no primary state and no primary lock**;
* mutations apply **once** on the primary; the per-edge journal deltas
  (annotated into :class:`~repro.online.ReplicaDelta` for the tier's
  ``needs_scored`` view) are shipped to every replica, which converges
  via :meth:`~repro.online.OnlineIndex.apply_delta` in O(|edges|) work
  and zero similarity evaluations — **no snapshot re-forks**.

Two shipping transports:

* ``mode="thread"`` — replicas live in-process; deltas are applied
  synchronously inside the mutation (each replica takes only its own
  write lock, so queries on other replicas never stall). Replicas are
  always exactly at the primary's version.
* ``mode="process"`` — one **pinned single-worker pool per replica**
  holds the cloned index; deltas are pickled into a per-replica queue
  and drained by the worker ahead of each batch it serves. Replicas
  converge lazily (eventual, read-your-ship consistency: a batch
  always sees every mutation shipped before it was submitted).

A ``rebuild`` (or a detected sequence gap) cannot be expressed as
deltas; the replica resyncs from a fresh snapshot and the ``resyncs``
counter records it — the mixed-workload benchmark asserts this stays
at **zero** across a 90/10 write storm.

Convergence is checked in the slot-order-independent currency that
matters for serving: per-row neighbour-id sets (:func:`edge_digest`).
Replica edge *ids* are always exact; stored edge scores may lag
in-place rescorings, which the searcher never reads (candidates are
scored against the query).
"""

from __future__ import annotations

import pickle
import threading
from concurrent.futures import ProcessPoolExecutor
from time import perf_counter

from .. import obs
from ..deltas.view import DerivedView
from ..graph.heap import edge_digest
from ..online.index import OnlineIndex, ReplicaDelta
from .searcher import GraphSearcher, SearchResult

__all__ = ["ReplicaSet", "edge_digest"]


class _ShipView(DerivedView):
    """The replica tier's bus registration: forward scored deltas.

    Declares ``needs_scored`` so the index keeps annotating journal
    edges into shippable :class:`~repro.online.ReplicaDelta`\\ s; the
    tier's own transport logic (synchronous thread apply, per-replica
    process queues, contained failure → counted resync) stays in
    :class:`ReplicaSet`. The resync recipe re-snapshots every replica
    from the primary.
    """

    name = "replica_ship"
    needs_scored = True

    def __init__(self, replicas: "ReplicaSet") -> None:
        super().__init__()
        self._replicas = replicas

    def apply(self, delta) -> None:
        """Ship one scored mutation to the tier."""
        if delta.replica is not None:
            self._replicas._on_delta(delta.replica)

    def resync(self) -> None:
        """Re-snapshot every replica from the primary."""
        for i in range(self._replicas.n_replicas):
            self._replicas.resync_replica(i)


# ``edge_digest`` moved to :mod:`repro.graph.heap` (re-exported above
# for back-compat) so journal-layer consumers can use it without
# importing the serving tier.

# Process-mode worker state: one pinned worker per replica holds the
# cloned index and drains its delta queue before serving each batch.
_REPLICA: dict = {}


def _replica_init(payload: bytes, searcher_kwargs: dict) -> None:
    index = pickle.loads(payload)
    _REPLICA["index"] = index
    _REPLICA["searcher"] = GraphSearcher(index, **searcher_kwargs)


def _replica_search(
    delta_payloads: list[bytes], profiles: list, k: int
) -> list[SearchResult]:
    index: OnlineIndex = _REPLICA["index"]
    for raw in delta_payloads:
        index.apply_delta(pickle.loads(raw))
    searcher: GraphSearcher = _REPLICA["searcher"]
    return [searcher.top_k(p, k=k) for p in profiles]


def _replica_state(delta_payloads: list[bytes]) -> tuple[int, int]:
    """Apply pending deltas, then report ``(version, edge digest)``."""
    index: OnlineIndex = _REPLICA["index"]
    for raw in delta_payloads:
        index.apply_delta(pickle.loads(raw))
    return index.version, edge_digest(index.graph.heaps)


class ReplicaSet:
    """N per-shard replica indexes converging by shipped deltas.

    Args:
        index: the primary (mutations apply here, once).
        n_replicas: replica count; the sharded front end routes batch
            misses across them.
        mode: ``"thread"`` (in-process clones, synchronous delta
            apply) or ``"process"`` (pinned worker pools fed a pickled
            delta queue).
        searcher_kwargs: forwarded to each replica's
            :class:`GraphSearcher` (``ef``, ``budget``, ``rerank``, …).
        hydrate: optional zero-arg callable returning a detached
            :class:`OnlineIndex` to bootstrap each *initial* replica
            from — e.g. :meth:`repro.persist.DurableIndex.hydrate`,
            which rebuilds one from the latest on-disk snapshot + WAL
            tail instead of pickling the live primary under its read
            lock. A hydrated replica that trails the primary catches
            up through the usual seq-guarded delta path (a genuinely
            lost gap heals as a counted resync, exactly like a clone
            raced by a mutation). Resyncs always re-clone the primary:
            they must land on its *current* version.
        registry: :class:`~repro.obs.MetricsRegistry` for the
            ship/apply latency histograms, the shipped/resync counters
            and the lag gauge (default: the process-wide registry).
    """

    def __init__(
        self,
        index: OnlineIndex,
        n_replicas: int = 2,
        *,
        mode: str = "thread",
        searcher_kwargs: dict | None = None,
        hydrate=None,
        registry=None,
    ) -> None:
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        if mode not in ("thread", "process"):
            raise ValueError("mode must be 'thread' or 'process'")
        self.index = index
        self.n_replicas = int(n_replicas)
        self.mode = mode
        self.searcher_kwargs = dict(searcher_kwargs or {})
        self.hydrate = hydrate
        self.deltas_shipped = 0
        self.resyncs = 0
        reg = registry if registry is not None else obs.metrics()
        self._c_shipped = reg.counter("replica_deltas_shipped_total")
        self._c_resyncs = reg.counter("replica_resyncs_total")
        self._g_lag = reg.gauge("replica_lag")
        self._h_ship = reg.histogram("replica_ship_seconds")
        self._h_apply = reg.histogram("replica_apply_seconds")
        self._ship_lock = threading.Lock()
        self._revive_locks = [threading.Lock() for _ in range(self.n_replicas)]
        self._closed = False
        # Per-replica serving spend, fed from the SearchResults each
        # batch returns (both transports), so the tier's aggregate
        # similarity bill is one dict away — see stats()["serving"].
        self._serving_lock = threading.Lock()
        self._served = [
            {"queries": 0, "evaluations": 0, "hops": 0}
            for _ in range(self.n_replicas)
        ]
        if mode == "thread":
            self._replicas: list[OnlineIndex] = []
            self._searchers: list[GraphSearcher] = []
            self._run_locks = [threading.Lock() for _ in range(self.n_replicas)]
            for _ in range(self.n_replicas):
                replica = hydrate() if hydrate is not None else index.clone()
                self._replicas.append(replica)
                self._searchers.append(
                    GraphSearcher(replica, **self.searcher_kwargs)
                )
        else:
            if hydrate is not None:
                snapshot = pickle.dumps(hydrate())
            else:
                snapshot = index.snapshot_bytes()
            self._pools: list[ProcessPoolExecutor | None] = []
            self._pending: list[list[bytes]] = [[] for _ in range(self.n_replicas)]
            self._needs_resync = [False] * self.n_replicas
            for _ in range(self.n_replicas):
                self._pools.append(self._new_pool(snapshot))
        # Register after cloning: a mutation racing the clone is either
        # already inside the snapshot (its delta is skipped by the seq
        # guard) or arrives as the next delta in sequence. A delta lost
        # in the unregistered gap surfaces as a sequence gap and heals
        # through a counted resync.
        self._view = index.deltas.register(_ShipView(self))

    def _new_pool(self, payload: bytes) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=1,
            initializer=_replica_init,
            initargs=(payload, self.searcher_kwargs),
        )

    # ------------------------------------------------------------------
    # Shipping
    # ------------------------------------------------------------------

    def _on_delta(self, delta: ReplicaDelta) -> None:
        """Primary mutation hook: converge (thread) or enqueue (process)."""
        t_ship = perf_counter()
        self.deltas_shipped += 1
        self._c_shipped.inc()
        if self.mode == "thread":
            for i in range(self.n_replicas):
                t_apply = perf_counter()
                try:
                    self._replicas[i].apply_delta(delta)
                    self._h_apply.observe(perf_counter() - t_apply)
                except Exception:
                    # A replica that cannot replay (sequence gap,
                    # rebuild, or any mid-replay failure) must never
                    # break the primary's mutation — contain it by
                    # resyncing from a fresh snapshot. The snapshot
                    # clone is safe here: this hook runs on the
                    # mutating thread, for which the write lock is
                    # read-reentrant.
                    self._resync_thread(i)
            self._h_ship.observe(perf_counter() - t_ship)
            self._g_lag.set(0)  # thread replicas converge synchronously
            return
        payload = pickle.dumps(delta)
        with self._ship_lock:
            for i in range(self.n_replicas):
                if delta.event == "rebuild":
                    # Unshippable: drop the queue, force a snapshot.
                    self._pending[i].clear()
                    self._needs_resync[i] = True
                else:
                    self._pending[i].append(payload)
            self._g_lag.set(max((len(p) for p in self._pending), default=0))
        self._h_ship.observe(perf_counter() - t_ship)

    def _resync_thread(self, i: int) -> None:
        """Replace thread replica ``i`` with a fresh snapshot clone."""
        self.resyncs += 1
        self._c_resyncs.inc()
        replica = self.index.clone()
        self._replicas[i] = replica
        self._searchers[i] = GraphSearcher(replica, **self.searcher_kwargs)

    def _revive(self, i: int) -> None:
        """Re-fork process replica ``i``'s pinned pool from a snapshot.

        Lock discipline matters here: ``_on_delta`` runs under the
        primary's **write** lock and takes ``_ship_lock``, so this
        method must never hold ``_ship_lock`` while taking the
        snapshot (which needs the primary's **read** lock) — that
        order inversion would deadlock the tier against a concurrent
        mutation. Instead the dead pool is detached and its queue
        cleared under ``_ship_lock``, the snapshot is taken unlocked,
        and the fresh pool is installed afterwards. Deltas shipped in
        between accumulate in the cleared queue; any the snapshot
        already contains are skipped by ``apply_delta``'s seq guard.
        ``_revive_locks[i]`` collapses concurrent revivals of the same
        replica into one resync.
        """
        with self._revive_locks[i]:
            with self._ship_lock:
                if self._pools[i] is not None and not self._needs_resync[i]:
                    return  # another thread already revived it
                pool = self._pools[i]
                self._pools[i] = None
                self._pending[i].clear()
                self._needs_resync[i] = False
                self.resyncs += 1
                self._c_resyncs.inc()
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            payload = self.index.snapshot_bytes()  # no _ship_lock held
            with self._ship_lock:
                self._pools[i] = self._new_pool(payload)

    def _submit(self, i: int, fn, *args):
        """Submit to replica ``i``'s pinned pool, reviving it if needed.

        The pending delta queue is drained into the task under
        ``_ship_lock`` so the pop and the submit are atomic with
        respect to ``_on_delta`` appends and other submitters — the
        single-worker pool then applies and serves strictly in ship
        order (read-your-ship consistency).
        """
        while True:
            with self._ship_lock:
                if self._closed:
                    raise RuntimeError("ReplicaSet is closed")
                pool = self._pools[i]
                if pool is not None and not self._needs_resync[i]:
                    payloads, self._pending[i] = self._pending[i], []
                    self._g_lag.set(
                        max((len(p) for p in self._pending), default=0)
                    )
                    return pool.submit(fn, payloads, *args)
            self._revive(i)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def search(self, replica: int, profiles: list, k: int) -> list[SearchResult]:
        """Serve a batch of profiles on replica ``replica``.

        Thread mode walks the replica's own graph on the calling
        thread (the per-replica lock only matters for rebuild-mode
        searchers, which keep private CSR state). Process mode drains
        the replica's delta queue into the pinned worker ahead of the
        batch, so results always reflect every mutation shipped before
        this call.
        """
        if self.mode == "thread":
            searcher = self._searchers[replica]
            with self._run_locks[replica]:
                results = [searcher.top_k(p, k=k) for p in profiles]
            return self._account(replica, results)
        future = self._submit(replica, _replica_search, profiles, k)
        try:
            return self._account(replica, future.result())
        except Exception:
            # Worker died or its delta stream gapped: resync the pinned
            # pool from a fresh snapshot and retry the batch once.
            with self._ship_lock:
                self._needs_resync[replica] = True
            return self._account(
                replica,
                self._submit(replica, _replica_search, profiles, k).result(),
            )

    def _account(self, replica: int, results: list[SearchResult]) -> list[SearchResult]:
        """Charge a served batch to replica ``replica``'s counters."""
        with self._serving_lock:
            counters = self._served[replica]
            counters["queries"] += len(results)
            counters["evaluations"] += sum(r.evaluations for r in results)
            counters["hops"] += sum(r.hops for r in results)
        return results

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def replica(self, i: int) -> OnlineIndex:
        """Thread-mode replica ``i`` (tests compare it to the primary)."""
        if self.mode != "thread":
            raise ValueError("direct replica access is thread-mode only")
        return self._replicas[i]

    def converged(self) -> bool:
        """Whether every replica's edge sets match the primary's, now.

        Thread replicas are compared in place; process replicas first
        drain their pending delta queues (the consistency contract is
        read-your-ship, so "converged" means "after applying what was
        shipped"). Digests are slot-order independent.
        """
        with self.index.lock.read():
            want = (self.index.version, edge_digest(self.index.graph.heaps))
        return all(got == want for got in self.replica_states())

    def replica_states(self) -> list[tuple[int, int]]:
        """``(version, edge digest)`` per replica — the audit currency.

        Process replicas drain their pending queues first (the same
        read-your-ship contract as :meth:`converged`); thread replicas
        are read under their own locks. The
        :class:`~repro.deltas.AntiEntropy` view compares these pairs
        against the primary oracle.
        """
        if self.mode == "thread":
            out = []
            for replica in self._replicas:
                with replica.lock.read():
                    out.append(
                        (replica.version, edge_digest(replica.graph.heaps))
                    )
            return out
        return [
            self._submit(i, _replica_state).result()
            for i in range(self.n_replicas)
        ]

    def resync_replica(self, i: int) -> None:
        """Force replica ``i`` back onto a fresh primary snapshot.

        The repair entry point anti-entropy uses: thread replicas are
        re-cloned immediately; process replicas are marked and re-fork
        lazily on their next submit (the same contained-failure path a
        sequence gap takes). Counted in ``resyncs_total``.
        """
        if self.mode == "thread":
            self._resync_thread(i)
        else:
            with self._ship_lock:
                self._needs_resync[i] = True

    def lag(self) -> int:
        """Mutations shipped but not yet applied, worst replica."""
        return max(self.per_replica_lag(), default=0)

    def per_replica_lag(self) -> list[int]:
        """Mutations shipped but not yet applied, one entry per replica.

        Thread replicas measure version distance to the primary
        (normally 0 — they converge inside the mutation); process
        replicas count queued-but-undrained delta payloads.
        """
        if self.mode == "thread":
            if not self._replicas:  # closed set: nothing left to lag
                return [0] * self.n_replicas
            return [self.index.version - r.version for r in self._replicas]
        with self._ship_lock:
            return [len(p) for p in self._pending]

    def stats(self) -> dict:
        """Operational counters for dashboards, benchmarks and tests.

        ``"serving"`` aggregates what the tier *spent answering
        queries* — per-replica and total similarity evaluations, walk
        hops and query counts, accumulated from every batch's
        :class:`SearchResult`\\ s — so the replicated read path reports
        one dashboard number in the same counted-similarity currency
        as builds and updates (the ROADMAP follow-up: replica walks
        charge their clone's engine, not the primary's). Each
        per-replica entry also carries its own ``lag``. Keys follow
        the shared vocabulary (``docs/observability.md``); the legacy
        spellings were dropped after their one-release grace window.
        """
        lags = self.per_replica_lag()
        with self._serving_lock:
            per_replica = [
                dict(counters, lag=lags[i])
                for i, counters in enumerate(self._served)
            ]
        return {
            "component": "replica_set",
            "n_replicas": self.n_replicas,
            "mode": self.mode,
            "deltas_shipped_total": self.deltas_shipped,
            "resyncs_total": self.resyncs,
            "lag": max(lags, default=0),
            "version": self.index.version,
            "serving": {
                "queries": sum(c["queries"] for c in per_replica),
                "evaluations": sum(c["evaluations"] for c in per_replica),
                "hops": sum(c["hops"] for c in per_replica),
                "per_replica": per_replica,
            },
        }

    def close(self) -> None:
        """Detach from the primary and release replica resources."""
        if self._closed:
            return
        self._closed = True
        self._view.close()
        if self.mode == "process":
            with self._ship_lock:
                for i, pool in enumerate(self._pools):
                    if pool is not None:
                        pool.shutdown()
                        self._pools[i] = None
        else:
            self._replicas = []
            self._searchers = []
