"""Profile-to-items adapter: served neighbours → recommendations.

The paper's end application is user-based collaborative filtering over
the KNN graph (§V-B); this module serves it for arbitrary profiles.
A request carries an item-set profile (possibly of a user the index
has never seen); the :class:`QueryEngine` finds the profile's
neighbours among indexed users, and the shared CF scoring core
(:func:`repro.recommend.recommend_from_neighbors`) turns them into
item recommendations — so cache hits, batching and dedup all carry
over to the recommendation workload for free.
"""

from __future__ import annotations

import numpy as np

from ..recommend.cf import recommend_from_neighbors
from .engine import QueryEngine

__all__ = ["Recommender"]


class Recommender:
    """Item recommendations for arbitrary profiles, served online.

    Args:
        queries: the query engine to source neighbours from (its index
            provides the profile store items are scored against).
        n_neighbors: neighbours fetched per request (the CF ``k``).
        n_recommendations: items returned per request by default.
    """

    def __init__(
        self,
        queries: QueryEngine,
        *,
        n_neighbors: int = 20,
        n_recommendations: int = 30,
    ) -> None:
        self.queries = queries
        self.n_neighbors = int(n_neighbors)
        self.n_recommendations = int(n_recommendations)

    @property
    def dataset(self):
        """The profile store recommendations are scored against."""
        return self.queries.index.dataset

    def _count(self, n_recommendations: int | None) -> int:
        return self.n_recommendations if n_recommendations is None else n_recommendations

    def recommend(self, profile, n_recommendations: int | None = None) -> np.ndarray:
        """Top item ids for a profile, best first."""
        profile = np.unique(np.asarray(profile, dtype=np.int64))
        result = self.queries.search(profile, k=self.n_neighbors)
        return recommend_from_neighbors(
            self.dataset,
            profile,
            result.ids,
            result.scores,
            self._count(n_recommendations),
        )

    async def recommend_async(
        self, profile, n_recommendations: int | None = None
    ) -> np.ndarray:
        """Awaitable :meth:`recommend`; shares the engine's batching."""
        profile = np.unique(np.asarray(profile, dtype=np.int64))
        result = await self.queries.search_async(profile, k=self.n_neighbors)
        return recommend_from_neighbors(
            self.dataset,
            profile,
            result.ids,
            result.scores,
            self._count(n_recommendations),
        )
