"""Batched query serving: dedup, result caching, sync + async APIs.

:class:`GraphSearcher` answers one query; :class:`QueryEngine` turns it
into a service front end:

* **batching** — ``search_many`` serves a list of concurrent queries
  and the :meth:`QueryEngine.search_async` entry point coalesces
  concurrent ``await``-ers into one batch per event-loop tick;
* **deduplication** — identical profiles inside a batch are searched
  once, so a thundering herd of the same query charges the engine a
  single time;
* **an LRU result cache** whose entries are stamped with the index's
  mutation version and dropped by an invalidation hook wired to
  :meth:`~repro.online.OnlineIndex.subscribe` — a cached answer is
  never served across a mutation, the "no stale neighbours" contract
  the property tests enforce.

All similarity spending still flows through the engine's ``charge()``
protocol; the cache saves whole queries, not accounting accuracy.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict

import numpy as np

from ..online.index import OnlineIndex
from .searcher import GraphSearcher, SearchResult

__all__ = ["QueryEngine"]


class QueryEngine:
    """Serves top-k queries over an :class:`OnlineIndex`.

    Args:
        index: the maintained index to serve from.
        k: default neighbours per query.
        cache_size: maximum cached results (LRU eviction); 0 disables
            caching.
        searcher: a configured :class:`GraphSearcher` to use (one with
            default parameters is built otherwise).
    """

    def __init__(
        self,
        index: OnlineIndex,
        *,
        k: int = 10,
        cache_size: int = 1024,
        searcher: GraphSearcher | None = None,
    ) -> None:
        self.index = index
        self.searcher = searcher or GraphSearcher(index)
        self.default_k = int(k)
        self.cache_size = int(cache_size)
        self._cache: OrderedDict[tuple, tuple[int, SearchResult]] = OrderedDict()
        self.n_queries = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.dedup_hits = 0
        self.invalidations = 0
        self._pending: list[tuple[object, int | None, asyncio.Future]] = []
        self._flush_task: asyncio.Task | None = None
        index.subscribe(self._on_mutation)

    def close(self) -> None:
        """Detach the invalidation hook from the index."""
        self.index.unsubscribe(self._on_mutation)

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------

    def _on_mutation(self, event: str, user: int) -> None:
        """Index mutation hook: every cached answer is now suspect."""
        if self._cache:
            self.invalidations += len(self._cache)
            self._cache.clear()

    def _lookup(self, key: tuple) -> SearchResult | None:
        entry = self._cache.get(key)
        if entry is None:
            return None
        version, result = entry
        if version != self.index.version:
            # Belt and braces: a mutation that somehow bypassed the
            # hook (e.g. a listener detached by close()) still cannot
            # serve a stale answer — entries are version-stamped.
            del self._cache[key]
            self.invalidations += 1
            return None
        self._cache.move_to_end(key)
        return result

    def _store(self, key: tuple, result: SearchResult) -> None:
        if self.cache_size <= 0:
            return
        self._cache[key] = (self.index.version, result)
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    # ------------------------------------------------------------------
    # Sync entry points
    # ------------------------------------------------------------------

    def search(self, profile, k: int | None = None) -> SearchResult:
        """Top-k neighbours of one profile (cached)."""
        return self.search_many([profile], k=k)[0]

    def search_many(self, profiles, k: int | None = None) -> list[SearchResult]:
        """Serve a batch of queries.

        Cache hits are answered immediately; the misses are
        deduplicated by canonical profile (identical profiles are
        searched once) and evaluated through the :class:`GraphSearcher`.
        Results come back in request order.
        """
        k = int(k if k is not None else self.default_k)
        results: list[SearchResult | None] = [None] * len(profiles)
        canon: list[np.ndarray] = []
        misses: OrderedDict[tuple, list[int]] = OrderedDict()
        for pos, profile in enumerate(profiles):
            ids = np.unique(np.asarray(profile, dtype=np.int64))
            canon.append(ids)
            key = (ids.tobytes(), k)
            hit = self._lookup(key)
            if hit is not None:
                self.cache_hits += 1
                results[pos] = hit
            else:
                misses.setdefault(key, []).append(pos)
        self.n_queries += len(profiles)
        for key, positions in misses.items():
            result = self.searcher.top_k(canon[positions[0]], k=k)
            self.cache_misses += 1
            self.dedup_hits += len(positions) - 1
            self._store(key, result)
            for pos in positions:
                results[pos] = result
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Async entry point
    # ------------------------------------------------------------------

    async def search_async(self, profile, k: int | None = None) -> SearchResult:
        """Awaitable :meth:`search`; concurrent callers share a batch.

        Every caller that is already scheduled when the flush task runs
        (e.g. all coroutines of one ``asyncio.gather``) lands in the
        same ``search_many`` batch and benefits from its deduplication.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((profile, k, future))
        if self._flush_task is None or self._flush_task.done():
            self._flush_task = loop.create_task(self._flush_pending())
        return await future

    async def _flush_pending(self) -> None:
        await asyncio.sleep(0)  # let every scheduled caller enqueue first
        while self._pending:
            batch, self._pending = self._pending, []
            groups: dict[int, list[tuple[object, asyncio.Future]]] = {}
            for profile, k, future in batch:
                kk = int(k if k is not None else self.default_k)
                groups.setdefault(kk, []).append((profile, future))
            for kk, items in groups.items():
                try:
                    outs = self.search_many([p for p, _ in items], k=kk)
                except Exception as exc:  # pragma: no cover - defensive
                    for _, future in items:
                        if not future.done():
                            future.set_exception(exc)
                else:
                    for (_, future), out in zip(items, outs):
                        if not future.done():
                            future.set_result(out)

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Operational counters for dashboards and tests."""
        return {
            "n_queries": self.n_queries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "dedup_hits": self.dedup_hits,
            "invalidations": self.invalidations,
            "cached_entries": len(self._cache),
            "index_version": self.index.version,
        }
