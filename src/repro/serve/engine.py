"""Batched query serving: dedup, result caching, sync + async APIs.

:class:`GraphSearcher` answers one query; :class:`QueryEngine` turns it
into a service front end:

* **batching** — ``search_many`` serves a list of concurrent queries
  and the :meth:`QueryEngine.search_async` entry point coalesces
  concurrent ``await``-ers into one batch per event-loop tick;
* **deduplication** — identical profiles inside a batch are searched
  once, so a thundering herd of the same query charges the engine a
  single time;
* **an LRU result cache** wired to the index's delta bus as a
  registered :class:`~repro.deltas.DerivedView`. Two invalidation
  modes:

  - ``"partial"`` (default): a user→cache-key postings map tracks
    which cached result sets contain which users; a mutation of user
    ``u`` evicts exactly the entries whose results include ``u``.
    Entries untouched by the mutation survive — under a 90/10
    read/write storm the cache keeps earning its keep instead of
    starting cold after every write. The relaxed contract: a cached
    answer **never contains a user mutated after it was computed**
    (so no tombstoned, re-profiled or refilled neighbour is ever
    served stale). A brand-new signup has no postings of her own, so
    her eviction is **seeded from her cluster route**: every user her
    arrival wired edges to (the deltas of the ``add_user`` event)
    also evicts — a cached answer full of her neighbours is exactly
    the answer she should now appear in. Entries untouched by both
    rules may still go stale against *unrelated* graph drift until
    they expire from the LRU; ``"full"`` mode trades the hit rate
    back for strictness. An online ``resplit`` evicts **by route**:
    it moves no edges and no profiles, only cluster routing, so the
    answers it can change are exactly those whose query routed into
    a touched cluster — a cluster→cache-key postings map (fed from
    :attr:`SearchResult.routed`) drops those and keeps the rest,
    which is what keeps the cache warm across churn-driven
    re-splits (the ``resplit_evictions_total`` /
    ``cache_resplit_kept`` metrics record the trade). This eviction
    is *exact*, not relaxed — surviving entries still equal a fresh
    search (property-tested). A ``rebuild`` (also ``user == -1``)
    still clears everything: it reassigns cluster ids wholesale.
  - ``"full"``: every mutation drops the whole cache and entries are
    version-stamped — the strict PR-2 contract that a cached answer
    always equals a fresh search against the current index state.

All similarity spending still flows through the engine's ``charge()``
protocol; the cache saves whole queries, not accounting accuracy.
"""

from __future__ import annotations

import asyncio
import threading
from collections import OrderedDict
from time import perf_counter

import numpy as np

from .. import obs
from ..deltas.view import DerivedView
from ..online.index import OnlineIndex
from .searcher import GraphSearcher, SearchResult

__all__ = ["AsyncSearchMixin", "QueryEngine"]


def _signup_contacts(event: str, deltas) -> set[int] | None:
    """Users a brand-new signup wired edges to — her eviction seeds.

    The ROADMAP-flagged blind spot: a new user has no postings, so a
    cached result she *should* appear in would survive until LRU churn.
    Her ``add_user`` deltas name every user her cluster route connected
    her to (her row's edges plus the reverse offers she won) — cached
    answers containing those users are precisely the ones she belongs
    in, so they are evicted too. ``None`` for every other event: the
    mutated user's own postings already cover those.
    """
    if event != "add_user":
        return None
    contacts: set[int] = set()
    for u, v, _added, *_ in deltas:
        contacts.add(int(u))
        contacts.add(int(v))
    return contacts


def _resplit_clusters(delta) -> list[int] | None:
    """Touched-cluster ids of a ``resplit`` event (``None`` otherwise).

    A re-split moves no graph edges, so its :class:`~repro.deltas.Delta`
    carries the routing change as the ``resplit`` payload instead; the
    touched-cluster ids are what lineage-keyed cache eviction needs.
    """
    if delta.event != "resplit":
        return None
    if delta.resplit is None:
        return None  # defensive: fall back to the full clear
    return [int(cid) for cid, _members in delta.resplit["members"]]


class _CacheView(DerivedView):
    """Result-cache invalidation as a derived view.

    Wraps a front end's ``_on_delta`` (both :class:`QueryEngine` and
    :class:`~repro.serve.ShardedQueryEngine` expose one); the resync
    recipe for a cache is the trivial one — drop everything, the next
    misses repopulate from the source of truth.
    """

    def __init__(self, engine, name: str) -> None:
        super().__init__(name=name)
        self._engine = engine

    def apply(self, delta) -> None:
        """Evict whatever this mutation can have changed."""
        self._engine._on_delta(delta)

    def resync(self) -> None:
        """A cache rebuilds by forgetting: clear and refill on miss."""
        self._engine._cache.clear()


class AsyncSearchMixin:
    """Coalescing ``search_async`` on top of a batched ``search_many``.

    Shared by :class:`QueryEngine` and
    :class:`~repro.serve.sharded.ShardedQueryEngine` so both front ends
    honour the same contract: every caller already scheduled when the
    flush task runs (e.g. all coroutines of one ``asyncio.gather``)
    lands in the same ``search_many`` batch and benefits from its
    deduplication. Hosts must initialise ``_init_async()`` and provide
    ``search_many(profiles, k)`` plus ``default_k``.
    """

    def _init_async(self) -> None:
        self._pending: list[tuple[object, int | None, asyncio.Future]] = []
        self._flush_task: asyncio.Task | None = None

    async def search_async(self, profile, k: int | None = None) -> "SearchResult":
        """Awaitable :meth:`search`; concurrent callers share a batch."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((profile, k, future))
        if self._flush_task is None or self._flush_task.done():
            self._flush_task = loop.create_task(self._flush_pending())
        return await future

    async def _flush_pending(self) -> None:
        await asyncio.sleep(0)  # let every scheduled caller enqueue first
        while self._pending:
            batch, self._pending = self._pending, []
            groups: dict[int, list[tuple[object, asyncio.Future]]] = {}
            for profile, k, future in batch:
                kk = int(k if k is not None else self.default_k)
                groups.setdefault(kk, []).append((profile, future))
            for kk, items in groups.items():
                try:
                    outs = self.search_many([p for p, _ in items], k=kk)
                except Exception as exc:  # pragma: no cover - defensive
                    for _, future in items:
                        if not future.done():
                            future.set_exception(exc)
                else:
                    for (_, future), out in zip(items, outs):
                        if not future.done():
                            future.set_result(out)


class _ResultCache:
    """LRU of :class:`SearchResult` with per-user partial invalidation.

    Keyed by ``(canonical profile bytes, k)``. In ``"partial"`` mode a
    postings map ``user id -> {keys whose cached result contains it}``
    lets a mutation evict exactly the answers it can have changed, and
    a second postings map ``cluster id -> {keys whose query routed
    through it}`` lets a re-split evict exactly the answers it can
    have re-routed; in ``"full"`` mode any mutation clears everything
    and lookups also enforce the stored index version (belt and braces
    against a detached hook). Thread-safe: the sharded front end
    serves lookups from multiple workers.
    """

    def __init__(
        self, size: int, mode: str = "partial", registry=None, frontend: str = "engine"
    ) -> None:
        if mode not in ("partial", "full"):
            raise ValueError("invalidation mode must be 'partial' or 'full'")
        self.size = int(size)
        self.mode = mode
        self.invalidations = 0
        self.resplit_evictions = 0
        self.resplit_kept = 0
        self._entries: OrderedDict[tuple, tuple[int, SearchResult]] = OrderedDict()
        self._postings: dict[int, set[tuple]] = {}
        self._cluster_postings: dict[int, set[tuple]] = {}
        self._lock = threading.Lock()
        reg = registry if registry is not None else obs.metrics()
        self._c_evictions = reg.counter("cache_evictions_total", frontend=frontend)
        self._c_resplit_evictions = reg.counter(
            "cache_resplit_evictions_total", frontend=frontend
        )
        self._g_resplit_kept = reg.gauge("cache_resplit_kept", frontend=frontend)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple, version: int) -> SearchResult | None:
        """Cached result for ``key``, or ``None`` (LRU order refreshed)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            stored_version, result = entry
            if self.mode == "full" and stored_version != version:
                self._drop(key)
                self.invalidations += 1
                return None
            self._entries.move_to_end(key)
            return result

    def put(self, key: tuple, version: int, result: SearchResult, live_version=None) -> None:
        """Store a result computed at index ``version``.

        ``live_version`` (a callable) closes the store-after-evict
        race under concurrent mutation: a result computed before a
        mutation must not enter the cache after that mutation's
        eviction already ran. Checked under the cache lock — the same
        lock :meth:`on_mutation` takes — so either the entry lands
        first and the eviction sees it, or the version has moved and
        the entry is discarded.
        """
        if self.size <= 0:
            return
        with self._lock:
            if live_version is not None and live_version() != version:
                return
            if key in self._entries:
                self._drop(key)
            self._entries[key] = (version, result)
            if self.mode == "partial":  # full mode never consults postings
                for v in result.ids:
                    self._postings.setdefault(int(v), set()).add(key)
                for cid in result.routed:
                    self._cluster_postings.setdefault(int(cid), set()).add(key)
            while len(self._entries) > self.size:
                self._drop(next(iter(self._entries)))

    def _drop(self, key: tuple) -> None:
        """Remove one entry and unthread it from both postings maps."""
        entry = self._entries.pop(key, None)
        if entry is None or self.mode != "partial":
            return
        for v in entry[1].ids:
            keys = self._postings.get(int(v))
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._postings[int(v)]
        for cid in entry[1].routed:
            keys = self._cluster_postings.get(int(cid))
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._cluster_postings[int(cid)]

    def on_mutation(self, event: str, user: int, touched=None, clusters=None) -> None:
        """Invalidate for one index mutation (the cache view's apply body).

        ``touched`` optionally widens the eviction beyond the mutated
        user's own postings — the engines pass the signup-contact set
        from :func:`_signup_contacts` so a brand-new user evicts the
        cached answers she should appear in. ``clusters`` is the
        touched-cluster set of a ``resplit`` event: a re-split changes
        only routing, so partial mode evicts exactly the entries whose
        query routed through a touched cluster and keeps everything
        else warm (full mode, ``rebuild``, or a global event without
        cluster info still clear everything).
        """
        with self._lock:
            if self.mode == "full" or event == "rebuild" or (
                user < 0 and clusters is None
            ):
                # Full mode always clears; a rebuild (or a global
                # event of unknown shape) reassigns cluster ids
                # wholesale, so even partial mode has nothing to keep.
                if self._entries:
                    self.invalidations += len(self._entries)
                    self._c_evictions.inc(len(self._entries))
                    self._entries.clear()
                    self._postings.clear()
                    self._cluster_postings.clear()
                return
            if user < 0:  # resplit with its touched-cluster set
                victims: set[tuple] = set()
                for cid in clusters:
                    victims.update(self._cluster_postings.get(int(cid), ()))
                for key in victims:
                    self._drop(key)
                dropped = len(victims)
                self.invalidations += dropped
                self.resplit_evictions += dropped
                self.resplit_kept += len(self._entries)
                self._c_evictions.inc(dropped)
                self._c_resplit_evictions.inc(dropped)
                self._g_resplit_kept.set(self.resplit_kept)
                return
            victims = {user}
            if touched:
                victims.update(touched)
            dropped = 0
            for uid in victims:
                for key in list(self._postings.get(uid, ())):
                    self._drop(key)
                    dropped += 1
            self.invalidations += dropped
            if dropped:
                self._c_evictions.inc(dropped)

    def clear(self) -> None:
        """Drop every entry and its postings (not counted as eviction)."""
        with self._lock:
            self._entries.clear()
            self._postings.clear()
            self._cluster_postings.clear()

    def postings_size(self) -> int:
        """Total user-postings entries (tests bound the map's growth)."""
        with self._lock:
            return sum(len(keys) for keys in self._postings.values())

    def cluster_postings_size(self) -> int:
        """Total cluster-postings entries (bounded alongside the above)."""
        with self._lock:
            return sum(len(keys) for keys in self._cluster_postings.values())


class QueryEngine(AsyncSearchMixin):
    """Serves top-k queries over an :class:`OnlineIndex`.

    Args:
        index: the maintained index to serve from.
        k: default neighbours per query.
        cache_size: maximum cached results (LRU eviction); 0 disables
            caching.
        invalidation: ``"partial"`` (default — evict only answers the
            mutation can have changed) or ``"full"`` (drop everything
            on any mutation; the strict coherence mode). See the
            module docstring for the exact contracts.
        searcher: a configured :class:`GraphSearcher` to use (one with
            default parameters is built otherwise).
        registry: :class:`~repro.obs.MetricsRegistry` for the cache
            hit/miss/eviction and batch-latency metrics (default: the
            process-wide registry).
        tracer: :class:`~repro.obs.Tracer` wrapping each cache miss in
            a ``query`` root span (children: the searcher's ``search``
            tree and ``cache_store``).
    """

    def __init__(
        self,
        index: OnlineIndex,
        *,
        k: int = 10,
        cache_size: int = 1024,
        invalidation: str = "partial",
        searcher: GraphSearcher | None = None,
        registry=None,
        tracer=None,
    ) -> None:
        reg = registry if registry is not None else obs.metrics()
        self.tracer = tracer if tracer is not None else obs.tracer()
        self.index = index
        self.searcher = searcher or GraphSearcher(
            index, registry=registry, tracer=tracer
        )
        self.default_k = int(k)
        self.cache_size = int(cache_size)
        self._cache = _ResultCache(
            cache_size, mode=invalidation, registry=reg, frontend="engine"
        )
        self.n_queries = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.dedup_hits = 0
        self._c_hits = reg.counter("cache_hits_total", frontend="engine")
        self._c_misses = reg.counter("cache_misses_total", frontend="engine")
        self._c_dedup = reg.counter("cache_dedup_total", frontend="engine")
        self._h_batch = reg.histogram("serve_batch_seconds", frontend="engine")
        self._init_async()
        self._view = index.deltas.register(_CacheView(self, "result_cache"))

    @property
    def invalidation(self) -> str:
        """The cache's invalidation mode (``"partial"`` or ``"full"``)."""
        return self._cache.mode

    def close(self) -> None:
        """Detach the invalidation view from the index's delta bus.

        A closed engine stops observing mutations: in ``"full"`` mode
        the version stamps still refuse stale entries on lookup, in
        ``"partial"`` mode the cache is cleared here because nothing
        will evict mutated answers anymore.
        """
        self._view.close()
        if self._cache.mode == "partial":
            self._cache.clear()

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------

    def _on_delta(self, delta) -> None:
        """Delta-view hook → evict what the mutation can have changed."""
        self._cache.on_mutation(
            delta.event,
            delta.user,
            touched=_signup_contacts(delta.event, delta.edges),
            clusters=_resplit_clusters(delta),
        )

    # ------------------------------------------------------------------
    # Sync entry points
    # ------------------------------------------------------------------

    def search(self, profile, k: int | None = None) -> SearchResult:
        """Top-k neighbours of one profile (cached)."""
        return self.search_many([profile], k=k)[0]

    def search_many(self, profiles, k: int | None = None) -> list[SearchResult]:
        """Serve a batch of queries.

        Cache hits are answered immediately; the misses are
        deduplicated by canonical profile (identical profiles are
        searched once) and evaluated through the :class:`GraphSearcher`.
        Results come back in request order.
        """
        t_batch = perf_counter()
        k = int(k if k is not None else self.default_k)
        results: list[SearchResult | None] = [None] * len(profiles)
        canon: list[np.ndarray] = []
        misses: OrderedDict[tuple, list[int]] = OrderedDict()
        for pos, profile in enumerate(profiles):
            ids = np.unique(np.asarray(profile, dtype=np.int64))
            canon.append(ids)
            key = (ids.tobytes(), k)
            hit = self._cache.get(key, self.index.version)
            if hit is not None:
                self.cache_hits += 1
                self._c_hits.inc()
                results[pos] = hit
            else:
                misses.setdefault(key, []).append(pos)
        self.n_queries += len(profiles)
        for key, positions in misses.items():
            with self.tracer.span("query", k=k, dedup=len(positions)):
                version = self.index.version
                result = self.searcher.top_k(canon[positions[0]], k=k)
                with self.tracer.span("cache_store"):
                    self._cache.put(
                        key, version, result, live_version=lambda: self.index.version
                    )
            self.cache_misses += 1
            self._c_misses.inc()
            dedup = len(positions) - 1
            if dedup:
                self.dedup_hits += dedup
                self._c_dedup.inc(dedup)
            for pos in positions:
                results[pos] = result
        self._h_batch.observe(perf_counter() - t_batch)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------

    @property
    def invalidations(self) -> int:
        """Cache entries dropped by mutations (and version mismatches)."""
        return self._cache.invalidations

    def stats(self) -> dict:
        """Operational counters for dashboards and tests.

        Keys follow the shared serving-stats vocabulary
        (``docs/observability.md``); the pre-unification per-component
        spellings were dropped after their one-release grace window.
        """
        return {
            "component": "query_engine",
            "queries_total": self.n_queries,
            "cache_hits_total": self.cache_hits,
            "cache_misses_total": self.cache_misses,
            "dedup_hits_total": self.dedup_hits,
            "evictions_total": self._cache.invalidations,
            "resplit_evictions_total": self._cache.resplit_evictions,
            "resplit_kept": self._cache.resplit_kept,
            "invalidation_mode": self._cache.mode,
            "cache_entries": len(self._cache),
            "postings_entries": self._cache.postings_size(),
            "cluster_postings_entries": self._cache.cluster_postings_size(),
            "version": self.index.version,
        }
