"""Batched query serving: dedup, result caching, sync + async APIs.

:class:`GraphSearcher` answers one query; :class:`QueryEngine` turns it
into a service front end:

* **batching** — ``search_many`` serves a list of concurrent queries
  and the :meth:`QueryEngine.search_async` entry point coalesces
  concurrent ``await``-ers into one batch per event-loop tick;
* **deduplication** — identical profiles inside a batch are searched
  once, so a thundering herd of the same query charges the engine a
  single time;
* **an LRU result cache** wired to
  :meth:`~repro.online.OnlineIndex.subscribe`. Two invalidation modes:

  - ``"partial"`` (default): a user→cache-key postings map tracks
    which cached result sets contain which users; a mutation of user
    ``u`` evicts exactly the entries whose results include ``u``.
    Entries untouched by the mutation survive — under a 90/10
    read/write storm the cache keeps earning its keep instead of
    starting cold after every write. The relaxed contract: a cached
    answer **never contains a user mutated after it was computed**
    (so no tombstoned, re-profiled or refilled neighbour is ever
    served stale). A brand-new signup has no postings of her own, so
    her eviction is **seeded from her cluster route**: every user her
    arrival wired edges to (the deltas of the ``add_user`` event)
    also evicts — a cached answer full of her neighbours is exactly
    the answer she should now appear in. Entries untouched by both
    rules may still go stale against *unrelated* graph drift until
    they expire from the LRU; ``"full"`` mode trades the hit rate
    back for strictness. Global events (``user < 0``: ``rebuild``
    and online ``resplit``) clear the whole cache even in partial
    mode — a re-split reassigns many users' clusters at once, so
    every cached answer's routing may have changed.
  - ``"full"``: every mutation drops the whole cache and entries are
    version-stamped — the strict PR-2 contract that a cached answer
    always equals a fresh search against the current index state.

All similarity spending still flows through the engine's ``charge()``
protocol; the cache saves whole queries, not accounting accuracy.
"""

from __future__ import annotations

import asyncio
import threading
from collections import OrderedDict

import numpy as np

from ..online.index import OnlineIndex
from .searcher import GraphSearcher, SearchResult

__all__ = ["AsyncSearchMixin", "QueryEngine"]


def _signup_contacts(event: str, deltas) -> set[int] | None:
    """Users a brand-new signup wired edges to — her eviction seeds.

    The ROADMAP-flagged blind spot: a new user has no postings, so a
    cached result she *should* appear in would survive until LRU churn.
    Her ``add_user`` deltas name every user her cluster route connected
    her to (her row's edges plus the reverse offers she won) — cached
    answers containing those users are precisely the ones she belongs
    in, so they are evicted too. ``None`` for every other event: the
    mutated user's own postings already cover those.
    """
    if event != "add_user":
        return None
    contacts: set[int] = set()
    for u, v, _added, *_ in deltas:
        contacts.add(int(u))
        contacts.add(int(v))
    return contacts


class AsyncSearchMixin:
    """Coalescing ``search_async`` on top of a batched ``search_many``.

    Shared by :class:`QueryEngine` and
    :class:`~repro.serve.sharded.ShardedQueryEngine` so both front ends
    honour the same contract: every caller already scheduled when the
    flush task runs (e.g. all coroutines of one ``asyncio.gather``)
    lands in the same ``search_many`` batch and benefits from its
    deduplication. Hosts must initialise ``_init_async()`` and provide
    ``search_many(profiles, k)`` plus ``default_k``.
    """

    def _init_async(self) -> None:
        self._pending: list[tuple[object, int | None, asyncio.Future]] = []
        self._flush_task: asyncio.Task | None = None

    async def search_async(self, profile, k: int | None = None) -> "SearchResult":
        """Awaitable :meth:`search`; concurrent callers share a batch."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((profile, k, future))
        if self._flush_task is None or self._flush_task.done():
            self._flush_task = loop.create_task(self._flush_pending())
        return await future

    async def _flush_pending(self) -> None:
        await asyncio.sleep(0)  # let every scheduled caller enqueue first
        while self._pending:
            batch, self._pending = self._pending, []
            groups: dict[int, list[tuple[object, asyncio.Future]]] = {}
            for profile, k, future in batch:
                kk = int(k if k is not None else self.default_k)
                groups.setdefault(kk, []).append((profile, future))
            for kk, items in groups.items():
                try:
                    outs = self.search_many([p for p, _ in items], k=kk)
                except Exception as exc:  # pragma: no cover - defensive
                    for _, future in items:
                        if not future.done():
                            future.set_exception(exc)
                else:
                    for (_, future), out in zip(items, outs):
                        if not future.done():
                            future.set_result(out)


class _ResultCache:
    """LRU of :class:`SearchResult` with per-user partial invalidation.

    Keyed by ``(canonical profile bytes, k)``. In ``"partial"`` mode a
    postings map ``user id -> {keys whose cached result contains it}``
    lets a mutation evict exactly the answers it can have changed; in
    ``"full"`` mode any mutation clears everything and lookups also
    enforce the stored index version (belt and braces against a
    detached hook). Thread-safe: the sharded front end serves lookups
    from multiple workers.
    """

    def __init__(self, size: int, mode: str = "partial") -> None:
        if mode not in ("partial", "full"):
            raise ValueError("invalidation mode must be 'partial' or 'full'")
        self.size = int(size)
        self.mode = mode
        self.invalidations = 0
        self._entries: OrderedDict[tuple, tuple[int, SearchResult]] = OrderedDict()
        self._postings: dict[int, set[tuple]] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple, version: int) -> SearchResult | None:
        """Cached result for ``key``, or ``None`` (LRU order refreshed)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            stored_version, result = entry
            if self.mode == "full" and stored_version != version:
                self._drop(key)
                self.invalidations += 1
                return None
            self._entries.move_to_end(key)
            return result

    def put(self, key: tuple, version: int, result: SearchResult, live_version=None) -> None:
        """Store a result computed at index ``version``.

        ``live_version`` (a callable) closes the store-after-evict
        race under concurrent mutation: a result computed before a
        mutation must not enter the cache after that mutation's
        eviction already ran. Checked under the cache lock — the same
        lock :meth:`on_mutation` takes — so either the entry lands
        first and the eviction sees it, or the version has moved and
        the entry is discarded.
        """
        if self.size <= 0:
            return
        with self._lock:
            if live_version is not None and live_version() != version:
                return
            if key in self._entries:
                self._drop(key)
            self._entries[key] = (version, result)
            if self.mode == "partial":  # full mode never consults postings
                for v in result.ids:
                    self._postings.setdefault(int(v), set()).add(key)
            while len(self._entries) > self.size:
                self._drop(next(iter(self._entries)))

    def _drop(self, key: tuple) -> None:
        """Remove one entry and unthread it from the postings map."""
        entry = self._entries.pop(key, None)
        if entry is None or self.mode != "partial":
            return
        for v in entry[1].ids:
            keys = self._postings.get(int(v))
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._postings[int(v)]

    def on_mutation(self, event: str, user: int, touched=None) -> None:
        """Invalidate for one index mutation (the subscribe hook body).

        ``touched`` optionally widens the eviction beyond the mutated
        user's own postings — the engines pass the signup-contact set
        from :func:`_signup_contacts` so a brand-new user evicts the
        cached answers she should appear in.
        """
        with self._lock:
            if self.mode == "full" or user < 0 or event == "rebuild":
                # Full mode always clears; global events (rebuild,
                # resplit — both carry user == -1) reassign clusters
                # wholesale, so even partial mode has nothing to keep.
                if self._entries:
                    self.invalidations += len(self._entries)
                    self._entries.clear()
                    self._postings.clear()
                return
            victims = {user}
            if touched:
                victims.update(touched)
            for uid in victims:
                for key in list(self._postings.get(uid, ())):
                    self._drop(key)
                    self.invalidations += 1

    def clear(self) -> None:
        """Drop every entry and its postings (not counted as eviction)."""
        with self._lock:
            self._entries.clear()
            self._postings.clear()

    def postings_size(self) -> int:
        """Total postings entries (tests bound the map's growth)."""
        with self._lock:
            return sum(len(keys) for keys in self._postings.values())


class QueryEngine(AsyncSearchMixin):
    """Serves top-k queries over an :class:`OnlineIndex`.

    Args:
        index: the maintained index to serve from.
        k: default neighbours per query.
        cache_size: maximum cached results (LRU eviction); 0 disables
            caching.
        invalidation: ``"partial"`` (default — evict only answers the
            mutation can have changed) or ``"full"`` (drop everything
            on any mutation; the strict coherence mode). See the
            module docstring for the exact contracts.
        searcher: a configured :class:`GraphSearcher` to use (one with
            default parameters is built otherwise).
    """

    def __init__(
        self,
        index: OnlineIndex,
        *,
        k: int = 10,
        cache_size: int = 1024,
        invalidation: str = "partial",
        searcher: GraphSearcher | None = None,
    ) -> None:
        self.index = index
        self.searcher = searcher or GraphSearcher(index)
        self.default_k = int(k)
        self.cache_size = int(cache_size)
        self._cache = _ResultCache(cache_size, mode=invalidation)
        self.n_queries = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.dedup_hits = 0
        self._init_async()
        index.subscribe(self._on_mutation)

    @property
    def invalidation(self) -> str:
        """The cache's invalidation mode (``"partial"`` or ``"full"``)."""
        return self._cache.mode

    def close(self) -> None:
        """Detach the invalidation hook from the index.

        A closed engine stops observing mutations: in ``"full"`` mode
        the version stamps still refuse stale entries on lookup, in
        ``"partial"`` mode the cache is cleared here because nothing
        will evict mutated answers anymore.
        """
        self.index.unsubscribe(self._on_mutation)
        if self._cache.mode == "partial":
            self._cache.clear()

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------

    def _on_mutation(self, event: str, user: int, deltas) -> None:
        """Index mutation hook → evict what the mutation can have changed."""
        self._cache.on_mutation(event, user, touched=_signup_contacts(event, deltas))

    # ------------------------------------------------------------------
    # Sync entry points
    # ------------------------------------------------------------------

    def search(self, profile, k: int | None = None) -> SearchResult:
        """Top-k neighbours of one profile (cached)."""
        return self.search_many([profile], k=k)[0]

    def search_many(self, profiles, k: int | None = None) -> list[SearchResult]:
        """Serve a batch of queries.

        Cache hits are answered immediately; the misses are
        deduplicated by canonical profile (identical profiles are
        searched once) and evaluated through the :class:`GraphSearcher`.
        Results come back in request order.
        """
        k = int(k if k is not None else self.default_k)
        results: list[SearchResult | None] = [None] * len(profiles)
        canon: list[np.ndarray] = []
        misses: OrderedDict[tuple, list[int]] = OrderedDict()
        for pos, profile in enumerate(profiles):
            ids = np.unique(np.asarray(profile, dtype=np.int64))
            canon.append(ids)
            key = (ids.tobytes(), k)
            hit = self._cache.get(key, self.index.version)
            if hit is not None:
                self.cache_hits += 1
                results[pos] = hit
            else:
                misses.setdefault(key, []).append(pos)
        self.n_queries += len(profiles)
        for key, positions in misses.items():
            version = self.index.version
            result = self.searcher.top_k(canon[positions[0]], k=k)
            self.cache_misses += 1
            self.dedup_hits += len(positions) - 1
            self._cache.put(
                key, version, result, live_version=lambda: self.index.version
            )
            for pos in positions:
                results[pos] = result
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------

    @property
    def invalidations(self) -> int:
        """Cache entries dropped by mutations (and version mismatches)."""
        return self._cache.invalidations

    def stats(self) -> dict:
        """Operational counters for dashboards and tests."""
        return {
            "n_queries": self.n_queries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "dedup_hits": self.dedup_hits,
            "invalidations": self._cache.invalidations,
            "invalidation_mode": self._cache.mode,
            "cached_entries": len(self._cache),
            "postings_entries": self._cache.postings_size(),
            "index_version": self.index.version,
        }
