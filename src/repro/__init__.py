"""repro — Cluster-and-Conquer KNN graph construction.

Reproduction of "Cluster-and-Conquer: When Randomness Meets Graph
Locality" (Giakkoupis, Kermarrec, Ruas, Taïani — ICDE 2021).

Quickstart::

    from repro import data, make_engine, cluster_and_conquer, C2Params

    dataset = data.load("ml1M", scale=0.05)
    engine = make_engine(dataset)              # GoldFinger-backed Jaccard
    result = cluster_and_conquer(engine, C2Params(k=30))
    print(result.graph.neighborhood(0))
"""

from . import (
    baselines,
    bench,
    core,
    data,
    distributed,
    graph,
    online,
    persist,
    recommend,
    serve,
    similarity,
)
from .baselines import (
    BuildResult,
    brute_force_knn,
    hyrec_knn,
    lsh_knn,
    nndescent_knn,
)
from .core import C2Params, cluster_and_conquer, paper_params
from .data import Dataset
from .graph import KNNGraph, average_similarity, edge_recall, quality
from .online import MutableDataset, OnlineIndex
from .serve import GraphSearcher, QueryEngine, Recommender, SearchResult
from .similarity import ExactEngine, GoldFingerEngine, SimilarityEngine, make_engine

__version__ = "1.0.0"

__all__ = [
    "BuildResult",
    "C2Params",
    "Dataset",
    "ExactEngine",
    "GoldFingerEngine",
    "GraphSearcher",
    "KNNGraph",
    "MutableDataset",
    "OnlineIndex",
    "QueryEngine",
    "Recommender",
    "SearchResult",
    "SimilarityEngine",
    "average_similarity",
    "baselines",
    "bench",
    "brute_force_knn",
    "cluster_and_conquer",
    "core",
    "data",
    "distributed",
    "edge_recall",
    "graph",
    "hyrec_knn",
    "lsh_knn",
    "make_engine",
    "nndescent_knn",
    "online",
    "paper_params",
    "persist",
    "quality",
    "recommend",
    "serve",
    "similarity",
]
