"""NN-Descent (Dong, Moses & Li, WWW 2011) — greedy KNN baseline.

Full algorithm with the classic optimisations:

* **reverse neighbourhoods** — each user's candidate pool joins her
  forward neighbours with users pointing *at* her;
* **new/old flags** — only pairs involving at least one neighbour
  inserted since the previous iteration are compared, so converged
  regions stop costing similarity evaluations;
* **sampling** — candidate lists are sampled at rate ``sample_rate``
  (Dong's ρ), bounding per-user work to ``O((ρk)²)``;
* **δ-termination** — stop when an iteration performs fewer than
  ``δ k n`` heap updates.

Unlike Hyrec, NN-Descent compares the members of a user's candidate
pool *among themselves* (a local join), updating both endpoints.
"""

from __future__ import annotations

import numpy as np

from ..graph.heap import EMPTY
from ..graph.knn_graph import KNNGraph, random_graph
from ..similarity.engine import SimilarityEngine
from ..result import BuildResult, track_build

__all__ = ["nndescent_knn"]

_FLUSH_EVERY = 128


def nndescent_knn(
    engine: SimilarityEngine,
    k: int = 30,
    delta: float = 0.001,
    max_iterations: int = 30,
    sample_rate: float = 1.0,
    seed: int = 0,
) -> BuildResult:
    """Build an approximate KNN graph with NN-Descent."""
    if not 0 < sample_rate <= 1:
        raise ValueError("sample_rate must be in (0, 1]")
    n = engine.n_users
    rng = np.random.default_rng(seed)
    updates_log: list[int] = []

    with track_build(engine) as info:
        graph = random_graph(engine, k, seed)
        # Every initial neighbour is "new" — it has never joined.
        new_flags: list[set[int]] = [set(map(int, graph.neighbors(u))) for u in range(n)]

        iterations = 0
        for _ in range(max_iterations):
            iterations += 1
            updates, new_flags = _iterate(
                engine, graph, new_flags, k, sample_rate, rng
            )
            updates_log.append(updates)
            if updates < delta * k * n:
                break

    return BuildResult(
        graph=graph,
        seconds=info["seconds"],
        comparisons=info["comparisons"],
        iterations=iterations,
        extra={"updates_per_iteration": updates_log},
    )


def _reverse_lists(graph: KNNGraph) -> list[np.ndarray]:
    """Reverse adjacency: ``rev[v]`` = users that list ``v``."""
    n = graph.n_users
    ids = graph.heaps.ids
    owners = np.repeat(np.arange(n, dtype=np.int64), graph.k)
    flat = ids.ravel().astype(np.int64)
    valid = flat != EMPTY
    flat, owners = flat[valid], owners[valid]
    order = np.argsort(flat, kind="stable")
    flat, owners = flat[order], owners[order]
    rev: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * n
    if flat.size:
        boundaries = np.flatnonzero(np.diff(flat)) + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [flat.size]])
        for lo, hi in zip(starts, ends):
            rev[int(flat[lo])] = owners[lo:hi]
    return rev


def _sample(rng: np.random.Generator, pool: np.ndarray, limit: int) -> np.ndarray:
    """At most ``limit`` elements of ``pool``, sampled without replacement."""
    if pool.size <= limit:
        return pool
    return rng.choice(pool, size=limit, replace=False)


def _iterate(
    engine: SimilarityEngine,
    graph: KNNGraph,
    new_flags: list[set[int]],
    k: int,
    sample_rate: float,
    rng: np.random.Generator,
) -> tuple[int, list[set[int]]]:
    """One NN-Descent local-join pass; returns (updates, next new flags)."""
    n = graph.n_users
    limit = max(1, int(round(sample_rate * k)))
    rev = _reverse_lists(graph)

    # Flags for neighbours inserted during *this* iteration.
    next_flags: list[set[int]] = [set() for _ in range(n)]
    updates = 0
    rev_t: list[np.ndarray] = []
    rev_s: list[np.ndarray] = []
    rev_sc: list[np.ndarray] = []

    def flush() -> int:
        nonlocal rev_t, rev_s, rev_sc
        if not rev_t:
            return 0
        t = np.concatenate(rev_t)
        s = np.concatenate(rev_s)
        sc = np.concatenate(rev_sc)
        rev_t, rev_s, rev_sc = [], [], []
        order = np.argsort(t, kind="stable")
        t, s, sc = t[order], s[order], sc[order]
        boundaries = np.flatnonzero(np.diff(t)) + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [t.size]])
        count = 0
        for lo, hi in zip(starts, ends):
            target = int(t[lo])
            inserted = graph.add_batch_ids(target, s[lo:hi], sc[lo:hi])
            next_flags[target].update(map(int, inserted))
            count += int(inserted.size)
        return count

    for u in range(n):
        fwd = graph.neighbors(u).astype(np.int64)
        if fwd.size == 0:
            continue
        flags_u = new_flags[u]
        fwd_new = np.array([v for v in fwd if int(v) in flags_u], dtype=np.int64)
        fwd_old = np.setdiff1d(fwd, fwd_new, assume_unique=False)

        rev_u = rev[u]
        rev_new_mask = np.array([int(v) for v in rev_u if u in new_flags[int(v)]], dtype=np.int64)
        rev_old_pool = np.setdiff1d(rev_u, rev_new_mask, assume_unique=False)

        l_new = np.unique(
            np.concatenate([_sample(rng, fwd_new, limit), _sample(rng, rev_new_mask, limit)])
        )
        l_new = l_new[l_new != u]
        if l_new.size == 0:
            continue
        l_old = np.unique(
            np.concatenate([_sample(rng, fwd_old, limit), _sample(rng, rev_old_pool, limit)])
        )
        l_old = np.setdiff1d(l_old, l_new, assume_unique=False)
        l_old = l_old[l_old != u]

        pool = np.concatenate([l_new, l_old])
        # Local join: new x (new ∪ old). Compute the block once and
        # charge the number of *distinct* pairs actually joined.
        scores = engine.block(l_new, pool, counted=False)
        engine.charge(l_new.size * l_old.size + l_new.size * (l_new.size - 1) // 2)

        for pos, x in enumerate(l_new):
            row = scores[pos]
            others = pool != x
            inserted = graph.add_batch_ids(int(x), pool[others], row[others])
            next_flags[int(x)].update(map(int, inserted))
            updates += int(inserted.size)
            rev_t.append(pool[others])
            rev_s.append(np.full(int(others.sum()), int(x), dtype=np.int64))
            rev_sc.append(row[others])

        if len(rev_t) >= _FLUSH_EVERY:
            updates += flush()

    updates += flush()
    return updates, next_flags
