"""Baseline KNN-graph builders: brute force, Hyrec, NN-Descent, LSH."""

# .base must be imported before .lsh: repro.core depends on .base, and
# .lsh depends on repro.core, so this order keeps the cycle harmless.
from ..result import BuildResult, track_build
from .brute_force import brute_force_knn
from .hyrec import hyrec_knn
from .kmeans import kmeans_cluster_dataset, kmeans_knn
from .lsh import lsh_knn
from .nndescent import nndescent_knn

__all__ = [
    "BuildResult",
    "brute_force_knn",
    "hyrec_knn",
    "kmeans_cluster_dataset",
    "kmeans_knn",
    "lsh_knn",
    "nndescent_knn",
    "track_build",
]
