"""LSH / MinHash baseline (Indyk & Motwani; Gionis et al.).

Each of ``t`` min-wise independent permutations of the item set hashes
every user to her minimum permuted item — one bucket per distinct
minimum, i.e. up to ``m = |I|`` buckets per permutation. Following the
paper's "fair" re-implementation, each hash function creates its own
buckets, a user's neighbours are searched only among her co-bucketed
users (local brute force), and the per-bucket partial graphs are merged
with bounded heaps exactly like C²'s Step 3.

The contrast with Cluster-and-Conquer is deliberate and structural:
MinHash's huge hash space fragments sparse datasets into many tiny
buckets (hurting quality and parallel balance), which is precisely the
weakness FastRandomHash's small ``[1, b]`` hash space removes.
"""

from __future__ import annotations

from ..core.clustering import minhash_cluster_dataset
from ..core.hashing import make_minhash_family
from ..core.local_knn import brute_force_local
from ..core.merge import merge_partials
from ..core.scheduler import run_clusters
from ..similarity.engine import SimilarityEngine
from ..result import BuildResult, track_build

__all__ = ["lsh_knn"]


def lsh_knn(
    engine: SimilarityEngine,
    k: int = 30,
    n_hashes: int = 10,
    n_workers: int = 1,
    seed: int = 0,
) -> BuildResult:
    """Build an approximate KNN graph with bucketed MinHash LSH.

    Args:
        engine: similarity oracle (GoldFinger-backed in the paper).
        k: neighbourhood size.
        n_hashes: number of MinHash permutations (paper: 10).
        n_workers: thread-pool width for per-bucket computations.
        seed: RNG seed for the permutations.
    """
    dataset = engine.dataset

    with track_build(engine) as info:
        perms = make_minhash_family(dataset.n_items, n_hashes, seed=seed)
        clustering = minhash_cluster_dataset(dataset, perms)
        partials = run_clusters(
            clustering.clusters,
            lambda cluster: brute_force_local(engine, cluster.users, k),
            n_workers=n_workers,
        )
        graph = merge_partials(partials, dataset.n_users, k)

    sizes = clustering.sizes()
    return BuildResult(
        graph=graph,
        seconds=info["seconds"],
        comparisons=info["comparisons"],
        iterations=0,
        extra={
            "n_buckets": len(clustering.clusters),
            "bucket_sizes": sizes,
            "max_bucket_size": int(sizes[0]) if sizes.size else 0,
        },
    )
