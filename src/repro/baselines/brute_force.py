"""Brute-force exact KNN graph (the paper's reference baseline).

Computes every pairwise similarity — ``n(n-1)/2`` evaluations — and
keeps the top ``k`` per user. Exact with respect to the engine's
similarity (run it on an :class:`ExactEngine` for the true KNN graph
used as the quality denominator, or on GoldFinger to reproduce the
paper's BruteForce competitor, which also uses fingerprints).
"""

from __future__ import annotations

import numpy as np

from ..graph.knn_graph import KNNGraph
from ..similarity.engine import SimilarityEngine
from ..result import BuildResult, track_build

__all__ = ["brute_force_knn"]

_ROW_BLOCK = 512


def brute_force_knn(engine: SimilarityEngine, k: int = 30) -> BuildResult:
    """Exact KNN graph under ``engine``'s similarity.

    Works in row blocks of the full pairwise matrix so memory stays
    ``O(block * n)``. Symmetry is exploited internally (each pair is
    materialised in both directions by the block product), but the
    engine is charged the analytic ``n(n-1)/2`` the paper attributes
    to brute force.
    """
    n = engine.n_users
    graph = KNNGraph(n, k)
    all_users = np.arange(n, dtype=np.int64)

    with track_build(engine) as info:
        engine.charge(n * (n - 1) // 2)
        for start in range(0, n, _ROW_BLOCK):
            rows = all_users[start : start + _ROW_BLOCK]
            scores = engine.block(rows, all_users, counted=False)
            for pos, u in enumerate(rows):
                row = scores[pos]
                take = min(k + 1, n)  # +1 because u itself is in the row
                top = np.argpartition(-row, take - 1)[:take]
                graph.add_batch(int(u), top, row[top])

    return BuildResult(
        graph=graph,
        seconds=info["seconds"],
        comparisons=info["comparisons"],
        iterations=0,
    )
