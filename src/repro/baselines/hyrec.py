"""Hyrec (Boutet et al., Middleware 2014) — greedy KNN baseline.

Starts from a random k-degree graph and iteratively compares each user
``u`` against her *neighbours' neighbours* (unlike NN-Descent, which
compares neighbours among themselves). Each computed similarity updates
both endpoints' heaps. Terminates when the number of heap updates in an
iteration falls below ``δ k n`` or after ``max_iterations``.
"""

from __future__ import annotations

import numpy as np

from ..graph.heap import EMPTY
from ..graph.knn_graph import KNNGraph, random_graph
from ..similarity.engine import SimilarityEngine
from ..result import BuildResult, track_build

__all__ = ["hyrec_knn"]

# Reverse (symmetric) updates are buffered and applied in groups of
# this many users to bound the buffer while keeping updates vectorised.
_FLUSH_EVERY = 256


def hyrec_knn(
    engine: SimilarityEngine,
    k: int = 30,
    delta: float = 0.001,
    max_iterations: int = 30,
    seed: int = 0,
) -> BuildResult:
    """Build an approximate KNN graph with Hyrec."""
    n = engine.n_users
    updates_log: list[int] = []

    with track_build(engine) as info:
        graph = random_graph(engine, k, seed)
        iterations = 0
        for _ in range(max_iterations):
            iterations += 1
            updates = _iterate(engine, graph, k)
            updates_log.append(updates)
            if updates < delta * k * n:
                break

    return BuildResult(
        graph=graph,
        seconds=info["seconds"],
        comparisons=info["comparisons"],
        iterations=iterations,
        extra={"updates_per_iteration": updates_log},
    )


def _iterate(engine: SimilarityEngine, graph: KNNGraph, k: int) -> int:
    """One Hyrec pass over all users; returns the number of updates."""
    n = graph.n_users
    updates = 0
    rev_t: list[np.ndarray] = []
    rev_s: list[np.ndarray] = []
    rev_sc: list[np.ndarray] = []

    for u in range(n):
        nbrs = graph.neighbors(u)
        if nbrs.size == 0:
            continue
        non = graph.heaps.ids[nbrs]
        cands = np.unique(non[non != EMPTY]).astype(np.int64)
        cands = cands[(cands != u) & ~np.isin(cands, nbrs)]
        if cands.size == 0:
            continue
        scores = engine.one_to_many(u, cands)
        updates += graph.add_batch(u, cands, scores)
        rev_t.append(cands)
        rev_s.append(np.full(cands.size, u, dtype=np.int64))
        rev_sc.append(scores)
        if len(rev_t) >= _FLUSH_EVERY:
            updates += _flush_reverse(graph, rev_t, rev_s, rev_sc)

    updates += _flush_reverse(graph, rev_t, rev_s, rev_sc)
    return updates


def _flush_reverse(
    graph: KNNGraph,
    targets: list[np.ndarray],
    sources: list[np.ndarray],
    scores: list[np.ndarray],
) -> int:
    """Apply buffered symmetric updates grouped by target; clears buffers."""
    if not targets:
        return 0
    t = np.concatenate(targets)
    s = np.concatenate(sources)
    sc = np.concatenate(scores)
    targets.clear()
    sources.clear()
    scores.clear()
    order = np.argsort(t, kind="stable")
    t, s, sc = t[order], s[order], sc[order]
    boundaries = np.flatnonzero(np.diff(t)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [t.size]])
    updates = 0
    for lo, hi in zip(starts, ends):
        updates += graph.add_batch(int(t[lo]), s[lo:hi], sc[lo:hi])
    return updates
