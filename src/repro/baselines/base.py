"""Re-export of the shared build-result types (see ``repro.result``)."""

from ..result import BuildResult, track_build

__all__ = ["BuildResult", "track_build"]
