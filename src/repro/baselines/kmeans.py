"""K-means pre-clustering + local KNN — the §VII [41] comparison point.

The paper's related work (Xue et al., SIGIR'05 [41]) clusters users
with k-means before computing local KNN graphs, and the paper's
argument against it is cost: "it requires to compute many similarities
while our main purpose is to limit as much as possible the number of
similarities computed". This module implements that design faithfully
so the argument can be measured:

* spherical k-means over the binary profile matrix (cosine assignment
  against centroid vectors — each user/centroid evaluation is charged
  to the engine, since it is exactly the kind of profile-similarity
  computation FastRandomHash avoids);
* the resulting clusters feed the same local-KNN + merge pipeline C²
  uses.

Unlike FastRandomHash, each user lands in exactly *one* cluster, so
there is no redundancy to rescue borderline users — [41]'s design.
"""

from __future__ import annotations

import numpy as np

from ..core.clustering import Cluster, ClusteringResult
from ..core.local_knn import solve_cluster
from ..core.merge import merge_partials
from ..core.scheduler import run_clusters
from ..result import BuildResult, track_build
from ..similarity.engine import SimilarityEngine

__all__ = ["kmeans_cluster_dataset", "kmeans_knn"]


def kmeans_cluster_dataset(
    engine: SimilarityEngine,
    n_clusters: int,
    n_iterations: int = 5,
    seed: int = 0,
) -> ClusteringResult:
    """Spherical k-means clustering of the engine's dataset.

    Every user-to-centroid cosine evaluation is charged to the engine
    (``n_users * n_clusters`` per iteration): this is the similarity
    bill the paper's §VII argument is about.
    """
    if n_clusters < 1:
        raise ValueError("n_clusters must be >= 1")
    dataset = engine.dataset
    rng = np.random.default_rng(seed)
    n = dataset.n_users
    n_clusters = min(n_clusters, max(1, n))

    matrix = dataset.to_csr_matrix().astype(np.float64)
    norms = np.sqrt(matrix.multiply(matrix).sum(axis=1)).A.ravel()
    norms[norms == 0] = 1.0
    from scipy.sparse import diags

    normalized = diags(1.0 / norms) @ matrix

    # Initialise centroids from random distinct users.
    picks = rng.choice(n, size=n_clusters, replace=False)
    centroids = np.asarray(normalized[picks].todense())

    assignment = np.zeros(n, dtype=np.int64)
    for _ in range(max(1, n_iterations)):
        sims = normalized @ centroids.T  # (n, C) cosine similarities
        engine.charge(n * n_clusters)
        assignment = np.asarray(sims).argmax(axis=1)
        for c in range(n_clusters):
            members = np.flatnonzero(assignment == c)
            if members.size == 0:
                # Re-seed empty clusters from a random user.
                members = rng.choice(n, size=1)
            centroid = np.asarray(normalized[members].mean(axis=0)).ravel()
            norm = np.linalg.norm(centroid)
            centroids[c] = centroid / norm if norm > 0 else centroid

    clusters = [
        Cluster(
            users=np.flatnonzero(assignment == c),
            config=0,
            eta=c + 1,
            splittable=False,
        )
        for c in range(n_clusters)
        if np.any(assignment == c)
    ]
    return ClusteringResult(clusters=clusters, n_configs=1, n_splits=0)


def kmeans_knn(
    engine: SimilarityEngine,
    k: int = 30,
    n_clusters: int = 64,
    n_iterations: int = 5,
    rho: int = 5,
    n_workers: int = 1,
    seed: int = 0,
) -> BuildResult:
    """KNN graph via k-means pre-clustering + local KNN ([41])."""
    dataset = engine.dataset

    with track_build(engine) as info:
        clustering = kmeans_cluster_dataset(
            engine, n_clusters, n_iterations=n_iterations, seed=seed
        )
        partials = run_clusters(
            clustering.clusters,
            lambda cluster: solve_cluster(engine, cluster.users, k, rho=rho, seed=seed),
            n_workers=n_workers,
        )
        graph = merge_partials(partials, dataset.n_users, k)

    sizes = clustering.sizes()
    return BuildResult(
        graph=graph,
        seconds=info["seconds"],
        comparisons=info["comparisons"],
        iterations=n_iterations,
        extra={
            "n_clusters": len(clustering.clusters),
            "cluster_sizes": sizes,
            "max_cluster_size": int(sizes[0]) if sizes.size else 0,
            "clustering_comparisons": dataset.n_users * n_clusters * n_iterations,
        },
    )
