"""Simulated distributed (map-reduce) deployment of C² (§VIII)."""

from .simulator import MapReduceCost, simulate_mapreduce

__all__ = ["MapReduceCost", "simulate_mapreduce"]
