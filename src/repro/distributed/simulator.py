"""Simulated map-reduce deployment of Cluster-and-Conquer (§VIII).

The paper's conclusion argues C² is "particularly amenable to
large-scale distributed deployments, in particular within a map-reduce
infrastructure": clusters are independent work units (map), and the
bounded-heap merge is a per-user reduction. No distributed runtime is
available offline, so this module provides a deterministic *simulator*
of such a deployment, with an explicit cost model:

* **map**: each cluster costs its local-KNN similarity count
  (``s(s-1)/2`` for brute-forced clusters, ``ρk²s/2`` for Hyrec-solved
  ones — the paper's own cost model from Alg. 2);
* **shuffle**: each cluster emits ``s * k`` (user, neighbour, score)
  records routed to per-user reducers;
* **reduce**: each user merges up to ``t * k`` candidates.

The simulator performs greedy longest-processing-time assignment of
map tasks to workers (the distributed analogue of the paper's
largest-first scheduling) and reports the resulting makespan, speed-up
and shuffle volume, so the scalability claim can be examined
quantitatively at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

import heapq

import numpy as np

from ..core.clustering import ClusteringResult

__all__ = ["MapReduceCost", "simulate_mapreduce"]


@dataclass(frozen=True)
class MapReduceCost:
    """Outcome of one simulated map-reduce execution.

    Attributes:
        n_workers: mappers in the simulated cluster.
        map_makespan: similarity-evaluation cost of the slowest mapper.
        total_map_work: sum of all map work (1-worker makespan).
        speedup: ``total_map_work / map_makespan``.
        efficiency: ``speedup / n_workers`` (1.0 = perfectly balanced).
        shuffle_records: (user, neighbour, score) triples shuffled.
        max_reducer_load: candidates merged by the busiest reducer.
    """

    n_workers: int
    map_makespan: float
    total_map_work: float
    speedup: float
    efficiency: float
    shuffle_records: int
    max_reducer_load: int


def _map_task_cost(size: int, k: int, rho: int) -> float:
    """Alg. 2 cost model: brute force below ``ρk²``, Hyrec above."""
    if size < 2:
        return 0.0
    if size < rho * k * k:
        return size * (size - 1) / 2
    return rho * k * k * size / 2


def simulate_mapreduce(
    clustering: ClusteringResult,
    n_workers: int,
    k: int = 30,
    rho: int = 5,
) -> MapReduceCost:
    """Simulate a map-reduce execution of C²'s Step 2 + Step 3.

    Map tasks (clusters) are assigned largest-first to the least-loaded
    worker (greedy LPT — the distributed counterpart of the paper's
    size-ordered priority queue).
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")

    sizes = np.array([c.size for c in clustering.clusters], dtype=np.int64)
    costs = np.array([_map_task_cost(int(s), k, rho) for s in sizes])

    # Greedy LPT assignment.
    workers = [0.0] * n_workers
    heapq.heapify(workers)
    for cost in -np.sort(-costs):
        load = heapq.heappop(workers)
        heapq.heappush(workers, load + float(cost))
    makespan = max(workers)
    total = float(costs.sum())

    # Shuffle: every cluster member emits up to k candidate edges.
    shuffle = int(np.minimum(sizes - 1, k).clip(min=0) @ sizes)

    # Reducer load: per user, one candidate set of up to k per cluster
    # membership (t memberships before splitting; splitting preserves
    # the count).
    reducer_loads = np.zeros(0, dtype=np.int64)
    if sizes.size:
        n_users = max(int(c.users.max()) for c in clustering.clusters if c.size) + 1
        reducer_loads = np.zeros(n_users, dtype=np.int64)
        for cluster in clustering.clusters:
            if cluster.size >= 2:
                reducer_loads[cluster.users] += min(cluster.size - 1, k)

    speedup = total / makespan if makespan > 0 else float(n_workers)
    return MapReduceCost(
        n_workers=n_workers,
        map_makespan=makespan,
        total_map_work=total,
        speedup=speedup,
        efficiency=speedup / n_workers,
        shuffle_records=shuffle,
        max_reducer_load=int(reducer_loads.max()) if reducer_loads.size else 0,
    )
