"""Registry of the paper's six datasets as synthetic specifications.

Full-size parameters follow Table I of the paper. ``load(name, scale=…)``
is the single entry point used by benchmarks and examples; the default
``scale`` keeps laptop runtimes reasonable while preserving the
dense-vs-sparse contrast (ml10M vs AmazonMovies) that drives the
paper's sensitivity analysis.
"""

from __future__ import annotations

import zlib

import numpy as np

from .dataset import Dataset
from .synthetic import SyntheticSpec, generate

__all__ = ["PAPER_SPECS", "DEFAULT_SCALE", "dataset_names", "load"]

# Table I of the paper. mean_profile_size is the reported |P_u| column.
PAPER_SPECS: dict[str, SyntheticSpec] = {
    "ml1M": SyntheticSpec(
        name="ml1M",
        n_users=6_038,
        n_items=3_533,
        mean_profile_size=95.28,
        popularity_exponent=0.55,
        n_communities=40,
        community_pool_size=140,
    ),
    "ml10M": SyntheticSpec(
        name="ml10M",
        n_users=69_816,
        n_items=10_472,
        mean_profile_size=84.30,
        popularity_exponent=0.55,
        n_communities=80,
        community_pool_size=130,
    ),
    "ml20M": SyntheticSpec(
        name="ml20M",
        n_users=138_362,
        n_items=22_884,
        mean_profile_size=88.14,
        popularity_exponent=0.55,
        n_communities=120,
        community_pool_size=140,
    ),
    "AM": SyntheticSpec(
        name="AM",
        n_users=57_430,
        n_items=171_356,
        mean_profile_size=56.82,
        popularity_exponent=0.5,
        n_communities=300,
        community_pool_size=160,
        community_affinity=0.75,
        community_pool_bias=0.0,
        community_size_exponent=0.2,
    ),
    "DBLP": SyntheticSpec(
        name="DBLP",
        n_users=18_889,
        n_items=203_030,
        mean_profile_size=36.67,
        popularity_exponent=0.5,
        n_communities=400,
        community_pool_size=90,
        community_affinity=0.85,
        community_pool_bias=0.0,
        community_size_exponent=0.2,
    ),
    "GW": SyntheticSpec(
        name="GW",
        n_users=20_270,
        n_items=135_540,
        mean_profile_size=54.64,
        popularity_exponent=0.5,
        n_communities=300,
        community_pool_size=140,
        community_affinity=0.75,
        community_pool_bias=0.0,
        community_size_exponent=0.2,
    ),
}

# Default shrink factor applied by ``load``: user counts scale linearly,
# item counts by sqrt, keeping generation + brute-force ground truth
# tractable on a laptop (see DESIGN.md §2).
DEFAULT_SCALE = 0.05


def dataset_names() -> list[str]:
    """The six paper dataset labels, in Table I order."""
    return list(PAPER_SPECS)


def load(name: str, scale: float = DEFAULT_SCALE, seed: int = 42) -> Dataset:
    """Generate the synthetic stand-in for paper dataset ``name``.

    Args:
        name: one of :func:`dataset_names` (``ml1M``, ``ml10M``,
            ``ml20M``, ``AM``, ``DBLP``, ``GW``).
        scale: fraction of the paper's user count to generate
            (``1.0`` reproduces Table I sizes).
        seed: RNG seed; a fixed (name, scale, seed) triple is fully
            deterministic.
    """
    if name not in PAPER_SPECS:
        raise KeyError(f"unknown dataset {name!r}; expected one of {dataset_names()}")
    spec = PAPER_SPECS[name]
    if scale != 1.0:
        spec = spec.scaled(scale)
    # Derive a per-dataset seed so different datasets are independent
    # even under the same user-provided seed.
    sub_seed = int(np.random.SeedSequence([seed, zlib.crc32(name.encode())]).generate_state(1)[0])
    return generate(spec, seed=sub_seed)
