"""Dataset substrate: model, synthetic generators, transforms, CV."""

from .cv import Fold, k_fold_split
from .dataset import Dataset
from .io import load_dataset, save_dataset
from .sampling import sample_profiles
from .registry import DEFAULT_SCALE, PAPER_SPECS, dataset_names, load
from .stats import DatasetStats, describe
from .synthetic import SyntheticSpec, generate
from .transforms import binarize_ratings, compact_items, filter_min_ratings

__all__ = [
    "Dataset",
    "DatasetStats",
    "DEFAULT_SCALE",
    "Fold",
    "PAPER_SPECS",
    "SyntheticSpec",
    "binarize_ratings",
    "compact_items",
    "dataset_names",
    "describe",
    "filter_min_ratings",
    "generate",
    "k_fold_split",
    "load",
    "load_dataset",
    "sample_profiles",
    "save_dataset",
]
