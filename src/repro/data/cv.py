"""5-fold cross-validation over ratings, as used for the paper's
recommendation experiments (Table III).

Each user's profile is partitioned into ``n_folds`` item groups. A
fold's *train* dataset keeps the other groups; the held-out items form
the fold's per-user *test* sets, which recall is measured against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dataset import Dataset

__all__ = ["Fold", "k_fold_split"]


@dataclass(frozen=True)
class Fold:
    """One cross-validation fold.

    Attributes:
        train: dataset with the held-out items removed.
        test_indptr / test_indices: CSR layout of the held-out items
            (``test_indices[test_indptr[u]:test_indptr[u+1]]`` are the
            items hidden from user ``u``).
    """

    train: Dataset
    test_indptr: np.ndarray
    test_indices: np.ndarray

    def test_items(self, user: int) -> np.ndarray:
        """Held-out items of ``user`` in this fold."""
        return self.test_indices[self.test_indptr[user] : self.test_indptr[user + 1]]


def k_fold_split(dataset: Dataset, n_folds: int = 5, seed: int = 0) -> list[Fold]:
    """Split each user's profile into ``n_folds`` folds.

    Item-level split: every rating is assigned a fold uniformly at
    random (per-user permutation, so folds are balanced within each
    user up to rounding). Users always keep at least one training item
    so similarity stays defined.
    """
    if n_folds < 2:
        raise ValueError("n_folds must be >= 2")
    rng = np.random.default_rng(seed)
    n = dataset.n_users

    # Assign a fold label to every rating, balanced within each user.
    fold_of = np.empty(dataset.n_ratings, dtype=np.int8)
    for u in range(n):
        lo, hi = dataset.indptr[u], dataset.indptr[u + 1]
        size = hi - lo
        labels = np.arange(size) % n_folds
        rng.shuffle(labels)
        # Guarantee at least one training item per user in every fold:
        # with size >= min 20 ratings this is automatic, but guard small
        # profiles anyway by forcing label of the first item to differ.
        if size > 0 and np.all(labels == labels[0]):
            labels[0] = (labels[0] + 1) % n_folds
        fold_of[lo:hi] = labels

    folds = []
    for f in range(n_folds):
        test_mask = fold_of == f
        train_mask = ~test_mask

        def build(mask: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            counts = np.empty(n, dtype=np.int64)
            for u in range(n):
                counts[u] = int(mask[dataset.indptr[u] : dataset.indptr[u + 1]].sum())
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            return indptr, dataset.indices[mask].copy()

        train_indptr, train_indices = build(train_mask)
        test_indptr, test_indices = build(test_mask)
        folds.append(
            Fold(
                train=Dataset(
                    indptr=train_indptr,
                    indices=train_indices,
                    n_items=dataset.n_items,
                    name=f"{dataset.name}-fold{f}",
                ),
                test_indptr=test_indptr,
                test_indices=test_indices,
            )
        )
    return folds
