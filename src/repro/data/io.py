"""Plain-text persistence for datasets.

Format: one header line ``#users n_users n_items`` followed by one line
per user listing the space-separated item ids of their profile (an
empty line for an empty profile). Human-readable and diff-friendly —
the same role the paper's preprocessed rating files play.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .dataset import Dataset

__all__ = ["save_dataset", "load_dataset"]

_HEADER = "#users"


def save_dataset(dataset: Dataset, path: str | Path) -> None:
    """Write ``dataset`` to ``path`` in the text profile format."""
    path = Path(path)
    with path.open("w", encoding="ascii") as f:
        f.write(f"{_HEADER} {dataset.n_users} {dataset.n_items} {dataset.name}\n")
        for _, profile in dataset.iter_profiles():
            f.write(" ".join(str(int(i)) for i in profile))
            f.write("\n")


def load_dataset(path: str | Path) -> Dataset:
    """Read a dataset previously written by :func:`save_dataset`."""
    path = Path(path)
    with path.open("r", encoding="ascii") as f:
        header = f.readline().split()
        if len(header) < 3 or header[0] != _HEADER:
            raise ValueError(f"{path}: not a repro dataset file")
        n_users, n_items = int(header[1]), int(header[2])
        name = header[3] if len(header) > 3 else path.stem
        profiles = []
        for _ in range(n_users):
            line = f.readline()
            if not line:
                raise ValueError(f"{path}: truncated file")
            tokens = line.split()
            profiles.append(np.array([int(t) for t in tokens], dtype=np.int64))
    return Dataset.from_profiles(profiles, n_items=n_items, name=name)
