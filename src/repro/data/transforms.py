"""Dataset preprocessing used by the paper's experimental setup.

The paper binarises rating datasets (keep ratings > 3) and removes
users with fewer than 20 ratings (cold-start users are out of scope).
Our synthetic generators already produce binary profiles, but these
transforms are part of the public pipeline so that real rating data
can be fed through the exact same code path.
"""

from __future__ import annotations

import numpy as np

from .dataset import Dataset

__all__ = ["binarize_ratings", "filter_min_ratings", "compact_items"]


def binarize_ratings(
    users: np.ndarray,
    items: np.ndarray,
    ratings: np.ndarray,
    threshold: float = 3.0,
    n_users: int | None = None,
    n_items: int | None = None,
    name: str = "dataset",
) -> Dataset:
    """Keep ratings strictly above ``threshold`` and drop the values.

    Mirrors the paper: "we binarize these datasets by keeping only
    ratings that reflect a positive opinion (i.e. higher than 3)".
    """
    users = np.asarray(users)
    items = np.asarray(items)
    ratings = np.asarray(ratings, dtype=np.float64)
    if not (users.shape == items.shape == ratings.shape):
        raise ValueError("users, items and ratings must be parallel arrays")
    keep = ratings > threshold
    return Dataset.from_ratings(
        users[keep], items[keep], n_users=n_users, n_items=n_items, name=name
    )


def filter_min_ratings(dataset: Dataset, min_ratings: int = 20) -> tuple[Dataset, np.ndarray]:
    """Drop users with fewer than ``min_ratings`` items.

    Returns the filtered dataset (users reindexed densely) and the
    array of kept original user ids. The item universe is preserved,
    matching the paper's treatment of DBLP ("removed from the user set
    but not from the item set").
    """
    kept = np.flatnonzero(dataset.profile_sizes >= min_ratings)
    return dataset.subset(kept, name=dataset.name), kept


def compact_items(dataset: Dataset) -> tuple[Dataset, np.ndarray]:
    """Reindex items densely, dropping items referenced by no profile.

    Returns the compacted dataset and the mapping ``new_id -> old_id``.
    Useful before building GoldFinger tables or MinHash permutations
    when the raw item universe is much larger than its used portion.
    """
    used = np.unique(dataset.indices)
    remap = np.full(dataset.n_items, -1, dtype=np.int32)
    remap[used] = np.arange(used.size, dtype=np.int32)
    return (
        Dataset(
            indptr=dataset.indptr.copy(),
            indices=remap[dataset.indices],
            n_items=int(used.size),
            name=dataset.name,
        ),
        used,
    )
