"""Profile sampling — "KNN graph construction on the cheap" (§VII).

The paper's related work ([39], Kermarrec, Ruas & Taïani, Euro-Par'18)
caps each user's profile at a fixed size before building the KNN graph,
trading a little quality for a large constant-factor speed-up in
similarity computations. Provided here as an optional preprocessing
step composable with every builder in this library.

Policies:

* ``"uniform"`` — keep a uniform random subset;
* ``"least_popular"`` — keep the least popular items. The insight of
  [39] (nobody cares if you liked Star Wars): head items carry almost
  no discriminating information about a user's taste, so dropping them
  first preserves KNN quality best;
* ``"most_popular"`` — keep the most popular items (the strawman
  baseline of [39], useful for ablations).
"""

from __future__ import annotations

import numpy as np

from .dataset import Dataset

__all__ = ["sample_profiles"]

_POLICIES = ("uniform", "least_popular", "most_popular")


def sample_profiles(
    dataset: Dataset,
    max_size: int,
    policy: str = "least_popular",
    seed: int = 0,
) -> Dataset:
    """Cap every profile at ``max_size`` items under ``policy``.

    Profiles already at or below the cap are kept unchanged. Item
    popularity is measured on ``dataset`` itself (degree = number of
    profiles containing the item).
    """
    if max_size < 1:
        raise ValueError("max_size must be >= 1")
    if policy not in _POLICIES:
        raise ValueError(f"unknown policy {policy!r}; expected one of {_POLICIES}")

    rng = np.random.default_rng(seed)
    degrees = np.bincount(dataset.indices, minlength=dataset.n_items)

    profiles = []
    for _, profile in dataset.iter_profiles():
        if profile.size <= max_size:
            profiles.append(profile)
            continue
        if policy == "uniform":
            keep = rng.choice(profile.size, size=max_size, replace=False)
        else:
            # Rank by (popularity, random tie-break) so equal-degree
            # items do not bias toward low item ids.
            noise = rng.random(profile.size)
            order = np.lexsort((noise, degrees[profile]))
            keep = order[:max_size] if policy == "least_popular" else order[-max_size:]
        profiles.append(np.sort(profile[keep]))

    return Dataset.from_profiles(
        profiles, n_items=dataset.n_items, name=f"{dataset.name}|cap{max_size}"
    )
