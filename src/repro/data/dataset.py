"""Core dataset model: users associated with sets of items.

The paper works on *item-based* datasets: each user ``u`` owns a profile
``P_u``, a subset of the item universe ``I``. Profiles are stored in a
compressed sparse row (CSR) layout — one flat array of item ids plus an
index pointer array — which keeps memory compact and lets similarity
kernels and FastRandomHash operate with vectorised numpy primitives
(``np.minimum.reduceat``, sparse matrix products, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Dataset"]


@dataclass(frozen=True)
class Dataset:
    """An immutable users/items dataset with CSR profile storage.

    Attributes:
        indptr: ``int64`` array of shape ``(n_users + 1,)``. Profile of
            user ``u`` lives in ``indices[indptr[u]:indptr[u + 1]]``.
        indices: ``int32`` array of item ids, sorted and unique within
            each user's slice.
        n_items: size of the item universe ``|I|``. Item ids in
            ``indices`` are all ``< n_items``.
        name: human-readable dataset label (used in reports).
    """

    indptr: np.ndarray
    indices: np.ndarray
    n_items: int
    name: str = "dataset"
    _profile_sizes: np.ndarray = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        indices = np.ascontiguousarray(self.indices, dtype=np.int32)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be 1-D arrays")
        if indptr.size == 0 or indptr[0] != 0 or indptr[-1] != indices.size:
            raise ValueError("malformed indptr: must start at 0 and end at len(indices)")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if indices.size and (indices.min() < 0 or indices.max() >= self.n_items):
            raise ValueError("item ids must lie in [0, n_items)")
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "_profile_sizes", np.diff(indptr))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_profiles(cls, profiles, n_items: int | None = None, name: str = "dataset") -> "Dataset":
        """Build a dataset from an iterable of per-user item collections.

        Items within each profile are deduplicated and sorted. When
        ``n_items`` is omitted it is inferred as ``max(item) + 1``.
        """
        cleaned = [np.unique(np.asarray(list(p), dtype=np.int64)) for p in profiles]
        indptr = np.zeros(len(cleaned) + 1, dtype=np.int64)
        for u, p in enumerate(cleaned):
            indptr[u + 1] = indptr[u] + p.size
        indices = (
            np.concatenate(cleaned).astype(np.int32)
            if cleaned and indptr[-1] > 0
            else np.empty(0, dtype=np.int32)
        )
        if n_items is None:
            n_items = int(indices.max()) + 1 if indices.size else 0
        return cls(indptr=indptr, indices=indices, n_items=int(n_items), name=name)

    @classmethod
    def from_ratings(
        cls,
        users: np.ndarray,
        items: np.ndarray,
        n_users: int | None = None,
        n_items: int | None = None,
        name: str = "dataset",
    ) -> "Dataset":
        """Build a dataset from parallel ``(user, item)`` rating arrays."""
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if users.shape != items.shape:
            raise ValueError("users and items must have the same shape")
        if n_users is None:
            n_users = int(users.max()) + 1 if users.size else 0
        if n_items is None:
            n_items = int(items.max()) + 1 if items.size else 0
        # Sort by (user, item), then deduplicate pairs.
        order = np.lexsort((items, users))
        users, items = users[order], items[order]
        if users.size:
            keep = np.ones(users.size, dtype=bool)
            keep[1:] = (users[1:] != users[:-1]) | (items[1:] != items[:-1])
            users, items = users[keep], items[keep]
        counts = np.bincount(users, minlength=n_users)
        indptr = np.zeros(n_users + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr=indptr, indices=items.astype(np.int32), n_items=int(n_items), name=name)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def n_users(self) -> int:
        """Number of users ``|U|``."""
        return self.indptr.size - 1

    @property
    def n_ratings(self) -> int:
        """Total number of (user, item) associations."""
        return int(self.indices.size)

    @property
    def profile_sizes(self) -> np.ndarray:
        """``|P_u|`` for every user, shape ``(n_users,)``."""
        return self._profile_sizes

    def profile(self, user: int) -> np.ndarray:
        """The sorted item ids of ``user``'s profile (a view, do not mutate)."""
        return self.indices[self.indptr[user] : self.indptr[user + 1]]

    def profile_set(self, user: int) -> set[int]:
        """``P_u`` as a Python set (convenience for tests and examples)."""
        return set(int(i) for i in self.profile(user))

    def iter_profiles(self):
        """Yield ``(user, profile_view)`` pairs in user order."""
        for u in range(self.n_users):
            yield u, self.profile(u)

    @property
    def density(self) -> float:
        """Fraction of the user x item matrix that is filled."""
        cells = self.n_users * self.n_items
        return self.n_ratings / cells if cells else 0.0

    def subset(self, users: np.ndarray, name: str | None = None) -> "Dataset":
        """A new dataset restricted to ``users`` (reindexed 0..len-1).

        The item universe is kept unchanged so that item ids — and thus
        hash values — remain comparable with the parent dataset.
        """
        users = np.asarray(users, dtype=np.int64)
        sizes = self.profile_sizes[users]
        indptr = np.zeros(users.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int32)
        for pos, u in enumerate(users):
            indices[indptr[pos] : indptr[pos + 1]] = self.profile(int(u))
        return Dataset(
            indptr=indptr,
            indices=indices,
            n_items=self.n_items,
            name=name or f"{self.name}[{users.size} users]",
        )

    def to_csr_matrix(self):
        """The binary user x item matrix as a ``scipy.sparse.csr_matrix``."""
        from scipy.sparse import csr_matrix

        data = np.ones(self.indices.size, dtype=np.int32)
        return csr_matrix(
            (data, self.indices.astype(np.int64), self.indptr),
            shape=(self.n_users, self.n_items),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Dataset(name={self.name!r}, users={self.n_users}, "
            f"items={self.n_items}, ratings={self.n_ratings})"
        )
