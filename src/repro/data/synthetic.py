"""Synthetic generators standing in for the paper's six real datasets.

The paper evaluates on MovieLens1M/10M/20M, AmazonMovies, DBLP and
Gowalla, none of which can be downloaded in this offline environment.
We substitute generators that reproduce the statistical properties the
algorithms are sensitive to (see DESIGN.md §2):

* **Item popularity skew** (Zipf-like). Popular items hashed to low
  values create the oversized FastRandomHash clusters that recursive
  splitting exists to fix — MovieLens-like datasets are dense with few
  items and strong skew, AmazonMovies-like datasets are sparse with a
  huge item universe and a flat tail.
* **Profile-size distribution** (lognormal, clipped at the paper's
  min-20-ratings rule) which drives ``ℓ = |P_u ∪ P_v|`` in Theorems 1-2.
* **Planted similarity structure**: users belong to overlapping
  interest communities and draw most of their profile from community
  item pools, so a ground-truth KNN graph has meaningful structure for
  greedy algorithms to converge to and for recall experiments.

The generative model, per user:

1. draw a community ``c`` (Zipf sizes) and a profile size ``s``;
2. draw ``round(alpha * s)`` items from the community pool (Zipf
   weights within the pool) and the rest from global popularity;
3. deduplicate; top up from the global distribution if short.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dataset import Dataset

__all__ = ["SyntheticSpec", "generate"]


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of the synthetic users/items generative model.

    Attributes:
        name: dataset label.
        n_users: number of users to generate.
        n_items: size of the item universe.
        mean_profile_size: target mean ``|P_u|`` (lognormal mean).
        profile_sigma: lognormal shape parameter for profile sizes.
        popularity_exponent: Zipf exponent of global item popularity
            (higher = more skewed; MovieLens-like ~1.0, sparse
            AmazonMovies-like ~0.8).
        n_communities: number of planted interest communities.
        community_pool_size: number of items in each community pool.
        community_affinity: fraction ``alpha`` of a profile drawn from
            the community pool (the rest is global-popularity noise).
        community_size_exponent: Zipf exponent of community sizes
            (0 = equal-sized communities; higher = a few dominant
            interest groups, as in MovieLens-like data).
        community_pool_bias: exponent applied to global popularity when
            sampling pool members. ``1.0`` = pools prefer popular items
            (dense, MovieLens-like: everyone watches the hits), ``0.0``
            = uniform pools (sparse, AmazonMovies-like: niche interest
            areas barely overlap, keeping head-item prevalence low).
        min_profile_size: lower clip for profile sizes (paper keeps
            users with >= 20 ratings).
    """

    name: str
    n_users: int
    n_items: int
    mean_profile_size: float
    profile_sigma: float = 0.6
    popularity_exponent: float = 1.0
    n_communities: int = 50
    community_pool_size: int = 400
    community_affinity: float = 0.7
    community_pool_bias: float = 1.0
    community_size_exponent: float = 0.8
    min_profile_size: int = 20

    def scaled(self, scale: float) -> "SyntheticSpec":
        """A spec with the *user* count shrunk by ``scale``.

        The item universe is deliberately kept at full size: per-item
        prevalence (fraction of profiles containing an item) is what
        drives FastRandomHash cluster sizes and the paper's b = 4096
        setting, and prevalence is determined by profile sizes and the
        popularity distribution — both scale-free. Shrinking the item
        universe would inflate prevalence and distort the clustering
        regime the paper's parameters are tuned for.
        """
        if scale <= 0 or scale > 1:
            raise ValueError("scale must be in (0, 1]")
        return SyntheticSpec(
            name=self.name,
            n_users=max(50, int(round(self.n_users * scale))),
            n_items=self.n_items,
            mean_profile_size=self.mean_profile_size,
            profile_sigma=self.profile_sigma,
            popularity_exponent=self.popularity_exponent,
            # Communities scale linearly with users so the *community
            # size* (neighbour supply per user, in units of k) stays
            # constant — the property KNN quality depends on.
            n_communities=max(4, int(round(self.n_communities * scale))),
            community_pool_size=self.community_pool_size,
            community_affinity=self.community_affinity,
            community_pool_bias=self.community_pool_bias,
            community_size_exponent=self.community_size_exponent,
            min_profile_size=self.min_profile_size,
        )


def _zipf_weights(n: int, exponent: float) -> np.ndarray:
    """Normalised Zipf weights ``rank^-exponent`` over ``n`` elements."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def _sample_distinct(rng: np.random.Generator, population: np.ndarray,
                     weights: np.ndarray, count: int) -> np.ndarray:
    """Sample ``count`` distinct elements of ``population`` by weight.

    Uses the exponential-race trick (Gumbel top-k) which is vectorised
    and exact for sampling without replacement proportional to weights.
    ``O(len(population))`` per call — use for small pools.
    """
    count = min(count, population.size)
    if count <= 0:
        return np.empty(0, dtype=population.dtype)
    keys = rng.exponential(size=population.size) / weights
    picked = np.argpartition(keys, count - 1)[:count]
    return population[picked]


def _sample_distinct_cdf(rng: np.random.Generator, cdf: np.ndarray,
                         count: int, exclude_seen: np.ndarray) -> np.ndarray:
    """Sample ``count`` distinct item ids by inverse-CDF rejection.

    ``O(count log m)`` per draw instead of ``O(m)``, which keeps
    generation fast for the paper's 100k+-item universes. ``exclude_seen``
    is a reusable boolean scratch array marking already-chosen ids; it
    is updated in place.
    """
    m = cdf.size
    chosen: list[np.ndarray] = []
    have = 0
    for _ in range(32):  # rejection rounds; plenty for count << m
        if have >= count:
            break
        draw = np.searchsorted(cdf, rng.random(2 * (count - have) + 4), side="right")
        draw = np.minimum(draw, m - 1)
        draw = draw[~exclude_seen[draw]]
        # de-duplicate within the batch, preserving draw order
        _, first_pos = np.unique(draw, return_index=True)
        draw = draw[np.sort(first_pos)][: count - have]
        exclude_seen[draw] = True
        chosen.append(draw)
        have += draw.size
    if not chosen:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(chosen).astype(np.int64)


def generate(spec: SyntheticSpec, seed: int = 0) -> Dataset:
    """Generate a dataset following ``spec``; deterministic in ``seed``."""
    rng = np.random.default_rng(seed)

    # Global item popularity: Zipf over a random permutation of item ids
    # (so that popularity rank is decoupled from item id, as in reality).
    item_perm = rng.permutation(spec.n_items)
    global_weights = np.empty(spec.n_items, dtype=np.float64)
    global_weights[item_perm] = _zipf_weights(spec.n_items, spec.popularity_exponent)

    # Community pools: each community prefers a popularity-biased random
    # subset of items, giving overlapping but distinct interest areas.
    # Within a pool, draws are uniform: the pool membership already
    # encodes popularity, and re-weighting inside the pool would drive
    # the prevalence of head items far above anything seen in the real
    # datasets (every user of every community would hold them).
    pool_size = min(spec.community_pool_size, spec.n_items)
    pools = []
    pool_weights = []
    all_items = np.arange(spec.n_items)
    if spec.community_pool_bias == 0.0:
        pool_sampling_weights = np.full(spec.n_items, 1.0 / spec.n_items)
    else:
        w = global_weights**spec.community_pool_bias
        pool_sampling_weights = w / w.sum()
    for _ in range(spec.n_communities):
        pool = _sample_distinct(rng, all_items, pool_sampling_weights, pool_size)
        pools.append(pool)
        pool_weights.append(np.full(pool.size, 1.0 / pool.size))

    # Community membership: Zipf-distributed community sizes.
    community_probs = _zipf_weights(spec.n_communities, spec.community_size_exponent)
    memberships = rng.choice(spec.n_communities, size=spec.n_users, p=community_probs)

    # Profile sizes: lognormal with the requested mean, clipped below.
    mu = np.log(spec.mean_profile_size) - spec.profile_sigma**2 / 2
    sizes = rng.lognormal(mean=mu, sigma=spec.profile_sigma, size=spec.n_users)
    sizes = np.clip(np.round(sizes), spec.min_profile_size, spec.n_items).astype(np.int64)

    global_cdf = np.cumsum(global_weights)
    global_cdf[-1] = 1.0  # guard against float rounding
    seen = np.zeros(spec.n_items, dtype=bool)  # reusable scratch

    profiles = []
    for u in range(spec.n_users):
        s = int(sizes[u])
        c = int(memberships[u])
        n_comm = int(round(spec.community_affinity * s))
        part_comm = _sample_distinct(rng, pools[c], pool_weights[c], n_comm)
        seen[part_comm] = True
        part_glob = _sample_distinct_cdf(rng, global_cdf, s - part_comm.size, seen)
        profile = np.concatenate([part_comm, part_glob])
        # Rejection sampling may come up short in pathological cases;
        # top up uniformly so the min-20-ratings invariant holds.
        if profile.size < spec.min_profile_size:
            missing = spec.min_profile_size - profile.size
            extra = rng.choice(
                np.flatnonzero(~seen), size=missing, replace=False
            )
            profile = np.concatenate([profile, extra])
        seen[profile] = False  # reset scratch for the next user
        profiles.append(np.sort(profile))

    return Dataset.from_profiles(profiles, n_items=spec.n_items, name=spec.name)
