"""Dataset statistics in the format of the paper's Table I."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dataset import Dataset

__all__ = ["DatasetStats", "describe"]


@dataclass(frozen=True)
class DatasetStats:
    """Table-I style summary of a dataset.

    ``mean_profile_size`` is the paper's ``|P_u|`` column (mean items
    per user); ``mean_item_degree`` is ``|P_i|`` (mean users per item,
    counted over items with at least one user).
    """

    name: str
    n_users: int
    n_items: int
    n_ratings: int
    mean_profile_size: float
    mean_item_degree: float
    density: float

    def as_row(self) -> dict:
        """The stats as a plain dict (one table row)."""
        return {
            "Dataset": self.name,
            "Users": self.n_users,
            "Items": self.n_items,
            "Ratings": self.n_ratings,
            "|Pu|": round(self.mean_profile_size, 2),
            "|Pi|": round(self.mean_item_degree, 2),
            "Density": f"{self.density * 100:.3f}%",
        }


def describe(dataset: Dataset) -> DatasetStats:
    """Compute Table-I statistics for ``dataset``."""
    item_degrees = np.bincount(dataset.indices, minlength=dataset.n_items)
    used_items = item_degrees[item_degrees > 0]
    return DatasetStats(
        name=dataset.name,
        n_users=dataset.n_users,
        n_items=dataset.n_items,
        n_ratings=dataset.n_ratings,
        mean_profile_size=float(dataset.profile_sizes.mean()) if dataset.n_users else 0.0,
        mean_item_degree=float(used_items.mean()) if used_items.size else 0.0,
        density=dataset.density,
    )
