"""Graph-level evaluation metrics (paper §II-A, Eq. 1-2).

``average_similarity`` and ``quality`` follow the paper exactly:
quality is the ratio of the approximate graph's average *true* edge
similarity to the exact graph's. Average similarity is always measured
with exact Jaccard on raw profiles, regardless of which engine the
algorithm used internally (GoldFinger estimates are a means, not the
measured end). ``edge_recall`` is an additional standard KNN metric.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Dataset
from ..similarity.jaccard import jaccard_one_to_many
from .heap import EMPTY
from .knn_graph import KNNGraph

__all__ = ["average_similarity", "quality", "edge_recall"]


def average_similarity(graph: KNNGraph, dataset: Dataset) -> float:
    """Eq. (1): mean exact Jaccard over the graph's directed edges.

    The paper normalises by ``k * n``; missing slots (users with fewer
    than ``k`` neighbours) contribute 0, matching that convention.
    """
    total = 0.0
    for u in range(graph.n_users):
        nbrs = graph.neighbors(u)
        if nbrs.size:
            total += float(jaccard_one_to_many(dataset, u, nbrs).sum())
    return total / (graph.k * graph.n_users) if graph.n_users else 0.0


def quality(graph: KNNGraph, exact_graph: KNNGraph, dataset: Dataset) -> float:
    """Eq. (2): ``avg_sim(graph) / avg_sim(exact_graph)``."""
    denom = average_similarity(exact_graph, dataset)
    if denom == 0.0:
        return 1.0
    return average_similarity(graph, dataset) / denom


def edge_recall(
    graph: KNNGraph, exact_graph: KNNGraph, users: np.ndarray | None = None
) -> float:
    """Fraction of exact-KNN edges recovered by ``graph``.

    A stricter metric than quality: interchangeable neighbours with
    equal similarity count against recall but not against quality.
    When ``users`` is given, only edges between those users count —
    the online subsystem scores itself on active (non-removed) users.
    """
    if graph.n_users != exact_graph.n_users:
        raise ValueError("graphs must cover the same users")
    if users is None:
        users = np.arange(graph.n_users)
        keep = None
    else:
        users = np.asarray(users, dtype=np.int64)
        keep = users
    found = 0
    total = 0
    for u in users:
        exact = exact_graph.neighbors(int(u))
        if keep is not None:
            exact = exact[np.isin(exact, keep)]
        total += exact.size
        if exact.size:
            found += int(np.isin(exact, graph.neighbors(int(u))).sum())
    return found / total if total else 1.0


def _occupied_edges(graph: KNNGraph) -> int:
    """Directed edge count (helper shared by reports)."""
    return int((graph.heaps.ids != EMPTY).sum())
