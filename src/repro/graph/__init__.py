"""KNN graph substrate: bounded heaps, graph object, metrics."""

from .heap import EMPTY, NeighborHeaps
from .knn_graph import KNNGraph, random_graph
from .metrics import average_similarity, edge_recall, quality

__all__ = [
    "EMPTY",
    "KNNGraph",
    "NeighborHeaps",
    "average_similarity",
    "edge_recall",
    "quality",
    "random_graph",
]
