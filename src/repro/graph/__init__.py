"""KNN graph substrate: bounded heaps, graph object, reverse index, metrics."""

from .heap import EMPTY, NeighborHeaps, edge_digest
from .knn_graph import KNNGraph, random_graph
from .metrics import average_similarity, edge_recall, quality
from .reverse import ReverseAdjacency

__all__ = [
    "EMPTY",
    "KNNGraph",
    "NeighborHeaps",
    "ReverseAdjacency",
    "average_similarity",
    "edge_digest",
    "edge_recall",
    "quality",
    "random_graph",
]
