"""The KNN graph object returned by every algorithm in this library."""

from __future__ import annotations

import numpy as np

from ..similarity.engine import SimilarityEngine
from .heap import EMPTY, NeighborHeaps

__all__ = ["KNNGraph", "random_graph"]


class KNNGraph:
    """An (approximate) K-nearest-neighbour graph over ``n`` users.

    Thin wrapper around :class:`NeighborHeaps` adding graph-level
    queries. Construction algorithms mutate the underlying heaps; a
    finished graph is usually treated as read-only.
    """

    def __init__(self, n_users: int, k: int) -> None:
        self.heaps = NeighborHeaps(n_users, k)

    # -- structure -------------------------------------------------------

    @property
    def n_users(self) -> int:
        """Number of users (nodes)."""
        return self.heaps.n

    @property
    def k(self) -> int:
        """Neighbourhood capacity."""
        return self.heaps.k

    def neighbors(self, u: int) -> np.ndarray:
        """Neighbour ids of ``u`` (unordered)."""
        return self.heaps.neighbors(u)

    def neighborhood(self, u: int) -> tuple[np.ndarray, np.ndarray]:
        """``(ids, scores)`` of ``u``'s neighbours, best first."""
        return self.heaps.items(u)

    def add(self, u: int, v: int, score: float) -> bool:
        """Offer edge ``u -> v`` with ``score``; True if kept."""
        return self.heaps.push(u, v, score)

    def add_batch(self, u: int, cands: np.ndarray, scores: np.ndarray) -> int:
        """Offer many candidate neighbours to ``u``; returns #insertions."""
        return int(self.heaps.push_batch(u, cands, scores).size)

    def add_batch_ids(self, u: int, cands: np.ndarray, scores: np.ndarray) -> np.ndarray:
        """Like :meth:`add_batch` but returns the inserted neighbour ids."""
        return self.heaps.push_batch(u, cands, scores)

    # -- incremental maintenance (online-update subsystem) ---------------

    def grow(self, n_users: int) -> None:
        """Extend the graph to ``n_users`` nodes (new nodes edgeless)."""
        self.heaps.grow(n_users)

    def clear_user(self, u: int) -> None:
        """Drop all outgoing edges of ``u``."""
        self.heaps.clear_row(u)

    def remove_user(self, u: int, holders: np.ndarray | None = None) -> np.ndarray:
        """Detach ``u`` entirely: drop its row and every reverse edge.

        Returns the users that lost ``u`` as a neighbour (their lists
        are left one short — the online index refills them lazily the
        next time they are touched by an update). When ``holders`` —
        the rows known to keep ``u``, from a maintained
        :class:`~repro.graph.reverse.ReverseAdjacency` — is given, only
        those rows are scanned (O(holders·k)) instead of the whole
        table (O(n·k)).
        """
        self.heaps.clear_row(u)
        if holders is None:
            return self.heaps.purge_id(u)
        return self.heaps.purge_id_rows(u, holders)

    def rescore_user(self, u: int, cands: np.ndarray, scores: np.ndarray) -> None:
        """Replace ``u``'s neighbourhood with the top-k of ``cands``."""
        self.heaps.clear_row(u)
        self.heaps.push_batch(u, cands, scores)

    def offer_reverse(self, source: int, cands: np.ndarray, scores: np.ndarray) -> int:
        """Offer edge ``v -> source`` to each ``v`` in ``cands``.

        Reuses already-computed similarity values (Jaccard is
        symmetric), the same no-recompute discipline as the C² merge
        step; returns the number of lists that changed.
        """
        changed = 0
        for v, s in zip(cands, scores):
            changed += bool(self.heaps.push(int(v), source, float(s)))
        return changed

    def edge_count(self) -> int:
        """Number of directed edges currently stored."""
        return int((self.heaps.ids != EMPTY).sum())

    def to_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Copies of the raw ``(ids, scores)`` arrays, shape ``(n, k)``."""
        return self.heaps.ids.copy(), self.heaps.scores.copy()

    def to_dict(self) -> dict[int, list[tuple[int, float]]]:
        """Plain-Python view ``{u: [(v, score), ...best first]}``."""
        out = {}
        for u in range(self.n_users):
            ids, scores = self.neighborhood(u)
            out[u] = [(int(v), float(s)) for v, s in zip(ids, scores)]
        return out

    def copy(self) -> "KNNGraph":
        """Deep copy of the graph."""
        g = KNNGraph(self.n_users, self.k)
        g.heaps.ids[:] = self.heaps.ids
        g.heaps.scores[:] = self.heaps.scores
        return g


def random_graph(engine: SimilarityEngine, k: int, seed: int = 0) -> KNNGraph:
    """The random ``k``-degree starting graph of greedy algorithms.

    Each user gets ``k`` distinct random neighbours with their true
    (engine-scored, counted) similarities — the paper's "initial random
    k-degree graph" whose poor graph locality C² is designed to fix.
    """
    rng = np.random.default_rng(seed)
    n = engine.n_users
    graph = KNNGraph(n, k)
    for u in range(n):
        take = min(k, n - 1)
        if take <= 0:
            continue
        cands = rng.choice(n - 1, size=take, replace=False)
        cands[cands >= u] += 1  # skip u itself
        scores = engine.one_to_many(u, cands)
        graph.add_batch(u, cands, scores)
    return graph
