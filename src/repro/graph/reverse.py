"""Incrementally maintained reverse adjacency of a KNN graph.

A :class:`~repro.graph.heap.NeighborHeaps` table stores *out*-edges:
``v in ids[u]`` means ``u`` keeps ``v`` as a neighbour. Two hot paths
need the opposite direction — "who keeps ``v``?":

* the serving walk expands in-edges too (a directed top-k graph is a
  poor navigation structure one-way; see ``repro.serve.searcher``);
* ``OnlineIndex.remove_user`` and ``_update`` must purge every edge
  pointing at the mutated user.

Both used to answer it with an O(n·k) sweep (a full group-by rebuild
on the read side, a full column scan on the write side) — fine for
read-heavy loads, ruinous under write storms where every mutation
invalidates the rebuild. :class:`ReverseAdjacency` keeps the in-edge
sets live instead: built once in O(n·k), then patched from the
per-edge ``(u, v, added)`` deltas the heap journal records, O(1) per
changed edge. The from-scratch build is retained both as the cold
start and as the oracle the property tests compare the maintained
state against.
"""

from __future__ import annotations

import numpy as np

from .heap import EMPTY, NeighborHeaps

__all__ = ["ReverseAdjacency"]


class ReverseAdjacency:
    """In-edge sets of a neighbour-heap table: ``holders(v) = {u : v ∈ ids[u]}``."""

    def __init__(self, n: int) -> None:
        self._in: list[set[int]] = [set() for _ in range(int(n))]
        # Per-node sorted holders() arrays, materialised on demand and
        # dropped when the node's in-edge set changes. The serving walk
        # asks for the same hot nodes' holders on every query; without
        # the cache each call pays a set→array convert + sort.
        self._holders_cache: dict[int, np.ndarray] = {}

    @classmethod
    def from_heaps(cls, heaps: NeighborHeaps) -> "ReverseAdjacency":
        """Cold build from the current edge set — one O(n·k) group-by."""
        out = cls(heaps.n)
        valid = heaps.ids.ravel() != EMPTY
        dst = heaps.ids.ravel()[valid].astype(np.int64)
        src = np.repeat(np.arange(heaps.n, dtype=np.int64), heaps.k)[valid]
        order = np.argsort(dst, kind="stable")
        dst, src = dst[order], src[order]
        bounds = np.searchsorted(dst, np.arange(heaps.n + 1, dtype=np.int64))
        rows = out._in
        for v in range(heaps.n):
            lo, hi = bounds[v], bounds[v + 1]
            if hi > lo:
                rows[v] = set(int(u) for u in src[lo:hi])
        return out

    @property
    def n(self) -> int:
        """Number of users covered."""
        return len(self._in)

    def grow(self, n: int) -> None:
        """Extend to ``n`` users; newcomers start with no in-edges."""
        while len(self._in) < n:
            self._in.append(set())

    def holders(self, v: int) -> np.ndarray:
        """Users currently keeping ``v`` as a neighbour (sorted).

        Cached per node until the next patch touching ``v``; treat the
        returned array as read-only.
        """
        cached = self._holders_cache.get(v)
        if cached is not None:
            return cached
        s = self._in[v]
        if not s:
            out = np.empty(0, dtype=np.int64)
        else:
            out = np.fromiter(s, dtype=np.int64, count=len(s))
            out.sort()
        self._holders_cache[v] = out
        return out

    def degree(self, v: int) -> int:
        """Number of in-edges of ``v``."""
        return len(self._in[v])

    def apply(self, deltas: list[tuple[int, int, bool]]) -> None:
        """Patch in a drained heap journal, in recording order.

        ``(u, v, True)`` means the edge ``u -> v`` appeared, ``False``
        that it was dropped; order matters because one mutation may
        drop and re-add the same edge.
        """
        rows = self._in
        cache = self._holders_cache
        for u, v, added in deltas:
            if added:
                rows[v].add(u)
            else:
                rows[v].discard(u)
            cache.pop(v, None)

    def apply_batch(self, deltas) -> None:
        """Batched :meth:`apply` — one set edit per distinct edge.

        Set membership makes the per-``(u, v)`` history collapsible:
        only the *last* recorded flag decides whether ``u`` ends up in
        ``holders(v)`` (add/discard are idempotent), so a drop-and-
        re-add tape touches each set once instead of twice. Used by
        the journal-fed delta pipeline (every mutation, replica replay
        and WAL recovery flow through it); :meth:`apply` is retained
        as the order-faithful per-edge oracle the property tests
        compare against.
        """
        last: dict[tuple[int, int], bool] = {}
        for u, v, added in deltas:
            last[(int(u), int(v))] = added
        rows = self._in
        cache = self._holders_cache
        for (u, v), added in last.items():
            if added:
                rows[v].add(u)
            else:
                rows[v].discard(u)
            cache.pop(v, None)

    def apply_scored(self, edges) -> None:
        """Patch in replica-shipped ``(u, v, added, score)`` deltas.

        The scored variant of :meth:`apply` for the delta-shipping
        tier: scores ride along for the heap replay and are ignored
        here — the in-edge sets only care about structure.
        """
        rows = self._in
        cache = self._holders_cache
        for u, v, added, _score in edges:
            if added:
                rows[v].add(u)
            else:
                rows[v].discard(u)
            cache.pop(v, None)

    def apply_scored_batch(self, edges) -> None:
        """Batched :meth:`apply_scored` for replica/WAL replay streams.

        Strips the scores and collapses the per-edge history exactly
        like :meth:`apply_batch` — one set edit per distinct ``(u, v)``
        no matter how often the shipped tape flips it.
        """
        self.apply_batch((u, v, added) for u, v, added, _score in edges)

    def to_sets(self) -> list[set[int]]:
        """Copy of the in-edge sets (oracle comparisons in tests)."""
        return [set(s) for s in self._in]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReverseAdjacency):
            return NotImplemented
        return self._in == other._in
