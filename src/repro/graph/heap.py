"""Bounded neighbour lists — the per-user "heap of size k" of the paper.

Each user's neighbourhood is a fixed-capacity set of ``(neighbor,
score)`` pairs keeping the ``k`` highest-scoring distinct neighbours
seen so far. Rows are stored unordered in flat numpy arrays (ids +
scores); with ``k ≈ 30`` a linear min-scan beats a real heap and the
batch update path vectorises cleanly, which is what the greedy
baselines and the C² merge step hammer on.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["NeighborHeaps", "edge_digest"]

EMPTY = -1


def edge_digest(heaps: NeighborHeaps) -> int:
    """Slot-order-independent fingerprint of a heap table's edge ids.

    Rows are sorted before hashing, so a primary and a replica that
    hold the same neighbour sets in different slot layouts (or with
    drifted scores) digest identically. This is the convergence oracle
    both replica shipping and the anti-entropy auditor compare in.
    """
    return zlib.crc32(np.sort(heaps.ids[: heaps.n], axis=1).tobytes())


class NeighborHeaps:
    """``n`` bounded neighbour lists of capacity ``k``.

    Attributes:
        ids: ``(n, k)`` int32 array; ``EMPTY`` marks free slots.
        scores: ``(n, k)`` float64 array; ``-inf`` in free slots.
    """

    def __init__(self, n: int, k: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.n = int(n)
        self.k = int(k)
        # ``ids``/``scores`` are views into capacity buffers so that
        # per-signup growth is amortized O(1): the buffers double when
        # exhausted instead of reallocating on every new row.
        self._ids_buf = np.full((n, k), EMPTY, dtype=np.int32)
        self._scores_buf = np.full((n, k), -np.inf, dtype=np.float64)
        self.ids = self._ids_buf[: self.n]
        self.scores = self._scores_buf[: self.n]
        self.reallocations = 0
        # Optional edge journal: when attached, every structural change
        # to the edge set is recorded as ``(u, v, added)`` — the raw
        # material for incremental reverse-adjacency maintenance. Score
        # rescorings of an existing edge are not structural and are not
        # recorded. ``None`` (the default) costs one branch per
        # primitive, so batch construction pays nothing.
        self.journal: list[tuple[int, int, bool]] | None = None

    # ------------------------------------------------------------------
    # Pickling (snapshot clones: replicas, process shards, persistence)
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        # ``ids``/``scores`` are views into the capacity buffers, and
        # numpy pickles a view as an independent copy — a round-trip
        # would silently sever them from ``_ids_buf``/``_scores_buf``.
        # The next within-capacity grow() then rebinds the views to the
        # stale buffer, reverting every edge change applied since the
        # unpickle (a corruption the WAL-recovery property tests
        # caught). Ship the occupied prefix once, rebuild on load.
        state = self.__dict__.copy()
        state["_ids_buf"] = self.ids.copy()
        state["_scores_buf"] = self.scores.copy()
        del state["ids"], state["scores"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.ids = self._ids_buf[: self.n]
        self.scores = self._scores_buf[: self.n]

    # ------------------------------------------------------------------

    def size(self, u: int) -> int:
        """Number of occupied slots in ``u``'s list."""
        return int((self.ids[u] != EMPTY).sum())

    def contains(self, u: int, v: int) -> bool:
        """Whether ``v`` is currently a neighbour of ``u``."""
        return bool((self.ids[u] == v).any())

    def neighbors(self, u: int) -> np.ndarray:
        """Occupied neighbour ids of ``u`` (unordered copy)."""
        row = self.ids[u]
        return row[row != EMPTY].copy()

    def items(self, u: int) -> tuple[np.ndarray, np.ndarray]:
        """``(ids, scores)`` of occupied slots, sorted by score desc."""
        row = self.ids[u]
        mask = row != EMPTY
        ids, scores = row[mask], self.scores[u][mask]
        order = np.argsort(-scores, kind="stable")
        return ids[order].copy(), scores[order].copy()

    def min_score(self, u: int) -> float:
        """Lowest score currently kept for ``u`` (-inf if not full)."""
        return float(self.scores[u].min())

    # ------------------------------------------------------------------
    # Incremental maintenance (online-update subsystem)
    # ------------------------------------------------------------------

    def attach_journal(self) -> None:
        """Start recording per-edge ``(u, v, added)`` deltas."""
        self.journal = []

    def drain_journal(self) -> list[tuple[int, int, bool]]:
        """Return and reset the recorded deltas (empty if detached)."""
        if self.journal is None:
            return []
        out, self.journal = self.journal, []
        return out

    def grow(self, n: int) -> None:
        """Extend to ``n`` rows; new rows start empty.

        Amortized: the backing buffers double when exhausted, so ``m``
        one-row grows cost O(log m) reallocations (regression-tested;
        the per-signup reallocation was an O(m·n·k) aggregate sink).
        """
        if n <= self.n:
            return
        cap = self._ids_buf.shape[0]
        if n > cap:
            new_cap = max(int(n), 2 * cap, 8)
            ids_buf = np.full((new_cap, self.k), EMPTY, dtype=np.int32)
            ids_buf[: self.n] = self.ids
            scores_buf = np.full((new_cap, self.k), -np.inf, dtype=np.float64)
            scores_buf[: self.n] = self.scores
            self._ids_buf, self._scores_buf = ids_buf, scores_buf
            self.reallocations += 1
        self.n = int(n)
        self.ids = self._ids_buf[: self.n]
        self.scores = self._scores_buf[: self.n]

    def clear_row(self, u: int) -> None:
        """Empty ``u``'s neighbour list."""
        if self.journal is not None:
            row = self.ids[u]
            self.journal.extend((u, int(v), False) for v in row[row != EMPTY])
        self.ids[u].fill(EMPTY)
        self.scores[u].fill(-np.inf)

    def purge_id(self, v: int) -> np.ndarray:
        """Remove ``v`` from every neighbour list it appears in.

        Returns the affected rows. A vectorised column sweep — O(n·k)
        memory traffic but zero similarity evaluations, which is the
        currency that matters. When the holders of ``v`` are already
        known (a maintained reverse-adjacency index), prefer
        :meth:`purge_id_rows`, which costs O(holders · k) instead.
        """
        mask = self.ids == v
        rows = np.flatnonzero(mask.any(axis=1))
        if rows.size:
            self.ids[mask] = EMPTY
            self.scores[mask] = -np.inf
            if self.journal is not None:
                self.journal.extend((int(u), v, False) for u in rows)
        return rows

    def purge_id_rows(self, v: int, rows: np.ndarray) -> np.ndarray:
        """Remove ``v`` from the given ``rows`` only.

        The targeted variant of :meth:`purge_id` for callers that know
        which rows hold ``v`` (e.g. from a maintained reverse-adjacency
        index): O(len(rows)·k) instead of a full O(n·k) column sweep.
        Returns the rows that actually changed.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return rows
        mask = self.ids[rows] == v
        hit = mask.any(axis=1)
        rows = rows[hit]
        if rows.size:
            sub_ids = self.ids[rows]
            sub_scores = self.scores[rows]
            sub_ids[mask[hit]] = EMPTY
            sub_scores[mask[hit]] = -np.inf
            self.ids[rows] = sub_ids
            self.scores[rows] = sub_scores
            if self.journal is not None:
                self.journal.extend((int(u), v, False) for u in rows)
        return rows

    def apply_edge_deltas(self, edges) -> None:
        """Replay shipped ``(u, v, added, score)`` deltas onto this table.

        The replica-side write path: a primary journals its structural
        edge changes, ships them (with the post-mutation score looked
        up per added edge), and the replica replays them here without
        any capacity-eviction logic of its own — the journal already
        recorded every eviction as an explicit removal, so a free slot
        is guaranteed for every add. Raises ``ValueError`` when the
        guarantee is violated (a gap in the delta stream); callers
        treat that as "resync from a fresh snapshot".

        Replays are journaled like any other structural change, so a
        replica's own subscribers (reverse adjacency, caches) keep
        composing.

        Hot path: WAL recovery replays every delta since the last
        checkpoint through here. Deltas are grouped per user row and
        each touched row is read out (``tolist``) and written back
        exactly once — the per-edge slot scans run as plain-python
        ``list.index`` over the k-element row copy (on rows this small
        that beats a numpy masked scan by an order of magnitude), but
        the numpy crossings are O(touched rows), not O(edges). Journal
        entries keep per-``(u, v)`` recording order; entries of
        different rows may interleave differently than a strictly
        per-edge replay, which no consumer observes (reverse adjacency
        is per-target sets, caches read ids only).

        On a delta-stream gap the error is raised with the failing
        row unwritten; previously grouped rows keep their applied
        state — callers treat the error as "resync from a fresh
        snapshot" either way.
        """
        by_row: dict[int, list] = {}
        for edge in edges:
            by_row.setdefault(int(edge[0]), []).append(edge)
        journal = self.journal
        for u, row_edges in by_row.items():
            row = self.ids[u].tolist()
            srow = self.scores[u].tolist()
            entries: list[tuple[int, int, bool]] = []
            for _, v, added, score in row_edges:
                v = int(v)
                if added:
                    try:  # re-add after a drop in the same stream
                        srow[row.index(v)] = score
                        continue
                    except ValueError:
                        pass
                    try:
                        free = row.index(EMPTY)
                    except ValueError:
                        raise ValueError(
                            f"no free slot for shipped edge {u}->{v} "
                            "(delta stream out of order or incomplete)"
                        ) from None
                    row[free] = v
                    srow[free] = score
                    entries.append((u, v, True))
                else:
                    try:
                        slot = row.index(v)
                    except ValueError:
                        continue
                    row[slot] = EMPTY
                    srow[slot] = -np.inf
                    entries.append((u, v, False))
            self.ids[u] = row
            self.scores[u] = srow
            if journal is not None:
                journal.extend(entries)

    def edge_sets(self) -> list[set[int]]:
        """Per-row neighbour-id sets (slot-order independent).

        The convergence currency of the replica tier: two tables whose
        ``edge_sets`` match serve identical graph walks regardless of
        slot layout or score drift (the searcher scores candidates
        against the query, never from the stored edge scores).
        """
        return [
            set(int(v) for v in row[row != EMPTY]) for row in self.ids
        ]

    # ------------------------------------------------------------------

    def push(self, u: int, v: int, score: float) -> bool:
        """Offer neighbour ``v`` with ``score`` to user ``u``.

        Returns True if the list changed. Self-loops are rejected; a
        neighbour already present keeps the highest score seen (matching
        the batch path's max-per-id semantics).
        """
        if v == u:
            return False
        present = np.flatnonzero(self.ids[u] == v)
        if present.size:
            slot = int(present[0])
            if score > self.scores[u, slot]:
                self.scores[u, slot] = score
                return True
            return False
        slot = int(np.argmin(self.scores[u]))
        evicted = int(self.ids[u, slot])
        if evicted != EMPTY and self.scores[u, slot] >= score:
            return False
        self.ids[u, slot] = v
        self.scores[u, slot] = score
        if self.journal is not None:
            if evicted != EMPTY:
                self.journal.append((u, evicted, False))
            self.journal.append((u, v, True))
        return True

    def push_batch(self, u: int, cands: np.ndarray, scores: np.ndarray) -> np.ndarray:
        """Offer many candidates to ``u`` at once; returns inserted ids.

        Candidates may contain duplicates and ``u`` itself; the final
        row is the top-k of (current row ∪ candidates) by score. The
        returned array holds the ids that newly entered the list (used
        by NN-Descent to maintain its "new neighbour" flags).
        """
        cands = np.asarray(cands, dtype=np.int64)
        scores = np.asarray(scores, dtype=np.float64)
        keep = cands != u
        cands, scores = cands[keep], scores[keep]
        if cands.size == 0:
            return np.empty(0, dtype=np.int64)

        row_ids = self.ids[u]
        occupied = row_ids != EMPTY
        old_ids = row_ids[occupied].astype(np.int64)
        old_scores = self.scores[u][occupied]

        all_ids = np.concatenate([old_ids, cands])
        all_scores = np.concatenate([old_scores, scores])
        # Deduplicate by id, keeping the highest score per id.
        order = np.lexsort((-all_scores, all_ids))
        all_ids, all_scores = all_ids[order], all_scores[order]
        first = np.ones(all_ids.size, dtype=bool)
        first[1:] = all_ids[1:] != all_ids[:-1]
        all_ids, all_scores = all_ids[first], all_scores[first]

        if all_ids.size > self.k:
            # Total order (-score, id): deterministic tie-breaking, so
            # equal-score neighbours cannot churn in and out of the
            # top-k across iterations (which would stall δ-termination
            # of the greedy algorithms with phantom updates).
            top = np.lexsort((all_ids, -all_scores))[: self.k]
            new_ids, new_scores = all_ids[top], all_scores[top]
        else:
            new_ids, new_scores = all_ids, all_scores

        inserted = np.setdiff1d(new_ids, old_ids, assume_unique=False)
        self.ids[u].fill(EMPTY)
        self.scores[u].fill(-np.inf)
        self.ids[u, : new_ids.size] = new_ids
        self.scores[u, : new_scores.size] = new_scores
        if self.journal is not None:
            removed = np.setdiff1d(old_ids, new_ids, assume_unique=False)
            self.journal.extend((u, int(v), False) for v in removed)
            self.journal.extend((u, int(v), True) for v in inserted)
        return inserted
