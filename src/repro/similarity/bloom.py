"""Bloom-filter profile summaries — an alternative compact structure.

The paper's related-work section (§VII) discusses Bloom filters as a
compact representation of user profiles for KNN computations ([1],
[37], [38]). This module provides them as a drop-in alternative to
GoldFinger, for the compact-structure ablation: a ``BloomFilter`` table
with ``h`` hash functions per item (GoldFinger's single-hash
fingerprint is the ``h = 1`` special case), and Jaccard estimated
from filter cardinality estimates via the classic fill-ratio inversion

    |S| ≈ -(B / h) * ln(1 - ones / B)

applied to the AND/OR of two filters.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Dataset
from ._bits import item_bit_tables, item_bits_for

__all__ = ["BloomFilterTable"]

_WORD_BITS = 64


class BloomFilterTable:
    """Per-user Bloom filters over item profiles.

    Args:
        dataset: profiles to summarise.
        n_bits: filter width ``B`` (multiple of 64).
        n_hashes: hash functions per item (``h``); ``1`` degenerates to
            a GoldFinger-style single-hash fingerprint.
        seed: base seed; hash function ``j`` uses ``seed + j``.
    """

    def __init__(self, dataset: Dataset, n_bits: int = 1024, n_hashes: int = 2,
                 seed: int = 11) -> None:
        if n_bits < _WORD_BITS or n_bits % _WORD_BITS:
            raise ValueError(f"n_bits must be a positive multiple of {_WORD_BITS}")
        if n_hashes < 1:
            raise ValueError("n_hashes must be >= 1")
        self.n_bits = int(n_bits)
        self.n_words = self.n_bits // _WORD_BITS
        self.n_hashes = int(n_hashes)
        self.seed = int(seed)

        # Per-hash item bit tables, kept for in-place profile updates.
        self._item_words = [np.empty(0, dtype=np.int64) for _ in range(self.n_hashes)]
        self._item_masks = [np.empty(0, dtype=np.uint64) for _ in range(self.n_hashes)]
        self._ensure_items(dataset.n_items)

        filters = np.zeros((dataset.n_users, self.n_words), dtype=np.uint64)
        rows = np.repeat(np.arange(dataset.n_users, dtype=np.int64),
                         np.diff(dataset.indptr))
        for j in range(self.n_hashes):
            np.bitwise_or.at(filters, (rows, self._item_words[j][dataset.indices]),
                             self._item_masks[j][dataset.indices])
        # ``filters`` is a view into a capacity buffer; growth doubles
        # the buffer so m signups cost O(log m) reallocations.
        self._buf = filters
        self.filters = self._buf[: dataset.n_users]
        self.reallocations = 0

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------

    def _ensure_items(self, n_items: int) -> None:
        """Extend the per-item bit tables to cover ``n_items`` ids."""
        old = self._item_words[0].size
        if n_items <= old:
            return
        for j in range(self.n_hashes):
            words, masks = item_bit_tables(old, n_items, self.n_bits, self.seed + j)
            self._item_words[j] = np.concatenate([self._item_words[j], words])
            self._item_masks[j] = np.concatenate([self._item_masks[j], masks])

    def _ensure_users(self, n_users: int) -> None:
        """Grow the filter table with zero rows up to ``n_users``.

        Amortized via geometric buffer doubling, like the fingerprint
        and neighbour-heap tables.
        """
        cur = self.filters.shape[0]
        if n_users <= cur:
            return
        cap = self._buf.shape[0]
        if n_users > cap:
            new_cap = max(n_users, 2 * cap, 8)
            buf = np.zeros((new_cap, self.n_words), dtype=np.uint64)
            buf[:cur] = self.filters
            self._buf = buf
            self.reallocations += 1
        self.filters = self._buf[:n_users]

    def add_items(self, user: int, items: np.ndarray) -> None:
        """OR the bits of ``items`` into ``user``'s filter (O(h·|items|))."""
        items = np.asarray(items, dtype=np.int64)
        if items.size == 0:
            return
        self._ensure_items(int(items.max()) + 1)
        self._ensure_users(user + 1)
        row = self.filters[user]
        for j in range(self.n_hashes):
            np.bitwise_or.at(row, self._item_words[j][items], self._item_masks[j][items])

    def set_profile(self, user: int, profile: np.ndarray, n_items: int | None = None) -> None:
        """Rebuild ``user``'s filter from scratch (non-append change)."""
        if n_items is not None:
            self._ensure_items(n_items)
        self._ensure_users(user + 1)
        profile = np.asarray(profile, dtype=np.int64)
        if profile.size:
            self._ensure_items(int(profile.max()) + 1)
        row = self.filters[user]
        row.fill(0)
        for j in range(self.n_hashes):
            if profile.size:
                np.bitwise_or.at(row, self._item_words[j][profile],
                                 self._item_masks[j][profile])

    # ------------------------------------------------------------------

    def _cardinality(self, ones: np.ndarray) -> np.ndarray:
        """Invert the fill ratio to an estimated set cardinality."""
        b = float(self.n_bits)
        ratio = np.minimum(ones / b, 1.0 - 1.0 / b)  # avoid log(0)
        return -(b / self.n_hashes) * np.log1p(-ratio)

    def estimate_pair(self, u: int, v: int) -> float:
        """Estimated Jaccard similarity between users ``u`` and ``v``."""
        return float(self.estimate_one_to_many(u, np.array([v]))[0])

    def filter_profile(self, profile: np.ndarray) -> np.ndarray:
        """Bloom filter of an arbitrary item-set profile (not stored).

        Lets the query-serving path estimate out-of-index profiles
        against stored filters. Items outside the stored universe are
        hashed on the fly so a read never grows the shared item tables.
        """
        profile = np.asarray(profile, dtype=np.int64)
        row = np.zeros(self.n_words, dtype=np.uint64)
        known = profile[profile < self._item_words[0].size]
        unseen = profile[profile >= self._item_words[0].size]
        for j in range(self.n_hashes):
            if known.size:
                np.bitwise_or.at(row, self._item_words[j][known],
                                 self._item_masks[j][known])
            if unseen.size:
                words, masks = item_bits_for(unseen, self.n_bits, self.seed + j)
                np.bitwise_or.at(row, words, masks)
        return row

    def estimate_one_to_many(self, user: int, others: np.ndarray) -> np.ndarray:
        """Estimated Jaccard of ``user`` against each user in ``others``."""
        return self.estimate_filter_one_to_many(self.filters[user], others)

    def estimate_filter_one_to_many(self, filter_row: np.ndarray,
                                    others: np.ndarray) -> np.ndarray:
        """Estimated Jaccard of a filter row vs each user in ``others``.

        Uses ``J = (|A| + |B| - |A ∪ B|) / |A ∪ B|`` with all three
        cardinalities estimated from filter popcounts — the standard
        Bloom-filter set-similarity estimator.
        """
        others = np.asarray(others, dtype=np.int64)
        if others.size == 0:
            return np.empty(0, dtype=np.float64)
        a = filter_row
        rows = self.filters[others]
        ones_a = float(np.bitwise_count(a).sum())
        ones_b = np.bitwise_count(rows).sum(axis=1).astype(np.float64)
        ones_union = np.bitwise_count(a[None, :] | rows).sum(axis=1).astype(np.float64)
        card_a = self._cardinality(np.array([ones_a]))[0]
        card_b = self._cardinality(ones_b)
        card_union = self._cardinality(ones_union)
        inter = np.maximum(card_a + card_b - card_union, 0.0)
        out = np.zeros(others.size, dtype=np.float64)
        nz = card_union > 0
        out[nz] = np.minimum(inter[nz] / card_union[nz], 1.0)
        return out
