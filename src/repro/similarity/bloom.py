"""Bloom-filter profile summaries — an alternative compact structure.

The paper's related-work section (§VII) discusses Bloom filters as a
compact representation of user profiles for KNN computations ([1],
[37], [38]). This module provides them as a drop-in alternative to
GoldFinger, for the compact-structure ablation: a ``BloomFilter`` table
with ``h`` hash functions per item (GoldFinger's single-hash
fingerprint is the ``h = 1`` special case), and Jaccard estimated
from filter cardinality estimates via the classic fill-ratio inversion

    |S| ≈ -(B / h) * ln(1 - ones / B)

applied to the AND/OR of two filters.
"""

from __future__ import annotations

import numpy as np

from .._mix import splitmix64_array
from ..data.dataset import Dataset

__all__ = ["BloomFilterTable"]

_WORD_BITS = 64


class BloomFilterTable:
    """Per-user Bloom filters over item profiles.

    Args:
        dataset: profiles to summarise.
        n_bits: filter width ``B`` (multiple of 64).
        n_hashes: hash functions per item (``h``); ``1`` degenerates to
            a GoldFinger-style single-hash fingerprint.
        seed: base seed; hash function ``j`` uses ``seed + j``.
    """

    def __init__(self, dataset: Dataset, n_bits: int = 1024, n_hashes: int = 2,
                 seed: int = 11) -> None:
        if n_bits < _WORD_BITS or n_bits % _WORD_BITS:
            raise ValueError(f"n_bits must be a positive multiple of {_WORD_BITS}")
        if n_hashes < 1:
            raise ValueError("n_hashes must be >= 1")
        self.n_bits = int(n_bits)
        self.n_words = self.n_bits // _WORD_BITS
        self.n_hashes = int(n_hashes)
        self.seed = int(seed)

        filters = np.zeros((dataset.n_users, self.n_words), dtype=np.uint64)
        rows = np.repeat(np.arange(dataset.n_users, dtype=np.int64),
                         np.diff(dataset.indptr))
        for j in range(self.n_hashes):
            bits = splitmix64_array(
                np.arange(dataset.n_items, dtype=np.uint64), seed + j
            ) % np.uint64(self.n_bits)
            words = (bits // _WORD_BITS).astype(np.int64)
            masks = (np.uint64(1) << (bits % np.uint64(_WORD_BITS))).astype(np.uint64)
            np.bitwise_or.at(filters, (rows, words[dataset.indices]),
                             masks[dataset.indices])
        self.filters = filters

    # ------------------------------------------------------------------

    def _cardinality(self, ones: np.ndarray) -> np.ndarray:
        """Invert the fill ratio to an estimated set cardinality."""
        b = float(self.n_bits)
        ratio = np.minimum(ones / b, 1.0 - 1.0 / b)  # avoid log(0)
        return -(b / self.n_hashes) * np.log1p(-ratio)

    def estimate_pair(self, u: int, v: int) -> float:
        """Estimated Jaccard similarity between users ``u`` and ``v``."""
        return float(self.estimate_one_to_many(u, np.array([v]))[0])

    def estimate_one_to_many(self, user: int, others: np.ndarray) -> np.ndarray:
        """Estimated Jaccard of ``user`` against each user in ``others``.

        Uses ``J = (|A| + |B| - |A ∪ B|) / |A ∪ B|`` with all three
        cardinalities estimated from filter popcounts — the standard
        Bloom-filter set-similarity estimator.
        """
        others = np.asarray(others, dtype=np.int64)
        if others.size == 0:
            return np.empty(0, dtype=np.float64)
        a = self.filters[user]
        rows = self.filters[others]
        ones_a = float(np.bitwise_count(a).sum())
        ones_b = np.bitwise_count(rows).sum(axis=1).astype(np.float64)
        ones_union = np.bitwise_count(a[None, :] | rows).sum(axis=1).astype(np.float64)
        card_a = self._cardinality(np.array([ones_a]))[0]
        card_b = self._cardinality(ones_b)
        card_union = self._cardinality(ones_union)
        inter = np.maximum(card_a + card_b - card_union, 0.0)
        out = np.zeros(others.size, dtype=np.float64)
        nz = card_union > 0
        out[nz] = np.minimum(inter[nz] / card_union[nz], 1.0)
        return out
