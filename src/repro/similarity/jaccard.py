"""Exact Jaccard similarity over item-set profiles.

``J(P_u, P_v) = |P_u ∩ P_v| / |P_u ∪ P_v|`` — the paper's similarity
function. Scalar helpers work on sorted id arrays; the batch helpers
use a sparse user x item matrix product so that the brute-force
baseline and quality metrics stay tractable in Python.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Dataset

__all__ = [
    "jaccard_pair",
    "intersection_size",
    "jaccard_one_to_many",
    "jaccard_profile_one_to_many",
    "profile_intersections",
    "profile_mask",
    "jaccard_block",
    "jaccard_matrix",
]


def intersection_size(a: np.ndarray, b: np.ndarray) -> int:
    """``|a ∩ b|`` for two sorted, unique id arrays."""
    return int(np.intersect1d(a, b, assume_unique=True).size)


def jaccard_pair(a: np.ndarray, b: np.ndarray) -> float:
    """Jaccard similarity of two sorted, unique id arrays."""
    inter = intersection_size(a, b)
    union = a.size + b.size - inter
    return inter / union if union else 0.0


def profile_mask(dataset: Dataset, profile: np.ndarray) -> np.ndarray:
    """Boolean membership mask of ``profile`` over the item universe.

    The reusable half of :func:`profile_intersections`: a prepared
    query scores many candidate batches against the same profile (one
    per search hop), and rebuilding the mask per batch was measurable
    on the serving hot path. Items beyond the universe are dropped —
    they cannot intersect anything.
    """
    mask = np.zeros(dataset.n_items, dtype=bool)
    mask[profile[profile < dataset.n_items]] = True
    return mask


def profile_intersections(
    dataset: Dataset,
    profile: np.ndarray,
    others: np.ndarray,
    mask: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """``(|profile ∩ P_v|, |P_v|)`` for each user ``v`` in ``others``.

    Vectorised via a membership mask over the item universe: one pass
    builds a boolean mask of the profile (callers scoring many batches
    pass a precomputed :func:`profile_mask`), then intersection sizes
    for all ``others`` are gathered in a single fancy-indexing sweep
    over their concatenated profiles — the concatenation itself is a
    vectorised CSR gather (`indptr`/`indices`), not a per-candidate
    python loop. The profile need not belong to any user in the
    dataset (the query-serving path scores out-of-index profiles);
    items beyond the dataset's universe cannot intersect anything and
    only count toward the union.
    """
    others = np.asarray(others, dtype=np.int64)
    sizes = dataset.profile_sizes[others]
    if others.size == 0:
        return np.zeros(0, dtype=np.int64), sizes
    if mask is None:
        mask = profile_mask(dataset, profile)

    # Gather the others' concatenated profiles from the CSR view and
    # count mask hits per segment.
    indptr = np.zeros(others.size + 1, dtype=np.int64)
    np.cumsum(sizes, out=indptr[1:])
    total = int(indptr[-1])
    if total == 0:
        return np.zeros(others.size, dtype=np.int64), sizes
    starts = dataset.indptr[others]
    gather = np.repeat(starts - indptr[:-1], sizes) + np.arange(total, dtype=np.int64)
    hits = mask[dataset.indices[gather]]
    inter = np.add.reduceat(hits, indptr[:-1], dtype=np.int64)
    inter[sizes == 0] = 0
    return inter, sizes


def jaccard_profile_one_to_many(
    dataset: Dataset, profile: np.ndarray, others: np.ndarray
) -> np.ndarray:
    """Exact Jaccard of an arbitrary item-set profile vs ``others``."""
    profile = np.asarray(profile, dtype=np.int64)
    others = np.asarray(others, dtype=np.int64)
    inter, sizes = profile_intersections(dataset, profile, others)
    union = profile.size + sizes - inter
    out = np.zeros(others.size, dtype=np.float64)
    nz = union > 0
    out[nz] = inter[nz] / union[nz]
    return out


def jaccard_one_to_many(dataset: Dataset, user: int, others: np.ndarray) -> np.ndarray:
    """Exact Jaccard of ``user`` against each user in ``others``."""
    return jaccard_profile_one_to_many(dataset, dataset.profile(user), others)


def jaccard_block(dataset: Dataset, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
    """Exact Jaccard block of shape ``(len(us), len(vs))``.

    One sparse matrix product computes all intersections at once.
    """
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    matrix = dataset.to_csr_matrix()
    inter = np.asarray((matrix[us] @ matrix[vs].T).todense(), dtype=np.float64)
    size_u = dataset.profile_sizes[us].astype(np.float64)
    size_v = dataset.profile_sizes[vs].astype(np.float64)
    union = size_u[:, None] + size_v[None, :] - inter
    out = np.zeros_like(inter)
    nz = union > 0
    out[nz] = inter[nz] / union[nz]
    return out


def jaccard_matrix(dataset: Dataset, users: np.ndarray | None = None) -> np.ndarray:
    """Dense pairwise Jaccard matrix for ``users`` (all users if None).

    Uses a sparse matrix product for intersections; the diagonal is 1
    by convention (a profile is identical to itself). Intended for
    clusters / small datasets — memory is ``O(len(users)^2)``.
    """
    matrix = dataset.to_csr_matrix()
    if users is not None:
        users = np.asarray(users, dtype=np.int64)
        matrix = matrix[users]
        sizes = dataset.profile_sizes[users].astype(np.float64)
    else:
        sizes = dataset.profile_sizes.astype(np.float64)
    inter = np.asarray((matrix @ matrix.T).todense(), dtype=np.float64)
    union = sizes[:, None] + sizes[None, :] - inter
    out = np.zeros_like(inter)
    nz = union > 0
    out[nz] = inter[nz] / union[nz]
    return out
