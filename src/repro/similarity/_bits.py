"""Shared bit-table math for compact profile summaries.

GoldFinger fingerprints and Bloom filters scatter the same kind of
bits: item ``i`` sets bit ``splitmix64(i) mod B``. Both tables keep
per-item ``(word, mask)`` lookup arrays so single profiles can be
patched in place; this helper owns the one place that math lives.
"""

from __future__ import annotations

import numpy as np

from .._mix import splitmix64_array

__all__ = ["item_bit_tables", "item_bits_for"]

_WORD_BITS = 64


def item_bits_for(ids: np.ndarray, n_bits: int, seed: int):
    """``(words, masks)`` for an arbitrary array of item ids.

    Identical math to :func:`item_bit_tables` but computed on the fly —
    for scoring query profiles that mention items outside the stored
    universe without growing the shared lookup tables (a read must not
    permanently allocate O(max item id) memory).
    """
    bits = splitmix64_array(ids.astype(np.uint64), seed) % np.uint64(n_bits)
    words = (bits // _WORD_BITS).astype(np.int64)
    masks = (np.uint64(1) << (bits % np.uint64(_WORD_BITS))).astype(np.uint64)
    return words, masks


def item_bit_tables(start: int, stop: int, n_bits: int, seed: int):
    """``(words, masks)`` for item ids in ``[start, stop)``.

    ``words[i - start]`` is the uint64-word index and ``masks[i - start]``
    the single-bit mask of item ``i``'s fingerprint bit. splitmix64
    hashes each id independently, so tables can be extended by calling
    this for the new id range only — existing entries never change.
    """
    bits = splitmix64_array(
        np.arange(start, stop, dtype=np.uint64), seed
    ) % np.uint64(n_bits)
    words = (bits // _WORD_BITS).astype(np.int64)
    masks = (np.uint64(1) << (bits % np.uint64(_WORD_BITS))).astype(np.uint64)
    return words, masks
