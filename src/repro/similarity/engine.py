"""Counting similarity engines — the single entry point algorithms use.

Every KNN-graph algorithm in this repository (C², Hyrec, NN-Descent,
LSH, brute force) computes similarities through a
:class:`SimilarityEngine`, never directly. This gives us:

* one switch between **exact** Jaccard/cosine and **GoldFinger**
  estimates (the paper's Table V ablation is exactly this switch);
* an accurate count of similarity evaluations, the paper's cost model
  ("greedy approaches spend most of the total computation time
  computing similarities") and our hardware-independent metric.

Counters are protected by a lock so the multi-threaded C² scheduler
reports exact totals.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod

import numpy as np

from ..data.dataset import Dataset
from .bloom import BloomFilterTable
from .cosine import cosine_matrix, cosine_one_to_many, cosine_pair
from .goldfinger import GoldFinger
from .jaccard import (
    jaccard_one_to_many,
    jaccard_pair,
    profile_intersections,
    profile_mask,
)

__all__ = [
    "SimilarityEngine",
    "ExactEngine",
    "GoldFingerEngine",
    "BloomEngine",
    "make_engine",
]


class SimilarityEngine(ABC):
    """Counted similarity oracle over a fixed dataset."""

    def __init__(self, dataset: Dataset) -> None:
        self.dataset = dataset
        self._count = 0
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_lock"] = None  # locks cannot cross process boundaries
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- cost accounting ------------------------------------------------

    @property
    def comparisons(self) -> int:
        """Number of pairwise similarity evaluations so far."""
        return self._count

    def reset_comparisons(self) -> None:
        """Zero the evaluation counter."""
        with self._lock:
            self._count = 0

    def _charge(self, n: int) -> None:
        with self._lock:
            self._count += int(n)

    def charge(self, n: int) -> None:
        """Explicitly add ``n`` to the evaluation counter.

        For solvers that compute with ``block(..., counted=False)`` and
        charge an analytic pair count instead (e.g. brute force charges
        ``n(n-1)/2`` while exploiting symmetry internally).
        """
        self._charge(n)

    # -- similarity queries ---------------------------------------------

    @property
    def n_users(self) -> int:
        """Number of users the engine can score."""
        return self.dataset.n_users

    def pair(self, u: int, v: int) -> float:
        """Similarity of users ``u`` and ``v`` (counted as 1)."""
        self._charge(1)
        return self._pair(u, v)

    def one_to_many(self, user: int, others: np.ndarray) -> np.ndarray:
        """Similarities of ``user`` vs each of ``others`` (counted as len)."""
        others = np.asarray(others, dtype=np.int64)
        self._charge(others.size)
        return self._one_to_many(user, others)

    def matrix(self, users: np.ndarray) -> np.ndarray:
        """Dense pairwise matrix over ``users``.

        Counted as ``n(n-1)/2`` — the number of distinct pairs, which
        is what the brute-force cost model in the paper charges.
        """
        users = np.asarray(users, dtype=np.int64)
        n = users.size
        self._charge(n * (n - 1) // 2)
        return self._matrix(users)

    # -- out-of-index queries (query-serving subsystem) -----------------

    def prepare_query(self, profile) -> object:
        """Prepare an arbitrary item-set profile for repeated scoring.

        The returned handle is backend-specific (raw ids for exact
        engines, a fingerprint/filter row for compact ones) and is
        consumed by :meth:`query_many`. Preparation is O(|profile|)
        maintenance work, not a similarity evaluation, so it is not
        counted — exactly like :meth:`update_profile`.
        """
        profile = np.unique(np.asarray(profile, dtype=np.int64))
        if profile.size and profile[0] < 0:
            raise ValueError("item ids must be non-negative")
        return self._prepare_query(profile)

    def query_many(self, query: object, users: np.ndarray) -> np.ndarray:
        """Similarity of a prepared query profile vs each of ``users``.

        Counted as ``len(users)`` evaluations — a served query spends
        from the same budget the build and update paths do, which is
        what lets benchmarks report "fraction of a brute-force query".
        """
        users = np.asarray(users, dtype=np.int64)
        self._charge(users.size)
        return self._query_many(query, users)

    def _prepare_query(self, profile: np.ndarray) -> object:
        return profile

    @abstractmethod
    def _query_many(self, query: object, users: np.ndarray) -> np.ndarray: ...

    # -- incremental updates --------------------------------------------

    def update_profile(self, user: int, added_items: np.ndarray | None = None) -> None:
        """Notify the engine that ``user``'s profile changed in the dataset.

        The dataset the engine was built over must already reflect the
        change (the online subsystem mutates its
        :class:`~repro.online.MutableDataset` first, then calls this).

        Args:
            user: the dirty user. May be a brand-new index one past the
                previously known users — engines grow their per-user
                state to cover it.
            added_items: sorted item ids that were *appended* to the
                profile. ``None`` signals an arbitrary change (new user,
                removal, rewrite): engines rebuild that user's state
                from the dataset instead of patching it in place.

        Updates are not counted as similarity evaluations; they are the
        O(|update|) maintenance cost the GoldFinger representation makes
        cheap (OR a few bits), which is the point of the subsystem.
        """
        self._update_profile(int(user), added_items)

    def _update_profile(self, user: int, added_items: np.ndarray | None) -> None:
        """Backend hook; default engines keep no per-user caches."""

    def block(self, us: np.ndarray, vs: np.ndarray, counted: bool = True) -> np.ndarray:
        """Similarity block of shape ``(len(us), len(vs))``.

        With ``counted=False`` the caller takes responsibility for
        charging via :meth:`charge` (used by solvers that exploit
        symmetry so the reported count matches the paper's cost model).
        """
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        if counted:
            self._charge(us.size * vs.size)
        return self._block(us, vs)

    def _block(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        out = np.empty((us.size, vs.size), dtype=np.float64)
        for pos, u in enumerate(us):
            out[pos] = self._one_to_many(int(u), vs)
        return out

    @abstractmethod
    def _pair(self, u: int, v: int) -> float: ...

    @abstractmethod
    def _one_to_many(self, user: int, others: np.ndarray) -> np.ndarray: ...

    @abstractmethod
    def _matrix(self, users: np.ndarray) -> np.ndarray: ...


class _ExactQuery:
    """A prepared out-of-index profile with a cached membership mask.

    The serving walk scores one small candidate batch per hop against
    the same query; caching the item mask turns the per-batch cost into
    one fancy-indexing gather. The mask is rebuilt if the item universe
    grew since preparation (an online mutation between two scoring
    calls against the same handle).
    """

    __slots__ = ("profile", "_mask")

    def __init__(self, profile: np.ndarray) -> None:
        self.profile = profile
        self._mask: np.ndarray | None = None

    def mask(self, dataset: Dataset) -> np.ndarray:
        if self._mask is None or self._mask.size != dataset.n_items:
            self._mask = profile_mask(dataset, self.profile)
        return self._mask


class ExactEngine(SimilarityEngine):
    """Exact set similarity on raw profiles (``metric``: jaccard|cosine)."""

    def __init__(self, dataset: Dataset, metric: str = "jaccard") -> None:
        super().__init__(dataset)
        if metric not in ("jaccard", "cosine"):
            raise ValueError(f"unknown metric {metric!r}")
        self.metric = metric
        self._csr = None  # lazy cache of the sparse user x item matrix

    def _csr_matrix(self):
        if self._csr is None:
            self._csr = self.dataset.to_csr_matrix()
        return self._csr

    def _update_profile(self, user: int, added_items: np.ndarray | None) -> None:
        self._csr = None  # raw profiles are read live; only the cache is stale

    def _prepare_query(self, profile: np.ndarray) -> object:
        return _ExactQuery(profile)

    def _query_many(self, query: object, users: np.ndarray) -> np.ndarray:
        if isinstance(query, _ExactQuery):
            profile, mask = query.profile, query.mask(self.dataset)
        else:  # raw profile array (legacy callers / tests)
            profile, mask = query, None
        inter, sizes = profile_intersections(self.dataset, profile, users, mask=mask)
        if self.metric == "jaccard":
            denom = profile.size + sizes - inter
        else:
            denom = np.sqrt(float(profile.size) * sizes)
        out = np.zeros(users.size, dtype=np.float64)
        nz = denom > 0
        out[nz] = inter[nz] / denom[nz]
        return out

    def _pair(self, u: int, v: int) -> float:
        a, b = self.dataset.profile(u), self.dataset.profile(v)
        return jaccard_pair(a, b) if self.metric == "jaccard" else cosine_pair(a, b)

    def _one_to_many(self, user: int, others: np.ndarray) -> np.ndarray:
        fn = jaccard_one_to_many if self.metric == "jaccard" else cosine_one_to_many
        return fn(self.dataset, user, others)

    def _matrix(self, users: np.ndarray) -> np.ndarray:
        if self.metric == "jaccard":
            return self._block(users, users)
        return cosine_matrix(self.dataset, users)

    def _block(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        if self.metric != "jaccard":
            return super()._block(us, vs)
        matrix = self._csr_matrix()
        inter = np.asarray((matrix[us] @ matrix[vs].T).todense(), dtype=np.float64)
        size_u = self.dataset.profile_sizes[us].astype(np.float64)
        size_v = self.dataset.profile_sizes[vs].astype(np.float64)
        union = size_u[:, None] + size_v[None, :] - inter
        out = np.zeros_like(inter)
        nz = union > 0
        out[nz] = inter[nz] / union[nz]
        return out


class GoldFingerEngine(SimilarityEngine):
    """Jaccard estimated from GoldFinger fingerprints (paper default)."""

    def __init__(self, dataset: Dataset, n_bits: int = 1024, seed: int = 7) -> None:
        super().__init__(dataset)
        self.goldfinger = GoldFinger(dataset, n_bits=n_bits, seed=seed)

    @property
    def n_bits(self) -> int:
        """Fingerprint width in bits."""
        return self.goldfinger.n_bits

    def _update_profile(self, user: int, added_items: np.ndarray | None) -> None:
        if added_items is not None:
            self.goldfinger.add_items(user, added_items)
        else:
            self.goldfinger.set_profile(
                user, self.dataset.profile(user), n_items=self.dataset.n_items
            )

    def _prepare_query(self, profile: np.ndarray) -> object:
        return self.goldfinger.fingerprint_profile(profile)

    def _query_many(self, query: object, users: np.ndarray) -> np.ndarray:
        return self.goldfinger.estimate_fp_one_to_many(query, users)

    def _pair(self, u: int, v: int) -> float:
        return self.goldfinger.estimate_pair(u, v)

    def _one_to_many(self, user: int, others: np.ndarray) -> np.ndarray:
        return self.goldfinger.estimate_one_to_many(user, others)

    def _matrix(self, users: np.ndarray) -> np.ndarray:
        return self.goldfinger.estimate_matrix(users)

    def _block(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        return self.goldfinger.estimate_block(us, vs)


class BloomEngine(SimilarityEngine):
    """Jaccard estimated from Bloom-filter summaries (§VII alternative).

    Slower and biased relative to GoldFinger at equal width (cardinality
    inversion is nonlinear), but supports multi-hash filters; provided
    for the compact-structure ablation.
    """

    def __init__(self, dataset: Dataset, n_bits: int = 1024, n_hashes: int = 2,
                 seed: int = 11) -> None:
        super().__init__(dataset)
        self.bloom = BloomFilterTable(
            dataset, n_bits=n_bits, n_hashes=n_hashes, seed=seed
        )

    def _update_profile(self, user: int, added_items: np.ndarray | None) -> None:
        if added_items is not None:
            self.bloom.add_items(user, added_items)
        else:
            self.bloom.set_profile(
                user, self.dataset.profile(user), n_items=self.dataset.n_items
            )

    def _prepare_query(self, profile: np.ndarray) -> object:
        return self.bloom.filter_profile(profile)

    def _query_many(self, query: object, users: np.ndarray) -> np.ndarray:
        return self.bloom.estimate_filter_one_to_many(query, users)

    def _pair(self, u: int, v: int) -> float:
        return self.bloom.estimate_pair(u, v)

    def _one_to_many(self, user: int, others: np.ndarray) -> np.ndarray:
        return self.bloom.estimate_one_to_many(user, others)

    def _matrix(self, users: np.ndarray) -> np.ndarray:
        return self._block(users, users)


def make_engine(
    dataset: Dataset,
    backend: str = "goldfinger",
    n_bits: int = 1024,
    metric: str = "jaccard",
    seed: int = 7,
) -> SimilarityEngine:
    """Factory: ``backend`` is ``"goldfinger"`` (paper default),
    ``"exact"``, or ``"bloom"`` (related-work compact structure)."""
    if backend == "goldfinger":
        if metric != "jaccard":
            raise ValueError("GoldFinger only estimates Jaccard similarity")
        return GoldFingerEngine(dataset, n_bits=n_bits, seed=seed)
    if backend == "exact":
        return ExactEngine(dataset, metric=metric)
    if backend == "bloom":
        if metric != "jaccard":
            raise ValueError("Bloom filters only estimate Jaccard similarity")
        return BloomEngine(dataset, n_bits=n_bits)
    raise ValueError(f"unknown backend {backend!r}")
