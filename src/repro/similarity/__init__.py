"""Similarity substrate: exact Jaccard/cosine, GoldFinger, engines."""

from .bloom import BloomFilterTable
from .cosine import cosine_matrix, cosine_one_to_many, cosine_pair
from .engine import (
    BloomEngine,
    ExactEngine,
    GoldFingerEngine,
    SimilarityEngine,
    make_engine,
)
from .goldfinger import GoldFinger
from .jaccard import (
    intersection_size,
    jaccard_matrix,
    jaccard_one_to_many,
    jaccard_pair,
)

__all__ = [
    "BloomEngine",
    "BloomFilterTable",
    "ExactEngine",
    "GoldFinger",
    "GoldFingerEngine",
    "SimilarityEngine",
    "cosine_matrix",
    "cosine_one_to_many",
    "cosine_pair",
    "intersection_size",
    "jaccard_matrix",
    "jaccard_one_to_many",
    "jaccard_pair",
    "make_engine",
]
