"""GoldFinger: compact fingerprints for fast Jaccard estimation.

GoldFinger (Guerraoui et al., ICDE 2019 / WWW 2020) summarises each
user's profile into a ``B``-bit vector — the *Single Hash Fingerprint*
(SHF): bit ``hash(i) mod B`` is set for every item ``i`` in the
profile. The Jaccard similarity of two profiles is then estimated from
the fingerprints alone:

    J(u, v) ≈ popcount(fp_u AND fp_v) / popcount(fp_u OR fp_v)

The paper runs *all* competitors with 1024-bit GoldFinger vectors, and
ablates them against raw profiles in Table V. Fingerprints are stored
as ``(n_users, B / 64)`` uint64 arrays; batch estimates use
``np.bitwise_count`` so a one-vs-many estimate is a handful of
vectorised operations regardless of profile sizes.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Dataset
from ._bits import item_bit_tables, item_bits_for

__all__ = ["GoldFinger"]

_WORD_BITS = 64


class GoldFinger:
    """A table of Single Hash Fingerprints for one dataset.

    Args:
        dataset: profiles to fingerprint.
        n_bits: fingerprint width ``B`` (power of two, 64..8192; the
            paper's experiments use 1024).
        seed: seed of the item hash function.
    """

    def __init__(self, dataset: Dataset, n_bits: int = 1024, seed: int = 7) -> None:
        if n_bits < _WORD_BITS or n_bits % _WORD_BITS:
            raise ValueError(f"n_bits must be a positive multiple of {_WORD_BITS}")
        self.n_bits = int(n_bits)
        self.n_words = self.n_bits // _WORD_BITS
        self.seed = int(seed)

        # Hash every item id once, then scatter bits per profile. The
        # per-item tables are kept so single profiles can be patched
        # in place later (the online-update path).
        self._item_words = np.empty(0, dtype=np.int64)
        self._item_masks = np.empty(0, dtype=np.uint64)
        self._ensure_items(dataset.n_items)

        fp = np.zeros((dataset.n_users, self.n_words), dtype=np.uint64)
        item_words = self._item_words[dataset.indices]
        item_masks = self._item_masks[dataset.indices]
        rows = np.repeat(np.arange(dataset.n_users, dtype=np.int64), np.diff(dataset.indptr))
        np.bitwise_or.at(fp, (rows, item_words), item_masks)
        # The public ``fingerprints``/``_sizes`` arrays are views into
        # capacity buffers so per-signup growth is amortized O(1)
        # (geometric doubling) instead of one reallocation per user.
        self._fp_buf = fp
        self._sizes_buf = np.bitwise_count(fp).sum(axis=1).astype(np.int64)
        self.fingerprints = self._fp_buf[: dataset.n_users]
        self._sizes = self._sizes_buf[: dataset.n_users]
        self.reallocations = 0

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------

    def _ensure_items(self, n_items: int) -> None:
        """Extend the per-item bit tables to cover ``n_items`` ids.

        splitmix64 hashes each id independently, so extending the table
        leaves existing fingerprints byte-identical.
        """
        old = self._item_words.size
        if n_items <= old:
            return
        words, masks = item_bit_tables(old, n_items, self.n_bits, self.seed)
        self._item_words = np.concatenate([self._item_words, words])
        self._item_masks = np.concatenate([self._item_masks, masks])

    def _ensure_users(self, n_users: int) -> None:
        """Grow the fingerprint table with zero rows up to ``n_users``.

        Amortized: the backing buffer doubles when exhausted, so ``m``
        consecutive signups trigger O(log m) reallocations, not m.
        """
        cur = self.fingerprints.shape[0]
        if n_users <= cur:
            return
        cap = self._fp_buf.shape[0]
        if n_users > cap:
            new_cap = max(n_users, 2 * cap, 8)
            fp_buf = np.zeros((new_cap, self.n_words), dtype=np.uint64)
            fp_buf[:cur] = self.fingerprints
            sizes_buf = np.zeros(new_cap, dtype=np.int64)
            sizes_buf[:cur] = self._sizes
            self._fp_buf, self._sizes_buf = fp_buf, sizes_buf
            self.reallocations += 1
        self.fingerprints = self._fp_buf[:n_users]
        self._sizes = self._sizes_buf[:n_users]

    def add_items(self, user: int, items: np.ndarray) -> None:
        """OR the bits of ``items`` into ``user``'s fingerprint.

        The natural SHF update: an append-only profile change costs
        O(|items|) regardless of profile or dataset size.
        """
        items = np.asarray(items, dtype=np.int64)
        if items.size == 0:
            return
        self._ensure_items(int(items.max()) + 1)
        self._ensure_users(user + 1)
        row = self.fingerprints[user]
        np.bitwise_or.at(row, self._item_words[items], self._item_masks[items])
        self._sizes[user] = int(np.bitwise_count(row).sum())

    def set_profile(self, user: int, profile: np.ndarray, n_items: int | None = None) -> None:
        """Rebuild ``user``'s fingerprint from scratch (new user,
        removal, or a non-append rewrite — bits cannot be un-ORed)."""
        if n_items is not None:
            self._ensure_items(n_items)
        self._ensure_users(user + 1)
        profile = np.asarray(profile, dtype=np.int64)
        if profile.size:
            self._ensure_items(int(profile.max()) + 1)
        row = self.fingerprints[user]
        row.fill(0)
        if profile.size:
            np.bitwise_or.at(row, self._item_words[profile], self._item_masks[profile])
        self._sizes[user] = int(np.bitwise_count(row).sum())

    # ------------------------------------------------------------------

    @property
    def n_users(self) -> int:
        """Number of fingerprinted users."""
        return self.fingerprints.shape[0]

    def fingerprint_size(self, user: int) -> int:
        """Number of set bits in ``user``'s fingerprint."""
        return int(self._sizes[user])

    def estimate_pair(self, u: int, v: int) -> float:
        """Estimated Jaccard similarity between users ``u`` and ``v``."""
        a, b = self.fingerprints[u], self.fingerprints[v]
        inter = int(np.bitwise_count(a & b).sum())
        union = int(np.bitwise_count(a | b).sum())
        return inter / union if union else 0.0

    def estimate_one_to_many(self, user: int, others: np.ndarray) -> np.ndarray:
        """Estimated Jaccard of ``user`` against each user in ``others``."""
        return self.estimate_fp_one_to_many(self.fingerprints[user], others)

    def fingerprint_profile(self, profile: np.ndarray) -> np.ndarray:
        """Fingerprint an arbitrary item-set profile without storing it.

        The query-serving path: out-of-index profiles are summarised
        once, then estimated against stored fingerprints like any user.
        Items outside the stored universe are hashed on the fly — a
        read-only query must not grow the shared item tables (which
        would permanently allocate O(max item id) memory).
        """
        profile = np.asarray(profile, dtype=np.int64)
        row = np.zeros(self.n_words, dtype=np.uint64)
        known = profile[profile < self._item_words.size]
        if known.size:
            np.bitwise_or.at(row, self._item_words[known], self._item_masks[known])
        unseen = profile[profile >= self._item_words.size]
        if unseen.size:
            words, masks = item_bits_for(unseen, self.n_bits, self.seed)
            np.bitwise_or.at(row, words, masks)
        return row

    def estimate_fp_one_to_many(self, fingerprint: np.ndarray, others: np.ndarray) -> np.ndarray:
        """Estimated Jaccard of a fingerprint row vs each user in ``others``."""
        others = np.asarray(others, dtype=np.int64)
        if others.size == 0:
            return np.empty(0, dtype=np.float64)
        rows = self.fingerprints[others]
        inter = np.bitwise_count(fingerprint[None, :] & rows).sum(axis=1).astype(np.float64)
        union = np.bitwise_count(fingerprint[None, :] | rows).sum(axis=1).astype(np.float64)
        out = np.zeros(others.size, dtype=np.float64)
        nz = union > 0
        out[nz] = inter[nz] / union[nz]
        return out

    def estimate_block(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Estimate block of shape ``(len(us), len(vs))``.

        Row-chunked so temporaries stay bounded regardless of block size.
        """
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        rows_v = self.fingerprints[vs]
        out = np.zeros((us.size, vs.size), dtype=np.float64)
        block = max(1, (1 << 22) // max(1, vs.size * self.n_words))
        for start in range(0, us.size, block):
            chunk = self.fingerprints[us[start : start + block]]
            inter = np.bitwise_count(chunk[:, None, :] & rows_v[None, :, :]).sum(axis=2).astype(np.float64)
            union = np.bitwise_count(chunk[:, None, :] | rows_v[None, :, :]).sum(axis=2).astype(np.float64)
            nz = union > 0
            res = np.zeros_like(inter)
            res[nz] = inter[nz] / union[nz]
            out[start : start + block] = res
        return out

    def estimate_matrix(self, users: np.ndarray) -> np.ndarray:
        """Dense pairwise estimate matrix for ``users``.

        ``O(len(users)^2 * n_words)`` time and memory; intended for
        clusters (the paper caps cluster sizes at ``N = 2000``).
        """
        users = np.asarray(users, dtype=np.int64)
        return self.estimate_block(users, users)
