"""Cosine similarity over binary item-set profiles.

The paper's framework admits "any similarity function over sets that is
positively correlated with the number of common items ... such as
cosine or the Jaccard similarity"; Jaccard is the default everywhere,
cosine is provided for completeness of the public API. For binary sets,
``cos(P_u, P_v) = |P_u ∩ P_v| / sqrt(|P_u| * |P_v|)``.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Dataset
from .jaccard import intersection_size

__all__ = ["cosine_pair", "cosine_one_to_many", "cosine_matrix"]


def cosine_pair(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two sorted, unique id arrays."""
    if a.size == 0 or b.size == 0:
        return 0.0
    return intersection_size(a, b) / float(np.sqrt(a.size * b.size))


def cosine_one_to_many(dataset: Dataset, user: int, others: np.ndarray) -> np.ndarray:
    """Cosine similarity of ``user`` against each user in ``others``."""
    others = np.asarray(others, dtype=np.int64)
    if others.size == 0:
        return np.empty(0, dtype=np.float64)
    mask = np.zeros(dataset.n_items, dtype=bool)
    profile = dataset.profile(user)
    mask[profile] = True
    sizes = dataset.profile_sizes[others]
    inter = np.empty(others.size, dtype=np.float64)
    for pos, v in enumerate(others):
        inter[pos] = mask[dataset.profile(int(v))].sum()
    denom = np.sqrt(float(profile.size) * sizes)
    out = np.zeros(others.size, dtype=np.float64)
    nz = denom > 0
    out[nz] = inter[nz] / denom[nz]
    return out


def cosine_matrix(dataset: Dataset, users: np.ndarray | None = None) -> np.ndarray:
    """Dense pairwise cosine matrix for ``users`` (all users if None)."""
    matrix = dataset.to_csr_matrix()
    if users is not None:
        users = np.asarray(users, dtype=np.int64)
        matrix = matrix[users]
        sizes = dataset.profile_sizes[users].astype(np.float64)
    else:
        sizes = dataset.profile_sizes.astype(np.float64)
    inter = np.asarray((matrix @ matrix.T).todense(), dtype=np.float64)
    denom = np.sqrt(np.outer(sizes, sizes))
    out = np.zeros_like(inter)
    nz = denom > 0
    out[nz] = inter[nz] / denom[nz]
    return out
