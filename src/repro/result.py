"""Common result type returned by every KNN-graph builder.

Lives at the package root (not under ``baselines``) because both the
baselines and the C2 core produce it - keeping it neutral avoids an
import cycle between the two.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from .graph.knn_graph import KNNGraph
from .similarity.engine import SimilarityEngine

__all__ = ["BuildResult", "track_build"]


@dataclass
class BuildResult:
    """Outcome of one KNN-graph construction run.

    Attributes:
        graph: the (approximate) KNN graph.
        seconds: wall-clock build time.
        comparisons: similarity evaluations charged to the engine
            during the build (the paper's hardware-independent cost).
        iterations: refinement iterations (0 for one-shot algorithms).
        extra: algorithm-specific diagnostics (cluster sizes, update
            counts per iteration, ...).
    """

    graph: KNNGraph
    seconds: float
    comparisons: int
    iterations: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def scan_rate(self) -> float:
        """Comparisons normalised by the brute-force pair count."""
        n = self.graph.n_users
        pairs = n * (n - 1) // 2
        return self.comparisons / pairs if pairs else 0.0


@contextmanager
def track_build(engine: SimilarityEngine):
    """Context manager measuring time and comparisons of a build.

    Yields a dict that the ``with`` body may extend; on exit it holds
    ``seconds`` and ``comparisons`` keys computed from the engine's
    counter delta, so nested/preceding runs on the same engine do not
    pollute each other.
    """
    start_count = engine.comparisons
    info: dict = {}
    start = time.perf_counter()
    try:
        yield info
    finally:
        info["seconds"] = time.perf_counter() - start
        info["comparisons"] = engine.comparisons - start_count
