"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``build`` — build a KNN graph with any algorithm on a paper dataset
  (or a saved dataset file) and report time / similarity count /
  quality.
* ``datasets`` — print the Table I statistics of the synthetic
  stand-ins at a given scale.
* ``recall`` — run the Table III recommendation protocol.
* ``update-demo`` — stream profile updates through an ``OnlineIndex``
  and report the incremental cost vs a from-scratch rebuild.
* ``serve-demo`` — answer out-of-sample top-k queries through the
  serving subsystem and report QPS, latency percentiles, recall vs
  brute force and the fraction of similarities evaluated. With
  ``--wal-dir`` the index persists itself (snapshot + delta WAL) and
  ``--restore`` recovers it from there instead of rebuilding;
  ``--metrics`` appends the live telemetry dashboard (registry
  snapshot + slowest trace).
* ``metrics-dump`` — exercise every serving layer (index mutations,
  engine cache, replica shipping, WAL, journal consumer) on a small
  workload, then dump the unified metrics registry as a table,
  Prometheus text exposition or JSON.

Examples::

    python -m repro datasets --scale 0.05
    python -m repro build --dataset ml10M --algo C2 --scale 0.05
    python -m repro build --dataset AM --algo Hyrec --k 20
    python -m repro recall --dataset ml1M --folds 5
    python -m repro update-demo --dataset ml1M --updates 200
    python -m repro serve-demo --dataset ml1M --queries 200 --metrics
    python -m repro metrics-dump --format prometheus
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from . import obs
from .baselines import brute_force_knn
from .bench.report import format_table
from .bench.runner import ALGORITHMS, evaluate_run, run_algorithm
from .bench.workloads import Workload
from .core import cluster_and_conquer
from .data import dataset_names, describe, load, load_dataset
from .online import OnlineIndex
from .recommend import evaluate_recall
from .serve import GraphSearcher, QueryEngine, ShardedQueryEngine, brute_force_top_k
from .similarity import make_engine

__all__ = ["main"]


def _load_dataset(args) -> object:
    if args.file:
        return load_dataset(args.file)
    return load(args.dataset, scale=args.scale, seed=args.seed)


def _cmd_datasets(args) -> int:
    rows = []
    for name in dataset_names():
        rows.append(describe(load(name, scale=args.scale, seed=args.seed)).as_row())
    print(format_table(rows, title=f"synthetic datasets at scale={args.scale}"))
    return 0


def _cmd_build(args) -> int:
    dataset = _load_dataset(args)
    workload = Workload(
        dataset=args.dataset,
        scale=args.scale,
        k=args.k,
        seed=args.seed,
        n_workers=args.workers,
    )
    result = run_algorithm(args.algo, dataset, workload)
    if args.no_quality:
        row = {
            "Algo": args.algo,
            "Time (s)": f"{result.seconds:.2f}",
            "Similarities": result.comparisons,
        }
    else:
        row = evaluate_run(args.algo, dataset, workload, result).as_row()
    print(format_table([row], title=f"{args.algo} on {dataset.name}"))
    return 0


def _cmd_recall(args) -> int:
    dataset = _load_dataset(args)
    workload = Workload(dataset=args.dataset, scale=args.scale, k=args.k, seed=args.seed)

    def brute_builder(train):
        return brute_force_knn(make_engine(train), k=args.k).graph

    def c2_builder(train):
        return cluster_and_conquer(make_engine(train), workload.c2_params).graph

    brute = evaluate_recall(dataset, brute_builder, n_folds=args.folds, seed=args.seed)
    c2 = evaluate_recall(dataset, c2_builder, n_folds=args.folds, seed=args.seed)
    print(
        format_table(
            [
                {
                    "Dataset": dataset.name,
                    "Brute force": f"{brute.mean_recall:.3f}",
                    "C2": f"{c2.mean_recall:.3f}",
                    "Delta": f"{c2.mean_recall - brute.mean_recall:+.3f}",
                }
            ],
            title=f"recall @30, {args.folds}-fold CV",
        )
    )
    return 0


def _cmd_update_demo(args) -> int:
    dataset = _load_dataset(args)
    workload = Workload(dataset=args.dataset, scale=args.scale, k=args.k, seed=args.seed)
    params = workload.c2_params
    index = OnlineIndex.build(dataset, params=params)

    rng = np.random.default_rng(args.seed)
    for _ in range(args.updates):
        op = rng.random()
        if op < 0.8:
            user = int(rng.choice(index.dataset.active_users()))
            index.add_items(user, [int(rng.integers(0, dataset.n_items))])
        elif op < 0.9:
            size = int(rng.integers(15, 40))
            index.add_user(rng.integers(0, dataset.n_items, size=size))
        else:
            index.remove_user(int(rng.choice(index.dataset.active_users())))

    rebuild = cluster_and_conquer(make_engine(index.dataset.snapshot()), params)
    stats = index.stats()
    per_update = stats["update_comparisons"] / max(1, stats["mutations_total"])
    print(
        format_table(
            [
                {
                    "Series": "OnlineIndex (incremental)",
                    "Similarities": stats["update_comparisons"],
                    "Per update": f"{per_update:.0f}",
                },
                {
                    "Series": "Full rebuild (batch C2)",
                    "Similarities": rebuild.comparisons,
                    "Per update": f"{rebuild.comparisons:.0f}",
                },
            ],
            title=(
                f"{stats['mutations_total']} mixed updates on {dataset.name} "
                f"({stats['n_active']} active users) — "
                f"{stats['update_comparisons'] / rebuild.comparisons:.1%} "
                "of one rebuild"
            ),
        )
    )
    return 0


def _print_metrics_dashboard(registry, tracer) -> None:
    """Print the registry's latency/counter dashboard plus one trace."""
    snap = registry.snapshot()
    hist_rows = []
    for name, data in sorted(snap["histograms"].items()):
        if not data["count"]:
            continue
        hist_rows.append(
            {
                "Histogram": name,
                "Count": data["count"],
                "p50": f"{data['p50']:.3g}",
                "p99": f"{data['p99']:.3g}",
                "Max": f"{data['max']:.3g}",
            }
        )
    if hist_rows:
        print(format_table(hist_rows, title="latency & size distributions"))
    counter_rows = [
        {"Counter": name, "Value": int(value)}
        for name, value in sorted(snap["counters"].items())
        if value
    ]
    if counter_rows:
        print(format_table(counter_rows, title="counters"))
    gauge_rows = [
        {"Gauge": name, "Value": f"{value:.6g}"}
        for name, value in sorted(snap["gauges"].items())
    ]
    if gauge_rows:
        print(format_table(gauge_rows, title="gauges"))
    slow = tracer.slow(1) or tracer.recent(1)
    if slow:
        print("slowest recent trace:")
        print(obs.format_span(slow[-1], indent=1))


def _cmd_serve_demo(args) -> int:
    dataset = _load_dataset(args)
    workload = Workload(dataset=args.dataset, scale=args.scale, k=args.k, seed=args.seed)
    durable = None
    if args.restore:
        if not args.wal_dir:
            print("--restore requires --wal-dir", file=sys.stderr)
            return 2
        from .persist import DurableIndex

        durable = DurableIndex.recover(args.wal_dir)
        index = durable.index
        info = durable.recovery
        print(
            f"restored from {args.wal_dir}: snapshot seq {info.snapshot_seq} "
            f"+ {info.replayed} WAL deltas replayed in {info.seconds:.3f}s "
            f"({info.evaluations} similarity evaluations) -> version {info.version}"
        )
    else:
        index = OnlineIndex.build(dataset, params=workload.c2_params)
        if args.wal_dir:
            durable = index.attach_persistence(args.wal_dir)
    rerank = None if args.rerank == "none" else args.rerank
    searcher = GraphSearcher(index, ef=args.ef, budget=args.budget, rerank=rerank)
    if args.replicas > 0:
        queries = ShardedQueryEngine(
            index, args.replicas, k=args.topk, replicas=True,
            routing=args.routing, executor=args.replica_executor,
            searcher_kwargs=dict(ef=args.ef, budget=args.budget, rerank=rerank),
            # With persistence attached, replicas bootstrap from the
            # on-disk snapshot + WAL tail instead of pickling the
            # primary under its read lock.
            hydrate=durable.hydrate if durable is not None else None,
        )
    elif args.shards > 1:
        queries = ShardedQueryEngine(
            index, args.shards, k=args.topk,
            searcher_kwargs=dict(ef=args.ef, budget=args.budget, rerank=rerank),
        )
    else:
        queries = QueryEngine(index, k=args.topk, searcher=searcher)

    # Out-of-sample query profiles: partial histories of real users (a
    # visitor who rated a subset of what an indexed user rated), drawn
    # from a pool smaller than the stream so the cache sees repeats.
    rng = np.random.default_rng(args.seed)
    pool = []
    for _ in range(max(1, args.queries // 4)):
        base = dataset.profile(int(rng.integers(0, dataset.n_users)))
        keep = rng.random(base.size) > 0.3
        pool.append(base[keep] if keep.any() else base)
    stream = [pool[int(rng.integers(0, len(pool)))] for _ in range(args.queries)]

    latencies = []
    t0 = time.perf_counter()
    for profile in stream:
        t1 = time.perf_counter()
        queries.search(profile)
        latencies.append(time.perf_counter() - t1)
    wall = time.perf_counter() - t0
    latencies = np.array(latencies) * 1e3

    n_active = index.dataset.active_users().size
    sample = pool[: min(50, len(pool))]
    recalls, evals = [], []
    for profile in sample:
        res = searcher.top_k(profile, k=args.topk)
        ref = brute_force_top_k(index.engine, profile, k=args.topk)
        recalls.append(float(np.isin(ref.ids, res.ids).mean()))
        evals.append(res.evaluations)
    stats = queries.stats()
    print(
        format_table(
            [
                {
                    "QPS": f"{args.queries / wall:.0f}",
                    "p50 (ms)": f"{np.percentile(latencies, 50):.2f}",
                    "p95 (ms)": f"{np.percentile(latencies, 95):.2f}",
                    f"Recall@{args.topk}": f"{np.mean(recalls):.3f}",
                    "Evals/query": f"{np.mean(evals):.0f}",
                    "vs brute force": f"{np.mean(evals) / n_active:.1%}",
                    "Cache hits": f"{stats['cache_hits_total']}/{stats['queries_total']}",
                }
            ],
            title=(
                f"serving {args.queries} queries over {dataset.name} "
                f"({n_active} users, k={args.topk})"
            ),
        )
    )
    if args.replicas > 0:
        # The tier dashboard: what the replicated read path spent, per
        # replica and in total, in the same counted-similarity currency
        # as builds and updates.
        serving = stats["replica_serving"]
        rows = [
            {
                "Replica": i,
                "Queries": c["queries"],
                "Evaluations": c["evaluations"],
                "Hops": c["hops"],
            }
            for i, c in enumerate(serving["per_replica"])
        ]
        rows.append(
            {
                "Replica": "total",
                "Queries": serving["queries"],
                "Evaluations": serving["evaluations"],
                "Hops": serving["hops"],
            }
        )
        print(
            format_table(
                rows,
                title=(
                    f"replica tier dashboard ({stats['deltas_shipped_total']} deltas "
                    f"shipped, {stats['resyncs_total']} resyncs, "
                    f"lag {stats['replica_lag']})"
                ),
            )
        )
    if durable is not None:
        pstats = durable.stats()
        print(
            format_table(
                [
                    {
                        "WAL records": pstats["appends_total"],
                        "WAL bytes": pstats["bytes"],
                        "Segments": pstats["segments"],
                        "Snapshot seq": pstats["snapshot_seq"],
                        "Checkpoints": pstats["checkpoints_total"],
                        "Version": pstats["version"],
                    }
                ],
                title=f"persistence ({args.wal_dir})",
            )
        )
        durable.close()
    if args.metrics:
        _print_metrics_dashboard(obs.metrics(), obs.tracer())
    queries.close()
    return 0


def _cmd_metrics_dump(args) -> int:
    """Drive all five instrumented layers, then dump the registry."""
    import tempfile

    from .core.config import C2Params
    from .data import SyntheticSpec, generate
    from .obs import JournalMetrics
    from .persist import DurableIndex
    from .serve import ReplicaSet

    spec = SyntheticSpec(
        name="metricsdump", n_users=args.users, n_items=2 * args.users,
        mean_profile_size=25.0, n_communities=8,
        community_pool_size=max(40, args.users // 3), min_profile_size=8,
    )
    dataset = generate(spec, seed=args.seed)
    params = C2Params(
        k=args.k, n_buckets=64, n_hashes=4,
        split_threshold=max(20, args.users // 5), seed=args.seed,
    )
    index = OnlineIndex.build(dataset, params=params)
    journal = JournalMetrics(index)
    engine = QueryEngine(index, k=10)
    replicas = ReplicaSet(index, 2, mode="thread")
    journal.attach_lag("replicas", replicas.lag)
    rng = np.random.default_rng(args.seed)
    with tempfile.TemporaryDirectory() as wal_dir:
        durable = DurableIndex(index, wal_dir, background_checkpoints=False)
        # WAL consumer lag rides the same journal_lag gauge family as
        # the replica tier — the dump shows every consumer's cursor.
        journal.attach_lag("wal", durable.lag)
        pool = [
            dataset.profile(int(rng.integers(0, dataset.n_users)))
            for _ in range(16)
        ]
        for step in range(args.ops):
            engine.search_many([pool[int(rng.integers(0, len(pool)))]])
            op = rng.random()
            if op < 0.5:
                user = int(rng.choice(index.dataset.active_users()))
                index.add_items(user, [int(rng.integers(0, dataset.n_items))])
            elif op < 0.8:
                index.add_user(rng.integers(0, dataset.n_items, size=20))
            else:
                index.remove_user(int(rng.choice(index.dataset.active_users())))
        durable.checkpoint()
        journal.collect()
        durable.close()
    replicas.close()
    engine.close()
    journal.close()
    registry = obs.metrics()
    if args.format == "prometheus":
        print(registry.to_prometheus())
    elif args.format == "json":
        print(registry.to_json())
    else:
        _print_metrics_dashboard(registry, obs.tracer())
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Cluster-and-Conquer KNN graph toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--dataset", default="ml1M", choices=dataset_names())
        p.add_argument("--file", help="load a dataset saved with repro.data.save_dataset")
        p.add_argument("--scale", type=float, default=0.05)
        p.add_argument("--seed", type=int, default=42)
        p.add_argument("--k", type=int, default=30)

    p = sub.add_parser("datasets", help="Table I statistics of the stand-ins")
    p.add_argument("--scale", type=float, default=0.05)
    p.add_argument("--seed", type=int, default=42)
    p.set_defaults(fn=_cmd_datasets)

    p = sub.add_parser("build", help="build one KNN graph")
    common(p)
    p.add_argument("--algo", default="C2", choices=sorted(ALGORITHMS))
    p.add_argument("--workers", type=int, default=1)
    p.add_argument(
        "--no-quality",
        action="store_true",
        help="skip the exact-graph quality evaluation (faster)",
    )
    p.set_defaults(fn=_cmd_build)

    p = sub.add_parser("recall", help="Table III recommendation protocol")
    common(p)
    p.add_argument("--folds", type=int, default=5)
    p.set_defaults(fn=_cmd_recall)

    p = sub.add_parser(
        "update-demo",
        help="stream online updates through an OnlineIndex vs a rebuild",
    )
    common(p)
    p.add_argument("--updates", type=int, default=100)
    p.set_defaults(fn=_cmd_update_demo)

    p = sub.add_parser(
        "serve-demo",
        help="serve out-of-sample top-k queries and report QPS/recall/cost",
    )
    common(p)
    p.add_argument("--queries", type=int, default=200)
    p.add_argument("--topk", type=int, default=10)
    p.add_argument("--ef", type=int, default=32)
    p.add_argument("--budget", type=int, default=None,
                   help="hard cap on similarity evaluations per query")
    p.add_argument("--shards", type=int, default=1,
                   help="serve through a ShardedQueryEngine with N thread workers")
    p.add_argument("--replicas", type=int, default=0,
                   help="serve through N per-shard replica indexes fed by "
                        "journal-delta shipping (overrides --shards)")
    p.add_argument("--routing", default="round_robin",
                   choices=["round_robin", "least_loaded", "hash"],
                   help="miss-routing policy across replicas")
    p.add_argument("--replica-executor", default="thread",
                   choices=["thread", "process"],
                   help="replica transport: in-process clones or pinned "
                        "worker pools fed a pickled delta queue")
    p.add_argument("--rerank", default="none", choices=["none", "exact"],
                   help="re-score the walk's final frontier with exact similarities")
    p.add_argument("--wal-dir",
                   help="persist the index there (snapshot + delta WAL); with "
                        "--replicas, replicas hydrate from the persisted state")
    p.add_argument("--restore", action="store_true",
                   help="recover the index from --wal-dir (snapshot + WAL tail "
                        "replay) instead of building it")
    p.add_argument("--metrics", action="store_true",
                   help="append the telemetry dashboard (metrics registry "
                        "snapshot + slowest recent trace)")
    p.set_defaults(fn=_cmd_serve_demo)

    p = sub.add_parser(
        "metrics-dump",
        help="exercise every serving layer on a small workload and dump "
             "the unified metrics registry",
    )
    p.add_argument("--users", type=int, default=150)
    p.add_argument("--ops", type=int, default=120,
                   help="mixed query/mutation steps to drive")
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--format", default="table",
                   choices=["table", "prometheus", "json"])
    p.set_defaults(fn=_cmd_metrics_dump)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
