"""Incremental maintenance of Cluster-and-Conquer KNN graphs.

The batch pipeline (:func:`repro.core.cluster_and_conquer`) rebuilds
the world; this package keeps a built graph fresh under profile
updates, new users and removals at a tiny fraction of the similarity
budget. See :class:`OnlineIndex` for the full story.
"""

from .dataset import MutableDataset
from .index import OnlineIndex, ReplicaDelta, StaleReplicaError
from .router import ClusterRouter

__all__ = [
    "ClusterRouter",
    "MutableDataset",
    "OnlineIndex",
    "ReplicaDelta",
    "StaleReplicaError",
]
