"""Routing a single profile to its FastRandomHash cluster.

The batch pipeline assigns users to clusters in bulk: hash everyone,
group by value, recursively split oversized groups. An incremental
index must answer the same question for *one* (new or changed) profile
without re-hashing the world. Two observations make that possible:

* a profile's split-descent values are just its sorted distinct item
  hash values (``FastRandomHash.profile_hash_path``): splitting with
  ``H\\eta`` always moves a user to her next-larger value, so the
  cluster a user can sit in is identified by a *prefix* of that path —
  the cluster's ``lineage`` recorded at build time;
* :class:`~repro.core.clustering.ClusteringResult` records which
  lineages were actually split (``split_paths``).

Replaying the descent is then a walk down the profile's path: extend
the lineage prefix while the current cluster was split at build time,
then look the final prefix up. If no cluster exists there (the user
would have been a singleton, or carries hash values unseen at build
time), fall back to the nearest ancestor — the residual cluster a
batch run would have left the user in — or report a miss so the index
can open a fresh cluster. For users present at build time this
reproduces the batch assignment exactly.
"""

from __future__ import annotations

import numpy as np

from ..core.fastrandomhash import UNDEFINED, FastRandomHash
from ..core.hashing import GenerativeHash

__all__ = ["ClusterRouter"]


class ClusterRouter:
    """Maps raw profiles to cluster ids, one per hashing configuration.

    Args:
        hashes: the generative hash family the clustering was built
            with (same objects or same seeds — hash values must match).
        split_paths: the ``(config, lineage)`` pairs recorded by
            :func:`~repro.core.clustering.cluster_dataset`.
    """

    def __init__(self, hashes: list[GenerativeHash], split_paths=frozenset()) -> None:
        self._hashes = list(hashes)
        self._frh = [FastRandomHash(g) for g in self._hashes]
        self._split = set(split_paths)
        self._lineage_to_cluster: list[dict[tuple, int]] = [{} for _ in self._hashes]
        # Row-stacked copy of every config's hash table, rebuilt lazily
        # when the item universe grows — lets hash_paths() gather all t
        # configurations' item hashes in one fancy-indexing pass.
        self._stack: np.ndarray | None = None
        self._stack_items = -1

    @property
    def n_configs(self) -> int:
        """Number of hashing configurations ``t``."""
        return len(self._hashes)

    @property
    def split_paths(self) -> frozenset:
        """All ``(config, lineage)`` pairs currently marked as split."""
        return frozenset(self._split)

    def is_split(self, config: int, lineage: tuple) -> bool:
        """Whether ``lineage`` was split (at build time or online)."""
        return (int(config), tuple(lineage)) in self._split

    def mark_split(self, config: int, lineage: tuple) -> None:
        """Record an **online** split of ``lineage``.

        After this, :meth:`route` descends past the lineage exactly as
        it does for build-time splits — the primitive
        :meth:`repro.online.OnlineIndex._resplit` re-partitions
        oversized clusters with (and replicas replay from the shipped
        ``resplit`` delta payload).
        """
        self._split.add((int(config), tuple(lineage)))

    def split_hashes(self, config: int, dataset, users, eta: int):
        """``H\\eta`` values for ``users`` under configuration ``config``.

        The re-hash an online re-split groups a swollen cluster's
        members by — the same
        :meth:`~repro.core.fastrandomhash.FastRandomHash.user_hashes_excluding`
        sweep the batch splitter uses, so online children are exactly
        the clusters a batch split of the same member set would form.
        """
        return self._frh[config].user_hashes_excluding(
            dataset, np.asarray(users, dtype=np.int64), int(eta)
        )

    def ensure_items(self, n_items: int) -> None:
        """Extend the hash tables to cover a grown item universe."""
        for gen in self._hashes:
            gen.extend(n_items)

    def register(self, config: int, lineage: tuple, cluster_id: int) -> None:
        """Bind a cluster lineage to ``cluster_id`` for future routing.

        Lineages are unique within a configuration (a split partitions
        its parent), so the first registration wins.
        """
        self._lineage_to_cluster[config].setdefault(tuple(lineage), int(cluster_id))

    def hash_paths(self, profile: np.ndarray) -> list[np.ndarray]:
        """``profile_hash_path`` under every configuration at once.

        One fancy-indexing gather over a row-stacked copy of the hash
        tables plus one row-wise sort replaces ``t`` separate
        per-config hash + ``np.unique`` passes — the difference is
        measurable on the serving hot path, which routes every query
        through all ``t`` configurations. Values are identical to
        :meth:`~repro.core.fastrandomhash.FastRandomHash.profile_hash_path`
        per config (sorted distinct item hash values).
        """
        if not self._hashes:
            return []
        n_items = self._hashes[0].table.size
        if profile.size == 0:
            return [np.empty(0, dtype=np.int64) for _ in self._hashes]
        if self._stack is None or self._stack_items != n_items:
            self._stack = np.vstack([g.table for g in self._hashes])
            self._stack_items = n_items
        rows = np.sort(self._stack[:, profile].astype(np.int64), axis=1)
        paths = []
        for row in rows:
            keep = np.empty(row.size, dtype=bool)
            keep[0] = True
            np.not_equal(row[1:], row[:-1], out=keep[1:])
            paths.append(row[keep])
        return paths

    def route(
        self, config: int, profile: np.ndarray, path: np.ndarray | None = None
    ) -> tuple[tuple, int]:
        """Destination of ``profile`` under configuration ``config``.

        Returns ``(lineage, cluster_id)`` — the descent prefix where
        the profile settles and the matching registered cluster, or
        ``cluster_id = -1`` when no cluster exists there yet (the
        caller opens one and registers it under ``lineage``).
        ``path`` short-circuits the hash step with this config's entry
        from a :meth:`hash_paths` batch.
        """
        frh = self._frh[config]
        if path is None:
            path = frh.profile_hash_path(profile)
        table = self._lineage_to_cluster[config]
        if path.size == 0:
            lineage = (UNDEFINED,)
            return lineage, table.get(lineage, -1)

        lineage = (int(path[0]),)
        while (config, lineage) in self._split:
            deeper = path[path > lineage[-1]]
            if deeper.size == 0:
                break  # H\eta undefined: a batch run keeps u in the residual
            lineage = lineage + (int(deeper[0]),)

        probe = lineage
        while probe:
            cid = table.get(probe, -1)
            if cid >= 0:
                return probe, cid
            probe = probe[:-1]
        return lineage, -1
