"""OnlineIndex — incremental maintenance of a C² KNN graph.

A production KNN service cannot re-run the batch pipeline every time a
user rates an item or signs up. This module keeps a built
Cluster-and-Conquer graph fresh under a stream of profile updates:

* ``add_items(user, items)`` — OR the new items into the user's
  fingerprint (the GoldFinger representation is naturally updatable),
  re-route the user through the recorded FastRandomHash clustering,
  and re-score only her candidate edges;
* ``add_user(profile)`` — grow every layer by one slot and route the
  newcomer into the ``t`` clusters where her neighbours live;
* ``remove_user(user)`` — tombstone the profile and detach the node,
  at zero similarity cost.

Clusters swollen past ``split_threshold`` by churn are **re-split
online** (``auto_resplit``, on by default): the mutation that pushed a
cluster over the threshold re-partitions it with the same ``H\\eta``
re-hash the batch splitter uses, registers the children under their
lineage keys, and publishes the membership changes as a ``resplit``
event through the standard journal — so ReverseAdjacency, caches,
replicas and the WAL all stay consistent, and quality survives
sustained churn without ever paying a full :meth:`OnlineIndex.rebuild`.
A re-split moves no graph edges and costs **zero similarity
evaluations** (hashing only); its bookkeeping lands in ``n_resplits`` /
``resplit_moved``.

Per update, similarities are computed once against a candidate set
(current cluster members across the ``t`` configurations, previous
neighbours, and holders of reverse edges) with a single counted
``one_to_many`` call — O(dirty · k̃) evaluations versus the full
rebuild's O(n · k̃), where k̃ is the typical cluster size. Both edge
directions are patched from the same scores, the merge step's
"never recompute a similarity" discipline.

Clusters drift as users churn; :meth:`OnlineIndex.rebuild` re-runs the
batch pipeline in place (same engine, same counters) when quality or
balance matters more than latency.
"""

from __future__ import annotations

import pickle
import threading
import warnings
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from .. import obs
from .._sync import RWLock
from ..core.cluster_and_conquer import cluster_and_conquer
from ..core.clustering import group_by_value
from ..core.config import C2Params
from ..core.fastrandomhash import UNDEFINED
from ..deltas.bus import Delta, DeltaBus
from ..deltas.view import CallbackView, DerivedView, ReplicaDeltaView
from ..graph.heap import EMPTY
from ..graph.reverse import ReverseAdjacency
from ..result import BuildResult
from ..similarity.engine import SimilarityEngine, make_engine
from .dataset import MutableDataset
from .router import ClusterRouter

__all__ = ["OnlineIndex", "ReplicaDelta", "StaleReplicaError"]


class StaleReplicaError(RuntimeError):
    """A replica cannot converge by deltas and must resync from a snapshot.

    Raised by :meth:`OnlineIndex.apply_delta` when the delta stream has
    a gap (the replica missed a mutation) or describes a ``rebuild``
    (which replaces the edge set wholesale, so no per-edge replay can
    express it). The replica tier reacts by re-cloning the primary and
    counting a resync.
    """


@dataclass(frozen=True)
class ReplicaDelta:
    """Everything a replica needs to replay one primary mutation.

    The shippable (picklable) superset of the ``subscribe`` payload:
    per-edge structural changes annotated with their post-mutation
    scores, plus the profile and routing-state changes the mutation
    made — enough for :meth:`OnlineIndex.apply_delta` to bring a
    cloned index to the primary's exact serving state in O(|edges|)
    work and **zero similarity evaluations**.

    Attributes:
        seq: primary index version after the mutation; replicas apply
            deltas strictly in sequence (``seq == replica.version + 1``)
            and skip already-reflected ones (``seq <= replica.version``,
            e.g. a delta raced the snapshot it was cloned from).
        event: ``add_user`` / ``add_items`` / ``remove_user`` /
            ``refill`` / ``rebuild`` (the latter forces a resync).
        user: the mutated user id (-1 for ``rebuild``).
        items: profile payload — the full cleaned profile for
            ``add_user``, the genuinely-added item ids for
            ``add_items``, ``None`` otherwise.
        assign: the user's post-mutation per-config cluster ids
            (``None`` when the mutation does not re-route).
        new_clusters: ``(config, lineage)`` keys registered by this
            mutation, in registration order — replicas open the same
            cluster ids by replaying appends in order.
        edges: ``(u, v, added, score)`` structural edge changes in
            journal order (scores of edges dropped later in the same
            mutation are shipped as 0.0; the later drop erases them).
        n_users: user-slot count after the mutation.
        n_items: item-universe size after the mutation.
        resplit: payload of a ``resplit`` event (``None`` otherwise):
            ``{"config", "marks", "members", "unsplittable"}`` — the
            configuration that split, the lineages newly marked split,
            the **final member lists** of every touched cluster id (in
            primary order, so replica member lists replay identically),
            and the cluster ids frozen as unsplittable residuals.
    """

    seq: int
    event: str
    user: int
    items: np.ndarray | None = None
    assign: list[int] | None = None
    new_clusters: list[tuple[int, tuple]] = field(default_factory=list)
    edges: list[tuple[int, int, bool, float]] = field(default_factory=list)
    n_users: int = 0
    n_items: int = 0
    resplit: dict | None = None


class _ReverseView(DerivedView):
    """Internal view maintaining the index's own :class:`ReverseAdjacency`.

    Registered on every index's bus at priority 0 so the in-edge sets
    are patched before any other view runs — front ends may read
    ``index.reverse_index()`` from their own ``apply`` hooks and must
    observe post-mutation state. While the reverse index has not been
    built (it is lazy) the view no-ops; after a ``rebuild`` discards it
    (:meth:`OnlineIndex._install` resets ``_reverse``) the next
    :meth:`OnlineIndex.reverse_index` call rebuilds from fresh edges.
    """

    name = "reverse_adjacency"
    priority = 0

    def __init__(self, index: "OnlineIndex") -> None:
        super().__init__()
        self._index = index

    def apply(self, delta: Delta) -> None:
        """Patch the in-edge sets from the journal (no-op while unbuilt).

        Batched: the journal's per-``(u, v)`` history collapses to its
        final flag, so replica replay and WAL recovery pay one set
        edit per distinct edge (``ReverseAdjacency.apply_batch``).
        """
        rev = self._index._reverse
        if rev is None:
            return
        rev.grow(delta.n_users)
        rev.apply_batch(delta.edges)

    def resync(self) -> None:
        """Rebuild the in-edge sets from the live heap table."""
        self._index._reverse = ReverseAdjacency.from_heaps(
            self._index.graph.heaps
        )


class OnlineIndex:
    """An incrementally maintainable Cluster-and-Conquer KNN graph.

    Args:
        engine: similarity engine over a :class:`MutableDataset` (the
            mutable store is what makes in-place updates possible).
        params: C² parameters; must use the ``"frh"`` hash family
            (MinHash permutations cannot extend to new items).
        build: a :class:`BuildResult` from
            ``cluster_and_conquer(engine, params, keep_clustering=True)``
            to adopt; built fresh when omitted. The graph is taken over
            and mutated in place.
        auto_resplit: re-split clusters online as soon as a mutation
            pushes them past ``params.split_threshold`` (default).
            ``False`` restores the pre-resplit behaviour — clusters
            swell until :meth:`rebuild` — which the scenario benchmark
            uses as its drift baseline.
        update_cap: bound on the per-configuration cluster candidate
            pool one mutation is scored against (``None`` = unbounded,
            the historical behaviour). A production write path cannot
            afford O(cluster size) similarity evaluations per mutation
            once clusters swell, so the serving benchmarks cap it;
            oversized pools are subsampled deterministically (evenly
            spaced members, mirroring :meth:`seed_candidates`).
            Previous neighbours and reverse-edge holders always stay
            in the pool, the cap only bounds the cluster sweep. With
            ``auto_resplit`` keeping clusters at or under the split
            threshold, a cap ≥ the threshold never truncates anything
            — which is exactly the re-split quality story: bounded
            write cost *without* sampling away the homogeneous
            candidates a newcomer's edges are built from.
    """

    def __init__(
        self,
        engine: SimilarityEngine,
        params: C2Params | None = None,
        build: BuildResult | None = None,
        auto_resplit: bool = True,
        update_cap: int | None = None,
    ) -> None:
        params = params or C2Params()
        if params.hash_family != "frh":
            raise ValueError("OnlineIndex requires hash_family='frh'")
        if not isinstance(engine.dataset, MutableDataset):
            raise TypeError(
                "engine must be built over a MutableDataset "
                "(use OnlineIndex.build(...) or MutableDataset.from_dataset)"
            )
        self.engine = engine
        self.params = params
        self._data: MutableDataset = engine.dataset
        if build is None or "clustering" not in build.extra:
            build = cluster_and_conquer(engine, params, keep_clustering=True)
        self.build_result = build
        self.auto_resplit = bool(auto_resplit)
        self.update_cap = None if update_cap is None else int(update_cap)
        self.n_updates = 0
        self.update_comparisons = 0
        self.refill_comparisons = 0
        self.n_resplits = 0
        self.resplit_moved = 0
        self.n_rebuilds = 0
        self.version = 0
        self.lock = RWLock()  # mutations write, serving walks read
        # The delta pipeline: one Delta published per mutation, every
        # consumer (reverse adjacency, caches, replicas, WAL, metrics)
        # a registered DerivedView. The deprecated subscribe /
        # subscribe_deltas shims park their wrapper views here, keyed
        # by (channel, callback), so unsubscribe can find them.
        self.deltas = DeltaBus(self)
        self.deltas.register(_ReverseView(self))
        self._legacy_views: dict = {}
        # Payload of the most recent resplit event (back-compat; new
        # consumers read ``delta.resplit`` off the published Delta) —
        # safe because views run synchronously under the write lock.
        self.last_resplit: dict | None = None
        self._bind_metrics()
        self._refiller = None  # lazily-built GraphSearcher (serve subsystem)
        self._reverse: ReverseAdjacency | None = None  # lazy, then maintained
        self._reverse_build_lock = threading.Lock()
        self._install(build)

    @classmethod
    def build(
        cls,
        dataset,
        params: C2Params | None = None,
        backend: str = "goldfinger",
        n_bits: int = 1024,
        seed: int = 7,
        auto_resplit: bool = True,
        update_cap: int | None = None,
    ) -> "OnlineIndex":
        """Build an index from a dataset (frozen datasets are thawed)."""
        if not isinstance(dataset, MutableDataset):
            dataset = MutableDataset.from_dataset(dataset)
        engine = make_engine(dataset, backend=backend, n_bits=n_bits, seed=seed)
        return cls(
            engine, params=params, auto_resplit=auto_resplit,
            update_cap=update_cap,
        )

    # ------------------------------------------------------------------
    # State derived from a batch build
    # ------------------------------------------------------------------

    def _install(self, build: BuildResult) -> None:
        clustering = build.extra["clustering"]
        self.graph = build.graph
        self.n_configs = clustering.n_configs
        self._router = ClusterRouter(build.extra["hashes"], clustering.split_paths)
        self._degraded: set[int] = set()
        self._members: list[list[int]] = []
        self._cluster_key: list[tuple[int, tuple]] = []
        self._assign: list[list[int]] = [
            [-1] * self.n_configs for _ in range(self._data.n_users)
        ]
        # Residual clusters from the batch split must never be re-split
        # online with the same eta (a no-op by construction) — the same
        # rule freezes online residuals, see _resplit.
        self._unsplittable: set[int] = set()
        for cluster in clustering.clusters:
            cid = len(self._members)
            members = [int(u) for u in cluster.users if self._data.is_active(int(u))]
            self._members.append(members)
            self._cluster_key.append((cluster.config, cluster.lineage))
            self._router.register(cluster.config, cluster.lineage, cid)
            if not cluster.splittable:
                self._unsplittable.add(cid)
            for u in members:
                self._assign[u][cluster.config] = cid
        # Tombstoned users must not resurface through a batch rebuild
        # (empty profiles cluster together on the UNDEFINED hash).
        # One vectorized sweep detaches all of them at once.
        active_mask = np.zeros(self._data.n_users, dtype=bool)
        active_mask[self._data.active_users()] = True
        inactive = np.flatnonzero(~active_mask)
        if inactive.size:
            heaps = self.graph.heaps
            heaps.ids[inactive] = EMPTY
            heaps.scores[inactive] = -np.inf
            stale = np.isin(heaps.ids, inactive)
            heaps.ids[stale] = EMPTY
            heaps.scores[stale] = -np.inf
        # From here every structural edge change is journaled so the
        # reverse-adjacency index (and any subscriber) can be patched
        # per edge instead of rebuilt per mutation. A (re)build replaces
        # the heap table wholesale, so any maintained reverse state is
        # discarded and lazily rebuilt from the fresh edges.
        self.graph.heaps.attach_journal()
        self._reverse = None
        # Cluster-registration watermark for delta export: clusters
        # appended past this index since the last notify are shipped to
        # replicas so their routing state replays in lockstep.
        self._n_notified_clusters = len(self._cluster_key)

    # ------------------------------------------------------------------
    # Pickling (process-mode serving shards snapshot the index)
    # ------------------------------------------------------------------

    def _bind_metrics(self, registry=None) -> None:
        """Cache the per-op mutation latency histogram handles.

        Bound at construction and re-bound (to the process-wide
        registry) on unpickle — replica clones then record their
        ``apply_delta`` latencies into the registry of whatever
        process they serve in.
        """
        reg = registry if registry is not None else obs.metrics()
        self._mut_hist = {
            op: reg.histogram("index_mutation_seconds", op=op)
            for op in (
                "add_user", "add_items", "remove_user",
                "refill", "rebuild", "apply_delta",
            )
        }

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # Registered views are bound to front-end objects in the parent
        # process, the refiller holds a back-reference, locks and
        # metric handles (they hold locks too) are not picklable; a
        # worker's snapshot starts detached with a fresh bus. The
        # ``_reverse`` array state itself IS shipped — only its
        # maintaining view is recreated on load.
        state["deltas"] = None
        state["_legacy_views"] = {}
        state["_refiller"] = None
        state["lock"] = None
        state["_reverse_build_lock"] = None
        state["_mut_hist"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.lock = RWLock()
        self._reverse_build_lock = threading.Lock()
        self.deltas = DeltaBus(self)
        self.deltas.register(_ReverseView(self))
        self._bind_metrics()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def k(self) -> int:
        """Neighbourhood size of the maintained graph."""
        return self.graph.k

    @property
    def n_users(self) -> int:
        """User slots in the index (tombstones included)."""
        return self._data.n_users

    @property
    def dataset(self) -> MutableDataset:
        """The mutable profile store behind the index."""
        return self._data

    @property
    def comparisons(self) -> int:
        """Total similarity evaluations charged to the engine."""
        return self.engine.comparisons

    def neighborhood(self, user: int) -> tuple[np.ndarray, np.ndarray]:
        """``(ids, scores)`` of ``user``'s current neighbours, best first.

        Reading a row that lost edges to :meth:`remove_user` triggers
        a lazy refill first (see :meth:`refill`), so callers always
        observe a repaired neighbourhood without removals paying an
        eager all-rows repair cost.
        """
        if user in self._degraded:
            self.refill(user)
        return self.graph.neighborhood(user)

    @property
    def degraded(self) -> frozenset:
        """Rows currently one-or-more edges short after removals."""
        return frozenset(self._degraded)

    # ------------------------------------------------------------------
    # The delta pipeline (consumers register DerivedViews on the bus)
    # ------------------------------------------------------------------

    def subscribe(self, callback) -> None:
        """Deprecated: register ``callback(event, user, deltas)``.

        .. deprecated::
            Use ``index.deltas.register(view)`` with a
            :class:`~repro.deltas.DerivedView` (see
            ``docs/architecture.md``, "Migrating off subscribe").
            This shim wraps the callback in a
            :class:`~repro.deltas.CallbackView` and will be removed
            next release.
        """
        warnings.warn(
            "OnlineIndex.subscribe is deprecated; register a "
            "repro.deltas.DerivedView via index.deltas.register(view)",
            DeprecationWarning,
            stacklevel=2,
        )
        self._legacy_views[("cb", callback)] = self.deltas.register(
            CallbackView(callback)
        )

    def unsubscribe(self, callback) -> None:
        """Deprecated: remove a :meth:`subscribe` callback.

        Raises ``ValueError`` for an unknown callback, matching the old
        ``list.remove`` contract.
        """
        warnings.warn(
            "OnlineIndex.unsubscribe is deprecated; keep the view returned "
            "by index.deltas.register(view) and call view.close()",
            DeprecationWarning,
            stacklevel=2,
        )
        view = self._legacy_views.pop(("cb", callback), None)
        if view is None:
            raise ValueError(f"{callback!r} is not subscribed")
        self.deltas.unregister(view)

    def subscribe_deltas(self, callback) -> None:
        """Deprecated: register ``callback(delta: ReplicaDelta)``.

        .. deprecated::
            Use ``index.deltas.register(view)`` with a
            :class:`~repro.deltas.DerivedView` declaring
            ``needs_scored = True``. This shim wraps the callback in a
            :class:`~repro.deltas.ReplicaDeltaView` and will be removed
            next release.
        """
        warnings.warn(
            "OnlineIndex.subscribe_deltas is deprecated; register a "
            "repro.deltas.DerivedView with needs_scored=True via "
            "index.deltas.register(view)",
            DeprecationWarning,
            stacklevel=2,
        )
        self._legacy_views[("delta", callback)] = self.deltas.register(
            ReplicaDeltaView(callback)
        )

    def unsubscribe_deltas(self, callback) -> None:
        """Deprecated: remove a :meth:`subscribe_deltas` callback.

        Raises ``ValueError`` for an unknown callback, matching the old
        ``list.remove`` contract.
        """
        warnings.warn(
            "OnlineIndex.unsubscribe_deltas is deprecated; keep the view "
            "returned by index.deltas.register(view) and call view.close()",
            DeprecationWarning,
            stacklevel=2,
        )
        view = self._legacy_views.pop(("delta", callback), None)
        if view is None:
            raise ValueError(f"{callback!r} is not subscribed")
        self.deltas.unregister(view)

    def _notify(self, event: str, user: int, items=None, resplit=None) -> None:
        edges = self.graph.heaps.drain_journal()
        self.version += 1
        new_clusters = self._cluster_key[self._n_notified_clusters :]
        self._n_notified_clusters = len(self._cluster_key)
        # The scored shippable export is the one expensive annotation;
        # it is only built while some registered view asks for it.
        replica = None
        if self.deltas.needs_scored:
            replica = self._export_delta(
                event, user, edges, items, new_clusters, resplit
            )
        self.deltas.publish(
            Delta(
                seq=self.version,
                event=event,
                user=int(user),
                edges=edges,
                items=items,
                n_users=self._data.n_users,
                n_items=self._data.n_items,
                resplit=resplit,
                replica=replica,
            )
        )

    def _export_delta(
        self, event: str, user: int, deltas, items, new_clusters, resplit=None
    ) -> ReplicaDelta:
        """Annotate a drained journal into a shippable :class:`ReplicaDelta`.

        Added edges are scored by looking the edge up in the
        post-mutation heap row (O(k) per edge); an added edge no longer
        present was dropped later in the same journal, so its score is
        irrelevant — the later drop delta erases it on the replica too.
        """
        heaps = self.graph.heaps
        edges: list[tuple[int, int, bool, float]] = []
        for u, v, added in deltas:
            score = 0.0
            if added:
                slot = np.flatnonzero(heaps.ids[u] == v)
                if slot.size:
                    score = float(heaps.scores[u, int(slot[0])])
            edges.append((int(u), int(v), bool(added), score))
        assign = None
        if event in ("add_user", "add_items") and 0 <= user < len(self._assign):
            assign = list(self._assign[user])
        return ReplicaDelta(
            seq=self.version,
            event=event,
            user=int(user),
            items=None if items is None else np.asarray(items, dtype=np.int64),
            assign=assign,
            new_clusters=[(int(c), tuple(lin)) for c, lin in new_clusters],
            edges=edges,
            n_users=self._data.n_users,
            n_items=self._data.n_items,
            resplit=resplit,
        )

    # ------------------------------------------------------------------
    # Replication (per-shard replica serving tier)
    # ------------------------------------------------------------------

    def clone(self) -> "OnlineIndex":
        """A detached deep copy of the live index (snapshot clone).

        Taken under the read lock so a concurrent mutation cannot tear
        it. The clone starts with no listeners and fresh locks (the
        pickling contract process-mode serving already relies on) and
        can be brought forward mutation-by-mutation with
        :meth:`apply_delta` — the replica tier's whole lifecycle.
        """
        return pickle.loads(self.snapshot_bytes())

    def snapshot_bytes(self) -> bytes:
        """The pickled snapshot :meth:`clone` (and process shipping) use."""
        with self.lock.read():
            return pickle.dumps(self)

    def apply_delta(self, delta: ReplicaDelta) -> bool:
        """Replay one shipped primary mutation on this (replica) index.

        Brings a :meth:`clone` to the primary's next serving state —
        profiles, fingerprints, routing tables, cluster membership,
        graph edges and (if built) reverse adjacency — in O(|edges|)
        work and zero similarity evaluations. Replica scores are exact
        for every edge structurally changed since the clone; scores of
        untouched edges may lag in-place rescorings, which serving
        never reads (walks score candidates against the query).

        Returns ``False`` when the delta is already reflected
        (``seq <= version`` — it raced the snapshot), ``True`` after a
        successful replay. Raises :class:`StaleReplicaError` on a
        sequence gap or a ``rebuild`` event; callers resync from a
        fresh snapshot.
        """
        t0 = perf_counter()
        try:
            return self._apply_delta(delta)
        finally:
            self._mut_hist["apply_delta"].observe(perf_counter() - t0)

    def _apply_delta(self, delta: ReplicaDelta) -> bool:
        with self.lock.write():
            if delta.seq <= self.version:
                return False
            if delta.seq != self.version + 1:
                raise StaleReplicaError(
                    f"delta seq {delta.seq} does not follow replica "
                    f"version {self.version}"
                )
            if delta.event == "rebuild":
                raise StaleReplicaError(
                    "rebuild replaces the edge set wholesale; resync"
                )
            event, user = delta.event, delta.user
            if event == "add_user":
                uid = self._data.add_user(delta.items)
                if uid != user:
                    raise StaleReplicaError(
                        f"shipped signup became user {uid}, expected {user}"
                    )
                self.engine.update_profile(uid, None)
                self._assign.append([-1] * self.n_configs)
            elif event == "add_items":
                added = self._data.add_items(user, delta.items)
                self.engine.update_profile(user, added)
            elif event == "remove_user":
                self._data.remove_user(user)
                self.engine.update_profile(user, None)
                for config, cid in enumerate(self._assign[user]):
                    if cid >= 0:
                        self._members[cid].remove(user)
                    self._assign[user][config] = -1
            self.graph.grow(self._data.n_users)
            for config, lineage in delta.new_clusters:
                cid = len(self._members)
                self._members.append([])
                self._cluster_key.append((config, lineage))
                self._router.register(config, lineage, cid)
            self._n_notified_clusters = len(self._cluster_key)
            if delta.resplit is not None:
                # Replay an online re-split: mark the lineages split so
                # routing descends identically, then adopt the shipped
                # final member lists wholesale (primary order — the
                # deterministic seed subsample reads positions).
                rs = delta.resplit
                config = int(rs["config"])
                for lineage in rs["marks"]:
                    self._router.mark_split(config, tuple(lineage))
                for cid, users in rs["members"]:
                    members = [int(u) for u in users]
                    for u in members:
                        self._assign[u][config] = int(cid)
                    self._members[int(cid)] = members
                self._unsplittable.update(int(c) for c in rs["unsplittable"])
            if delta.assign is not None:
                for config, cid in enumerate(delta.assign):
                    old = self._assign[user][config]
                    if old != cid:
                        if old >= 0:
                            self._members[old].remove(user)
                        if cid >= 0:
                            self._members[cid].append(user)
                        self._assign[user][config] = cid
            self.graph.heaps.apply_edge_deltas(delta.edges)
            replayed = self.graph.heaps.drain_journal()
            if event == "remove_user":
                active = self._data.active_mask()
                self._degraded.update(
                    int(u)
                    for u, v, added, _score in delta.edges
                    if not added and v == user and u != user and active[u]
                )
            self._degraded.discard(user)
            self.version = delta.seq
            # The replica's own views (its reverse adjacency, a
            # per-replica cache, a chained downstream tier) observe the
            # replayed mutation through the replica's bus. The locally
            # replayed journal is the structural truth; the shipped
            # scored delta rides along for any needs_scored view.
            self.deltas.publish(
                Delta(
                    seq=self.version,
                    event=event,
                    user=int(user),
                    edges=replayed,
                    items=delta.items,
                    n_users=self._data.n_users,
                    n_items=self._data.n_items,
                    resplit=delta.resplit,
                    replica=delta if self.deltas.needs_scored else None,
                )
            )
            return True

    def attach_persistence(self, path, **kwargs):
        """Persist this index into ``path``; returns the attached wrapper.

        Convenience for :class:`repro.persist.DurableIndex`: a baseline
        snapshot is written (when the directory is fresh) and every
        subsequent mutation's :class:`ReplicaDelta` is appended to the
        write-ahead log through a registered WAL view, so a
        restart recovers the exact serving state with
        ``DurableIndex.recover(path)`` instead of paying a rebuild.
        Keyword arguments are forwarded (``checkpoint_bytes``,
        ``fsync``, …).
        """
        from ..persist.durable import DurableIndex  # deferred: persist imports online

        return DurableIndex(self, path, **kwargs)

    # ------------------------------------------------------------------
    # Read-side support (query-serving subsystem)
    # ------------------------------------------------------------------

    def reverse_index(self) -> ReverseAdjacency:
        """The maintained in-edge index ``holders(v) = {u : v ∈ edges(u)}``.

        Built lazily — one O(n·k) group-by on first use — and patched
        per edge from every subsequent mutation's journal, so between
        mutations it is always exactly the reverse of the current edge
        set (the property suite compares it against a from-scratch
        rebuild). Once built it also takes over the write path: the
        O(n·k) purge scans in :meth:`remove_user` and the update
        re-score become O(holders·k) row edits.
        """
        if self._reverse is None:
            # Double-checked: N shard walks hitting a cold index must
            # pay the O(n·k) group-by once, not once each. Safe under
            # the read lock — builders see the same frozen edge set.
            with self._reverse_build_lock:
                if self._reverse is None:
                    self._reverse = ReverseAdjacency.from_heaps(self.graph.heaps)
        return self._reverse

    def seed_candidates(self, profile, per_config: int = 16, with_route: bool = False):
        """Entry points for a graph search on an arbitrary profile.

        Routes the profile through the recorded FastRandomHash
        clustering (one :class:`ClusterRouter` descent per
        configuration) and returns up to ``per_config`` members of each
        destination cluster — the users a batch run would have compared
        the profile against. Oversized clusters are subsampled
        deterministically (evenly spaced members) so repeated searches
        are reproducible. Routing is read-only: unknown lineages are
        reported as misses, never opened, and items outside the
        dataset's universe are ignored — they carry no routing signal,
        and extending the hash tables to an arbitrary query id would
        permanently allocate O(max item id) memory on a read.

        ``with_route=True`` returns ``(seeds, routed)`` where
        ``routed`` is the tuple of destination cluster ids (one per
        configuration that matched) — the provenance the result cache
        needs for re-split-aware eviction: a re-split changes only
        routing, so the cached answers it can invalidate are exactly
        those whose query routed into a touched cluster.
        """
        profile = np.unique(np.asarray(profile, dtype=np.int64))
        profile = profile[profile < self._data.n_items]
        self._router.ensure_items(self._data.n_items)
        pools: list[np.ndarray] = []
        routed: list[int] = []
        paths = self._router.hash_paths(profile)
        for config in range(self.n_configs):
            _, cid = self._router.route(config, profile, path=paths[config])
            if cid < 0:
                continue
            routed.append(int(cid))
            members = self._members[cid]
            if len(members) > per_config:
                step = len(members) // per_config
                members = members[:: max(1, step)][:per_config]
            pools.append(np.asarray(members, dtype=np.int64))
        if not pools:
            seeds = np.empty(0, dtype=np.int64)
        else:
            seeds = np.unique(np.concatenate(pools))
            seeds = seeds[self._data.active_mask()[seeds]]
        if with_route:
            return seeds, tuple(routed)
        return seeds

    def refill(self, user: int) -> None:
        """Repair a neighbour list degraded by :meth:`remove_user`.

        Runs a :class:`~repro.serve.GraphSearcher` self-query seeded
        from the row's surviving edges and merges the results back in
        — the counted cost lands in ``refill_comparisons``. No-op for
        rows that are not flagged degraded.
        """
        t0 = perf_counter()
        try:
            self._refill(user)
        finally:
            self._mut_hist["refill"].observe(perf_counter() - t0)

    def _refill(self, user: int) -> None:
        with self.lock.write():
            self._degraded.discard(user)
            if not self._data.is_active(user):
                return
            from ..serve.searcher import GraphSearcher  # deferred: serve imports online

            if self._refiller is None:
                self._refiller = GraphSearcher(self)
            before = self.engine.comparisons
            result = self._refiller.top_k(
                self._data.profile(user),
                k=self.k,
                exclude=(user,),
                extra_seeds=self.graph.neighbors(user),
            )
            self.graph.add_batch(user, result.ids, result.scores)
            self.refill_comparisons += self.engine.comparisons - before
            self._notify("refill", user)

    def stats(self) -> dict:
        """Operational counters for dashboards and tests.

        Keys follow the canonical cross-component vocabulary of
        ``docs/observability.md`` (``mutations_total``, ``clusters``,
        ``version``, …). The pre-unification spellings (``n_updates``,
        ``n_clusters``, …) were dropped after their one-release grace
        window.
        """
        sizes = np.array([len(m) for m in self._members], dtype=np.int64)
        return {
            "component": "online_index",
            "n_users": self.n_users,
            "n_active": int(self._data.active_users().size),
            "mutations_total": self.n_updates,
            "update_comparisons": self.update_comparisons,
            "refill_comparisons": self.refill_comparisons,
            "build_comparisons": self.build_result.comparisons,
            "clusters": int((sizes > 0).sum()),
            "max_cluster_size": int(sizes.max()) if sizes.size else 0,
            "oversized": (
                0
                if self.params.split_threshold is None
                else int((sizes > self.params.split_threshold).sum())
            ),
            "resplits_total": self.n_resplits,
            "resplit_moved": self.resplit_moved,
            "rebuilds_total": self.n_rebuilds,
            "degraded": len(self._degraded),
            "reverse_built": self._reverse is not None,
            "version": self.version,
        }

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def add_user(self, items) -> int:
        """Insert a new user with the given profile; returns her id."""
        t0 = perf_counter()
        try:
            return self._add_user(items)
        finally:
            self._mut_hist["add_user"].observe(perf_counter() - t0)

    def _add_user(self, items) -> int:
        with self.lock.write():
            uid = self._data.add_user(items)
            self.engine.update_profile(uid, None)
            self.graph.grow(self._data.n_users)
            if self._reverse is not None:
                self._reverse.grow(self._data.n_users)
            self._assign.append([-1] * self.n_configs)
            self._update(uid)
            self._notify("add_user", uid, items=self._data.profile(uid).copy())
            self._maybe_resplit(uid)
            return uid

    def add_items(self, user: int, items) -> np.ndarray:
        """Add items to ``user``'s profile and refresh her edges.

        Returns the genuinely new item ids; a no-op update (all items
        already present) costs nothing.
        """
        t0 = perf_counter()
        try:
            return self._add_items(user, items)
        finally:
            self._mut_hist["add_items"].observe(perf_counter() - t0)

    def _add_items(self, user: int, items) -> np.ndarray:
        with self.lock.write():
            added = self._data.add_items(user, items)
            if added.size:
                self.engine.update_profile(user, added)
                self._update(user)
                self._notify("add_items", user, items=added)
                self._maybe_resplit(user)
            return added

    def remove_user(self, user: int) -> None:
        """Tombstone ``user`` and detach her node (zero comparisons).

        With the reverse index built, the detach purges only the rows
        actually holding ``user`` (read off the in-edge set) instead of
        column-scanning all n rows.
        """
        t0 = perf_counter()
        try:
            self._remove_user(user)
        finally:
            self._mut_hist["remove_user"].observe(perf_counter() - t0)

    def _remove_user(self, user: int) -> None:
        with self.lock.write():
            if not self._data.is_active(user):
                return
            self._data.remove_user(user)
            self.engine.update_profile(user, None)
            for config, cid in enumerate(self._assign[user]):
                if cid >= 0:
                    self._members[cid].remove(user)
                self._assign[user][config] = -1
            holders = None
            if self._reverse is not None:
                holders = self._reverse.holders(user)
            losers = self.graph.remove_user(user, holders=holders)
            # Rows that lost an edge stay one short until someone reads
            # them — the lazy-refill contract (see neighborhood/refill).
            active = self._data.active_mask()
            self._degraded.update(int(v) for v in losers if active[v])
            self._degraded.discard(user)
            self._notify("remove_user", user)

    def rebuild(self) -> BuildResult:
        """Re-run the batch pipeline on the current profiles.

        Replaces the graph and the cluster state in place (clusters
        swollen by churn are re-balanced); the engine and its counters
        carry over, so the rebuild's cost lands in ``comparisons``.
        With :meth:`_resplit` handling swollen clusters online this is
        an off-peak tool, not a churn tax — the scenario benchmark's
        acceptance counts ``n_rebuilds`` to prove the tape needed none.
        """
        t0 = perf_counter()
        try:
            return self._rebuild()
        finally:
            self._mut_hist["rebuild"].observe(perf_counter() - t0)

    def _rebuild(self) -> BuildResult:
        with self.lock.write():
            build = cluster_and_conquer(self.engine, self.params, keep_clustering=True)
            self.build_result = build
            self.n_rebuilds += 1
            self._install(build)
            self._notify("rebuild", -1)
            return build

    # ------------------------------------------------------------------
    # Online cluster re-split
    # ------------------------------------------------------------------

    def _maybe_resplit(self, user: int) -> None:
        """Re-split any cluster this mutation pushed past the threshold.

        Called under the write lock after the mutation's own notify, so
        a re-split is journaled as its own ``resplit`` event (own
        version, own :class:`ReplicaDelta`) and replicas replay the two
        in the exact primary order.
        """
        threshold = self.params.split_threshold
        if not self.auto_resplit or threshold is None or user < 0:
            return
        for config in range(self.n_configs):
            cid = self._assign[user][config]
            if (
                cid >= 0
                and cid not in self._unsplittable
                and len(self._members[cid]) > threshold
            ):
                self._resplit(cid)

    def _resplit(self, cid: int) -> None:
        """Re-partition one oversized cluster by the batch split rule.

        The members are re-hashed with ``H\\eta`` (``eta`` = the
        cluster's last lineage value); users with an undefined hash or
        alone in their new value stay in the residual (which keeps
        ``cid`` and is frozen unsplittable, exactly like the batch
        splitter's residuals), every larger group becomes a child
        cluster registered under ``lineage + (value,)``. Oversized
        children are split recursively within the same event. Costs
        **zero similarity evaluations** — hashing and list surgery
        only — and moves no graph edges; what it changes is routing:
        seeds and update candidate pools come from tight, homogeneous
        clusters again, which is what holds recall under churn.

        Publishes one ``resplit`` event whose payload carries the new
        split marks and the final member lists of every touched
        cluster, so replicas, caches and the WAL replay the exact
        routing state.
        """
        threshold = self.params.split_threshold
        config, _ = self._cluster_key[cid]
        marks: list[tuple] = []
        frozen: list[int] = []
        touched: set[int] = set()
        stack = [cid]
        while stack:
            c = stack.pop()
            members = self._members[c]
            if c in self._unsplittable or len(members) <= threshold:
                continue
            _, lineage = self._cluster_key[c]
            values = self._router.split_hashes(
                config, self._data, members, int(lineage[-1])
            )
            moved: set[int] = set()
            for value, group in group_by_value(
                np.asarray(members, dtype=np.int64), values
            ):
                if value == UNDEFINED or group.size <= 1:
                    continue  # undefined hashes and singletons stay put
                child_lineage = lineage + (int(value),)
                child = len(self._members)
                child_members = [int(u) for u in group]
                self._members.append(child_members)
                self._cluster_key.append((config, child_lineage))
                self._router.register(config, child_lineage, child)
                for u in child_members:
                    self._assign[u][config] = child
                moved.update(child_members)
                touched.add(child)
                if len(child_members) > threshold:
                    stack.append(child)
            self._router.mark_split(config, lineage)
            marks.append(tuple(lineage))
            self._members[c] = [u for u in members if u not in moved]
            self._unsplittable.add(c)
            frozen.append(c)
            touched.add(c)
            self.n_resplits += 1
            self.resplit_moved += len(moved)
        payload = {
            "config": int(config),
            "marks": marks,
            "members": [(int(c), list(self._members[c])) for c in sorted(touched)],
            "unsplittable": [int(c) for c in frozen],
        }
        # Stashed for back-compat inspection; views read the same
        # payload off ``delta.resplit`` — the result caches evict the
        # touched-cluster lineages selectively from it.
        self.last_resplit = payload
        self._notify("resplit", -1, resplit=payload)

    # ------------------------------------------------------------------

    def _update(self, user: int) -> None:
        """Re-route ``user`` and re-score her candidate edges."""
        self._degraded.discard(user)  # the full rescore below repairs the row
        before = self.engine.comparisons
        profile = self._data.profile(user)
        self._router.ensure_items(self._data.n_items)

        candidate_pools: list[np.ndarray] = []
        paths = self._router.hash_paths(profile)
        for config in range(self.n_configs):
            lineage, cid = self._router.route(config, profile, path=paths[config])
            if cid < 0:
                cid = len(self._members)
                self._members.append([])
                self._cluster_key.append((config, lineage))
                self._router.register(config, lineage, cid)
            old = self._assign[user][config]
            if old != cid:
                if old >= 0:
                    self._members[old].remove(user)
                self._members[cid].append(user)
                self._assign[user][config] = cid
            members = self._members[cid]
            if self.update_cap is not None and len(members) > self.update_cap:
                # Swollen cluster: bound the sweep with the same
                # deterministic evenly-spaced subsample the read path
                # uses. This is where a no-resplit index pays in edge
                # quality — a newcomer's candidates are a thin sample
                # of a heterogeneous blob instead of a tight cluster.
                step = max(1, len(members) // self.update_cap)
                members = members[::step][: self.update_cap]
            candidate_pools.append(np.array(members, dtype=np.int64))

        # Candidate edges: cluster peers across all t configurations,
        # plus every existing edge touching the user in either
        # direction (their scores are stale now). Purging the reverse
        # edges up front doubles as the holder scan — every ex-holder
        # joins the candidate set and gets a fresh offer below. With
        # the reverse index built the holders are already known, so the
        # purge touches O(holders) rows instead of scanning all n.
        candidate_pools.append(self.graph.neighbors(user).astype(np.int64))
        if self._reverse is not None:
            ex_holders = self.graph.heaps.purge_id_rows(
                user, self._reverse.holders(user)
            )
        else:
            ex_holders = self.graph.heaps.purge_id(user)
        candidate_pools.append(ex_holders.astype(np.int64))
        cands = np.unique(np.concatenate(candidate_pools))
        cands = cands[cands != user]

        if cands.size < self.k:
            # Cold start: a sparse profile can miss every registered
            # lineage (all t clusters fresh singletons). Top the pool
            # up with a bounded random sample so every user leaves an
            # update with a full neighbourhood to iterate from —
            # deterministic given the seed and the update sequence.
            active = self._data.active_users()
            pool = active[(active != user) & ~np.isin(active, cands)]
            want = min(2 * self.k - cands.size, pool.size)
            if want > 0:
                rng = np.random.default_rng(
                    (self.params.seed, user, self.n_updates)
                )
                extra = rng.choice(pool, size=want, replace=False)
                cands = np.unique(np.concatenate([cands, extra]))

        if cands.size:
            sims = self.engine.one_to_many(user, cands)  # the counted cost
            self.graph.rescore_user(user, cands, sims)
            # Reverse-edge repair: every ex-holder is in cands, so
            # re-offering the fresh scores leaves no edge unaccounted
            # for — and costs no extra similarity evaluations (Jaccard
            # is symmetric).
            self.graph.offer_reverse(user, cands, sims)
        else:
            self.graph.clear_user(user)

        self.update_comparisons += self.engine.comparisons - before
        self.n_updates += 1
