"""Mutable profile store backing the online-update subsystem.

:class:`~repro.data.dataset.Dataset` is an immutable CSR snapshot —
ideal for the vectorised batch pipeline, wrong for a system where users
rate new items every second. :class:`MutableDataset` keeps one numpy
array per user (sorted, unique item ids) so single-profile mutations
are O(|profile|), while duck-typing the read interface the similarity
kernels and the clustering step consume (``profile``,
``profile_sizes``, ``indptr``/``indices``, ``to_csr_matrix``). The CSR
views are materialised lazily and invalidated on every mutation, so
batch passes (initial build, :meth:`OnlineIndex.rebuild`) still run at
full vectorised speed.

Removed users keep their index with an empty profile (tombstones) so
user ids — and thus graph rows, fingerprints and hash values — stay
stable for everyone else.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Dataset

__all__ = ["MutableDataset"]


class MutableDataset:
    """A users/items dataset supporting per-user profile mutation.

    Args:
        profiles: optional initial per-user item collections.
        n_items: initial item universe size (grows automatically when
            larger item ids are added).
        name: dataset label.
    """

    def __init__(self, profiles=None, n_items: int = 0, name: str = "online") -> None:
        self.name = name
        self._n_items = int(n_items)
        self._profiles: list[np.ndarray] = []
        self._active: list[bool] = []
        self._snapshot: Dataset | None = None
        self._sizes: np.ndarray | None = None
        self._mask: np.ndarray | None = None
        for p in profiles or []:
            self.add_user(p)

    @classmethod
    def from_dataset(cls, dataset: Dataset, name: str | None = None) -> "MutableDataset":
        """Thaw an immutable :class:`Dataset` into a mutable store."""
        out = cls(n_items=dataset.n_items, name=name or dataset.name)
        out._profiles = [dataset.profile(u).copy() for u in range(dataset.n_users)]
        out._active = [True] * dataset.n_users
        return out

    # ------------------------------------------------------------------
    # Read interface (Dataset-compatible)
    # ------------------------------------------------------------------

    @property
    def n_users(self) -> int:
        """Number of user slots (tombstones included)."""
        return len(self._profiles)

    @property
    def n_items(self) -> int:
        """Current item universe size (monotonically growing)."""
        return self._n_items

    @property
    def n_ratings(self) -> int:
        """Total number of (user, item) associations."""
        return int(sum(p.size for p in self._profiles))

    @property
    def profile_sizes(self) -> np.ndarray:
        """``|P_u|`` per user slot (0 for removed users)."""
        if self._sizes is None:
            self._sizes = np.array([p.size for p in self._profiles], dtype=np.int64)
        return self._sizes

    def profile(self, user: int) -> np.ndarray:
        """Sorted item ids of ``user``'s profile (a view, do not mutate)."""
        return self._profiles[user]

    def profile_set(self, user: int) -> set[int]:
        """``P_u`` as a Python set."""
        return set(int(i) for i in self._profiles[user])

    def is_active(self, user: int) -> bool:
        """False once :meth:`remove_user` tombstoned the slot."""
        return self._active[user]

    def active_mask(self) -> np.ndarray:
        """Boolean mask over user slots, True for non-removed users.

        Cached until the next mutation — the serving path filters
        candidate arrays against it on every search hop.
        """
        if self._mask is None:
            self._mask = np.array(self._active, dtype=bool)
        return self._mask

    def active_users(self) -> np.ndarray:
        """Ids of all non-removed users."""
        return np.flatnonzero(self.active_mask()).astype(np.int64)

    def snapshot(self) -> Dataset:
        """An immutable CSR :class:`Dataset` of the current state.

        Tombstoned users appear with empty profiles so indices line up.
        The snapshot is cached until the next mutation.
        """
        if self._snapshot is None:
            sizes = self.profile_sizes
            indptr = np.zeros(self.n_users + 1, dtype=np.int64)
            np.cumsum(sizes, out=indptr[1:])
            indices = (
                np.concatenate(self._profiles).astype(np.int32)
                if self.n_users and indptr[-1] > 0
                else np.empty(0, dtype=np.int32)
            )
            self._snapshot = Dataset(
                indptr=indptr, indices=indices, n_items=self._n_items,
                name=self.name,
            )
        return self._snapshot

    @property
    def indptr(self) -> np.ndarray:
        """CSR index pointers of the current snapshot."""
        return self.snapshot().indptr

    @property
    def indices(self) -> np.ndarray:
        """CSR item ids of the current snapshot."""
        return self.snapshot().indices

    def to_csr_matrix(self):
        """The binary user x item matrix as ``scipy.sparse.csr_matrix``."""
        return self.snapshot().to_csr_matrix()

    # ------------------------------------------------------------------
    # Mutation interface
    # ------------------------------------------------------------------

    def _clean(self, items) -> np.ndarray:
        items = np.unique(np.asarray(list(items) if not isinstance(items, np.ndarray) else items, dtype=np.int64))
        if items.size and items[0] < 0:
            raise ValueError("item ids must be non-negative")
        if items.size:
            self._n_items = max(self._n_items, int(items[-1]) + 1)
        return items.astype(np.int32)

    def _invalidate(self) -> None:
        self._snapshot = None
        self._sizes = None
        self._mask = None

    def add_user(self, items) -> int:
        """Append a new user with the given profile; returns her id."""
        profile = self._clean(items)
        self._profiles.append(profile)
        self._active.append(True)
        self._invalidate()
        return self.n_users - 1

    def add_items(self, user: int, items) -> np.ndarray:
        """Add ``items`` to ``user``'s profile.

        Returns the genuinely new item ids (sorted); already-present
        items are ignored. Raises for tombstoned users.
        """
        if not self._active[user]:
            raise ValueError(f"user {user} was removed")
        items = self._clean(items)
        added = np.setdiff1d(items, self._profiles[user], assume_unique=False)
        if added.size:
            merged = np.union1d(self._profiles[user], added).astype(np.int32)
            self._profiles[user] = merged
            self._invalidate()
        return added.astype(np.int64)

    def remove_user(self, user: int) -> None:
        """Tombstone ``user``: empty profile, id kept, flagged inactive."""
        if not self._active[user]:
            return
        self._profiles[user] = np.empty(0, dtype=np.int32)
        self._active[user] = False
        self._invalidate()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MutableDataset(name={self.name!r}, users={self.n_users} "
            f"({len(self.active_users())} active), items={self.n_items}, "
            f"ratings={self.n_ratings})"
        )
