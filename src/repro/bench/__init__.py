"""Benchmark harness: workloads, runner, table reporting."""

from .report import emit, emit_json, format_table, results_dir
from .scenarios import (
    SCENARIOS,
    DriftTracker,
    IndexWorld,
    Op,
    Scenario,
    SimWorld,
    make_scenario,
    play,
)
from .runner import (
    ALGORITHMS,
    Run,
    evaluate_run,
    exact_graph,
    load_workload_dataset,
    run_algorithm,
)
from .workloads import (
    Workload,
    bench_scale,
    paper_workload,
    scale_split_threshold,
    scaled_c2_params,
)

__all__ = [
    "ALGORITHMS",
    "DriftTracker",
    "IndexWorld",
    "Op",
    "Run",
    "SCENARIOS",
    "Scenario",
    "SimWorld",
    "Workload",
    "bench_scale",
    "emit",
    "emit_json",
    "make_scenario",
    "play",
    "evaluate_run",
    "exact_graph",
    "format_table",
    "load_workload_dataset",
    "paper_workload",
    "results_dir",
    "run_algorithm",
    "scale_split_threshold",
    "scaled_c2_params",
]
