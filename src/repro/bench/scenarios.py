"""Adversarial & time-evolving serving workloads with drift tracking.

:class:`~repro.bench.workloads.MixedWorkload` pins down *one* traffic
shape — a uniform 90/10 read/write tape — and leaves resolving each op
against live state to the caller, which historically sampled query and
mutation targets from the **initial** id range (silently touching
deleted ids late in a tape). This module is the scenario suite that
replaces that: a :class:`Scenario` is a seeded generator of fully
resolved :class:`Op` records, sampled against a :class:`World` view of
the *live* id set, so every op targets a user that exists at the
moment the op is drawn.

Concrete scenarios cover the traffic shapes the paper's static
evaluation never exercises:

* :class:`UniformMixed` — the 90/10 tape, live-id sound (the direct
  replacement for resolving ``MixedWorkload.kinds()`` by hand);
* :class:`ZipfianQueries` — read-heavy traffic whose query popularity
  follows a Zipf law (cache hit-rate cliffs live here);
* :class:`FlashCrowd` — periodic bursts of *correlated* signups cloned
  from a live seed user (the ``_signup_contacts`` eviction storm, and
  a cluster-swelling attack: the cohort lands in the seed's clusters);
* :class:`SustainedChurn` — write-heavy churn around a viral item
  bundle (most signups are bundle *followers*, most updates make
  existing users adopt bundle items), the scenario that swells
  clusters far past ``split_threshold`` and motivates online
  re-split;
* :class:`CorrelatedDeletes` — signup cohorts purged wholesale later,
  so the graph loses whole neighbourhoods at once.

Quality is tracked **over the stream**, not just at the endpoint:
:class:`DriftTracker` probes a fixed held-out query set every
``window`` ops against a brute-force oracle on the *current* index
state and records a recall drift curve (plus the worst-window floor
the CI gate holds). ``benchmarks/bench_serving.py --scenario <name>``
drives all of this end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Iterator

import numpy as np

__all__ = [
    "SCENARIOS",
    "CorrelatedDeletes",
    "DriftTracker",
    "FlashCrowd",
    "IndexWorld",
    "Op",
    "Scenario",
    "SimWorld",
    "SustainedChurn",
    "UniformMixed",
    "World",
    "ZipfianQueries",
    "make_scenario",
    "play",
]


@dataclass(frozen=True)
class Op:
    """One fully resolved workload operation.

    Unlike ``MixedWorkload.kinds()`` (bare kind strings the caller
    resolves), an ``Op`` carries its concrete target and payload, so a
    tape can be replayed bit-identically against different serving
    configurations.

    Attributes:
        kind: ``"query"``, ``"add_items"``, ``"add_user"`` or
            ``"remove_user"``.
        user: target uid for ``add_items`` / ``remove_user``; ``-1``
            otherwise.
        items: item payload for ``add_items`` / ``add_user``.
        profile: the query profile for ``"query"`` ops.
    """

    kind: str
    user: int = -1
    items: np.ndarray | None = None
    profile: np.ndarray | None = None

    def signature(self) -> tuple:
        """Hashable value equality view (determinism tests compare these)."""
        return (
            self.kind,
            self.user,
            None if self.items is None else tuple(int(i) for i in self.items),
            None if self.profile is None else tuple(int(i) for i in self.profile),
        )


class World:
    """Live-state view a :class:`Scenario` samples targets from.

    The scenario generator and the op applier must see the *same*
    evolving population: a generator yields one op, the driver applies
    it through :meth:`apply`, and only then does the generator resume
    and draw the next op against the updated live set. Two
    implementations: :class:`IndexWorld` executes ops against a real
    ``OnlineIndex`` (the benchmark path), :class:`SimWorld` only
    bookkeeps ids and profiles (the unit-test path) — and *raises* on
    any op that targets a dead id, which is exactly the regression
    test for the old initial-id-range blind spot.
    """

    last_uid: int = -1

    def live_users(self) -> np.ndarray:
        """Currently live uids, ascending."""
        raise NotImplementedError

    def profile(self, uid: int) -> np.ndarray:
        """The live profile of ``uid``."""
        raise NotImplementedError

    @property
    def n_items(self) -> int:
        """Size of the item universe."""
        raise NotImplementedError

    def apply(self, op: Op) -> None:
        """Execute ``op``; records ``last_uid`` for signups."""
        raise NotImplementedError


class SimWorld(World):
    """Pure-bookkeeping world for scenario unit tests.

    Tracks live uids and their profiles without any index. Strict by
    construction: an op that touches a dead or unknown uid raises
    ``ValueError`` — so "every scenario runs to completion on a
    SimWorld" *is* the live-id soundness test.
    """

    def __init__(self, profiles: list[np.ndarray], n_items: int) -> None:
        self._profiles: dict[int, np.ndarray] = {
            uid: np.unique(np.asarray(p, dtype=np.int64))
            for uid, p in enumerate(profiles)
        }
        self._n_items = int(n_items)
        self._next_uid = len(profiles)
        self.last_uid = -1
        self.n_queries = 0

    @classmethod
    def random(cls, n_users: int, n_items: int = 300, seed: int = 0,
               mean_size: float = 20.0) -> "SimWorld":
        """A seeded random population to run tapes against."""
        rng = np.random.default_rng(seed)
        profiles = [
            rng.integers(0, n_items, size=max(3, int(rng.normal(mean_size, 5.0))))
            for _ in range(n_users)
        ]
        return cls(profiles, n_items)

    def live_users(self) -> np.ndarray:
        return np.array(sorted(self._profiles), dtype=np.int64)

    def profile(self, uid: int) -> np.ndarray:
        if uid not in self._profiles:
            raise ValueError(f"profile() of dead user {uid}")
        return self._profiles[uid]

    @property
    def n_items(self) -> int:
        return self._n_items

    def apply(self, op: Op) -> None:
        if op.kind == "query":
            if op.profile is None:
                raise ValueError("query op without a profile")
            self.n_queries += 1
        elif op.kind == "add_user":
            uid = self._next_uid
            self._next_uid += 1
            self._profiles[uid] = np.unique(np.asarray(op.items, dtype=np.int64))
            self.last_uid = uid
        elif op.kind == "add_items":
            if op.user not in self._profiles:
                raise ValueError(f"add_items to dead user {op.user}")
            self._profiles[op.user] = np.union1d(
                self._profiles[op.user], np.asarray(op.items, dtype=np.int64)
            )
        elif op.kind == "remove_user":
            if op.user not in self._profiles:
                raise ValueError(f"remove_user of dead user {op.user}")
            del self._profiles[op.user]
        else:
            raise ValueError(f"unknown op kind {op.kind!r}")


class IndexWorld(World):
    """Executes scenario ops against a live ``OnlineIndex``.

    Queries go through ``engine.search`` when an engine (any object
    with a ``search(profile)`` method — :class:`~repro.serve.QueryEngine`
    or a sharded front end) is attached, and are skipped otherwise
    (mutation-only replays, e.g. the property tests).
    """

    def __init__(self, index, engine=None) -> None:
        self.index = index
        self.engine = engine
        self.last_uid = -1
        self.n_queries = 0

    def live_users(self) -> np.ndarray:
        return self.index.dataset.active_users()

    def profile(self, uid: int) -> np.ndarray:
        return self.index.dataset.profile(uid)

    @property
    def n_items(self) -> int:
        return self.index.dataset.n_items

    def apply(self, op: Op) -> None:
        if op.kind == "query":
            self.n_queries += 1
            if self.engine is not None:
                self.engine.search(op.profile)
        elif op.kind == "add_user":
            self.last_uid = self.index.add_user(op.items)
        elif op.kind == "add_items":
            self.index.add_items(op.user, op.items)
        elif op.kind == "remove_user":
            self.index.remove_user(op.user)
        else:
            raise ValueError(f"unknown op kind {op.kind!r}")


# ----------------------------------------------------------------------
# Sampling helpers shared by the scenarios
# ----------------------------------------------------------------------


def _live_user(world: World, rng: np.random.Generator) -> int:
    """One uniformly sampled live uid (live set is never empty here)."""
    live = world.live_users()
    return int(live[int(rng.integers(0, live.size))])


def _query_profile(world: World, rng: np.random.Generator) -> np.ndarray:
    """A query profile sampled from *live* state.

    Half the queries perturb a live user's current profile (drop ~40%
    of its items), half are fresh random profiles — the same mix the
    serving property tests use, minus their initial-id-range bug.
    """
    if rng.random() < 0.5:
        base = world.profile(_live_user(world, rng))
        keep = rng.random(base.size) > 0.4
        if keep.any():
            return base[keep]
        return base
    return rng.integers(0, world.n_items, size=int(rng.integers(3, 25)))


def _signup_profile(
    world: World,
    rng: np.random.Generator,
    clone_from: int | None = None,
    clone_fraction: float = 0.0,
    mean_size: float = 20.0,
) -> np.ndarray:
    """A new user's profile, optionally cloned from a live user.

    With ``clone_from`` set, ``clone_fraction`` of the donor's items
    are copied and the rest filled with random items — correlated
    signups that land in (and swell) the donor's clusters.
    """
    size = max(5, int(rng.normal(mean_size, 5.0)))
    if clone_from is not None and clone_fraction > 0.0:
        donor = world.profile(clone_from)
        n_clone = min(donor.size, max(1, int(round(clone_fraction * size))))
        cloned = rng.choice(donor, size=n_clone, replace=False)
        extra = rng.integers(0, world.n_items, size=max(0, size - n_clone))
        return np.union1d(cloned, extra)
    return rng.integers(0, world.n_items, size=size)


# ----------------------------------------------------------------------
# Scenario base + registry
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """A seeded op-tape generator (base class).

    Subclasses implement :meth:`ops` as a generator that *samples
    against the world as the tape executes*: the driver must apply
    each yielded op before pulling the next (see :func:`play`), so
    mutation targets always come from the then-current live set. The
    tape is deterministic under a fixed ``seed`` and a deterministic
    world.

    Attributes:
        n_ops: number of operations the tape yields.
        seed: RNG seed for every sampling decision.
    """

    name: ClassVar[str] = "base"
    n_ops: int = 1000
    seed: int = 0

    def ops(self, world: World) -> Iterator[Op]:
        """Yield ``n_ops`` fully resolved operations against ``world``."""
        raise NotImplementedError

    def probes(self, world: World, n: int) -> list[np.ndarray] | None:
        """Scenario-specific drift probes, or ``None`` for the default.

        Called once, *before* the tape runs, against the initial
        population. A scenario overrides this when generic held-out
        queries would miss the neighbourhoods its tape degrades (e.g.
        :class:`SustainedChurn` probes bundle-follower queries — the
        traffic that actually lands in the swollen clusters).
        Deterministic under the scenario ``seed``.
        """
        return None

    # Shared building block: one uniform-mixed op.
    def _mixed_op(
        self,
        world: World,
        rng: np.random.Generator,
        read_fraction: float,
        weights: np.ndarray,
        min_population: int = 20,
    ) -> Op:
        if rng.random() < read_fraction:
            return Op("query", profile=_query_profile(world, rng))
        kind = ("add_items", "add_user", "remove_user")[
            int(rng.choice(3, p=weights))
        ]
        if kind == "remove_user" and world.live_users().size <= min_population:
            kind = "add_items"  # never drain the population
        if kind == "add_items":
            return Op(
                "add_items",
                user=_live_user(world, rng),
                items=rng.integers(0, world.n_items, size=int(rng.integers(1, 4))),
            )
        if kind == "add_user":
            return Op("add_user", items=_signup_profile(world, rng))
        return Op("remove_user", user=_live_user(world, rng))


def _norm_weights(*weights: float) -> np.ndarray:
    w = np.array(weights, dtype=np.float64)
    return w / w.sum()


@dataclass(frozen=True)
class UniformMixed(Scenario):
    """The 90/10 tape of ``MixedWorkload``, resolved live-id-soundly.

    Same op mix as the PR-3 write-storm benchmark (60/25/15 write
    split), but every target is drawn from the live id set at the
    moment the op executes — the fix for the initial-id-range blind
    spot called out in ISSUE 6.
    """

    name: ClassVar[str] = "mixed"
    read_fraction: float = 0.9
    add_items_weight: float = 0.60
    add_user_weight: float = 0.25
    remove_user_weight: float = 0.15

    def ops(self, world: World) -> Iterator[Op]:
        rng = np.random.default_rng(self.seed)
        weights = _norm_weights(
            self.add_items_weight, self.add_user_weight, self.remove_user_weight
        )
        for _ in range(self.n_ops):
            yield self._mixed_op(world, rng, self.read_fraction, weights)


@dataclass(frozen=True)
class ZipfianQueries(Scenario):
    """Read-heavy traffic with Zipf-distributed query popularity.

    A fixed pool of ``pool_size`` query profiles is drawn up front
    (perturbations of then-live users); each query picks pool rank
    ``r`` with probability ``∝ r^-exponent``. Rank-1 queries hammer
    the result cache (hit-rate heaven), the tail forces walks — the
    hit-rate cliff appears when mutations keep evicting the head. The
    small write share is the uniform mixed mix.
    """

    name: ClassVar[str] = "zipf"
    read_fraction: float = 0.95
    exponent: float = 1.1
    pool_size: int = 64

    def rank_probabilities(self) -> np.ndarray:
        """``P(rank r) ∝ r^-exponent`` over the pool, normalized."""
        ranks = np.arange(1, self.pool_size + 1, dtype=np.float64)
        p = ranks ** (-self.exponent)
        return p / p.sum()

    def ops(self, world: World) -> Iterator[Op]:
        rng = np.random.default_rng(self.seed)
        pool = [_query_profile(world, rng) for _ in range(self.pool_size)]
        probs = self.rank_probabilities()
        weights = _norm_weights(0.60, 0.25, 0.15)
        for _ in range(self.n_ops):
            if rng.random() < self.read_fraction:
                yield Op("query", profile=pool[int(rng.choice(self.pool_size, p=probs))])
            else:
                yield self._mixed_op(world, rng, 0.0, weights)


@dataclass(frozen=True)
class FlashCrowd(Scenario):
    """Signup storms: periodic bursts of correlated new users.

    Every ``burst_every`` ops the tape emits ``burst_size`` back-to-back
    signups whose profiles clone ``clone_fraction`` of one live seed
    user's items — a flash crowd arriving through the same door. The
    cohort routes into the seed's clusters (swelling them toward
    ``split_threshold``) and every arrival triggers the
    ``_signup_contacts`` eviction path at once. Between bursts the
    tape is uniform mixed traffic.
    """

    name: ClassVar[str] = "flashcrowd"
    read_fraction: float = 0.9
    burst_every: int = 60
    burst_size: int = 12
    clone_fraction: float = 0.7

    def ops(self, world: World) -> Iterator[Op]:
        rng = np.random.default_rng(self.seed)
        weights = _norm_weights(0.60, 0.25, 0.15)
        emitted = 0
        while emitted < self.n_ops:
            if emitted % self.burst_every == 0:
                seed_user = _live_user(world, rng)
                for _ in range(min(self.burst_size, self.n_ops - emitted)):
                    yield Op(
                        "add_user",
                        items=_signup_profile(
                            world, rng,
                            clone_from=seed_user,
                            clone_fraction=self.clone_fraction,
                        ),
                    )
                    emitted += 1
            else:
                yield self._mixed_op(world, rng, self.read_fraction, weights)
                emitted += 1


@dataclass(frozen=True)
class SustainedChurn(Scenario):
    """Write-heavy churn around a viral item bundle — the re-split forcer.

    A fixed *trending bundle* of ``bundle_size`` items (derived from
    the scenario seed) goes viral over the tape: ``follow_fraction``
    of signups are **followers** — the full bundle plus a slice of a
    live donor's profile (their own community identity) — and
    ``adopt_fraction`` of profile updates make an existing user adopt
    a handful of bundle items. The bundle dominates every follower's
    min-hash values, so all that correlated mass routes into the same
    few clusters and swells them far past ``split_threshold``, while
    removals churn the rest of the population. A write path whose
    per-mutation candidate pool is bounded (``update_cap``) then pays
    in edge quality: a newcomer's candidates are a thin subsample of a
    heterogeneous swollen blob. Online re-split keeps the blob carved
    into per-community children at or under the threshold, so the same
    bounded pool stays homogeneous and windowed recall holds — the
    acceptance scenario of ISSUE 6. :meth:`probes` returns
    follower-like queries (bundle + fresh community slice), the
    traffic that actually lands in the swollen clusters.
    """

    name: ClassVar[str] = "churn"
    read_fraction: float = 0.5
    add_items_weight: float = 0.40
    add_user_weight: float = 0.40
    remove_user_weight: float = 0.20
    bundle_size: int = 150
    follow_fraction: float = 0.85
    adopt_fraction: float = 0.7
    adopt_size: int = 8
    slice_drop: float = 0.4

    def bundle(self, world: World) -> np.ndarray:
        """The trending item set — fixed per seed, shared by followers."""
        rng = np.random.default_rng((self.seed, 999))
        size = min(self.bundle_size, world.n_items)
        return np.sort(rng.choice(world.n_items, size=size, replace=False))

    def _follower_profile(
        self, world: World, rng: np.random.Generator, bundle: np.ndarray
    ) -> np.ndarray:
        """Full bundle + a slice of a live donor's profile."""
        donor = world.profile(_live_user(world, rng))
        keep = donor[rng.random(donor.size) > self.slice_drop]
        return np.union1d(bundle, keep)

    def probes(self, world: World, n: int) -> list[np.ndarray]:
        """Follower-like drift probes: bundle + fresh community slice."""
        rng = np.random.default_rng((self.seed, 4242))
        bundle = self.bundle(world)
        return [self._follower_profile(world, rng, bundle) for _ in range(n)]

    def ops(self, world: World) -> Iterator[Op]:
        rng = np.random.default_rng(self.seed)
        bundle = self.bundle(world)
        weights = _norm_weights(
            self.add_items_weight, self.add_user_weight, self.remove_user_weight
        )
        for _ in range(self.n_ops):
            if rng.random() < self.read_fraction:
                yield Op("query", profile=_query_profile(world, rng))
                continue
            kind = ("add_items", "add_user", "remove_user")[
                int(rng.choice(3, p=weights))
            ]
            if kind == "remove_user" and world.live_users().size <= 20:
                kind = "add_items"
            if kind == "add_items":
                user = _live_user(world, rng)
                if rng.random() < self.adopt_fraction:
                    # Trending adoption: an existing user picks up
                    # bundle items and slides toward the viral blob.
                    size = min(self.adopt_size, bundle.size)
                    items = rng.choice(bundle, size=size, replace=False)
                else:
                    items = rng.integers(0, world.n_items, size=self.adopt_size)
                yield Op("add_items", user=user, items=items)
            elif kind == "add_user":
                if rng.random() < self.follow_fraction:
                    items = self._follower_profile(world, rng, bundle)
                else:
                    items = _signup_profile(world, rng)
                yield Op("add_user", items=items)
            else:
                yield Op("remove_user", user=_live_user(world, rng))


@dataclass(frozen=True)
class CorrelatedDeletes(Scenario):
    """Cohort signups followed by wholesale cohort purges.

    Signups are grouped into cohorts of ``cohort_size``; once
    ``purge_after`` cohorts have accumulated, the tape purges the
    oldest cohort in one burst of ``remove_user`` ops — the graph
    loses a whole correlated neighbourhood at once (every member
    cloned the same seed user), stressing lazy refill and reverse-
    adjacency deletion in bulk. Members already departed through
    other churn are skipped (live-id soundness).
    """

    name: ClassVar[str] = "deletes"
    read_fraction: float = 0.8
    cohort_size: int = 10
    purge_after: int = 3
    clone_fraction: float = 0.5
    signup_weight: float = 0.7  # write share that is a cohort signup

    def ops(self, world: World) -> Iterator[Op]:
        rng = np.random.default_rng(self.seed)
        weights = _norm_weights(0.8, 0.0, 0.2)  # non-signup writes
        cohorts: list[list[int]] = []
        current: list[int] = []
        current_seed: int | None = None
        emitted = 0
        while emitted < self.n_ops:
            if len(cohorts) >= self.purge_after:
                victims = [u for u in cohorts.pop(0)
                           if u in set(world.live_users().tolist())]
                for uid in victims:
                    if emitted >= self.n_ops:
                        return
                    yield Op("remove_user", user=uid)
                    emitted += 1
                continue
            if rng.random() < self.read_fraction:
                yield Op("query", profile=_query_profile(world, rng))
                emitted += 1
            elif rng.random() < self.signup_weight:
                if current_seed is None:
                    current_seed = _live_user(world, rng)
                yield Op(
                    "add_user",
                    items=_signup_profile(
                        world, rng,
                        clone_from=current_seed,
                        clone_fraction=self.clone_fraction,
                    ),
                )
                emitted += 1
                current.append(world.last_uid)
                if len(current) >= self.cohort_size:
                    cohorts.append(current)
                    current, current_seed = [], None
            else:
                yield self._mixed_op(world, rng, 0.0, weights)
                emitted += 1


SCENARIOS: dict[str, type[Scenario]] = {
    cls.name: cls
    for cls in (
        UniformMixed, ZipfianQueries, FlashCrowd, SustainedChurn,
        CorrelatedDeletes,
    )
}


def make_scenario(name: str, n_ops: int, seed: int = 0, **overrides) -> Scenario:
    """Instantiate the registered scenario ``name``.

    ``overrides`` go straight to the dataclass constructor (e.g.
    ``make_scenario("zipf", 500, exponent=1.4)``).
    """
    try:
        cls = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        ) from None
    return cls(n_ops=n_ops, seed=seed, **overrides)


# ----------------------------------------------------------------------
# Drift tracking
# ----------------------------------------------------------------------


class DriftTracker:
    """Windowed recall@k over a stream, against a brute-force oracle.

    Every ``window`` applied ops the tracker answers a fixed held-out
    probe set through ``searcher`` and scores it against
    :func:`~repro.serve.brute_force_top_k` on the **current** index
    state. The result is a drift *curve* (one point per window), not
    just endpoint recall — the worst window is what the CI floors
    gate on. Probe cost is accounted separately (``probe_windows``)
    so tape accounting stays interpretable.

    Each curve point records::

        {"op": <ops applied so far>, "recall": <mean recall@k>,
         "resplits": <cumulative online re-splits>,
         "oversized": <clusters currently over split_threshold>,
         "max_cluster": <largest cluster size>}
    """

    def __init__(self, index, searcher, probes, k: int = 10,
                 window: int = 200) -> None:
        from ..serve import brute_force_top_k  # local: avoid import cycle

        self._brute = brute_force_top_k
        self.index = index
        self.searcher = searcher
        self.probes = list(probes)
        self.k = int(k)
        self.window = int(window)
        self.curve: list[dict] = []
        self.n_ops = 0

    def probe(self) -> float:
        """Score the probe set now; appends and returns the window point."""
        recalls = []
        for profile in self.probes:
            result = self.searcher.top_k(profile, k=self.k)
            truth = self._brute(self.index.engine, profile, k=self.k)
            recalls.append(float(np.isin(truth.ids, result.ids).mean()))
        stats = self.index.stats()
        self.curve.append({
            "op": self.n_ops,
            "recall": round(float(np.mean(recalls)), 4),
            "resplits": stats.get("n_resplits", 0),
            "oversized": stats.get("n_oversized", 0),
            "max_cluster": stats.get("max_cluster_size", 0),
        })
        return self.curve[-1]["recall"]

    def tick(self) -> None:
        """Count one applied op; probes at every window boundary."""
        self.n_ops += 1
        if self.n_ops % self.window == 0:
            self.probe()

    @property
    def worst(self) -> float:
        """The worst-window recall (1.0 for an empty curve)."""
        return min((p["recall"] for p in self.curve), default=1.0)

    @property
    def final(self) -> float:
        """The last window's recall (1.0 for an empty curve)."""
        return self.curve[-1]["recall"] if self.curve else 1.0

    @property
    def probe_windows(self) -> int:
        """Number of probe windows scored so far."""
        return len(self.curve)


def play(scenario: Scenario, world: World, tracker: DriftTracker | None = None):
    """Drive ``scenario`` against ``world``; returns the applied op count.

    The canonical apply-before-next-draw loop: each yielded op is
    applied (so the generator's next sample sees the updated live
    set), then the drift tracker ticks.
    """
    n = 0
    for op in scenario.ops(world):
        world.apply(op)
        n += 1
        if tracker is not None:
            tracker.tick()
    if tracker is not None and (tracker.n_ops % tracker.window or not tracker.curve):
        tracker.probe()  # always close the tape with a final window
    return n
