"""Benchmark workload definitions — the paper's setups, scale-aware.

The paper's parameters are tuned for its full-size datasets (6k-138k
users). Benchmarks here run on user-scaled synthetic stand-ins (see
``repro.data.registry``; item universes stay full-size), so the one
parameter whose meaning is *per-user-count* — the split threshold
``N`` — is scaled by the user factor. Everything else is scale-free
and kept at paper values: ``b`` interacts with profile sizes (the
probability a user lands in a given bucket is ``~|P_u|/b``) which do
not scale, and ``t``, ``k``, ``δ``, ``ρ`` are ratios.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..core.config import C2Params, paper_params
from ..data.registry import DEFAULT_SCALE

__all__ = [
    "MixedWorkload",
    "Workload",
    "bench_scale",
    "paper_workload",
    "scale_split_threshold",
    "scaled_c2_params",
]

# Environment override so the full suite can be re-run at other scales
# without editing code: REPRO_SCALE=0.2 pytest benchmarks/ ...
_SCALE_ENV = "REPRO_SCALE"


def bench_scale() -> float:
    """The dataset scale benchmarks run at (env ``REPRO_SCALE`` or default)."""
    return float(os.environ.get(_SCALE_ENV, DEFAULT_SCALE))


def scaled_c2_params(
    dataset_name: str,
    scale: float,
    n_workers: int = 1,
    seed: int = 0,
) -> C2Params:
    """Paper C² parameters for ``dataset_name``, adjusted to ``scale``.

    Only the split threshold ``N`` scales with the user count; ``b``
    stays at the paper's value (see module docstring).
    """
    base = paper_params(dataset_name, n_workers=n_workers, seed=seed)
    return base.with_(
        split_threshold=scale_split_threshold(base.split_threshold, scale),
    )


def scale_split_threshold(n: int | None, scale: float) -> int | None:
    """Scale the max-cluster-size ``N`` with the user count."""
    if n is None:
        return None
    return max(50, int(round(n * scale)))


@dataclass(frozen=True)
class Workload:
    """One dataset's benchmark setup (paper §IV-C)."""

    dataset: str
    scale: float
    k: int = 30
    lsh_hashes: int = 10  # paper: "number of hash functions for LSH is 10"
    greedy_delta: float = 0.001
    greedy_max_iterations: int = 30
    goldfinger_bits: int = 1024
    seed: int = 0
    n_workers: int = 1

    @property
    def c2_params(self) -> C2Params:
        """Scale-adjusted paper parameters for C² on this dataset."""
        return scaled_c2_params(
            self.dataset, self.scale, n_workers=self.n_workers, seed=self.seed
        )


@dataclass(frozen=True)
class MixedWorkload:
    """An interleaved read/write serving workload (not from the paper).

    The paper's benchmarks build graphs; the serving subsystem's worst
    case is *mixed* traffic — queries racing mutations, where every
    write used to cost the read path a full reverse-index rebuild and
    a cold cache. This workload pins that scenario down: a
    deterministic sequence of operation kinds (default 90% reads, 10%
    writes split across profile updates, signups and departures),
    drawn up front from the seed so the same op tape can be replayed
    against different serving configurations. The caller resolves each
    kind against live state (which user to touch, which profile to
    query) with its own seeded RNG.

    .. note::
       Resolving targets is the caller's job, and the historical
       callers drew query users uniformly from the *initial* id range
       — silently querying deleted ids late in a tape. The scenario
       suite (:mod:`repro.bench.scenarios`) supersedes this class for
       new workloads: :class:`~repro.bench.scenarios.UniformMixed` is
       the same 90/10 mix with every target resolved against the live
       id set at execution time.
    """

    n_ops: int = 1000
    read_fraction: float = 0.9
    add_items_weight: float = 0.60  # write mix: profile updates
    add_user_weight: float = 0.25   # write mix: signups
    remove_user_weight: float = 0.15  # write mix: departures
    seed: int = 0

    def kinds(self) -> list[str]:
        """The deterministic operation tape, e.g. ``["query", "add_items", ...]``."""
        rng = np.random.default_rng(self.seed)
        weights = np.array(
            [self.add_items_weight, self.add_user_weight, self.remove_user_weight],
            dtype=np.float64,
        )
        weights = weights / weights.sum()
        reads = rng.random(self.n_ops) < self.read_fraction
        writes = rng.choice(
            np.array(["add_items", "add_user", "remove_user"]),
            size=self.n_ops,
            p=weights,
        )
        return ["query" if r else str(w) for r, w in zip(reads, writes)]

    @property
    def n_reads(self) -> int:
        """Queries in the tape (exact count, not the expectation)."""
        return sum(kind == "query" for kind in self.kinds())


def paper_workload(
    dataset_name: str,
    scale: float | None = None,
    n_workers: int = 1,
    seed: int = 0,
) -> Workload:
    """The Table II setup for ``dataset_name`` at benchmark scale."""
    return Workload(
        dataset=dataset_name,
        scale=bench_scale() if scale is None else scale,
        n_workers=n_workers,
        seed=seed,
    )
