"""Plain-text table rendering for benchmark outputs.

Benchmarks print the same rows the paper's tables report (plus the
paper's numbers alongside, for shape comparison) and persist them under
``benchmarks/results/`` so the output survives pytest capture.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

__all__ = ["format_table", "emit", "emit_json", "results_dir"]


def format_table(rows: Sequence[dict], title: str | None = None) -> str:
    """Align a list of row dicts into a monospaced table.

    Column order follows the first row's key order; missing cells
    render empty.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    for row in rows[1:]:
        for key in row:
            if key not in columns:
                columns.append(key)
    cells = [[str(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in cells)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    rule = "-" * len(header)
    body = "\n".join("  ".join(c.ljust(w) for c, w in zip(line, widths)) for line in cells)
    parts = [title, rule, header, rule, body, rule] if title else [header, rule, body]
    return "\n".join(p for p in parts if p is not None)


def results_dir() -> Path:
    """``benchmarks/results/`` relative to the repository root."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pyproject.toml").exists():
            out = parent / "benchmarks" / "results"
            out.mkdir(parents=True, exist_ok=True)
            return out
    out = Path.cwd() / "benchmark_results"
    out.mkdir(exist_ok=True)
    return out


def emit(name: str, *blocks: str | Iterable[dict]) -> str:
    """Print benchmark output and persist it to ``results/<name>.txt``.

    Each block is either a preformatted string or a sequence of row
    dicts (rendered with :func:`format_table`).
    """
    rendered = []
    for block in blocks:
        if isinstance(block, str):
            rendered.append(block)
        else:
            rendered.append(format_table(list(block)))
    text = "\n\n".join(rendered)
    print(f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}\n")
    (results_dir() / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    return text


def emit_json(run: str, metrics: dict, benchmark: str = "serving") -> Path:
    """Merge one run's metrics into the ``BENCH_<benchmark>.json`` trajectory.

    The machine-readable sibling of :func:`emit`: a benchmark records
    its headline numbers (throughput, recall, maintenance cost, the
    acceptance verdict) under a stable run key so CI can upload the
    file as an artifact and a perf gate can diff it against committed
    floors — text reports are for humans, this file is for tooling.
    Read-modify-write: several invocations (``--smoke``, ``--mixed``,
    ``--replicas``) accumulate into one file. Returns the path
    (repository root, next to the committed full-run copy).
    """
    path = results_dir().parent / f"BENCH_{benchmark}.json"
    payload: dict = {"benchmark": benchmark, "schema": 1, "runs": {}}
    if path.exists():
        try:
            existing = json.loads(path.read_text(encoding="utf-8"))
            if isinstance(existing.get("runs"), dict):
                payload["runs"] = existing["runs"]
        except (OSError, ValueError):
            pass  # a torn file never blocks recording fresh numbers
    payload["runs"][run] = metrics
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path
