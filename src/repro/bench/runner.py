"""Experiment runner shared by all table/figure benchmarks.

Centralises: dataset loading, ground-truth KNN graphs (memoised —
they are the expensive common denominator of every experiment), the
algorithm dispatch table, and the standard evaluation of a build
(time, similarity count, quality vs the exact graph).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..result import BuildResult
from ..baselines.brute_force import brute_force_knn
from ..baselines.hyrec import hyrec_knn
from ..baselines.lsh import lsh_knn
from ..baselines.nndescent import nndescent_knn
from ..core.cluster_and_conquer import cluster_and_conquer
from ..data.dataset import Dataset
from ..data.registry import load
from ..graph.knn_graph import KNNGraph
from ..graph.metrics import average_similarity, quality
from ..similarity.engine import ExactEngine, make_engine
from .workloads import Workload

__all__ = ["Run", "load_workload_dataset", "exact_graph", "run_algorithm", "evaluate_run", "ALGORITHMS"]

# Memo: (dataset identity, k) -> exact KNN graph + its average similarity.
_EXACT_CACHE: dict[tuple, tuple[KNNGraph, float]] = {}


@dataclass(frozen=True)
class Run:
    """One evaluated algorithm run (a Table II-style row)."""

    algorithm: str
    dataset: str
    seconds: float
    comparisons: int
    quality: float
    result: BuildResult

    def as_row(self) -> dict:
        """Row dict for :func:`repro.bench.report.format_table`."""
        return {
            "Algo": self.algorithm,
            "Dataset": self.dataset,
            "Time (s)": f"{self.seconds:.2f}",
            "Similarities": self.comparisons,
            "Quality": f"{self.quality:.2f}",
        }


def load_workload_dataset(workload: Workload) -> Dataset:
    """The synthetic stand-in dataset for a workload."""
    return load(workload.dataset, scale=workload.scale, seed=42)


def _dataset_key(dataset: Dataset) -> tuple:
    return (dataset.name, dataset.n_users, dataset.n_items, dataset.n_ratings)


def exact_graph(dataset: Dataset, k: int = 30) -> tuple[KNNGraph, float]:
    """The exact KNN graph (raw-profile Jaccard) and its average
    similarity; memoised per dataset identity."""
    key = (*_dataset_key(dataset), k)
    if key not in _EXACT_CACHE:
        engine = ExactEngine(dataset)
        result = brute_force_knn(engine, k=k)
        _EXACT_CACHE[key] = (result.graph, average_similarity(result.graph, dataset))
    return _EXACT_CACHE[key]


def _run_c2(dataset: Dataset, workload: Workload, **overrides) -> BuildResult:
    engine = make_engine(dataset, n_bits=workload.goldfinger_bits)
    params = workload.c2_params
    if overrides:
        params = params.with_(**overrides)
    return cluster_and_conquer(engine, params)


def _run_c2_minhash(dataset: Dataset, workload: Workload) -> BuildResult:
    return _run_c2(dataset, workload, hash_family="minhash", split_threshold=None)


def _run_c2_raw(dataset: Dataset, workload: Workload) -> BuildResult:
    engine = make_engine(dataset, backend="exact")
    return cluster_and_conquer(engine, workload.c2_params)


def _run_hyrec(dataset: Dataset, workload: Workload) -> BuildResult:
    engine = make_engine(dataset, n_bits=workload.goldfinger_bits)
    return hyrec_knn(
        engine,
        k=workload.k,
        delta=workload.greedy_delta,
        max_iterations=workload.greedy_max_iterations,
        seed=workload.seed,
    )


def _run_nndescent(dataset: Dataset, workload: Workload) -> BuildResult:
    engine = make_engine(dataset, n_bits=workload.goldfinger_bits)
    return nndescent_knn(
        engine,
        k=workload.k,
        delta=workload.greedy_delta,
        max_iterations=workload.greedy_max_iterations,
        seed=workload.seed,
    )


def _run_lsh(dataset: Dataset, workload: Workload) -> BuildResult:
    engine = make_engine(dataset, n_bits=workload.goldfinger_bits)
    return lsh_knn(
        engine,
        k=workload.k,
        n_hashes=workload.lsh_hashes,
        n_workers=workload.n_workers,
        seed=workload.seed,
    )


def _run_brute(dataset: Dataset, workload: Workload) -> BuildResult:
    engine = make_engine(dataset, n_bits=workload.goldfinger_bits)
    return brute_force_knn(engine, k=workload.k)


ALGORITHMS = {
    "C2": _run_c2,
    "C2-MinHash": _run_c2_minhash,
    "C2-raw": _run_c2_raw,
    "Hyrec": _run_hyrec,
    "NNDescent": _run_nndescent,
    "LSH": _run_lsh,
    "BruteForce": _run_brute,
}


def run_algorithm(name: str, dataset: Dataset, workload: Workload) -> BuildResult:
    """Dispatch an algorithm by its Table II name."""
    try:
        runner = ALGORITHMS[name]
    except KeyError:
        raise KeyError(f"unknown algorithm {name!r}; expected one of {list(ALGORITHMS)}") from None
    return runner(dataset, workload)


def evaluate_run(
    name: str, dataset: Dataset, workload: Workload, result: BuildResult
) -> Run:
    """Standard evaluation: quality against the exact graph."""
    exact, _ = exact_graph(dataset, k=workload.k)
    return Run(
        algorithm=name,
        dataset=workload.dataset,
        seconds=result.seconds,
        comparisons=result.comparisons,
        quality=quality(result.graph, exact, dataset),
        result=result,
    )
