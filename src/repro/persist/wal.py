"""Write-ahead log for the delta stream — segmented, checksummed, replayable.

Every primary mutation already exports a picklable
:class:`~repro.online.ReplicaDelta`; this module gives that stream a
disk form. A :class:`WriteAheadLog` appends one record per delta to an
append-only **segment file**::

    segment file:  MAGIC  record  record  record ...
    record:        <crc32:u32> <length:u32> <seq:u64> <payload bytes>

* **length-prefixed** — records are framed, so a reader never guesses
  where a pickle ends;
* **checksummed** — the CRC covers the seq stamp *and* the payload, so
  a flipped bit anywhere in a record is caught before it is unpickled
  (:class:`WALCorruptError` names the offending seq and offset);
* **seq-stamped** — the primary's post-mutation version rides in the
  frame itself, so replay can skip records a snapshot already contains
  and detect gaps without deserialising anything.

Segments are named by the first seq they hold (``{seq:020d}.wal``), so
the directory listing is the log's order. The log **rotates** to a
fresh segment on demand (checkpoints rotate before snapshotting) or
when the active segment outgrows ``segment_bytes``; **compaction**
deletes whole closed segments whose records are all covered by a
snapshot — the recovery path then replays only the tail.

Failure tolerance is asymmetric by design:

* a **torn tail** — a crash mid-append leaves the final record of the
  final segment incomplete — is expected and harmless: opening the log
  truncates the torn bytes and replay stops cleanly before them;
* **corruption anywhere else** (bad CRC, bad magic, a truncated record
  *followed by more data*) is not recoverable by dropping bytes — it
  means committed records are unreadable — and raises
  :class:`WALCorruptError` instead of silently serving a hole.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from pathlib import Path
from time import perf_counter

from .. import obs

__all__ = ["WALCorruptError", "WALError", "WriteAheadLog"]

MAGIC = b"C2WAL001"
_HEADER = struct.Struct("<IIQ")  # crc32, payload length, seq


class WALError(RuntimeError):
    """Base class for write-ahead-log failures."""


class WALCorruptError(WALError):
    """A committed WAL record failed validation (checksum, magic, framing).

    Attributes:
        path: the segment file holding the bad record.
        offset: byte offset of the record inside the segment.
        seq: the seq stamp read from the record's header (``None`` when
            the frame itself was unreadable). The stamp is inside the
            checksummed region, so on a CRC mismatch it names the
            record as written — or, if the corruption hit the header,
            the garbage that now sits where the seq was; either way it
            localises the damage.
    """

    def __init__(self, message: str, *, path: Path, offset: int, seq: int | None = None):
        detail = f"{message} [segment {path.name}, offset {offset}"
        if seq is not None:
            detail += f", seq {seq}"
        super().__init__(detail + "]")
        self.path = path
        self.offset = offset
        self.seq = seq


def _crc(seq: int, payload: bytes) -> int:
    return zlib.crc32(payload, zlib.crc32(seq.to_bytes(8, "little")))


def _scan_segment(
    path: Path, *, tolerate_torn_tail: bool
) -> tuple[list[tuple[int, bytes]], int, bool]:
    """Validate one segment; returns ``(records, valid_end, torn)``.

    ``records`` is the list of ``(seq, payload)`` frames that verified,
    ``valid_end`` the byte offset the last of them ends at. A torn tail
    (incomplete final frame) sets ``torn`` when tolerated — only the
    log's final segment may legally be torn — and raises
    :class:`WALCorruptError` otherwise. A CRC or magic failure always
    raises: those bytes were fully written once and are now wrong.
    """
    data = path.read_bytes()
    if len(data) < len(MAGIC) or data[: len(MAGIC)] != MAGIC:
        if len(data) < len(MAGIC) and tolerate_torn_tail:
            # A segment created but torn before its magic completed
            # holds no committed records at all.
            return [], 0, True
        raise WALCorruptError("bad segment magic", path=path, offset=0)
    records: list[tuple[int, bytes]] = []
    offset = len(MAGIC)
    while offset < len(data):
        if len(data) - offset < _HEADER.size:
            if tolerate_torn_tail:
                return records, offset, True
            raise WALCorruptError(
                "truncated record header mid-stream", path=path, offset=offset
            )
        crc, length, seq = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        if len(data) - start < length:
            if tolerate_torn_tail:
                return records, offset, True
            raise WALCorruptError(
                "truncated record payload mid-stream",
                path=path,
                offset=offset,
                seq=seq,
            )
        payload = data[start : start + length]
        if _crc(seq, payload) != crc:
            raise WALCorruptError(
                "record checksum mismatch", path=path, offset=offset, seq=seq
            )
        records.append((seq, payload))
        offset = start + length
    return records, offset, False


class WriteAheadLog:
    """An append-only, segmented log of ``(seq, payload)`` records.

    Args:
        path: directory holding the ``*.wal`` segment files (created if
            missing; shared with the snapshot files of a
            :class:`~repro.persist.SnapshotStore`).
        segment_bytes: the active segment rotates once it grows past
            this size, bounding how much one compaction can reclaim at
            a time.
        fsync: ``True`` forces an ``os.fsync`` after every append —
            real crash durability at a heavy per-record cost. The
            default flushes to the OS (survives process death, not
            power loss), which is the right trade for benchmarks and
            tests.

    Opening an existing directory validates the final segment, drops a
    torn tail (the crash-mid-append case), and resumes appending in a
    fresh segment. Appends are thread-safe; ``seq`` must be strictly
    increasing (the primary's version stream already is).

    ``readonly=True`` opens the log for replay only: nothing on disk
    is repaired, truncated or unlinked — a torn or even mid-write
    tail is simply not replayed — and :meth:`append` refuses. This is
    the mode for reading a directory another process (or the same
    process's live log) is still appending to, e.g. replica hydration.

    ``registry`` selects the :class:`~repro.obs.MetricsRegistry` for
    the append/fsync latency histograms and the size gauges (default:
    the process-wide registry).
    """

    def __init__(
        self,
        path,
        *,
        segment_bytes: int = 8 << 20,
        fsync: bool = False,
        readonly: bool = False,
        registry=None,
    ) -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.segment_bytes = int(segment_bytes)
        self.fsync = bool(fsync)
        self.readonly = bool(readonly)
        reg = registry if registry is not None else obs.metrics()
        self._c_appends = reg.counter("wal_appends_total")
        self._h_append = reg.histogram("wal_append_seconds")
        self._h_fsync = reg.histogram("wal_fsync_seconds")
        self._g_bytes = reg.gauge("wal_bytes")
        self._g_segments = reg.gauge("wal_segments")
        self._lock = threading.RLock()
        self._fh = None
        self._closed = False
        self._active: Path | None = None
        self._active_bytes = 0
        self.appended = 0
        self.tail_torn = False
        # (first_seq, path), log order. Closed segments' ranges are
        # contiguous, so segment i ends at segments[i+1].first - 1.
        self._segments: list[tuple[int, Path]] = sorted(
            (int(p.stem), p) for p in self.path.glob("*.wal")
        )
        self.last_seq: int | None = None
        # Maintained in memory so the per-mutation threshold check in
        # DurableIndex costs no stat() syscalls (see size_bytes()).
        self._live_bytes = sum(
            seg.stat().st_size for _, seg in self._segments if seg.exists()
        )
        self._recover_tail()

    def _recover_tail(self) -> None:
        """Validate the final segment; truncate a torn tail in place.

        Read-only logs never modify disk: a torn (or mid-append) tail
        is noted and excluded from replay, a record-less final segment
        is skipped in memory instead of unlinked.
        """
        drop_from = len(self._segments)
        while drop_from:
            first, seg = self._segments[drop_from - 1]
            records, end, torn = _scan_segment(seg, tolerate_torn_tail=True)
            if not records:
                # Torn before the first record committed: the file
                # carries nothing. Drop it (in memory always; on disk
                # only when this log owns the directory).
                drop_from -= 1
                self.tail_torn = self.tail_torn or torn
                if not self.readonly:
                    self._live_bytes -= seg.stat().st_size
                    seg.unlink()
                continue
            if torn:
                self.tail_torn = True
                if not self.readonly:
                    torn_bytes = seg.stat().st_size - end
                    with seg.open("r+b") as fh:
                        fh.truncate(end)
                    self._live_bytes = max(0, self._live_bytes - torn_bytes)
            self.last_seq = records[-1][0]
            break
        self._segments = self._segments[:drop_from]

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def append(self, seq: int, payload: bytes) -> None:
        """Frame, checksum and append one record; flushed before return."""
        seq = int(seq)
        t0 = perf_counter()
        with self._lock:
            if self._closed:
                raise WALError("log is closed")
            if self.readonly:
                raise WALError("log is readonly")
            if self.last_seq is not None and seq <= self.last_seq:
                raise ValueError(
                    f"seq {seq} not after last appended seq {self.last_seq}"
                )
            if self._fh is not None and self._active_bytes >= self.segment_bytes:
                self._close_active()
            if self._fh is None:
                self._open_segment(seq)
            record = _HEADER.pack(_crc(seq, payload), len(payload), seq) + payload
            self._fh.write(record)
            self._fh.flush()
            if self.fsync:
                t_sync = perf_counter()
                os.fsync(self._fh.fileno())
                self._h_fsync.observe(perf_counter() - t_sync)
            self._active_bytes += len(record)
            self._live_bytes += len(record)
            self.last_seq = seq
            self.appended += 1
            self._c_appends.inc()
            self._g_bytes.set(self._live_bytes)
            self._g_segments.set(len(self._segments))
        self._h_append.observe(perf_counter() - t0)

    def _open_segment(self, first_seq: int) -> None:
        seg = self.path / f"{first_seq:020d}.wal"
        if seg.exists():
            raise WALError(f"segment {seg.name} already exists (seq reuse)")
        self._fh = seg.open("wb")
        self._fh.write(MAGIC)
        self._fh.flush()
        self._active = seg
        self._active_bytes = len(MAGIC)
        self._live_bytes += len(MAGIC)
        self._segments.append((first_seq, seg))

    def _close_active(self) -> None:
        if self._fh is not None:
            self._fh.close()
        self._fh = None
        self._active = None
        self._active_bytes = 0

    def rotate(self) -> None:
        """Close the active segment; the next append starts a fresh one.

        Checkpoints rotate around their snapshot so that compaction
        works on whole closed segments. A no-op on a closed log.
        """
        with self._lock:
            if not self._closed:
                self._close_active()

    def compact(self, upto_seq: int) -> int:
        """Delete closed segments fully covered by ``seq <= upto_seq``.

        Returns the number of segments removed. The active segment is
        never touched, and a segment survives if *any* of its records
        is newer than ``upto_seq`` — compaction is all-or-nothing per
        segment, which is what makes it a pair of ``unlink`` calls
        instead of a rewrite.
        """
        removed = 0
        with self._lock:
            kept: list[tuple[int, Path]] = []
            for i, (first, seg) in enumerate(self._segments):
                if i + 1 < len(self._segments):
                    last = self._segments[i + 1][0] - 1
                else:
                    last = self.last_seq
                if seg != self._active and last is not None and last <= int(upto_seq):
                    if seg.exists():
                        self._live_bytes = max(
                            0, self._live_bytes - seg.stat().st_size
                        )
                        seg.unlink()
                    removed += 1
                else:
                    kept.append((first, seg))
            self._segments = kept
        return removed

    def close(self) -> None:
        """Flush and release the active segment handle (idempotent)."""
        with self._lock:
            self._close_active()
            self._closed = True

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def replay(self, after_seq: int = 0):
        """Yield ``(seq, payload)`` for every record with ``seq > after_seq``.

        Segments are re-read from disk in log order and every frame is
        checksum-verified; a torn tail on the final segment ends the
        replay cleanly (those bytes never committed), any other damage
        raises :class:`WALCorruptError`. Safe to call while another
        thread appends — records flushed before the call are seen.
        """
        with self._lock:
            segments = list(self._segments)
        after_seq = int(after_seq)
        for i, (_first, seg) in enumerate(segments):
            records, _end, torn = _scan_segment(
                seg, tolerate_torn_tail=(i == len(segments) - 1)
            )
            for seq, payload in records:
                if seq > after_seq:
                    yield seq, payload
            if torn:
                return

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def size_bytes(self) -> int:
        """Total size of all live segments.

        Maintained in memory (appends add, compaction subtracts) so
        the per-mutation checkpoint-threshold check in
        :class:`~repro.persist.DurableIndex` costs no ``stat`` calls
        on the write path.
        """
        with self._lock:
            return self._live_bytes

    def segments(self) -> list[Path]:
        """Live segment paths, log order (oldest first)."""
        with self._lock:
            return [seg for _, seg in self._segments]

    def stats(self) -> dict:
        """Operational counters for dashboards and tests.

        Canonical keys per the shared vocabulary
        (``docs/observability.md``); the pre-unification spellings were
        dropped after their one-release grace window.
        """
        with self._lock:
            return {
                "component": "wal",
                "segments": len(self._segments),
                "bytes": self.size_bytes(),
                "last_seq": self.last_seq,
                "appends_total": self.appended,
                "tail_torn": self.tail_torn,
            }
