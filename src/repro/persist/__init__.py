"""Durable serving — snapshot + delta-WAL persistence, restart recovery.

The replication protocol (:meth:`~repro.online.OnlineIndex.clone` /
``subscribe_deltas`` / ``apply_delta``) already turns every mutation
into a picklable, replayable :class:`~repro.online.ReplicaDelta`; this
package points that stream at disk so a process restart recovers the
maintained graph instead of rebuilding it:

* :class:`WriteAheadLog` — length-prefixed, checksummed, seq-stamped
  records in rotating segment files; torn tails truncate cleanly,
  corruption raises with the offending seq;
* :class:`SnapshotStore` — atomic write-rename checkpoint files named
  by the index version they captured;
* :class:`DurableIndex` — attaches both to a live index through the
  ``subscribe_deltas`` hook, checkpoints (and compacts the log) in the
  background once it outgrows a threshold, and recovers snapshot +
  WAL tail in O(|tail|) work with **zero similarity evaluations**.

Convenience entry point:
:meth:`OnlineIndex.attach_persistence(path) <repro.online.OnlineIndex.attach_persistence>`.
See ``docs/persistence.md`` for the full lifecycle.
"""

from .durable import DurableIndex, RecoveryInfo
from .snapshot import SnapshotStore
from .wal import WALCorruptError, WALError, WriteAheadLog

__all__ = [
    "DurableIndex",
    "RecoveryInfo",
    "SnapshotStore",
    "WALCorruptError",
    "WALError",
    "WriteAheadLog",
]
