"""Atomic snapshot files — the checkpoint half of durable serving.

A snapshot is the pickled form an :class:`~repro.online.OnlineIndex`
already knows how to produce for replicas
(:meth:`~repro.online.OnlineIndex.snapshot_bytes`); this module gives
it a crash-safe disk life. Writes go to a temporary file first and are
published with ``os.replace`` — on any filesystem that's an atomic
rename, so a reader (or a recovery after a crash mid-checkpoint)
either sees the complete new snapshot or the complete previous one,
never a torn hybrid. Files are named by the index version they
captured (``snapshot-{seq:020d}.pkl``), which is all the metadata
recovery needs: load the latest, then replay the WAL records with
``seq`` greater than the filename says.

Older snapshots are pruned only *after* the new one is durably in
place, so there is no instant without a loadable checkpoint.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["SnapshotStore"]

_PREFIX = "snapshot-"
_SUFFIX = ".pkl"


class SnapshotStore:
    """Versioned, atomically-replaced snapshot files in one directory.

    Args:
        path: directory for the ``snapshot-*.pkl`` files (created if
            missing; shared with a :class:`~repro.persist.WriteAheadLog`'s
            segments).
        keep: how many most-recent snapshots survive a save. The
            default keeps exactly one — the WAL tail covers everything
            after it, so older checkpoints are dead weight.
    """

    def __init__(self, path, *, keep: int = 1) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.keep = int(keep)

    def _snapshots(self) -> list[tuple[int, Path]]:
        """``(seq, path)`` of every snapshot on disk, oldest first."""
        out = []
        for p in self.path.glob(f"{_PREFIX}*{_SUFFIX}"):
            stem = p.name[len(_PREFIX) : -len(_SUFFIX)]
            if stem.isdigit():
                out.append((int(stem), p))
        return sorted(out)

    def save(self, payload: bytes, seq: int) -> Path:
        """Publish ``payload`` as the snapshot at version ``seq``.

        Write-then-rename: the bytes land in a ``.tmp`` sibling, are
        flushed and fsynced, and only then atomically replace the final
        name. Surplus older snapshots are pruned afterwards.
        """
        seq = int(seq)
        final = self.path / f"{_PREFIX}{seq:020d}{_SUFFIX}"
        tmp = final.with_suffix(final.suffix + ".tmp")
        with tmp.open("wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
        for _old_seq, p in self._snapshots()[: -self.keep]:
            if p != final:
                p.unlink(missing_ok=True)
        return final

    def latest_seq(self) -> int | None:
        """Version of the newest snapshot, ``None`` when there is none."""
        snaps = self._snapshots()
        return snaps[-1][0] if snaps else None

    def load_latest(self) -> tuple[bytes, int] | None:
        """``(payload, seq)`` of the newest snapshot, ``None`` if empty."""
        snaps = self._snapshots()
        if not snaps:
            return None
        seq, p = snaps[-1]
        return p.read_bytes(), seq
