"""DurableIndex — restart recovery for a live OnlineIndex.

Without persistence, a process restart throws the maintained C² graph
away and pays a full O(n·k̃) similarity rebuild before serving again.
But the mutation stream the index already exports for replicas
(the delta bus's scored channel) is a natural
write-ahead log: each :class:`~repro.online.ReplicaDelta` replays on a
snapshot clone in O(|edges|) work and **zero similarity evaluations**
(:meth:`~repro.online.OnlineIndex.apply_delta`). A restart is just a
replica of the dead process.

:class:`DurableIndex` wires that together:

* **attach** — register a WAL view on the live index's delta bus and
  append each delta (pickled, framed, checksummed) to a
  :class:`~repro.persist.WriteAheadLog`; write a baseline snapshot via
  :class:`~repro.persist.SnapshotStore` when the directory is fresh;
* **checkpoint** — rotate the log, snapshot the index atomically, and
  compact away the segments the snapshot covers; triggered explicitly,
  in the background once the log outgrows ``checkpoint_bytes``, or
  inline on a ``rebuild`` event (whose wholesale edge replacement no
  delta can express);
* **recover** — load the newest snapshot, replay the WAL tail through
  the seq-guarded ``apply_delta`` (records the snapshot already
  reflects skip; a torn final record ends the replay cleanly), and
  return a re-attached :class:`DurableIndex` whose
  :attr:`~DurableIndex.recovery` reports what happened.

Recovery cost is O(snapshot unpickle + |tail deltas|) — at 5k users
better than an order of magnitude under a cold rebuild, with exact
edge-set parity (``benchmarks/bench_serving.py --restart``).
"""

from __future__ import annotations

import pickle
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from .. import obs
from ..deltas.view import DerivedView
from ..online.index import OnlineIndex
from .snapshot import SnapshotStore
from .wal import WALError, WriteAheadLog


class _WalView(DerivedView):
    """The WAL's bus registration: append every scored delta to disk.

    Declares ``needs_scored`` — the log stores the shippable
    :class:`~repro.online.ReplicaDelta` form, which recovery replays
    through the same seq-guarded ``apply_delta`` path replicas use.
    The resync recipe is a checkpoint: when deltas cannot express what
    happened (a ``rebuild``), the snapshot *is* the durable form.
    """

    name = "durable_wal"
    needs_scored = True

    def __init__(self, durable: "DurableIndex") -> None:
        super().__init__()
        self._durable = durable

    def apply(self, delta) -> None:
        """Append one mutation to the log (runs inside the mutation)."""
        if delta.replica is not None:
            self._durable._on_delta(delta.replica)

    def resync(self) -> None:
        """Checkpoint: snapshot the live index, compact the log."""
        self._durable.checkpoint()

__all__ = ["DurableIndex", "RecoveryInfo"]


@dataclass(frozen=True)
class RecoveryInfo:
    """What one recovery did, for dashboards, benchmarks and tests.

    Attributes:
        snapshot_seq: version of the snapshot recovery started from.
        version: index version after the WAL tail was replayed.
        replayed: deltas actually applied from the log.
        skipped: records the snapshot already reflected (they raced the
            checkpoint and were skipped by the seq guard).
        tail_torn: whether a torn final record was truncated away.
        evaluations: similarity evaluations the replay charged — zero
            by the delta contract, asserted by the benchmark.
        seconds: wall-clock recovery time.
    """

    snapshot_seq: int
    version: int
    replayed: int
    skipped: int
    tail_torn: bool
    evaluations: int
    seconds: float


def _load(
    path, *, segment_bytes: int, fsync: bool, readonly: bool = False
) -> tuple[OnlineIndex, WriteAheadLog, RecoveryInfo]:
    """Snapshot + WAL-tail replay; shared by ``recover`` and ``hydrate``.

    ``readonly`` opens the log without the tail repair a real recovery
    performs — mandatory when the directory's owning process is still
    appending (hydration), where truncating its active segment under
    it would corrupt the live log.
    """
    t0 = time.perf_counter()
    store = SnapshotStore(path)
    loaded = store.load_latest()
    if loaded is None:
        raise WALError(f"no snapshot in {Path(path)} — nothing to recover from")
    payload, snapshot_seq = loaded
    index: OnlineIndex = pickle.loads(payload)
    wal = WriteAheadLog(
        path, segment_bytes=segment_bytes, fsync=fsync, readonly=readonly
    )
    before = index.engine.comparisons
    replayed = skipped = 0
    for _seq, raw in wal.replay(after_seq=index.version):
        if index.apply_delta(pickle.loads(raw)):
            replayed += 1
        else:
            skipped += 1
    info = RecoveryInfo(
        snapshot_seq=snapshot_seq,
        version=index.version,
        replayed=replayed,
        skipped=skipped,
        tail_torn=wal.tail_torn,
        evaluations=index.engine.comparisons - before,
        seconds=time.perf_counter() - t0,
    )
    return index, wal, info


class DurableIndex:
    """Snapshot + delta-WAL persistence wrapped around a live index.

    Args:
        index: the live :class:`~repro.online.OnlineIndex` to persist.
            Its version must match the directory's recovered state — a
            fresh (empty) directory gets a baseline snapshot, a
            populated one must come from :meth:`recover`.
        path: directory holding the snapshot files and WAL segments.
        checkpoint_bytes: once the log outgrows this, a checkpoint is
            triggered (``0`` disables automatic checkpoints; call
            :meth:`checkpoint` yourself).
        background_checkpoints: run size-triggered checkpoints on a
            daemon thread so the mutation that tipped the threshold
            does not pay for the snapshot. ``False`` checkpoints
            inline — deterministic, which is what the tests want.
        segment_bytes: WAL segment rotation size.
        fsync: fsync every WAL append (see
            :class:`~repro.persist.WriteAheadLog`).
        registry: :class:`~repro.obs.MetricsRegistry` for the
            checkpoint timings and recovery gauges, shared with the
            wrapped WAL (default: the process-wide registry).

    Raises:
        ValueError: the directory holds state for a different index
            version than the one being attached.
    """

    def __init__(
        self,
        index: OnlineIndex,
        path,
        *,
        checkpoint_bytes: int = 8 << 20,
        background_checkpoints: bool = True,
        segment_bytes: int = 8 << 20,
        fsync: bool = False,
        registry=None,
        _wal: WriteAheadLog | None = None,
    ) -> None:
        self.index = index
        self.path = Path(path)
        self.checkpoint_bytes = int(checkpoint_bytes)
        self.background_checkpoints = bool(background_checkpoints)
        self.segment_bytes = int(segment_bytes)
        self.fsync = bool(fsync)
        self.store = SnapshotStore(self.path)
        reg = registry if registry is not None else obs.metrics()
        self._c_checkpoints = reg.counter("durable_checkpoints_total")
        self._h_checkpoint = reg.histogram("durable_checkpoint_seconds")
        self._g_rec_seconds = reg.gauge("durable_recovery_seconds")
        self._g_rec_replayed = reg.gauge("durable_recovery_replayed")
        self._g_rec_rate = reg.gauge("durable_recovery_replay_rate")
        self.wal = _wal if _wal is not None else WriteAheadLog(
            self.path, segment_bytes=segment_bytes, fsync=fsync, registry=reg
        )
        self.checkpoints = 0
        self.recovery: RecoveryInfo | None = None
        self._cp_lock = threading.Lock()
        self._cp_thread: threading.Thread | None = None
        self._closed = False
        on_disk = self.wal.last_seq
        if on_disk is None:
            on_disk = self.store.latest_seq()
        if on_disk is None:
            # Fresh directory: the baseline snapshot is what the WAL
            # tail will replay onto after a restart.
            self._snapshot()
        elif on_disk != index.version:
            raise ValueError(
                f"directory {self.path} is at seq {on_disk} but the index "
                f"is at version {index.version}; use DurableIndex.recover()"
            )
        self._view = index.deltas.register(_WalView(self))

    # ------------------------------------------------------------------
    # The persistence hook
    # ------------------------------------------------------------------

    def lag(self) -> int:
        """Mutations published but not yet appended to the log.

        Zero in steady state — the WAL view appends synchronously
        inside each mutation. Non-zero means the durability pipeline
        fell behind the journal (e.g. the view was detached), which is
        exactly what ``metrics-dump``'s ``journal_lag{consumer="wal"}``
        gauge surfaces.
        """
        return self._view.lag

    def _on_delta(self, delta) -> None:
        """Append one mutation to the log (runs inside the mutation).

        A ``rebuild`` replaces the edge set wholesale — no delta can
        express it, exactly as for replicas — so it checkpoints inline
        instead: the snapshot **is** its durable form. Safe here
        because the index write lock is read-reentrant for the
        mutating thread.
        """
        if self._closed:
            return
        if delta.event == "rebuild":
            self.checkpoint()
            return
        self.wal.append(delta.seq, pickle.dumps(delta))
        if self.checkpoint_bytes and self.wal.size_bytes() >= self.checkpoint_bytes:
            if self.background_checkpoints:
                self._checkpoint_async()
            else:
                self.checkpoint()

    def _checkpoint_async(self) -> None:
        with self._cp_lock:
            if self._cp_thread is not None and self._cp_thread.is_alive():
                return  # one in flight is enough
            self._cp_thread = threading.Thread(
                target=self._background_checkpoint,
                name="repro-checkpoint",
                daemon=True,
            )
            self._cp_thread.start()

    def _background_checkpoint(self) -> None:
        try:
            self.checkpoint()
        except WALError:
            pass  # closed under us — nothing left to persist

    def checkpoint(self) -> int:
        """Snapshot the index and compact the log it makes redundant.

        Snapshot first, rotate second, compact last. Compaction is
        per-segment all-or-nothing, so a segment holding any record
        newer than the snapshot survives whole; records the snapshot
        already covers replay as seq-guarded skips. The snapshot write
        is atomic, so a crash at any point leaves a recoverable
        directory. Lock order is index-then-WAL everywhere (the WAL
        lock is never held while acquiring the index lock), which is
        what lets a background checkpoint run concurrently with the
        mutation hook — including the ``rebuild`` case, where the
        mutating thread checkpoints inline while holding the write
        lock. Returns the checkpointed version.
        """
        if self._closed:
            raise WALError("DurableIndex is closed")
        t0 = time.perf_counter()
        seq = self._snapshot()
        self.wal.rotate()
        self.wal.compact(seq)
        self.checkpoints += 1
        self._c_checkpoints.inc()
        self._h_checkpoint.observe(time.perf_counter() - t0)
        return seq

    def _snapshot(self) -> int:
        # One read acquisition for both the payload and the version it
        # captured (nesting read() inside read() could deadlock behind
        # a waiting writer).
        with self.index.lock.read():
            seq = self.index.version
            payload = pickle.dumps(self.index)
        self.store.save(payload, seq)
        return seq

    # ------------------------------------------------------------------
    # Restart recovery
    # ------------------------------------------------------------------

    @classmethod
    def recover(
        cls,
        path,
        *,
        checkpoint_bytes: int = 8 << 20,
        background_checkpoints: bool = True,
        segment_bytes: int = 8 << 20,
        fsync: bool = False,
        registry=None,
    ) -> "DurableIndex":
        """Rebuild the index a dead process was serving; re-attach to it.

        Loads the newest snapshot, replays the WAL tail through the
        seq-guarded ``apply_delta`` — O(|tail|) work, zero similarity
        evaluations — and returns a :class:`DurableIndex` already
        persisting the recovered index into the same directory.
        :attr:`recovery` carries the :class:`RecoveryInfo`.

        Raises:
            WALError: no snapshot exists in ``path``.
            WALCorruptError: a committed log record failed its
                checksum (named by seq); restore from a replica.
            StaleReplicaError: the log has a sequence gap the replay
                cannot bridge.
        """
        index, wal, info = _load(path, segment_bytes=segment_bytes, fsync=fsync)
        durable = cls(
            index,
            path,
            checkpoint_bytes=checkpoint_bytes,
            background_checkpoints=background_checkpoints,
            segment_bytes=segment_bytes,
            fsync=fsync,
            registry=registry,
            _wal=wal,
        )
        durable.recovery = info
        durable._g_rec_seconds.set(info.seconds)
        durable._g_rec_replayed.set(info.replayed)
        durable._g_rec_rate.set(
            info.replayed / info.seconds if info.seconds > 0 else 0.0
        )
        return durable

    def hydrate(self) -> OnlineIndex:
        """A fresh index recovered from disk — replica bootstrap feed.

        Re-reads snapshot + WAL without touching the live index or its
        locks, so a :class:`~repro.serve.ReplicaSet` can hydrate new
        replicas from persisted state instead of pickling the primary
        under its read lock (``ReplicaSet(..., hydrate=durable.hydrate)``).
        The log is opened **read-only** — nothing on disk is repaired,
        so the live log this object keeps appending to is never
        touched. Appends flushed before the call are included; a
        record torn by a concurrent append ends the replay cleanly one
        delta early, which the replica tier's seq guard then handles
        like any snapshot race.
        """
        index, wal, _info = _load(
            self.path,
            segment_bytes=self.segment_bytes,
            fsync=self.fsync,
            readonly=True,
        )
        wal.close()
        return index

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Operational counters for dashboards, benchmarks and tests.

        Extends the wrapped WAL's canonical stats; the legacy
        ``checkpoints`` spelling was dropped after its one-release
        grace window.
        """
        out = self.wal.stats()
        out.update(
            component="durable_index",
            snapshot_seq=self.store.latest_seq(),
            checkpoints_total=self.checkpoints,
            version=self.index.version,
        )
        if self.recovery is not None:
            out["recovered"] = {
                "snapshot_seq": self.recovery.snapshot_seq,
                "replayed": self.recovery.replayed,
                "seconds": round(self.recovery.seconds, 4),
            }
        return out

    def close(self) -> None:
        """Detach from the index, wait out checkpoints, release the log."""
        if self._closed:
            return
        self._closed = True
        self._view.close()
        thread = self._cp_thread
        if thread is not None and thread.is_alive():
            thread.join()
        self.wal.close()

    def __enter__(self) -> "DurableIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
