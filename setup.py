"""Legacy setup shim for offline editable installs (see pyproject.toml)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Cluster-and-Conquer: KNN graph construction via FastRandomHash "
        "pre-clustering (reproduction of Giakkoupis et al., ICDE 2021)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=2.0", "scipy>=1.10"],
)
