"""Unit tests for repro.data.cv (5-fold cross-validation)."""

import numpy as np
import pytest

from repro.data import Dataset, k_fold_split


@pytest.fixture(scope="module")
def dataset() -> Dataset:
    rng = np.random.default_rng(3)
    profiles = [rng.choice(100, size=rng.integers(20, 40), replace=False) for _ in range(40)]
    return Dataset.from_profiles(profiles, n_items=100)


class TestKFoldSplit:
    def test_fold_count(self, dataset):
        folds = k_fold_split(dataset, n_folds=5, seed=0)
        assert len(folds) == 5

    def test_train_test_partition_per_user(self, dataset):
        """train ∪ test == profile and train ∩ test == ∅, per user/fold."""
        for fold in k_fold_split(dataset, n_folds=5, seed=1):
            for u in range(dataset.n_users):
                train = set(fold.train.profile(u).tolist())
                test = set(fold.test_items(u).tolist())
                assert train | test == dataset.profile_set(u)
                assert not (train & test)

    def test_every_rating_tested_exactly_once(self, dataset):
        folds = k_fold_split(dataset, n_folds=5, seed=2)
        for u in range(dataset.n_users):
            tested = np.concatenate([f.test_items(u) for f in folds])
            assert sorted(tested.tolist()) == dataset.profile(u).tolist()

    def test_folds_balanced_within_user(self, dataset):
        folds = k_fold_split(dataset, n_folds=5, seed=3)
        for u in range(dataset.n_users):
            sizes = [f.test_items(u).size for f in folds]
            assert max(sizes) - min(sizes) <= 1

    def test_train_never_empty(self):
        ds = Dataset.from_profiles([[0, 1], [2, 3, 4]], n_items=5)
        for fold in k_fold_split(ds, n_folds=2, seed=0):
            for u in range(ds.n_users):
                assert fold.train.profile(u).size >= 1

    def test_deterministic(self, dataset):
        a = k_fold_split(dataset, n_folds=5, seed=9)
        b = k_fold_split(dataset, n_folds=5, seed=9)
        for fa, fb in zip(a, b):
            assert np.array_equal(fa.test_indices, fb.test_indices)

    def test_rejects_single_fold(self, dataset):
        with pytest.raises(ValueError):
            k_fold_split(dataset, n_folds=1)

    def test_train_keeps_item_universe(self, dataset):
        fold = k_fold_split(dataset, n_folds=4, seed=0)[0]
        assert fold.train.n_items == dataset.n_items
