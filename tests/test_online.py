"""Tests for the online-update subsystem (repro.online)."""

import numpy as np
import pytest

from repro import C2Params, cluster_and_conquer, make_engine
from repro.core import cluster_dataset, make_hash_family
from repro.data import SyntheticSpec, generate
from repro.graph.heap import EMPTY
from repro.online import ClusterRouter, MutableDataset, OnlineIndex
from repro.similarity import BloomEngine, ExactEngine, GoldFingerEngine


def _params(**kw):
    base = dict(k=8, n_buckets=64, n_hashes=4, split_threshold=80, seed=1)
    base.update(kw)
    return C2Params(**base)


class TestMutableDataset:
    def test_from_dataset_roundtrip(self, small_dataset):
        data = MutableDataset.from_dataset(small_dataset)
        assert data.n_users == small_dataset.n_users
        assert data.n_items == small_dataset.n_items
        snap = data.snapshot()
        assert np.array_equal(snap.indptr, small_dataset.indptr)
        assert np.array_equal(snap.indices, small_dataset.indices)

    def test_add_user(self):
        data = MutableDataset(n_items=10)
        uid = data.add_user([3, 1, 3, 7])
        assert uid == 0
        assert list(data.profile(0)) == [1, 3, 7]
        assert data.n_users == 1

    def test_add_items_returns_only_new(self):
        data = MutableDataset(profiles=[[1, 2, 3]], n_items=10)
        added = data.add_items(0, [2, 3, 4, 5])
        assert list(added) == [4, 5]
        assert list(data.profile(0)) == [1, 2, 3, 4, 5]
        assert data.add_items(0, [1]).size == 0

    def test_item_universe_grows(self):
        data = MutableDataset(profiles=[[1]], n_items=2)
        data.add_items(0, [9])
        assert data.n_items == 10
        assert data.snapshot().n_items == 10

    def test_remove_user_tombstones(self):
        data = MutableDataset(profiles=[[1, 2], [3]], n_items=5)
        data.remove_user(0)
        assert not data.is_active(0)
        assert data.profile(0).size == 0
        assert data.n_users == 2  # id space unchanged
        assert list(data.active_users()) == [1]
        with pytest.raises(ValueError):
            data.add_items(0, [4])

    def test_snapshot_cache_invalidated(self):
        data = MutableDataset(profiles=[[1, 2]], n_items=5)
        s1 = data.snapshot()
        data.add_items(0, [3])
        s2 = data.snapshot()
        assert s1.n_ratings == 2 and s2.n_ratings == 3

    def test_profile_sizes_track_mutations(self):
        data = MutableDataset(profiles=[[1], [2, 3]], n_items=5)
        assert list(data.profile_sizes) == [1, 2]
        data.add_items(0, [4])
        assert list(data.profile_sizes) == [2, 2]


class TestEngineUpdateHooks:
    """update_profile must leave the engine exactly as a fresh build."""

    def _fresh_like(self, engine, snap):
        if isinstance(engine, GoldFingerEngine):
            return GoldFingerEngine(snap, n_bits=engine.n_bits, seed=engine.goldfinger.seed)
        if isinstance(engine, BloomEngine):
            return BloomEngine(snap, n_bits=engine.bloom.n_bits,
                               n_hashes=engine.bloom.n_hashes, seed=engine.bloom.seed)
        return ExactEngine(snap, metric=engine.metric)

    @pytest.mark.parametrize("backend", ["exact", "goldfinger", "bloom"])
    def test_add_items_matches_fresh_engine(self, backend):
        data = MutableDataset(profiles=[[0, 1, 2], [2, 3], [4, 5, 6]], n_items=8)
        engine = make_engine(data, backend=backend, n_bits=128)
        added = data.add_items(0, [7])
        engine.update_profile(0, added)
        fresh = self._fresh_like(engine, data.snapshot())
        others = np.array([1, 2])
        assert engine.one_to_many(0, others) == pytest.approx(
            fresh.one_to_many(0, others)
        )

    @pytest.mark.parametrize("backend", ["exact", "goldfinger", "bloom"])
    def test_new_user_matches_fresh_engine(self, backend):
        data = MutableDataset(profiles=[[0, 1, 2], [2, 3]], n_items=8)
        engine = make_engine(data, backend=backend, n_bits=128)
        uid = data.add_user([1, 2, 7])
        engine.update_profile(uid, None)
        fresh = self._fresh_like(engine, data.snapshot())
        others = np.array([0, 1])
        assert engine.one_to_many(uid, others) == pytest.approx(
            fresh.one_to_many(uid, others)
        )

    @pytest.mark.parametrize("backend", ["exact", "goldfinger", "bloom"])
    def test_removal_zeroes_similarity(self, backend):
        data = MutableDataset(profiles=[[0, 1, 2], [1, 2, 3]], n_items=8)
        engine = make_engine(data, backend=backend, n_bits=128)
        assert engine.pair(0, 1) > 0
        data.remove_user(1)
        engine.update_profile(1, None)
        assert engine.pair(0, 1) == 0.0

    def test_updates_are_not_counted(self):
        data = MutableDataset(profiles=[[0, 1], [2, 3]], n_items=8)
        engine = make_engine(data, backend="goldfinger", n_bits=128)
        engine.update_profile(0, data.add_items(0, [5]))
        assert engine.comparisons == 0


class TestClusterRouter:
    def test_routes_existing_users_to_their_cluster(self, small_dataset):
        """Replaying the split descent must land every user in exactly
        the cluster the batch run put them in."""
        hashes = make_hash_family(small_dataset.n_items, 32, 4, seed=3)
        clustering = cluster_dataset(small_dataset, hashes, split_threshold=25)
        router = ClusterRouter(hashes, clustering.split_paths)
        member_sets = []
        for cid, cluster in enumerate(clustering.clusters):
            router.register(cluster.config, cluster.lineage, cid)
            member_sets.append(set(int(u) for u in cluster.users))

        for config in range(clustering.n_configs):
            for u in range(small_dataset.n_users):
                _, cid = router.route(config, small_dataset.profile(u))
                assert cid >= 0 and u in member_sets[cid]

    def test_unknown_lineage_reports_miss(self):
        hashes = make_hash_family(10, 1024, 1, seed=0)
        router = ClusterRouter(hashes)
        lineage, cid = router.route(0, np.array([4]))
        assert cid == -1 and len(lineage) == 1 and lineage[0] >= 1

    def test_hash_tables_extend_for_new_items(self):
        hashes = make_hash_family(5, 16, 1, seed=0)
        router = ClusterRouter(hashes)
        router.ensure_items(50)
        lineage, _ = router.route(0, np.array([42]))
        assert 1 <= lineage[0] <= 16


@pytest.fixture(scope="module")
def online_index(small_dataset):
    index = OnlineIndex.build(small_dataset, params=_params())
    rng = np.random.default_rng(0)
    while index.n_updates < 30:  # no-op adds (item already rated) don't count
        u = int(rng.choice(index.dataset.active_users()))
        index.add_items(u, [int(rng.integers(0, small_dataset.n_items))])
    return index


class TestOnlineIndex:
    def test_requires_frh(self, small_dataset):
        with pytest.raises(ValueError):
            OnlineIndex.build(small_dataset, params=_params(hash_family="minhash"))

    def test_requires_mutable_dataset(self, small_dataset):
        engine = make_engine(small_dataset)
        with pytest.raises(TypeError):
            OnlineIndex(engine, params=_params())

    def test_graph_consistency_after_updates(self, online_index):
        ids = online_index.graph.heaps.ids
        n = online_index.n_users
        for u in range(n):
            row = ids[u][ids[u] != EMPTY]
            assert u not in row  # no self loops
            assert np.unique(row).size == row.size  # no duplicates
            assert row.size == 0 or (row >= 0).all() and (row < n).all()

    def test_scores_match_engine(self, online_index):
        """Every stored edge score equals the engine's current estimate."""
        heaps = online_index.graph.heaps
        rng = np.random.default_rng(1)
        for u in rng.choice(online_index.n_users, size=20, replace=False):
            row, scores = online_index.graph.neighborhood(int(u))
            if row.size == 0:
                continue
            fresh = online_index.engine.one_to_many(int(u), row)
            assert scores == pytest.approx(fresh)

    def test_add_user_connects_newcomer(self, small_dataset):
        index = OnlineIndex.build(small_dataset, params=_params())
        # clone an existing user's profile: the twin must become a top neighbour
        twin_of = 7
        uid = index.add_user(small_dataset.profile(twin_of))
        assert uid == small_dataset.n_users
        ids, scores = index.neighborhood(uid)
        assert twin_of in ids
        assert scores[list(ids).index(twin_of)] == pytest.approx(1.0)
        # both directions exist
        assert uid in index.graph.neighbors(twin_of)

    def test_remove_user_detaches_node(self, small_dataset):
        index = OnlineIndex.build(small_dataset, params=_params())
        before = index.engine.comparisons
        index.remove_user(3)
        assert index.engine.comparisons == before  # removal is free
        assert index.graph.neighbors(3).size == 0
        assert not (index.graph.heaps.ids == 3).any()
        # idempotent
        index.remove_user(3)
        # and the slot never resurfaces in later updates
        rng = np.random.default_rng(4)
        for _ in range(10):
            u = int(rng.choice(index.dataset.active_users()))
            index.add_items(u, [int(rng.integers(0, small_dataset.n_items))])
        assert not (index.graph.heaps.ids == 3).any()

    def test_noop_update_costs_nothing(self, small_dataset):
        index = OnlineIndex.build(small_dataset, params=_params())
        before = index.engine.comparisons
        added = index.add_items(5, small_dataset.profile(5))  # already present
        assert added.size == 0
        assert index.engine.comparisons == before

    def test_deterministic(self, small_dataset):
        def run():
            index = OnlineIndex.build(small_dataset, params=_params())
            rng = np.random.default_rng(9)
            for _ in range(20):
                u = int(rng.choice(index.dataset.active_users()))
                index.add_items(u, [int(rng.integers(0, small_dataset.n_items))])
            index.add_user([1, 2, 3])
            index.remove_user(0)
            return index

        a, b = run(), run()
        assert np.array_equal(a.graph.heaps.ids, b.graph.heaps.ids)
        assert a.update_comparisons == b.update_comparisons

    def test_rebuild_rebalances_in_place(self, small_dataset):
        index = OnlineIndex.build(small_dataset, params=_params())
        rng = np.random.default_rng(2)
        for _ in range(15):
            index.add_user(rng.integers(0, small_dataset.n_items, size=20))
        index.remove_user(1)
        build = index.rebuild()
        assert index.build_result is build
        assert index.n_users == small_dataset.n_users + 15
        # tombstone stays detached through the rebuild
        assert index.graph.neighbors(1).size == 0
        assert not (index.graph.heaps.ids == 1).any()

    def test_stats_counters(self, online_index):
        stats = online_index.stats()
        assert stats["mutations_total"] == 30
        assert stats["update_comparisons"] > 0
        assert stats["clusters"] > 0


class TestUpdateBudget:
    """Acceptance criterion: 100 single-item updates on 5k users cost
    < 5% of a from-scratch rebuild's similarity evaluations."""

    def test_100_updates_under_5_percent_of_rebuild(self):
        spec = SyntheticSpec(
            name="s5k", n_users=5000, n_items=4000, mean_profile_size=40.0,
            n_communities=40, community_pool_size=200, min_profile_size=15,
        )
        dataset = generate(spec, seed=11)
        params = C2Params(k=10, n_buckets=1024, n_hashes=4,
                          split_threshold=300, seed=1)
        index = OnlineIndex.build(dataset, params=params)

        rng = np.random.default_rng(2)
        while index.n_updates < 100:  # retry no-op adds (item already rated)
            u = int(rng.integers(0, dataset.n_users))
            index.add_items(u, [int(rng.integers(0, dataset.n_items))])
        assert index.n_updates == 100

        rebuild = cluster_and_conquer(
            make_engine(index.dataset.snapshot()), params
        )
        assert index.update_comparisons < 0.05 * rebuild.comparisons


class TestGeometricGrowth:
    """m signups must trigger O(log m) table reallocations (not m)."""

    def test_signup_stream_reallocation_counts(self, small_dataset):
        index = OnlineIndex.build(small_dataset, params=_params())
        n0 = index.n_users
        heaps = index.graph.heaps
        gf = index.engine.goldfinger
        assert heaps.reallocations == 0 and gf.reallocations == 0
        rng = np.random.default_rng(0)
        m = 300
        for _ in range(m):
            index.add_user(rng.integers(0, small_dataset.n_items, size=12))
        bound = int(np.ceil(np.log2((n0 + m) / n0))) + 1
        assert heaps.reallocations <= bound
        assert gf.reallocations <= bound
        assert index.n_users == n0 + m
        assert heaps.ids.shape == (n0 + m, index.k)

    def test_bloom_table_growth(self, tiny_dataset):
        from repro.similarity import BloomFilterTable

        table = BloomFilterTable(tiny_dataset, n_bits=128)
        n0 = tiny_dataset.n_users
        m = 200
        for pos in range(m):
            table.set_profile(n0 + pos, np.array([1, 2, 3]))
        assert table.filters.shape[0] == n0 + m
        assert table.reallocations <= int(np.ceil(np.log2((n0 + m) / n0))) + 1


class TestLazyRefill:
    """Rows degraded by remove_user recover on their next read."""

    def _degrade(self, small_dataset, n_removals=8):
        index = OnlineIndex.build(small_dataset, params=_params())
        rng = np.random.default_rng(5)
        for _ in range(n_removals):
            index.remove_user(int(rng.choice(index.dataset.active_users())))
        assert index.degraded  # removals must have left short rows
        return index

    def test_read_repairs_degraded_row(self, small_dataset):
        index = self._degrade(small_dataset)
        user = min(index.degraded)
        short = index.graph.neighbors(user).size  # raw read: still short
        assert short < index.k
        ids, scores = index.neighborhood(user)  # serviced read: refills
        assert ids.size == index.k > short
        assert user not in index.degraded
        assert index.refill_comparisons > 0
        # scores are honest: they match the engine's current estimates
        assert scores == pytest.approx(index.engine.one_to_many(user, ids))

    def test_refill_recovers_recall(self, small_dataset):
        from repro.serve import brute_force_top_k

        index = self._degrade(small_dataset)
        degraded = sorted(index.degraded)[:10]
        reference = {}
        for u in degraded:
            ref = brute_force_top_k(
                index.engine, index.dataset.profile(u), k=index.k,
            )
            reference[u] = ref.ids[ref.ids != u][: index.k]
        before = np.mean([
            np.isin(reference[u], index.graph.neighbors(u)).mean() for u in degraded
        ])
        for u in degraded:
            index.neighborhood(u)
        after = np.mean([
            np.isin(reference[u], index.graph.neighbors(u)).mean() for u in degraded
        ])
        assert after > before
        assert after >= 0.9

    def test_update_clears_degraded_flag(self, small_dataset):
        index = self._degrade(small_dataset)
        user = min(index.degraded)
        index.add_items(user, [0, 1, 2])  # full rescore repairs the row
        assert user not in index.degraded

    def test_rebuild_clears_degraded(self, small_dataset):
        index = self._degrade(small_dataset)
        index.rebuild()
        assert not index.degraded


class TestResplit:
    """Unit tests for online cluster re-split (the ISSUE-6 tentpole)."""

    def _swollen(self, small_dataset, auto_resplit, threshold=40):
        """An index plus a stream of correlated signups that swell
        whichever clusters the donor community routes to."""
        index = OnlineIndex.build(
            small_dataset,
            params=_params(split_threshold=threshold),
            auto_resplit=auto_resplit,
        )
        rng = np.random.default_rng(5)
        donor = index.dataset.profile(0)
        for _ in range(80):
            keep = donor[rng.random(donor.size) > 0.4]
            extra = rng.integers(0, index.dataset.n_items, size=6)
            index.add_user(np.union1d(keep, extra))
        return index

    def test_auto_resplit_holds_the_size_invariant(self, small_dataset):
        index = self._swollen(small_dataset, auto_resplit=True)
        stats = index.stats()
        assert stats["resplits_total"] > 0
        assert stats["rebuilds_total"] == 0
        for cid, members in enumerate(index._members):
            assert (
                len(members) <= index.params.split_threshold
                or cid in index._unsplittable
            )

    def test_disabled_resplit_lets_clusters_swell(self, small_dataset):
        index = self._swollen(small_dataset, auto_resplit=False)
        stats = index.stats()
        assert stats["resplits_total"] == 0
        assert stats["max_cluster_size"] > index.params.split_threshold

    def test_resplit_costs_zero_comparisons(self, small_dataset):
        index = self._swollen(small_dataset, auto_resplit=False)
        over = [
            cid for cid, m in enumerate(index._members)
            if len(m) > index.params.split_threshold
            and cid not in index._unsplittable
        ]
        assert over
        before = index.engine.comparisons
        for cid in over:
            index._resplit(cid)
        assert index.engine.comparisons == before
        assert index.stats()["resplits_total"] >= len(over)

    def test_resplit_keeps_members_and_assign_consistent(self, small_dataset):
        index = self._swollen(small_dataset, auto_resplit=True)
        for cid, members in enumerate(index._members):
            config, _ = index._cluster_key[cid]
            for u in members:
                assert index._assign[u][config] == cid
        for u in index.dataset.active_users():
            for config, cid in enumerate(index._assign[int(u)]):
                if cid >= 0:
                    assert int(u) in index._members[cid]

    def test_resplit_emits_one_global_event(self, small_dataset):
        index = OnlineIndex.build(
            small_dataset, params=_params(split_threshold=40),
            auto_resplit=True,
        )
        events = []
        index.subscribe(lambda event, user, deltas: events.append((event, user)))
        rng = np.random.default_rng(5)
        donor = index.dataset.profile(0)
        while index.stats()["resplits_total"] == 0:
            keep = donor[rng.random(donor.size) > 0.4]
            index.add_user(np.union1d(keep, rng.integers(0, 500, size=6)))
        resplits = [e for e in events if e[0] == "resplit"]
        assert resplits and all(user == -1 for _, user in resplits)

    def test_update_cap_subsamples_swollen_pools(self, small_dataset):
        """With a cap, updates against a swollen index cost less."""
        uncapped = self._swollen(small_dataset, auto_resplit=False)
        capped = self._swollen(small_dataset, auto_resplit=False)
        capped.update_cap = 40
        probe = np.arange(0, 30, dtype=np.int64)
        b0 = uncapped.engine.comparisons
        uncapped.add_user(probe)
        cost_uncapped = uncapped.engine.comparisons - b0
        b1 = capped.engine.comparisons
        capped.add_user(probe)
        cost_capped = capped.engine.comparisons - b1
        assert cost_capped < cost_uncapped
