"""Tests for the replica serving tier (repro.serve.replica + sharded).

The tier's contracts: replicas converge to the primary's exact serving
state by applying shipped journal deltas (never by re-forking, outside
``rebuild``), any replica answers exactly what the primary would,
miss routing only shapes load, and the sharded front end's
``search_async`` coalesces concurrent awaiters exactly like
``QueryEngine.search_async``. Plus the PR-4 cache fix: a brand-new
very-similar signup evicts the cached answers it should appear in.
"""

import asyncio
import threading

import numpy as np
import pytest

from repro import C2Params
from repro.online import OnlineIndex, StaleReplicaError
from repro.serve import QueryEngine, ReplicaSet, ShardedQueryEngine
from repro.serve.replica import edge_digest


def _params(**kw):
    base = dict(k=8, n_buckets=64, n_hashes=4, split_threshold=80, seed=1)
    base.update(kw)
    return C2Params(**base)


def _batch(rng, n_items, size=16):
    return [rng.integers(0, n_items, size=int(rng.integers(3, 12))) for _ in range(size)]


def _churn(index, rng, n_ops=15):
    for _ in range(n_ops):
        active = index.dataset.active_users()
        op = rng.random()
        if op < 0.4 and active.size:
            index.add_items(
                int(rng.choice(active)),
                rng.integers(0, index.dataset.n_items, size=2),
            )
        elif op < 0.7:
            index.add_user(rng.integers(0, index.dataset.n_items, size=12))
        elif active.size > 100:
            index.remove_user(int(rng.choice(active)))


class TestReplicaSet:
    def test_validation(self, small_dataset):
        index = OnlineIndex.build(small_dataset, params=_params())
        with pytest.raises(ValueError):
            ReplicaSet(index, 0)
        with pytest.raises(ValueError):
            ReplicaSet(index, 2, mode="fiber")

    def test_thread_replicas_track_every_mutation(self, small_dataset):
        index = OnlineIndex.build(small_dataset, params=_params())
        index.reverse_index()
        replicas = ReplicaSet(index, 2, mode="thread")
        try:
            _churn(index, np.random.default_rng(0), n_ops=20)
            assert replicas.converged()
            assert replicas.lag() == 0
            stats = replicas.stats()
            assert stats["resyncs_total"] == 0
            assert stats["deltas_shipped_total"] == index.version
            replica = replicas.replica(0)
            # Full serving-state parity, not just edges: routing tables
            # and memberships replayed in lockstep.
            assert replica.graph.heaps.edge_sets() == index.graph.heaps.edge_sets()
            assert replica.reverse_index().to_sets() == index.reverse_index().to_sets()
            assert replica._assign == index._assign
            assert replica._members == index._members
        finally:
            replicas.close()

    def test_rebuild_forces_counted_resync(self, small_dataset):
        index = OnlineIndex.build(small_dataset, params=_params())
        replicas = ReplicaSet(index, 2, mode="thread")
        try:
            index.rebuild()
            assert replicas.stats()["resyncs_total"] == 2  # one per replica
            assert replicas.converged()
        finally:
            replicas.close()

    def test_close_detaches_shipping(self, small_dataset):
        index = OnlineIndex.build(small_dataset, params=_params())
        replicas = ReplicaSet(index, 2, mode="thread")
        replicas.close()
        index.add_user([1, 2, 3])
        assert replicas.stats()["deltas_shipped_total"] == 0

    def test_stale_delta_stream_raises_and_heals(self, small_dataset):
        index = OnlineIndex.build(small_dataset, params=_params())
        clone = index.clone()
        deltas = []
        index.subscribe_deltas(deltas.append)
        try:
            index.add_user([1, 2, 3])
            index.add_user([4, 5, 6])
            with pytest.raises(StaleReplicaError):
                clone.apply_delta(deltas[1])  # gap: delta 0 never applied
            assert clone.apply_delta(deltas[0])
            assert clone.apply_delta(deltas[1])
            assert not clone.apply_delta(deltas[1])  # idempotent skip
            assert edge_digest(clone.graph.heaps) == edge_digest(index.graph.heaps)
        finally:
            index.unsubscribe_deltas(deltas.append)


class TestReplicaRouting:
    @pytest.mark.parametrize("routing", ["round_robin", "least_loaded", "hash"])
    def test_policies_match_single_worker_answers(self, small_dataset, routing):
        index = OnlineIndex.build(small_dataset, params=_params())
        engine = ShardedQueryEngine(
            index, 3, replicas=True, routing=routing, cache_size=0
        )
        oracle = QueryEngine(index, cache_size=0)
        rng = np.random.default_rng(5)
        batch = _batch(rng, small_dataset.n_items)
        try:
            _churn(index, rng, n_ops=8)
            for got, want in zip(engine.search_many(batch), oracle.search_many(batch)):
                assert np.array_equal(got.ids, want.ids)
                assert got.scores == pytest.approx(want.scores)
        finally:
            engine.close()
            oracle.close()

    @pytest.mark.parametrize("routing", ["round_robin", "least_loaded"])
    def test_policies_spread_misses_across_replicas(self, small_dataset, routing):
        index = OnlineIndex.build(small_dataset, params=_params())
        engine = ShardedQueryEngine(
            index, 3, replicas=True, routing=routing, cache_size=0
        )
        try:
            rng = np.random.default_rng(6)
            before = [
                replica.engine.comparisons
                for replica in engine.replica_set._replicas
            ]
            engine.search_many(_batch(rng, small_dataset.n_items, size=24))
            # Thread replicas charge walks to their own engine copies —
            # a policy that funnelled everything to one replica would
            # leave the others' counters untouched.
            charged = [
                replica.engine.comparisons - b
                for replica, b in zip(engine.replica_set._replicas, before)
            ]
            assert all(c > 0 for c in charged), charged
        finally:
            engine.close()

    def test_routing_requires_replicas(self, small_dataset):
        index = OnlineIndex.build(small_dataset, params=_params())
        with pytest.raises(ValueError):
            ShardedQueryEngine(index, 2, routing="round_robin")
        with pytest.raises(ValueError):
            ShardedQueryEngine(index, 2, replicas=True, routing="random")

    def test_stats_surface_replica_counters(self, small_dataset):
        index = OnlineIndex.build(small_dataset, params=_params())
        engine = ShardedQueryEngine(index, 2, replicas=True)
        try:
            index.add_user([1, 2, 3])
            stats = engine.stats()
            assert stats["routing"] == "round_robin"
            assert stats["replica_mode"] == "thread"
            assert stats["deltas_shipped_total"] == 1
            assert stats["resyncs_total"] == 0
            assert stats["replica_lag"] == 0
        finally:
            engine.close()


class TestShardedSearchAsync:
    def test_concurrent_awaiters_share_one_walk(self, small_dataset):
        index = OnlineIndex.build(small_dataset, params=_params())
        engine = ShardedQueryEngine(index, 2, replicas=True)
        try:
            async def burst():
                return await asyncio.gather(
                    *(engine.search_async([7, 8, 9]) for _ in range(6))
                )

            results = asyncio.run(burst())
            assert all(r is results[0] for r in results[1:])
            stats = engine.stats()
            assert stats["cache_misses_total"] == 1
            assert stats["dedup_hits_total"] == 5
        finally:
            engine.close()

    def test_mixed_k_and_oracle_equality(self, small_dataset):
        index = OnlineIndex.build(small_dataset, params=_params())
        engine = ShardedQueryEngine(index, 2, replicas=True, cache_size=0)
        oracle = QueryEngine(index, cache_size=0)
        try:
            async def burst():
                return await asyncio.gather(
                    engine.search_async([7, 8, 9], k=3),
                    engine.search_async([7, 8, 9], k=5),
                )

            small, large = asyncio.run(burst())
            assert len(small) == 3 and len(large) == 5
            assert np.array_equal(small.ids, oracle.search([7, 8, 9], k=3).ids)
        finally:
            engine.close()
            oracle.close()

    def test_async_dedup_survives_concurrent_mutations(self, small_dataset):
        """Bursts of awaiters race a mutator thread; answers stay sound."""
        index = OnlineIndex.build(small_dataset, params=_params())
        engine = ShardedQueryEngine(index, 2, replicas=True)
        stop = threading.Event()

        def mutate():
            rng = np.random.default_rng(9)
            while not stop.is_set():
                _churn(index, rng, n_ops=1)

        writer = threading.Thread(target=mutate)
        writer.start()
        try:
            async def storm():
                out = []
                for wave in range(10):
                    profile = [wave, wave + 1, wave + 2]
                    results = await asyncio.gather(
                        *(engine.search_async(profile) for _ in range(4))
                    )
                    assert all(r is results[0] for r in results[1:])
                    out.extend(results)
                return out

            for result in asyncio.run(storm()):
                assert np.unique(result.ids).size == result.ids.size
                assert np.all(result.ids < index.n_users)
        finally:
            stop.set()
            writer.join(timeout=30)
            engine.close()
        assert not writer.is_alive()
        assert engine.replica_set.stats()["resyncs_total"] == 0


class TestSignupInvalidation:
    """The ROADMAP cache blind spot: a twin signup must become visible."""

    def test_twin_signup_evicts_the_answer_it_belongs_in(self, small_dataset):
        index = OnlineIndex.build(small_dataset, params=_params())
        engine = QueryEngine(index, k=5)
        try:
            profile = small_dataset.profile(3)
            before = engine.search(profile)
            assert 3 in before.ids  # sanity: the existing twin tops the list
            uid = index.add_user(profile)  # identical signup
            after = engine.search(profile)
            assert after is not before  # her contacts' entries were evicted
            assert uid in after.ids  # and she appears immediately
        finally:
            engine.close()

    def test_sharded_partial_cache_gets_the_same_seeding(self, small_dataset):
        index = OnlineIndex.build(small_dataset, params=_params())
        engine = ShardedQueryEngine(index, 2, replicas=True, k=5)
        try:
            profile = small_dataset.profile(7)
            before = engine.search(profile)
            assert 7 in before.ids
            uid = index.add_user(profile)
            after = engine.search(profile)
            assert after is not before
            assert uid in after.ids
        finally:
            engine.close()

    def test_unrelated_entries_still_survive_a_signup(self, small_dataset):
        index = OnlineIndex.build(small_dataset, params=_params())
        engine = QueryEngine(index, k=5)
        try:
            bystander = engine.search([7, 8])
            # A signup disjoint from the bystander's community: none of
            # its contacts appear in the cached answer, so it survives.
            contacts = set()
            index.subscribe(
                lambda e, u, d: contacts.update(x for uv in d for x in uv[:2])
            )
            fresh = small_dataset.n_items - 1
            index.add_user([fresh])
            if contacts & set(int(v) for v in bystander.ids):
                pytest.skip("random signup landed inside the bystander's answer")
            assert engine.search([7, 8]) is bystander
        finally:
            engine.close()
