"""Unit tests for repro.distributed (map-reduce simulation)."""

import numpy as np
import pytest

from repro.core import cluster_dataset, make_hash_family
from repro.core.clustering import Cluster, ClusteringResult
from repro.distributed import simulate_mapreduce


def _clustering(sizes):
    clusters = []
    start = 0
    for i, s in enumerate(sizes):
        clusters.append(
            Cluster(users=np.arange(start, start + s), config=0, eta=i + 1)
        )
        start += s
    return ClusteringResult(clusters=clusters, n_configs=1, n_splits=0)


class TestSimulateMapReduce:
    def test_single_worker_makespan_is_total(self):
        cost = simulate_mapreduce(_clustering([10, 20, 30]), n_workers=1, k=5)
        assert cost.map_makespan == pytest.approx(cost.total_map_work)
        assert cost.speedup == pytest.approx(1.0)

    def test_speedup_bounded_by_workers(self):
        cost = simulate_mapreduce(_clustering([10] * 16), n_workers=4, k=5)
        assert cost.speedup <= 4.0 + 1e-9
        assert 0.0 < cost.efficiency <= 1.0

    def test_equal_tasks_perfect_efficiency(self):
        cost = simulate_mapreduce(_clustering([10] * 8), n_workers=8, k=5)
        assert cost.efficiency == pytest.approx(1.0)

    def test_giant_cluster_limits_speedup(self):
        """The paper's Fig. 3 motivation, in map-reduce terms: one huge
        cluster dominates the makespan however many workers exist."""
        balanced = simulate_mapreduce(_clustering([25] * 4), n_workers=4, k=3)
        skewed = simulate_mapreduce(_clustering([97, 1, 1, 1]), n_workers=4, k=3)
        assert skewed.speedup < balanced.speedup

    def test_cost_model_matches_alg2(self):
        """Map cost uses brute force below rho*k^2 and Hyrec above."""
        k, rho = 3, 5  # switch at 45
        below = simulate_mapreduce(_clustering([40]), n_workers=1, k=k, rho=rho)
        assert below.total_map_work == pytest.approx(40 * 39 / 2)
        above = simulate_mapreduce(_clustering([50]), n_workers=1, k=k, rho=rho)
        assert above.total_map_work == pytest.approx(rho * k * k * 50 / 2)

    def test_shuffle_volume(self):
        cost = simulate_mapreduce(_clustering([4, 3]), n_workers=2, k=10)
        # each member emits min(size-1, k) records
        assert cost.shuffle_records == 4 * 3 + 3 * 2

    def test_reducer_load_counts_memberships(self):
        # same users in two clusters -> two candidate sets each
        c1 = Cluster(users=np.arange(5), config=0, eta=1)
        c2 = Cluster(users=np.arange(5), config=1, eta=2)
        clustering = ClusteringResult(clusters=[c1, c2], n_configs=2, n_splits=0)
        cost = simulate_mapreduce(clustering, n_workers=2, k=10)
        assert cost.max_reducer_load == 2 * 4  # min(5-1, 10) per membership

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_mapreduce(_clustering([5]), n_workers=0)

    def test_empty_clustering(self):
        cost = simulate_mapreduce(_clustering([]), n_workers=4)
        assert cost.total_map_work == 0.0
        assert cost.shuffle_records == 0

    def test_splitting_improves_distributed_speedup(self, small_dataset):
        """End-to-end: recursive splitting raises simulated map-reduce
        speed-up on a real clustering (the §VIII scalability story)."""
        hashes = make_hash_family(small_dataset.n_items, 8, t=2, seed=1)
        raw = cluster_dataset(small_dataset, hashes, split_threshold=None)
        split = cluster_dataset(small_dataset, hashes, split_threshold=30)
        raw_cost = simulate_mapreduce(raw, n_workers=8, k=5)
        split_cost = simulate_mapreduce(split, n_workers=8, k=5)
        assert split_cost.map_makespan < raw_cost.map_makespan
