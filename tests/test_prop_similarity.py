"""Property-based tests (hypothesis) for the similarity substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Dataset
from repro.similarity import (
    GoldFinger,
    cosine_pair,
    jaccard_matrix,
    jaccard_pair,
)

profiles = st.sets(st.integers(0, 99), min_size=0, max_size=40)
nonempty_profiles = st.sets(st.integers(0, 99), min_size=1, max_size=40)


def arr(s):
    return np.array(sorted(s), dtype=np.int64)


class TestJaccardAxioms:
    @given(a=profiles, b=profiles)
    def test_range(self, a, b):
        assert 0.0 <= jaccard_pair(arr(a), arr(b)) <= 1.0

    @given(a=profiles, b=profiles)
    def test_symmetry(self, a, b):
        assert jaccard_pair(arr(a), arr(b)) == jaccard_pair(arr(b), arr(a))

    @given(a=nonempty_profiles)
    def test_identity(self, a):
        assert jaccard_pair(arr(a), arr(a)) == 1.0

    @given(a=nonempty_profiles, b=nonempty_profiles)
    def test_one_iff_equal(self, a, b):
        j = jaccard_pair(arr(a), arr(b))
        assert (j == 1.0) == (a == b)

    @given(a=profiles, b=profiles)
    def test_zero_iff_disjoint(self, a, b):
        j = jaccard_pair(arr(a), arr(b))
        assert (j == 0.0) == (not (a & b))

    @given(a=nonempty_profiles, b=nonempty_profiles)
    def test_definition(self, a, b):
        assert jaccard_pair(arr(a), arr(b)) == len(a & b) / len(a | b)

    @given(a=nonempty_profiles, b=nonempty_profiles)
    def test_jaccard_le_cosine(self, a, b):
        assert jaccard_pair(arr(a), arr(b)) <= cosine_pair(arr(a), arr(b)) + 1e-12


class TestJaccardMatrixProperties:
    @given(
        data=st.lists(nonempty_profiles, min_size=2, max_size=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_matrix_equals_pairs(self, data):
        ds = Dataset.from_profiles([sorted(p) for p in data], n_items=100)
        m = jaccard_matrix(ds)
        for i in range(ds.n_users):
            for j in range(ds.n_users):
                expected = jaccard_pair(ds.profile(i), ds.profile(j))
                assert abs(m[i, j] - expected) < 1e-12


class TestGoldFingerProperties:
    @given(
        data=st.lists(nonempty_profiles, min_size=2, max_size=6),
        bits=st.sampled_from([64, 256, 1024]),
        seed=st.integers(0, 10),
    )
    @settings(max_examples=40, deadline=None)
    def test_estimates_in_unit_interval(self, data, bits, seed):
        ds = Dataset.from_profiles([sorted(p) for p in data], n_items=100)
        gf = GoldFinger(ds, n_bits=bits, seed=seed)
        m = gf.estimate_matrix(np.arange(ds.n_users))
        assert np.all(m >= 0.0) and np.all(m <= 1.0)

    @given(
        a=nonempty_profiles,
        bits=st.sampled_from([64, 512]),
        seed=st.integers(0, 10),
    )
    @settings(max_examples=40, deadline=None)
    def test_identical_profiles_estimate_one(self, a, bits, seed):
        ds = Dataset.from_profiles([sorted(a), sorted(a)], n_items=100)
        gf = GoldFinger(ds, n_bits=bits, seed=seed)
        assert gf.estimate_pair(0, 1) == 1.0

    @given(
        a=nonempty_profiles,
        b=nonempty_profiles,
        seed=st.integers(0, 10),
    )
    @settings(max_examples=40, deadline=None)
    def test_superset_bits_never_lower(self, a, b, seed):
        """fp(A ∪ B) == fp(A) | fp(B): fingerprinting is a union
        homomorphism (the structural invariant behind SHFs)."""
        union = sorted(a | b)
        ds = Dataset.from_profiles([sorted(a), sorted(b), union], n_items=100)
        gf = GoldFinger(ds, n_bits=256, seed=seed)
        fp = gf.fingerprints
        assert np.array_equal(fp[2], fp[0] | fp[1])
