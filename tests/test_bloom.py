"""Unit tests for repro.similarity.bloom (+ BloomEngine)."""

import numpy as np
import pytest

from repro.similarity import BloomEngine, BloomFilterTable, jaccard_matrix, make_engine


class TestBloomFilterTable:
    def test_rejects_bad_width(self, tiny_dataset):
        with pytest.raises(ValueError):
            BloomFilterTable(tiny_dataset, n_bits=100)

    def test_rejects_zero_hashes(self, tiny_dataset):
        with pytest.raises(ValueError):
            BloomFilterTable(tiny_dataset, n_hashes=0)

    def test_identical_profiles_estimate_one(self, tiny_dataset):
        bf = BloomFilterTable(tiny_dataset, n_bits=512)
        assert bf.estimate_pair(0, 2) == pytest.approx(1.0)

    def test_disjoint_profiles_near_zero(self, tiny_dataset):
        bf = BloomFilterTable(tiny_dataset, n_bits=8192, n_hashes=2)
        assert bf.estimate_pair(0, 3) <= 0.15

    def test_estimates_in_unit_interval(self, small_dataset):
        bf = BloomFilterTable(small_dataset, n_bits=256, n_hashes=3)
        est = bf.estimate_one_to_many(0, np.arange(1, 100))
        assert np.all(est >= 0.0) and np.all(est <= 1.0)

    def test_one_to_many_matches_pair(self, small_dataset):
        bf = BloomFilterTable(small_dataset, n_bits=512)
        others = np.arange(1, 30)
        got = bf.estimate_one_to_many(0, others)
        want = [bf.estimate_pair(0, int(v)) for v in others]
        np.testing.assert_allclose(got, want)

    def test_single_hash_close_to_goldfinger_accuracy(self, small_dataset):
        """h=1 Bloom filters are SHFs; accuracy should be comparable."""
        bf = BloomFilterTable(small_dataset, n_bits=1024, n_hashes=1)
        users = np.arange(40)
        exact = jaccard_matrix(small_dataset, users)
        est = np.array(
            [bf.estimate_one_to_many(int(u), users) for u in users]
        )
        assert np.abs(est - exact).mean() < 0.08

    def test_more_bits_more_accurate(self, small_dataset):
        users = np.arange(40)
        exact = jaccard_matrix(small_dataset, users)
        errs = {}
        for bits in (64, 2048):
            bf = BloomFilterTable(small_dataset, n_bits=bits, n_hashes=2)
            est = np.array(
                [bf.estimate_one_to_many(int(u), users) for u in users]
            )
            errs[bits] = np.abs(est - exact).mean()
        assert errs[2048] < errs[64]


class TestBloomEngine:
    def test_make_engine_backend(self, small_dataset):
        engine = make_engine(small_dataset, backend="bloom", n_bits=512)
        assert isinstance(engine, BloomEngine)

    def test_counts(self, small_dataset):
        engine = BloomEngine(small_dataset, n_bits=256)
        engine.one_to_many(0, np.arange(1, 6))
        assert engine.comparisons == 5

    def test_rejects_cosine(self, small_dataset):
        with pytest.raises(ValueError):
            make_engine(small_dataset, backend="bloom", metric="cosine")

    def test_usable_by_c2(self, small_dataset):
        from repro import C2Params, cluster_and_conquer
        from repro.baselines import brute_force_knn
        from repro.graph import quality
        from repro.similarity import ExactEngine

        exact = brute_force_knn(ExactEngine(small_dataset), k=5).graph
        engine = BloomEngine(small_dataset, n_bits=1024, n_hashes=1)
        result = cluster_and_conquer(
            engine, C2Params(k=5, n_buckets=32, n_hashes=6, split_threshold=60)
        )
        assert quality(result.graph, exact, small_dataset) > 0.7
