"""Unit tests for repro.similarity.engine (counting + backends)."""

import numpy as np
import pytest

from repro.similarity import ExactEngine, GoldFingerEngine, make_engine
from repro.similarity.jaccard import jaccard_pair


class TestCounting:
    def test_pair_counts_one(self, tiny_dataset):
        engine = ExactEngine(tiny_dataset)
        engine.pair(0, 1)
        assert engine.comparisons == 1

    def test_one_to_many_counts_len(self, tiny_dataset):
        engine = ExactEngine(tiny_dataset)
        engine.one_to_many(0, np.array([1, 2, 3]))
        assert engine.comparisons == 3

    def test_matrix_counts_pairs(self, tiny_dataset):
        engine = ExactEngine(tiny_dataset)
        engine.matrix(np.array([0, 1, 2, 3]))
        assert engine.comparisons == 6  # C(4,2)

    def test_block_counts_product(self, tiny_dataset):
        engine = ExactEngine(tiny_dataset)
        engine.block(np.array([0, 1]), np.array([2, 3, 4]))
        assert engine.comparisons == 6

    def test_block_uncounted(self, tiny_dataset):
        engine = ExactEngine(tiny_dataset)
        engine.block(np.array([0]), np.array([1]), counted=False)
        assert engine.comparisons == 0

    def test_explicit_charge(self, tiny_dataset):
        engine = ExactEngine(tiny_dataset)
        engine.charge(42)
        assert engine.comparisons == 42

    def test_reset(self, tiny_dataset):
        engine = ExactEngine(tiny_dataset)
        engine.pair(0, 1)
        engine.reset_comparisons()
        assert engine.comparisons == 0

    def test_counts_accumulate(self, tiny_dataset):
        engine = ExactEngine(tiny_dataset)
        engine.pair(0, 1)
        engine.one_to_many(0, np.array([1, 2]))
        assert engine.comparisons == 3

    def test_thread_safe_counting(self, small_dataset):
        from concurrent.futures import ThreadPoolExecutor

        engine = GoldFingerEngine(small_dataset, n_bits=256)
        others = np.arange(10)

        def work(_):
            for _ in range(50):
                engine.one_to_many(0, others)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(work, range(8)))
        assert engine.comparisons == 8 * 50 * 10


class TestExactEngine:
    def test_pair_matches_jaccard(self, tiny_dataset):
        engine = ExactEngine(tiny_dataset)
        assert engine.pair(0, 1) == pytest.approx(
            jaccard_pair(tiny_dataset.profile(0), tiny_dataset.profile(1))
        )

    def test_one_to_many_matches_block(self, tiny_dataset):
        engine = ExactEngine(tiny_dataset)
        others = np.array([1, 2, 3])
        row = engine.one_to_many(0, others)
        blk = engine.block(np.array([0]), others)
        np.testing.assert_allclose(row, blk[0])

    def test_cosine_metric(self, tiny_dataset):
        engine = ExactEngine(tiny_dataset, metric="cosine")
        assert engine.pair(0, 2) == pytest.approx(1.0)

    def test_rejects_unknown_metric(self, tiny_dataset):
        with pytest.raises(ValueError):
            ExactEngine(tiny_dataset, metric="euclid")


class TestGoldFingerEngine:
    def test_matches_goldfinger(self, small_dataset):
        engine = GoldFingerEngine(small_dataset, n_bits=512, seed=3)
        assert engine.pair(0, 1) == pytest.approx(
            engine.goldfinger.estimate_pair(0, 1)
        )

    def test_matrix_consistent_with_block(self, small_dataset):
        engine = GoldFingerEngine(small_dataset, n_bits=256)
        users = np.arange(15)
        np.testing.assert_allclose(
            engine.matrix(users), engine.block(users, users)
        )

    def test_n_bits_property(self, small_dataset):
        assert GoldFingerEngine(small_dataset, n_bits=256).n_bits == 256


class TestMakeEngine:
    def test_default_is_goldfinger(self, tiny_dataset):
        assert isinstance(make_engine(tiny_dataset), GoldFingerEngine)

    def test_exact_backend(self, tiny_dataset):
        assert isinstance(make_engine(tiny_dataset, backend="exact"), ExactEngine)

    def test_goldfinger_rejects_cosine(self, tiny_dataset):
        with pytest.raises(ValueError):
            make_engine(tiny_dataset, metric="cosine")

    def test_unknown_backend(self, tiny_dataset):
        with pytest.raises(ValueError):
            make_engine(tiny_dataset, backend="magic")
