"""Unit tests for repro.core.local_knn (Alg. 2: hybrid local solver)."""

import numpy as np
import pytest

from repro.core import brute_force_local, hyrec_local, solve_cluster
from repro.graph.heap import EMPTY
from repro.similarity import ExactEngine, jaccard_matrix


@pytest.fixture(scope="module")
def engine(small_dataset):
    return ExactEngine(small_dataset)


def _reference_local_knn(dataset, users, k):
    """Offline exact local KNN for verification."""
    sims = jaccard_matrix(dataset, users)
    np.fill_diagonal(sims, -np.inf)
    out = {}
    for pos, u in enumerate(users):
        order = np.lexsort((users, -sims[pos]))[: min(k, users.size - 1)]
        out[int(u)] = {int(users[j]) for j in order if sims[pos][j] > -np.inf}
    return out, sims


class TestBruteForceLocal:
    def test_matches_reference(self, small_dataset, engine):
        users = np.arange(0, 60)
        partial = brute_force_local(engine, users, k=5)
        ref, sims = _reference_local_knn(small_dataset, users, 5)
        for pos, u in enumerate(users):
            ids, scores = partial.neighborhood(pos)
            # scores must equal the true similarity of each edge
            for v, s in zip(ids, scores):
                assert s == pytest.approx(sims[pos][np.where(users == v)[0][0]])
            # neighbour set must be a valid top-k (allow similarity ties)
            got_min = scores.min() if scores.size else 0
            ref_scores = sorted(
                (sims[pos][j] for j in range(users.size) if j != pos), reverse=True
            )[:5]
            assert got_min == pytest.approx(min(ref_scores))

    def test_neighbors_within_cluster(self, engine):
        users = np.arange(10, 40)
        partial = brute_force_local(engine, users, k=4)
        for pos in range(users.size):
            ids, _ = partial.neighborhood(pos)
            assert np.all(np.isin(ids, users))

    def test_charges_pair_count(self, small_dataset):
        engine = ExactEngine(small_dataset)
        users = np.arange(25)
        brute_force_local(engine, users, k=3)
        assert engine.comparisons == 25 * 24 // 2

    def test_tiny_cluster(self, engine):
        partial = brute_force_local(engine, np.array([3]), k=5)
        ids, _ = partial.neighborhood(0)
        assert ids.size == 0

    def test_pair_cluster(self, engine):
        partial = brute_force_local(engine, np.array([3, 4]), k=5)
        ids, _ = partial.neighborhood(0)
        assert list(ids) == [4]

    def test_blockwise_consistency(self, engine):
        """Cluster larger than the row block must give identical output."""
        import repro.core.local_knn as mod

        users = np.arange(80)
        normal = brute_force_local(engine, users, k=4)
        old = mod._ROW_BLOCK
        try:
            mod._ROW_BLOCK = 16
            blocked = brute_force_local(engine, users, k=4)
        finally:
            mod._ROW_BLOCK = old
        assert np.array_equal(normal.ids, blocked.ids)


class TestHyrecLocal:
    def test_high_quality_vs_bruteforce(self, small_dataset, engine):
        users = np.arange(small_dataset.n_users)
        exact = brute_force_local(engine, users, k=10)
        greedy = hyrec_local(engine, users, k=10, seed=1)
        # compare average edge score
        exact_avg = exact.scores[exact.ids != EMPTY].mean()
        greedy_avg = greedy.scores[greedy.ids != EMPTY].mean()
        assert greedy_avg >= 0.9 * exact_avg

    def test_neighbors_within_cluster(self, engine):
        users = np.arange(50, 120)
        partial = hyrec_local(engine, users, k=5, seed=0)
        for pos in range(users.size):
            ids, _ = partial.neighborhood(pos)
            assert np.all(np.isin(ids, users))

    def test_global_ids_returned(self, engine):
        users = np.arange(200, 260)
        partial = hyrec_local(engine, users, k=5, seed=0)
        ids = partial.ids[partial.ids != EMPTY]
        assert ids.min() >= 200


class TestSolveCluster:
    def test_small_cluster_uses_bruteforce_cost(self, small_dataset):
        """|C| < rho*k^2 -> brute force: exactly C(|C|,2) comparisons."""
        engine = ExactEngine(small_dataset)
        users = np.arange(40)
        solve_cluster(engine, users, k=3, rho=5)  # 40 < 5*9=45
        assert engine.comparisons == 40 * 39 // 2

    def test_large_cluster_uses_hyrec(self, small_dataset):
        """|C| >= rho*k^2 -> Hyrec: far fewer than C(|C|,2) comparisons
        ... but with random init of k per user at least n*k."""
        engine = ExactEngine(small_dataset)
        users = np.arange(small_dataset.n_users)  # 300 >= 5*4=20
        solve_cluster(engine, users, k=2, rho=5)
        assert engine.comparisons < 300 * 299 // 2

    def test_switch_threshold_exact(self, small_dataset):
        """At |C| exactly rho*k^2, Hyrec is chosen (paper: strict <)."""
        engine = ExactEngine(small_dataset)
        k, rho = 3, 5
        users = np.arange(rho * k * k)  # 45 users
        solve_cluster(engine, users, k=k, rho=rho)
        # Hyrec cost differs from the brute-force pair count
        assert engine.comparisons != 45 * 44 // 2
