"""Edge-case and failure-injection tests across the pipeline."""

import numpy as np
import pytest

from repro import C2Params, cluster_and_conquer
from repro.baselines import brute_force_knn, hyrec_knn, lsh_knn, nndescent_knn
from repro.data import Dataset
from repro.similarity import ExactEngine, GoldFingerEngine


@pytest.fixture()
def with_empty_profiles():
    """Three normal users plus two with empty profiles."""
    return Dataset.from_profiles(
        [[0, 1, 2], [], [1, 2, 3], [], [0, 3]],
        n_items=4,
    )


@pytest.fixture()
def single_user():
    return Dataset.from_profiles([[0, 1]], n_items=2)


class TestEmptyProfiles:
    def test_c2_handles_empty_profiles(self, with_empty_profiles):
        engine = ExactEngine(with_empty_profiles)
        result = cluster_and_conquer(
            engine, C2Params(k=2, n_buckets=4, n_hashes=2, split_threshold=None)
        )
        # Users with items get neighbours; empty users get zero-score
        # neighbours at most, and never crash the pipeline.
        assert result.graph.n_users == 5

    def test_brute_force_empty_profiles(self, with_empty_profiles):
        result = brute_force_knn(ExactEngine(with_empty_profiles), k=2)
        ids, scores = result.graph.neighborhood(0)
        # similarity to an empty profile is 0, so real users rank first
        assert scores[0] > 0

    def test_goldfinger_empty_profiles(self, with_empty_profiles):
        engine = GoldFingerEngine(with_empty_profiles, n_bits=64)
        assert engine.pair(1, 3) == 0.0  # empty vs empty
        assert engine.pair(0, 1) == 0.0  # non-empty vs empty


class TestDegenerateSizes:
    def test_single_user_c2(self, single_user):
        result = cluster_and_conquer(
            ExactEngine(single_user),
            C2Params(k=3, n_buckets=4, n_hashes=2, split_threshold=None),
        )
        assert result.graph.neighbors(0).size == 0

    def test_single_user_brute(self, single_user):
        result = brute_force_knn(ExactEngine(single_user), k=3)
        assert result.comparisons == 0

    def test_k_exceeds_population(self):
        ds = Dataset.from_profiles([[0, 1], [1, 2], [0, 2]], n_items=3)
        for builder in (
            lambda e: brute_force_knn(e, k=10),
            lambda e: hyrec_knn(e, k=10, max_iterations=2),
            lambda e: nndescent_knn(e, k=10, max_iterations=2),
            lambda e: lsh_knn(e, k=10, n_hashes=2),
        ):
            result = builder(ExactEngine(ds))
            for u in range(3):
                nbrs = result.graph.neighbors(u)
                assert nbrs.size <= 2
                assert u not in nbrs

    def test_two_users(self):
        ds = Dataset.from_profiles([[0, 1], [1, 2]], n_items=3)
        result = cluster_and_conquer(
            ExactEngine(ds), C2Params(k=1, n_buckets=2, n_hashes=4, split_threshold=None)
        )
        # They share item 1 so some configuration co-hashes them w.h.p.
        assert result.graph.neighbors(0).size <= 1

    def test_identical_dataset_all_ones(self):
        """All users identical: every similarity is 1, any k neighbours
        are exact."""
        ds = Dataset.from_profiles([[0, 1, 2]] * 6, n_items=3)
        result = brute_force_knn(ExactEngine(ds), k=3)
        for u in range(6):
            _, scores = result.graph.neighborhood(u)
            np.testing.assert_allclose(scores, 1.0)


class TestEngineMisuse:
    def test_pair_out_of_range_raises(self, tiny_dataset):
        engine = ExactEngine(tiny_dataset)
        with pytest.raises(IndexError):
            engine.pair(0, 99)

    def test_counts_unaffected_by_failures(self, tiny_dataset):
        engine = ExactEngine(tiny_dataset)
        with pytest.raises(IndexError):
            engine.pair(0, 99)
        # the failed call was still charged (count-then-compute), so
        # callers relying on deltas see a consistent upper bound
        assert engine.comparisons == 1
