"""Unit tests for repro.data.sampling (profile capping, [39])."""

import numpy as np
import pytest

from repro.data import Dataset, sample_profiles


@pytest.fixture()
def skewed():
    """Item 0 is in every profile (most popular); items 10+ are niche."""
    return Dataset.from_profiles(
        [
            [0, 1, 10, 11, 12],
            [0, 1, 13, 14, 15],
            [0, 2, 16, 17, 18],
            [0, 19],
        ],
        n_items=20,
    )


class TestSampleProfiles:
    def test_caps_sizes(self, skewed):
        capped = sample_profiles(skewed, max_size=3, policy="uniform", seed=0)
        assert int(capped.profile_sizes.max()) <= 3

    def test_small_profiles_untouched(self, skewed):
        capped = sample_profiles(skewed, max_size=3, policy="uniform", seed=0)
        assert list(capped.profile(3)) == [0, 19]

    def test_least_popular_drops_head_items(self, skewed):
        capped = sample_profiles(skewed, max_size=3, policy="least_popular", seed=0)
        for u in range(3):
            assert 0 not in capped.profile(u)  # the universal item goes first

    def test_most_popular_keeps_head_items(self, skewed):
        capped = sample_profiles(skewed, max_size=3, policy="most_popular", seed=0)
        for u in range(3):
            assert 0 in capped.profile(u)

    def test_subset_of_original(self, skewed):
        capped = sample_profiles(skewed, max_size=3, policy="uniform", seed=1)
        for u in range(skewed.n_users):
            assert set(capped.profile(u)) <= skewed.profile_set(u)

    def test_deterministic(self, skewed):
        a = sample_profiles(skewed, max_size=3, policy="uniform", seed=7)
        b = sample_profiles(skewed, max_size=3, policy="uniform", seed=7)
        assert np.array_equal(a.indices, b.indices)

    def test_validation(self, skewed):
        with pytest.raises(ValueError):
            sample_profiles(skewed, max_size=0)
        with pytest.raises(ValueError):
            sample_profiles(skewed, max_size=3, policy="banana")

    def test_least_popular_preserves_knn_better_than_most_popular(self, small_dataset):
        """The claim of [39]: niche items are the discriminating ones."""
        from repro.baselines import brute_force_knn
        from repro.graph import quality
        from repro.similarity import ExactEngine

        exact = brute_force_knn(ExactEngine(small_dataset), k=5).graph
        cap = int(np.median(small_dataset.profile_sizes) * 0.5)

        qualities = {}
        for policy in ("least_popular", "most_popular"):
            capped = sample_profiles(small_dataset, cap, policy=policy, seed=0)
            graph = brute_force_knn(ExactEngine(capped), k=5).graph
            # evaluate edges on the ORIGINAL profiles
            qualities[policy] = quality(graph, exact, small_dataset)
        assert qualities["least_popular"] > qualities["most_popular"]
