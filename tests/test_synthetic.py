"""Unit tests for repro.data.synthetic and repro.data.registry."""

import numpy as np
import pytest

from repro.data import PAPER_SPECS, SyntheticSpec, dataset_names, generate, load
from repro.data.stats import describe


def _spec(**overrides) -> SyntheticSpec:
    base = dict(
        name="t",
        n_users=120,
        n_items=400,
        mean_profile_size=30.0,
        n_communities=6,
        community_pool_size=60,
        min_profile_size=10,
    )
    base.update(overrides)
    return SyntheticSpec(**base)


class TestGenerate:
    def test_shape(self):
        ds = generate(_spec(), seed=1)
        assert ds.n_users == 120
        assert ds.n_items == 400

    def test_min_profile_size_respected(self):
        ds = generate(_spec(min_profile_size=12), seed=2)
        assert int(ds.profile_sizes.min()) >= 12

    def test_profiles_unique_sorted(self):
        ds = generate(_spec(), seed=3)
        for _, profile in ds.iter_profiles():
            assert np.all(np.diff(profile) > 0)

    def test_deterministic_in_seed(self):
        a = generate(_spec(), seed=9)
        b = generate(_spec(), seed=9)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.indptr, b.indptr)

    def test_different_seeds_differ(self):
        a = generate(_spec(), seed=1)
        b = generate(_spec(), seed=2)
        assert not np.array_equal(a.indices, b.indices)

    def test_mean_profile_size_roughly_matches(self):
        spec = _spec(n_users=400, mean_profile_size=40.0, min_profile_size=5)
        ds = generate(spec, seed=4)
        assert 25 <= ds.profile_sizes.mean() <= 60

    def test_popularity_skew_present(self):
        """Zipf popularity: the busiest item should dwarf the median."""
        ds = generate(_spec(n_users=400, popularity_exponent=1.2), seed=5)
        degrees = np.bincount(ds.indices, minlength=ds.n_items)
        used = degrees[degrees > 0]
        assert used.max() >= 5 * np.median(used)

    def test_community_structure_raises_similarity(self):
        """Users in the same community must overlap more than random
        pairs — otherwise KNN graphs over the data are meaningless."""
        from repro.similarity import jaccard_matrix

        ds = generate(
            _spec(n_users=100, community_affinity=0.9, popularity_exponent=0.5),
            seed=6,
        )
        sims = jaccard_matrix(ds)
        np.fill_diagonal(sims, 0.0)
        top_mean = np.sort(sims, axis=1)[:, -5:].mean()
        overall = sims.mean()
        assert top_mean > 2 * overall


class TestScaled:
    def test_scaled_shrinks_users_only(self):
        spec = PAPER_SPECS["ml10M"].scaled(0.05)
        assert spec.n_users == round(69_816 * 0.05)
        # The item universe stays full-size: per-item prevalence (which
        # drives FRH cluster sizes and the paper's b) must not scale.
        assert spec.n_items == PAPER_SPECS["ml10M"].n_items
        assert spec.n_communities < PAPER_SPECS["ml10M"].n_communities

    def test_scaled_identity(self):
        spec = PAPER_SPECS["ml1M"].scaled(1.0)
        assert spec.n_users == PAPER_SPECS["ml1M"].n_users

    def test_scaled_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            PAPER_SPECS["ml1M"].scaled(0.0)
        with pytest.raises(ValueError):
            PAPER_SPECS["ml1M"].scaled(1.5)


class TestRegistry:
    def test_names(self):
        assert dataset_names() == ["ml1M", "ml10M", "ml20M", "AM", "DBLP", "GW"]

    def test_load_deterministic(self):
        a = load("ml1M", scale=0.02, seed=1)
        b = load("ml1M", scale=0.02, seed=1)
        assert np.array_equal(a.indices, b.indices)

    def test_load_unknown_raises(self):
        with pytest.raises(KeyError):
            load("nope")

    def test_sparse_vs_dense_contrast(self):
        """AM stand-in must be much sparser than ml10M (paper §IV-A)."""
        dense = describe(load("ml10M", scale=0.02))
        sparse = describe(load("AM", scale=0.02))
        assert sparse.density < dense.density / 3

    def test_all_datasets_meet_min_ratings(self):
        for name in dataset_names():
            ds = load(name, scale=0.01)
            assert int(ds.profile_sizes.min()) >= 20, name
