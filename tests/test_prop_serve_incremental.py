"""Property tests for incremental serve-path maintenance (PR 3).

Randomized interleavings (fixed seeds, no hypothesis dependency) of
``OnlineIndex`` mutations with serving reads, checking the two relaxed
structures the write-storm work introduced against their strict
oracles:

* the **incrementally maintained reverse-adjacency index** (patched
  per edge from the mutation journal) must at every step be
  *identical* to a from-scratch rebuild — both at the structure level
  (:meth:`ReverseAdjacency.from_heaps` over the live heaps) and at the
  behaviour level (walks through ``reverse="incremental"`` equal walks
  through the retained ``reverse="rebuild"`` oracle path);
* the **partially invalidated cache** may keep entries across
  unrelated mutations, but must never hold — and therefore never
  serve — a result set touching a mutated user.

The CI property matrix shifts the seed base via ``REPRO_PROP_SEED`` so
tier-1 stays at two seeds per run but interleavings vary across jobs.
"""

import os

import numpy as np
import pytest

from repro import C2Params
from repro.data import SyntheticSpec, generate
from repro.graph.reverse import ReverseAdjacency
from repro.online import OnlineIndex
from repro.serve import GraphSearcher, QueryEngine

K = 6
N_OPS = 50

_SEED_BASE = int(os.environ.get("REPRO_PROP_SEED", "0"))
SEEDS = [_SEED_BASE, _SEED_BASE + 1]


def _index(seed, backend="goldfinger"):
    spec = SyntheticSpec(
        name="propinc", n_users=140, n_items=280, mean_profile_size=22.0,
        n_communities=8, community_pool_size=60, min_profile_size=8,
    )
    dataset = generate(spec, seed=seed)
    params = C2Params(k=K, n_buckets=64, n_hashes=4, split_threshold=60, seed=1)
    return OnlineIndex.build(dataset, params=params, backend=backend)


def _mutate(index, rng):
    """One random mutation; returns the touched user id (or -1)."""
    active = index.dataset.active_users()
    op = rng.random()
    if op < 0.4 and active.size:
        user = int(rng.choice(active))
        index.add_items(user, rng.integers(0, index.dataset.n_items, size=2))
        return user
    if op < 0.65:
        return index.add_user(rng.integers(0, index.dataset.n_items, size=12))
    if op < 0.85 and active.size > 40:
        user = int(rng.choice(active))
        index.remove_user(user)
        return user
    if active.size:  # trigger a lazy refill (also a mutation event)
        degraded = list(index.degraded)
        if degraded:
            user = int(rng.choice(degraded))
            index.refill(user)
            return user
    return -1


def _random_profile(index, rng):
    if rng.random() < 0.5 and index.dataset.active_users().size:
        base = index.dataset.profile(int(rng.choice(index.dataset.active_users())))
        keep = rng.random(base.size) > 0.4
        return base[keep] if keep.any() else base
    return rng.integers(0, index.dataset.n_items, size=int(rng.integers(3, 20)))


@pytest.mark.parametrize("seed", SEEDS)
def test_incremental_reverse_matches_rebuild_oracle(seed):
    index = _index(seed)
    incremental = GraphSearcher(index)  # reverse="incremental" default
    oracle = GraphSearcher(index, reverse="rebuild")
    index.reverse_index()  # prime: maintained through every mutation below
    rng = np.random.default_rng(seed + 200)
    for _ in range(N_OPS):
        if rng.random() < 0.6:
            _mutate(index, rng)
        # Structure: the maintained in-edge sets equal a from-scratch
        # group-by over the live heap table.
        assert (
            index.reverse_index().to_sets()
            == ReverseAdjacency.from_heaps(index.graph.heaps).to_sets()
        )
        # Behaviour: walks through either reverse source are identical.
        profile = _random_profile(index, rng)
        a = incremental.top_k(profile, k=K)
        b = oracle.top_k(profile, k=K)
        assert np.array_equal(a.ids, b.ids)
        assert a.scores == pytest.approx(b.scores)
        assert a.evaluations == b.evaluations and a.hops == b.hops


@pytest.mark.parametrize("seed", SEEDS)
def test_targeted_purge_matches_full_scan(seed):
    """remove_user/update via the reverse index == the O(n·k) scans."""
    with_reverse = _index(seed)
    without_reverse = _index(seed)
    with_reverse.reverse_index()  # only this one takes the targeted path
    rng_a = np.random.default_rng(seed + 300)
    rng_b = np.random.default_rng(seed + 300)
    for _ in range(N_OPS):
        _mutate(with_reverse, rng_a)
        _mutate(without_reverse, rng_b)
        assert np.array_equal(
            with_reverse.graph.heaps.ids, without_reverse.graph.heaps.ids
        )
        assert np.array_equal(
            with_reverse.graph.heaps.scores, without_reverse.graph.heaps.scores
        )
        assert with_reverse.degraded == without_reverse.degraded


@pytest.mark.parametrize("seed", SEEDS)
def test_partial_cache_never_holds_mutated_users(seed):
    index = _index(seed)
    queries = QueryEngine(index, k=K)  # partial invalidation default
    rng = np.random.default_rng(seed + 400)
    pool = [_random_profile(index, rng) for _ in range(8)]
    try:
        for _ in range(N_OPS):
            served = queries.search(pool[int(rng.integers(0, len(pool)))], k=K)
            active = index.dataset.active_mask()
            assert all(active[v] for v in served.ids)
            user = _mutate(index, rng)
            if user >= 0:
                # The eviction invariant, checked directly: no entry
                # surviving the mutation contains the mutated user.
                for _, result in queries._cache._entries.values():
                    assert user not in result.ids
        stats = queries.stats()
        assert stats["cache_hits_total"] > 0  # the cache still earns its keep
        assert stats["evictions_total"] > 0  # and mutations really evict
    finally:
        queries.close()


@pytest.mark.parametrize("seed", SEEDS)
def test_partial_cache_postings_stay_consistent(seed):
    """Postings map == inverted index of the cached entries, always."""
    index = _index(seed)
    queries = QueryEngine(index, k=K, cache_size=12)  # force LRU churn
    rng = np.random.default_rng(seed + 500)
    try:
        for _ in range(N_OPS):
            if rng.random() < 0.4:
                _mutate(index, rng)
            queries.search(_random_profile(index, rng), k=K)
            cache = queries._cache
            expected: dict[int, set] = {}
            for key, (_, result) in cache._entries.items():
                for v in result.ids:
                    expected.setdefault(int(v), set()).add(key)
            assert cache._postings == expected
    finally:
        queries.close()
