"""Unit tests for the scenario suite (repro.bench.scenarios).

Each scenario is a seeded generator of fully resolved ops sampled
against the live id set. The tests drive tapes through a strict
:class:`SimWorld` (which raises on any op touching a dead id — so
merely completing a tape is the live-id soundness check the ISSUE-6
blind-spot fix demands) and assert determinism, op-mix ratios,
Zipfian skew and flash-crowd burst shape.
"""

import numpy as np
import pytest

from repro.bench import SCENARIOS, Op, SimWorld, make_scenario
from repro.bench.scenarios import (
    CorrelatedDeletes,
    FlashCrowd,
    SustainedChurn,
    UniformMixed,
    ZipfianQueries,
)


def _run(scenario, world):
    """Apply a tape against ``world``; returns the ops in order."""
    ops = []
    for op in scenario.ops(world):
        world.apply(op)
        ops.append(op)
    return ops


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_same_seed_same_tape(self, name):
        tapes = []
        for _ in range(2):
            world = SimWorld.random(150, n_items=300, seed=7)
            ops = _run(make_scenario(name, 400, seed=3), world)
            tapes.append([op.signature() for op in ops])
        assert tapes[0] == tapes[1]
        assert len(tapes[0]) == 400

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_different_seed_different_tape(self, name):
        w1 = SimWorld.random(150, n_items=300, seed=7)
        w2 = SimWorld.random(150, n_items=300, seed=7)
        t1 = [op.signature() for op in _run(make_scenario(name, 300, seed=3), w1)]
        t2 = [op.signature() for op in _run(make_scenario(name, 300, seed=4), w2)]
        assert t1 != t2


class TestLiveIdSoundness:
    """The blind-spot regression: every target comes from the live set.

    SimWorld raises on dead targets, so completing a removal-heavy
    tape is itself the assertion; the explicit bookkeeping below also
    pins the invariant down independently of SimWorld's checks.
    """

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_no_op_targets_a_dead_id(self, name):
        world = SimWorld.random(80, n_items=200, seed=1)
        removed: set[int] = set()
        scenario = make_scenario(name, 600, seed=5)
        for op in scenario.ops(world):
            if op.kind in ("add_items", "remove_user"):
                assert op.user not in removed
            if op.kind == "remove_user":
                removed.add(op.user)
            world.apply(op)

    def test_heavy_removal_tape_completes(self):
        # Over half the initial population churns out; a tape sampling
        # from the initial id range would hit a dead id with certainty.
        world = SimWorld.random(60, n_items=200, seed=2)
        scenario = UniformMixed(
            n_ops=800, seed=9, read_fraction=0.3,
            add_items_weight=0.2, add_user_weight=0.3, remove_user_weight=0.5,
        )
        ops = _run(scenario, world)
        assert sum(op.kind == "remove_user" for op in ops) > 60


class TestOpMix:
    def test_read_fraction_within_tolerance(self):
        world = SimWorld.random(300, n_items=400, seed=0)
        ops = _run(UniformMixed(n_ops=4000, seed=1), world)
        reads = sum(op.kind == "query" for op in ops) / len(ops)
        assert reads == pytest.approx(0.9, abs=0.02)

    def test_write_split_within_tolerance(self):
        world = SimWorld.random(600, n_items=400, seed=0)
        ops = _run(UniformMixed(n_ops=6000, seed=2), world)
        writes = [op.kind for op in ops if op.kind != "query"]
        n = len(writes)
        assert writes.count("add_items") / n == pytest.approx(0.60, abs=0.06)
        assert writes.count("add_user") / n == pytest.approx(0.25, abs=0.06)
        assert writes.count("remove_user") / n == pytest.approx(0.15, abs=0.06)

    def test_churn_is_write_heavy(self):
        world = SimWorld.random(300, n_items=400, seed=0)
        ops = _run(SustainedChurn(n_ops=2000, seed=3), world)
        writes = sum(op.kind != "query" for op in ops) / len(ops)
        assert writes == pytest.approx(0.5, abs=0.04)


class TestZipfianSkew:
    def test_rank_probabilities_follow_exponent(self):
        s = ZipfianQueries(exponent=1.3, pool_size=32)
        p = s.rank_probabilities()
        # p(r) / p(2r) == 2^exponent exactly, by construction
        assert p[0] / p[1] == pytest.approx(2.0 ** 1.3)
        assert p.sum() == pytest.approx(1.0)

    def test_empirical_skew_matches_exponent(self):
        exponent = 1.2
        world = SimWorld.random(200, n_items=300, seed=4)
        scenario = ZipfianQueries(
            n_ops=8000, seed=6, read_fraction=1.0,
            exponent=exponent, pool_size=32,
        )
        counts: dict[tuple, int] = {}
        for op in _run(scenario, world):
            assert op.kind == "query"
            key = op.signature()
            counts[key] = counts.get(key, 0) + 1
        freqs = np.sort(np.array(list(counts.values()), dtype=np.float64))[::-1]
        # Fit log f(r) ~ -s log r over the well-sampled head ranks.
        head = freqs[:8]
        ranks = np.arange(1, head.size + 1, dtype=np.float64)
        slope = np.polyfit(np.log(ranks), np.log(head), 1)[0]
        assert -slope == pytest.approx(exponent, abs=0.3)


class TestFlashCrowd:
    def test_burst_positions_and_sizing(self):
        world = SimWorld.random(150, n_items=300, seed=8)
        scenario = FlashCrowd(n_ops=300, seed=2, burst_every=50, burst_size=10)
        ops = _run(scenario, world)
        for start in range(0, 300, 50):
            burst = ops[start : start + 10]
            assert all(op.kind == "add_user" for op in burst)
        # Between bursts the signup rate falls back to the mixed mix.
        gap_kinds = [op.kind for op in ops[10:50]]
        assert gap_kinds.count("add_user") < 10

    def test_burst_profiles_are_correlated(self):
        world = SimWorld.random(150, n_items=300, seed=8)
        scenario = FlashCrowd(
            n_ops=60, seed=2, burst_every=60, burst_size=12, clone_fraction=0.7
        )
        ops = [op for op in _run(scenario, world) if op.kind == "add_user"][:12]
        # All 12 clone the same seed user, so pairwise overlap is high.
        first = set(int(i) for i in ops[0].items)
        overlaps = [
            len(first & set(int(i) for i in op.items)) / len(first)
            for op in ops[1:]
        ]
        assert np.mean(overlaps) > 0.3


class TestCorrelatedDeletes:
    def test_cohorts_are_purged(self):
        world = SimWorld.random(100, n_items=300, seed=3)
        scenario = CorrelatedDeletes(
            n_ops=800, seed=1, cohort_size=8, purge_after=2
        )
        ops = _run(scenario, world)
        signups = [op for op in ops if op.kind == "add_user"]
        removed = [op.user for op in ops if op.kind == "remove_user"]
        assert len(signups) >= 16  # at least two full cohorts formed
        # Purges target the scenario's own cohort members — ids past
        # the initial population — not just background churn.
        assert sum(uid >= 100 for uid in removed) >= 8

    def test_purge_bursts_are_contiguous(self):
        world = SimWorld.random(100, n_items=300, seed=3)
        scenario = CorrelatedDeletes(
            n_ops=800, seed=1, cohort_size=8, purge_after=2
        )
        ops = _run(scenario, world)
        kinds = [op.kind for op in ops]
        # Find a run of >= 4 consecutive removals — a cohort purge.
        best = run = 0
        for kind in kinds:
            run = run + 1 if kind == "remove_user" else 0
            best = max(best, run)
        assert best >= 4


class TestSimWorldStrictness:
    def test_dead_target_raises(self):
        world = SimWorld.random(5, n_items=50, seed=0)
        world.apply(Op("remove_user", user=2))
        with pytest.raises(ValueError):
            world.apply(Op("add_items", user=2, items=np.array([1])))
        with pytest.raises(ValueError):
            world.apply(Op("remove_user", user=2))

    def test_signup_records_last_uid(self):
        world = SimWorld.random(5, n_items=50, seed=0)
        world.apply(Op("add_user", items=np.array([1, 2, 3])))
        assert world.last_uid == 5
        assert 5 in world.live_users()
