"""Unit tests for repro.core.scheduler."""

import threading

import numpy as np
import pytest

from repro.core import Cluster, makespan_lower_bound, run_clusters


def _mk_clusters(sizes):
    return [
        Cluster(users=np.arange(s), config=0, eta=i + 1) for i, s in enumerate(sizes)
    ]


class TestRunClusters:
    def test_results_in_input_order(self):
        clusters = _mk_clusters([5, 50, 20])
        out = run_clusters(clusters, lambda c: c.size, n_workers=1)
        assert out == [5, 50, 20]

    def test_largest_first_execution_order(self):
        clusters = _mk_clusters([5, 50, 20])
        seen = []
        run_clusters(clusters, lambda c: seen.append(c.size), n_workers=1)
        assert seen == [50, 20, 5]

    def test_fifo_execution_order(self):
        clusters = _mk_clusters([5, 50, 20])
        seen = []
        run_clusters(clusters, lambda c: seen.append(c.size), n_workers=1, order="fifo")
        assert seen == [5, 50, 20]

    def test_parallel_results_match_serial(self):
        clusters = _mk_clusters([3, 9, 1, 7, 5])
        serial = run_clusters(clusters, lambda c: c.size * 2, n_workers=1)
        parallel = run_clusters(clusters, lambda c: c.size * 2, n_workers=4)
        assert serial == parallel

    def test_parallel_actually_concurrent(self):
        """With enough workers, two solvers must overlap in time."""
        barrier = threading.Barrier(2, timeout=5)

        def solve(_):
            barrier.wait()  # deadlocks unless 2 run concurrently
            return True

        out = run_clusters(_mk_clusters([2, 2]), solve, n_workers=2)
        assert out == [True, True]

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError):
            run_clusters([], lambda c: c, order="random")

    def test_empty(self):
        assert run_clusters([], lambda c: c) == []

    def test_exception_propagates(self):
        def boom(_):
            raise RuntimeError("solver failed")

        with pytest.raises(RuntimeError, match="solver failed"):
            run_clusters(_mk_clusters([1]), boom, n_workers=2)


class TestMakespan:
    def test_single_worker_is_total_work(self):
        assert makespan_lower_bound([2, 3], 1) == pytest.approx(4 + 9)

    def test_many_workers_bounded_by_biggest(self):
        assert makespan_lower_bound([10, 1, 1], 100) == pytest.approx(100.0)

    def test_empty(self):
        assert makespan_lower_bound([], 4) == 0.0

    def test_balanced_clusters_lower_makespan(self):
        """The motivation for recursive splitting: same total users,
        balanced sizes -> much lower parallel makespan."""
        unbalanced = makespan_lower_bound([75, 10, 15], 8)
        balanced = makespan_lower_bound([18, 34, 23, 10, 15], 8)  # Fig. 3
        assert balanced < unbalanced
