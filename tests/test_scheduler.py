"""Unit tests for repro.core.scheduler."""

import threading

import numpy as np
import pytest

from repro.core import Cluster, makespan_lower_bound, run_clusters, solve_cluster
from repro.core.clustering import cluster_dataset
from repro.core.hashing import make_hash_family
from repro.similarity import ExactEngine


def _mk_clusters(sizes):
    return [
        Cluster(users=np.arange(s), config=0, eta=i + 1) for i, s in enumerate(sizes)
    ]


class TestRunClusters:
    def test_results_in_input_order(self):
        clusters = _mk_clusters([5, 50, 20])
        out = run_clusters(clusters, lambda c: c.size, n_workers=1)
        assert out == [5, 50, 20]

    def test_largest_first_execution_order(self):
        clusters = _mk_clusters([5, 50, 20])
        seen = []
        run_clusters(clusters, lambda c: seen.append(c.size), n_workers=1)
        assert seen == [50, 20, 5]

    def test_fifo_execution_order(self):
        clusters = _mk_clusters([5, 50, 20])
        seen = []
        run_clusters(clusters, lambda c: seen.append(c.size), n_workers=1, order="fifo")
        assert seen == [5, 50, 20]

    def test_parallel_results_match_serial(self):
        clusters = _mk_clusters([3, 9, 1, 7, 5])
        serial = run_clusters(clusters, lambda c: c.size * 2, n_workers=1)
        parallel = run_clusters(clusters, lambda c: c.size * 2, n_workers=4)
        assert serial == parallel

    def test_parallel_actually_concurrent(self):
        """With enough workers, two solvers must overlap in time."""
        barrier = threading.Barrier(2, timeout=5)

        def solve(_):
            barrier.wait()  # deadlocks unless 2 run concurrently
            return True

        out = run_clusters(_mk_clusters([2, 2]), solve, n_workers=2)
        assert out == [True, True]

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError):
            run_clusters([], lambda c: c, order="random")

    def test_empty(self):
        assert run_clusters([], lambda c: c) == []

    def test_exception_propagates(self):
        def boom(_):
            raise RuntimeError("solver failed")

        with pytest.raises(RuntimeError, match="solver failed"):
            run_clusters(_mk_clusters([1]), boom, n_workers=2)


class TestConcurrentSolvers:
    """run_clusters with a real engine-backed solver under contention:
    ordering guarantees and comparison accounting must survive threads."""

    @pytest.fixture(scope="class")
    def clustering(self, small_dataset):
        hashes = make_hash_family(small_dataset.n_items, 32, 4, seed=5)
        return cluster_dataset(small_dataset, hashes, split_threshold=60)

    def _solve_all(self, dataset, clustering, n_workers):
        engine = ExactEngine(dataset)
        partials = run_clusters(
            clustering.clusters,
            lambda c: solve_cluster(engine, c.users, k=5, seed=7),
            n_workers=n_workers,
        )
        return engine.comparisons, partials

    def test_results_in_input_order_under_contention(self, small_dataset, clustering):
        serial_count, serial = self._solve_all(small_dataset, clustering, 1)
        parallel_count, parallel = self._solve_all(small_dataset, clustering, 4)
        # results must line up with the input clusters, not finish order
        for cluster, partial in zip(clustering.clusters, parallel):
            assert np.array_equal(partial.users, cluster.users)
        # and be identical to the serial run, heap for heap
        for a, b in zip(serial, parallel):
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.scores, b.scores)

    def test_comparison_counts_identical_to_serial(self, small_dataset, clustering):
        """The engine's lock-protected counter must not lose increments
        under parallel charging (the paper's cost metric is exact)."""
        serial_count, _ = self._solve_all(small_dataset, clustering, 1)
        for n_workers in (2, 4):
            parallel_count, _ = self._solve_all(small_dataset, clustering, n_workers)
            assert parallel_count == serial_count

    def test_largest_first_start_order_under_parallelism(self):
        """The first n_workers clusters to *start* must be the largest
        ones: the pool drains the submission queue in sorted order."""
        sizes = [3, 40, 8, 25, 1, 16]
        clusters = [
            Cluster(users=np.arange(s), config=0, eta=i + 1)
            for i, s in enumerate(sizes)
        ]
        started: list[int] = []
        lock = threading.Lock()
        gate = threading.Barrier(2, timeout=5)

        def solve(cluster):
            with lock:
                started.append(cluster.size)
            gate.wait()  # hold both workers until each recorded a start
            return cluster.size

        out = run_clusters(clusters, solve, n_workers=2)
        assert out == sizes  # input order preserved
        assert set(started[:2]) == {40, 25}  # two largest started first


class TestMakespan:
    def test_single_worker_is_total_work(self):
        assert makespan_lower_bound([2, 3], 1) == pytest.approx(4 + 9)

    def test_many_workers_bounded_by_biggest(self):
        assert makespan_lower_bound([10, 1, 1], 100) == pytest.approx(100.0)

    def test_empty(self):
        assert makespan_lower_bound([], 4) == 0.0

    def test_balanced_clusters_lower_makespan(self):
        """The motivation for recursive splitting: same total users,
        balanced sizes -> much lower parallel makespan."""
        unbalanced = makespan_lower_bound([75, 10, 15], 8)
        balanced = makespan_lower_bound([18, 34, 23, 10, 15], 8)  # Fig. 3
        assert balanced < unbalanced
