"""Unit tests for repro.similarity.jaccard and cosine."""

import numpy as np
import pytest

from repro.similarity import (
    cosine_matrix,
    cosine_one_to_many,
    cosine_pair,
    intersection_size,
    jaccard_matrix,
    jaccard_one_to_many,
    jaccard_pair,
)
from repro.similarity.jaccard import jaccard_block


def arr(*xs):
    return np.array(xs, dtype=np.int64)


class TestPairwise:
    def test_jaccard_known_value(self):
        assert jaccard_pair(arr(0, 1, 2, 3), arr(0, 1, 2, 4)) == pytest.approx(3 / 5)

    def test_jaccard_identical(self):
        assert jaccard_pair(arr(1, 2), arr(1, 2)) == 1.0

    def test_jaccard_disjoint(self):
        assert jaccard_pair(arr(0, 1), arr(2, 3)) == 0.0

    def test_jaccard_empty(self):
        assert jaccard_pair(arr(), arr()) == 0.0

    def test_intersection_size(self):
        assert intersection_size(arr(1, 3, 5), arr(3, 5, 7)) == 2

    def test_cosine_known_value(self):
        # |inter|=2, sizes 4 and 1 -> 2/sqrt(4) with b size 1: pick clean case
        assert cosine_pair(arr(0, 1), arr(0, 1)) == pytest.approx(1.0)
        assert cosine_pair(arr(0, 1, 2, 3), arr(0, 1)) == pytest.approx(2 / np.sqrt(8))

    def test_cosine_empty(self):
        assert cosine_pair(arr(), arr(1)) == 0.0


class TestOneToMany:
    def test_matches_pairwise(self, tiny_dataset):
        others = np.array([1, 2, 3, 4, 5])
        got = jaccard_one_to_many(tiny_dataset, 0, others)
        want = [
            jaccard_pair(tiny_dataset.profile(0), tiny_dataset.profile(int(v)))
            for v in others
        ]
        np.testing.assert_allclose(got, want)

    def test_empty_others(self, tiny_dataset):
        assert jaccard_one_to_many(tiny_dataset, 0, np.array([])).size == 0

    def test_cosine_matches_pairwise(self, tiny_dataset):
        others = np.array([1, 3, 4])
        got = cosine_one_to_many(tiny_dataset, 0, others)
        want = [
            cosine_pair(tiny_dataset.profile(0), tiny_dataset.profile(int(v)))
            for v in others
        ]
        np.testing.assert_allclose(got, want)


class TestMatrixAndBlock:
    def test_matrix_symmetric_unit_diagonal(self, tiny_dataset):
        m = jaccard_matrix(tiny_dataset)
        np.testing.assert_allclose(m, m.T)
        np.testing.assert_allclose(np.diag(m), 1.0)

    def test_matrix_matches_pairwise(self, tiny_dataset):
        m = jaccard_matrix(tiny_dataset)
        assert m[0, 1] == pytest.approx(3 / 5)
        assert m[0, 2] == pytest.approx(1.0)
        assert m[0, 3] == pytest.approx(0.0)

    def test_matrix_subset(self, tiny_dataset):
        m = jaccard_matrix(tiny_dataset, users=np.array([0, 3]))
        assert m.shape == (2, 2)
        assert m[0, 1] == pytest.approx(0.0)

    def test_block_matches_matrix(self, tiny_dataset):
        full = jaccard_matrix(tiny_dataset)
        blk = jaccard_block(tiny_dataset, np.array([0, 2]), np.array([1, 3, 4]))
        np.testing.assert_allclose(blk, full[np.ix_([0, 2], [1, 3, 4])])

    def test_cosine_matrix_diagonal(self, tiny_dataset):
        m = cosine_matrix(tiny_dataset)
        np.testing.assert_allclose(np.diag(m), 1.0)

    def test_jaccard_le_cosine(self, small_dataset):
        """For binary sets J <= cosine everywhere (AM-GM inequality)."""
        j = jaccard_matrix(small_dataset, users=np.arange(50))
        c = cosine_matrix(small_dataset, users=np.arange(50))
        assert np.all(j <= c + 1e-12)
