"""Regression pins for C² graph quality on the synthetic workload.

Timing-only tests cannot catch a change that silently degrades the
graphs C² produces (a broken hash family, a lossy merge, a mis-seeded
solver all still *run* fast). These tests pin recall and quality
against stored floors measured on the seed implementation; the
pipeline is deterministic given the seed, so the floors sit a few
points under the measured values (seed=1: GoldFinger recall 0.468,
quality 0.896; exact recall 0.504, quality 0.922) and only genuine
quality regressions can cross them.
"""

import pytest

from repro import C2Params, cluster_and_conquer, make_engine
from repro.baselines import brute_force_knn
from repro.graph import edge_recall, quality
from repro.similarity import ExactEngine

K = 10

# Stored floors: measured value minus a safety margin for numeric
# drift across platforms. A failure here means C² got *worse*.
FLOORS = {
    "goldfinger": {"recall": 0.44, "quality": 0.87},
    "exact": {"recall": 0.47, "quality": 0.90},
}


@pytest.fixture(scope="module")
def exact_graph(medium_dataset):
    return brute_force_knn(ExactEngine(medium_dataset), k=K).graph


def _params():
    return C2Params(k=K, n_buckets=32, n_hashes=6, split_threshold=100, seed=1)


@pytest.mark.parametrize("backend", ["goldfinger", "exact"])
def test_c2_recall_and_quality_floor(medium_dataset, exact_graph, backend):
    engine = (
        make_engine(medium_dataset, n_bits=1024)
        if backend == "goldfinger"
        else ExactEngine(medium_dataset)
    )
    result = cluster_and_conquer(engine, _params())
    floors = FLOORS[backend]

    recall = edge_recall(result.graph, exact_graph)
    q = quality(result.graph, exact_graph, medium_dataset)
    assert recall >= floors["recall"], (
        f"C2/{backend} recall regressed: {recall:.3f} < {floors['recall']}"
    )
    assert q >= floors["quality"], (
        f"C2/{backend} quality regressed: {q:.3f} < {floors['quality']}"
    )


def test_c2_beats_brute_force_cost(medium_dataset):
    """The quality floor is meaningless if C² stops being cheap: keep
    the comparison budget pinned too (well under half of brute force)."""
    n = medium_dataset.n_users
    result = cluster_and_conquer(make_engine(medium_dataset, n_bits=1024), _params())
    assert result.comparisons < 0.5 * (n * (n - 1) // 2)


# Serving-path floors (seed=5, 30 held-out queries on medium_dataset,
# measured: plain GoldFinger walk 0.697, with exact frontier
# re-ranking 0.937 — the rerank recovers the recall estimate noise
# costs; at this small scale the noise is far worse than the ~5 points
# seen at 5k users, see benchmarks/bench_serving.py --mixed).
SERVING_RERANK_FLOOR = 0.90
SERVING_RERANK_MIN_GAIN = 0.03


def test_goldfinger_serving_rerank_recovers_recall(medium_dataset):
    """rerank="exact" must keep closing the GoldFinger estimate gap."""
    import numpy as np

    from repro.online import MutableDataset, OnlineIndex
    from repro.serve import GraphSearcher, brute_force_top_k

    params = C2Params(k=K, n_buckets=64, n_hashes=6, split_threshold=100, seed=1)
    index = OnlineIndex.build(medium_dataset, params=params, backend="goldfinger")
    truth_engine = ExactEngine(MutableDataset.from_dataset(medium_dataset))
    plain = GraphSearcher(index, ef=32)
    rerank = GraphSearcher(index, ef=32, rerank="exact")
    rng = np.random.default_rng(5)
    rec_plain, rec_rerank = [], []
    for _ in range(30):
        base = medium_dataset.profile(int(rng.integers(0, medium_dataset.n_users)))
        profile = base[rng.random(base.size) > 0.3]
        truth = brute_force_top_k(truth_engine, profile, k=10)
        rec_plain.append(np.isin(truth.ids, plain.top_k(profile, k=10).ids).mean())
        rec_rerank.append(np.isin(truth.ids, rerank.top_k(profile, k=10).ids).mean())
    mean_plain, mean_rerank = float(np.mean(rec_plain)), float(np.mean(rec_rerank))
    assert mean_rerank >= SERVING_RERANK_FLOOR, (
        f"rerank recall regressed: {mean_rerank:.3f} < {SERVING_RERANK_FLOOR}"
    )
    assert mean_rerank >= mean_plain + SERVING_RERANK_MIN_GAIN, (
        f"rerank no longer recovers the estimate gap "
        f"({mean_rerank:.3f} vs plain {mean_plain:.3f})"
    )
