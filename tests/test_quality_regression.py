"""Regression pins for C² graph quality on the synthetic workload.

Timing-only tests cannot catch a change that silently degrades the
graphs C² produces (a broken hash family, a lossy merge, a mis-seeded
solver all still *run* fast). These tests pin recall and quality
against stored floors measured on the seed implementation; the
pipeline is deterministic given the seed, so the floors sit a few
points under the measured values (seed=1: GoldFinger recall 0.468,
quality 0.896; exact recall 0.504, quality 0.922) and only genuine
quality regressions can cross them.
"""

import pytest

from repro import C2Params, cluster_and_conquer, make_engine
from repro.baselines import brute_force_knn
from repro.graph import edge_recall, quality
from repro.similarity import ExactEngine

K = 10

# Stored floors: measured value minus a safety margin for numeric
# drift across platforms. A failure here means C² got *worse*.
FLOORS = {
    "goldfinger": {"recall": 0.44, "quality": 0.87},
    "exact": {"recall": 0.47, "quality": 0.90},
}


@pytest.fixture(scope="module")
def exact_graph(medium_dataset):
    return brute_force_knn(ExactEngine(medium_dataset), k=K).graph


def _params():
    return C2Params(k=K, n_buckets=32, n_hashes=6, split_threshold=100, seed=1)


@pytest.mark.parametrize("backend", ["goldfinger", "exact"])
def test_c2_recall_and_quality_floor(medium_dataset, exact_graph, backend):
    engine = (
        make_engine(medium_dataset, n_bits=1024)
        if backend == "goldfinger"
        else ExactEngine(medium_dataset)
    )
    result = cluster_and_conquer(engine, _params())
    floors = FLOORS[backend]

    recall = edge_recall(result.graph, exact_graph)
    q = quality(result.graph, exact_graph, medium_dataset)
    assert recall >= floors["recall"], (
        f"C2/{backend} recall regressed: {recall:.3f} < {floors['recall']}"
    )
    assert q >= floors["quality"], (
        f"C2/{backend} quality regressed: {q:.3f} < {floors['quality']}"
    )


def test_c2_beats_brute_force_cost(medium_dataset):
    """The quality floor is meaningless if C² stops being cheap: keep
    the comparison budget pinned too (well under half of brute force)."""
    n = medium_dataset.n_users
    result = cluster_and_conquer(make_engine(medium_dataset, n_bits=1024), _params())
    assert result.comparisons < 0.5 * (n * (n - 1) // 2)
