"""Differential property suite: batched delta replay == per-edge oracle.

``NeighborHeaps.apply_edge_deltas`` groups shipped ``(u, v, added,
score)`` deltas per user row and rebuilds each touched row once;
``ReverseAdjacency.apply_batch``/``apply_scored_batch`` collapse a
tape's per-``(u, v)`` history to its final flag. Both promise the
same final state as a strictly per-edge, in-order replay — this suite
pins that against per-edge oracles (the original loop for the heap
table, :meth:`ReverseAdjacency.apply` for the in-edge sets) on random
valid tapes including drop-and-re-add of the same edge, score-only
re-adds, and removals of absent edges, and then checks the production
consumers of the batched path end to end: ``DurableIndex.recover()``
(WAL replay) and ``ReplicaSet`` (delta shipping) reproduce the
primary's serving state exactly.

The CI property matrix shifts the seed base via ``REPRO_PROP_SEED`` so
tier-1 stays at two seeds per run but tapes vary across jobs.
"""

import os
import pickle

import numpy as np
import pytest

from repro import C2Params
from repro.data import SyntheticSpec, generate
from repro.graph.heap import EMPTY, NeighborHeaps
from repro.graph.reverse import ReverseAdjacency
from repro.online import OnlineIndex
from repro.persist import DurableIndex
from repro.serve import GraphSearcher, ReplicaSet
from repro.serve.replica import edge_digest

K = 6
N_OPS = 40

_SEED_BASE = int(os.environ.get("REPRO_PROP_SEED", "0"))
SEEDS = [_SEED_BASE, _SEED_BASE + 1]


def _per_edge_oracle(heaps: NeighborHeaps, edges) -> None:
    """The original strictly per-edge replay loop (the oracle)."""
    for u, v, added, score in edges:
        row = heaps.ids[u].tolist()
        if added:
            try:
                heaps.scores[u, row.index(v)] = score
                continue
            except ValueError:
                pass
            free = row.index(EMPTY)  # tape validity guaranteed by maker
            heaps.ids[u, free] = v
            heaps.scores[u, free] = score
            if heaps.journal is not None:
                heaps.journal.append((int(u), int(v), True))
        else:
            try:
                slot = row.index(v)
            except ValueError:
                continue
            heaps.ids[u, slot] = EMPTY
            heaps.scores[u, slot] = -np.inf
            if heaps.journal is not None:
                heaps.journal.append((int(u), int(v), False))


def _random_tape(rng, n, k, n_edges, model=None):
    """A random *valid* scored tape: adds only when a slot is free.

    ``model`` maps each row to its current neighbour set; the tape may
    add present edges (score-only re-add), remove absent ones (no-op)
    and flip the same edge repeatedly — all the shapes the journal can
    legally ship.
    """
    model = model if model is not None else [set() for _ in range(n)]
    tape = []
    for _ in range(n_edges):
        u = int(rng.integers(0, n))
        row = model[u]
        if rng.random() < 0.55:  # try an add
            v = int(rng.integers(0, n))
            if v == u:
                continue
            if v in row:  # score-only re-add
                tape.append((u, v, True, float(rng.random())))
            elif len(row) < k:
                row.add(v)
                tape.append((u, v, True, float(rng.random())))
            elif row:  # full row: journal an eviction first
                evicted = int(rng.choice(sorted(row)))
                row.discard(evicted)
                tape.append((u, evicted, False, 0.0))
                row.add(v)
                tape.append((u, v, True, float(rng.random())))
        else:
            if row and rng.random() < 0.7:
                v = int(rng.choice(sorted(row)))
                row.discard(v)
                tape.append((u, v, False, 0.0))
            else:  # removal of an absent edge: a legal no-op
                tape.append((u, int(rng.integers(0, n)), False, 0.0))
    return tape


def _heap_state(heaps: NeighborHeaps):
    return heaps.edge_sets(), [
        dict(zip(ids.tolist(), scores.tolist()))
        for ids, scores in (
            ((row[row != EMPTY]), s[row != EMPTY])
            for row, s in zip(heaps.ids, heaps.scores)
        )
    ]


@pytest.mark.parametrize("seed", SEEDS)
def test_batched_heap_replay_equals_per_edge_oracle(seed):
    rng = np.random.default_rng(seed)
    for trial in range(8):
        n, k = int(rng.integers(8, 30)), int(rng.integers(2, 6))
        base = NeighborHeaps(n, k)
        model = [set() for _ in range(n)]
        _per_edge_oracle(base, _random_tape(rng, n, k, 3 * n, model))
        tape = _random_tape(rng, n, k, 4 * n, model)

        batched = pickle.loads(pickle.dumps(base))
        oracle = pickle.loads(pickle.dumps(base))
        batched.attach_journal()
        oracle.attach_journal()
        batched.apply_edge_deltas(tape)
        _per_edge_oracle(oracle, tape)

        assert _heap_state(batched) == _heap_state(oracle), f"trial {trial}"
        # Journals may interleave rows differently but must agree as
        # sets and preserve per-(u, v) recording order.
        jb, jo = batched.drain_journal(), oracle.drain_journal()
        assert sorted(jb) == sorted(jo)
        for u, v, _ in jo:
            sub_b = [e[2] for e in jb if e[0] == u and e[1] == v]
            sub_o = [e[2] for e in jo if e[0] == u and e[1] == v]
            assert sub_b == sub_o


@pytest.mark.parametrize("seed", SEEDS)
def test_same_edge_add_remove_readd_in_one_tape(seed):
    """The pathological shapes, concentrated: one row, one edge."""
    rng = np.random.default_rng(seed + 7)
    base = NeighborHeaps(4, 2)
    tapes = [
        [(0, 1, True, 0.5), (0, 1, False, 0.0), (0, 1, True, 0.8)],
        [(0, 1, True, 0.5), (0, 1, True, 0.9)],  # score-only re-add
        [(0, 1, False, 0.0)],  # removal of an absent edge
        [(0, 1, True, 0.4), (0, 2, True, 0.6), (0, 1, False, 0.0),
         (0, 3, True, 0.7), (0, 2, False, 0.0), (0, 2, True, 0.2)],
    ]
    for tape in tapes:
        batched = pickle.loads(pickle.dumps(base))
        oracle = pickle.loads(pickle.dumps(base))
        batched.apply_edge_deltas(tape)
        _per_edge_oracle(oracle, tape)
        assert _heap_state(batched) == _heap_state(oracle), tape
    # An overfull add must raise in both (stream-gap detection).
    tape = [(0, 1, True, 0.5), (0, 2, True, 0.6), (0, 3, True, 0.7)]
    for heaps in (pickle.loads(pickle.dumps(base)),):
        with pytest.raises(ValueError, match="no free slot"):
            heaps.apply_edge_deltas(tape)
    oracle = pickle.loads(pickle.dumps(base))
    with pytest.raises(ValueError):
        _per_edge_oracle(oracle, tape)
    del rng


@pytest.mark.parametrize("seed", SEEDS)
def test_reverse_batch_equals_per_edge_apply(seed):
    rng = np.random.default_rng(seed + 13)
    for _ in range(6):
        n = int(rng.integers(5, 25))
        tape3 = [
            (int(rng.integers(0, n)), int(rng.integers(0, n)), bool(rng.random() < 0.6))
            for _ in range(6 * n)
        ]
        a, b = ReverseAdjacency(n), ReverseAdjacency(n)
        a.apply(tape3)
        b.apply_batch(tape3)
        assert a.to_sets() == b.to_sets()
        # holders() caching must not serve stale arrays across patches.
        for v in range(n):
            assert np.array_equal(a.holders(v), b.holders(v))
        tape4 = [(u, v, added, 0.5) for u, v, added in tape3[::-1]]
        a.apply_scored(tape4)
        b.apply_scored_batch(tape4)
        assert a.to_sets() == b.to_sets()
        for v in range(n):
            assert np.array_equal(a.holders(v), b.holders(v))


def _index(seed):
    spec = SyntheticSpec(
        name="propreplay", n_users=140, n_items=280, mean_profile_size=22.0,
        n_communities=8, community_pool_size=60, min_profile_size=8,
    )
    dataset = generate(spec, seed=seed)
    params = C2Params(k=K, n_buckets=64, n_hashes=4, split_threshold=60, seed=1)
    return OnlineIndex.build(dataset, params=params)


def _mutate(index, rng):
    active = index.dataset.active_users()
    op = rng.random()
    if op < 0.4 and active.size:
        index.add_items(
            int(rng.choice(active)), rng.integers(0, index.dataset.n_items, size=2)
        )
    elif op < 0.65:
        index.add_user(rng.integers(0, index.dataset.n_items, size=12))
    elif op < 0.85 and active.size > 40:
        index.remove_user(int(rng.choice(active)))
    elif active.size:
        index.neighborhood(int(rng.choice(active)))


@pytest.mark.parametrize("seed", SEEDS)
def test_recovery_parity_through_batched_replay(seed, tmp_path):
    """WAL recovery (batched heap + reverse replay) == live state."""
    index = _index(seed)
    index.reverse_index()
    durable = index.attach_persistence(tmp_path, checkpoint_bytes=0)
    rng = np.random.default_rng(seed + 1000)
    for _ in range(N_OPS):
        _mutate(index, rng)
    durable.close()
    recovered = DurableIndex.recover(tmp_path)
    try:
        assert recovered.recovery.evaluations == 0
        assert recovered.index.version == index.version
        assert edge_digest(recovered.index.graph.heaps) == edge_digest(
            index.graph.heaps
        )
        assert recovered.index.graph.heaps.edge_sets() == index.graph.heaps.edge_sets()
        assert (
            recovered.index.reverse_index().to_sets()
            == index.reverse_index().to_sets()
        )
        live = GraphSearcher(index, ef=16)
        back = GraphSearcher(recovered.index, ef=16)
        for _ in range(6):
            profile = rng.integers(0, index.dataset.n_items, size=10)
            a, b = live.top_k(profile, k=K), back.top_k(profile, k=K)
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.scores, b.scores)
    finally:
        recovered.close()


@pytest.mark.parametrize("seed", SEEDS)
def test_replica_parity_through_batched_replay(seed):
    """Thread replicas fed shipped deltas converge via the batched path."""
    index = _index(seed)
    index.reverse_index()
    replicas = ReplicaSet(index, 2, mode="thread")
    try:
        rng = np.random.default_rng(seed + 2000)
        for _ in range(N_OPS):
            _mutate(index, rng)
        assert replicas.converged()
        assert replicas.stats()["resyncs_total"] == 0
        for pos in range(2):
            replica = replicas.replica(pos)
            assert replica.graph.heaps.edge_sets() == index.graph.heaps.edge_sets()
            assert replica.reverse_index().to_sets() == index.reverse_index().to_sets()
    finally:
        replicas.close()
