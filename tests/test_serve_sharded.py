"""Tests for the sharded serving front end (repro.serve.sharded).

Two properties matter: sharding must never change answers (the same
deterministic searcher runs in every worker, so a sharded batch equals
a single-worker batch), and the engine must survive being hammered
from many threads while mutations stream in (walks run under the
index's read lock, mutations under its write lock).
"""

import threading

import numpy as np
import pytest

from repro import C2Params
from repro.online import OnlineIndex
from repro.serve import QueryEngine, ShardedQueryEngine


def _params(**kw):
    base = dict(k=8, n_buckets=64, n_hashes=4, split_threshold=80, seed=1)
    base.update(kw)
    return C2Params(**base)


@pytest.fixture(scope="module")
def sharded_index(small_dataset):
    return OnlineIndex.build(small_dataset, params=_params())


def _batch(rng, n_items, size=16):
    return [rng.integers(0, n_items, size=int(rng.integers(3, 12))) for _ in range(size)]


class TestShardedDeterminism:
    def test_matches_single_worker(self, small_dataset, sharded_index):
        rng = np.random.default_rng(0)
        batch = _batch(rng, small_dataset.n_items)
        sharded = ShardedQueryEngine(sharded_index, n_shards=3, cache_size=0)
        single = QueryEngine(sharded_index, cache_size=0)
        try:
            a = sharded.search_many(batch)
            b = single.search_many(batch)
            for x, y in zip(a, b):
                assert np.array_equal(x.ids, y.ids)
                assert x.scores == pytest.approx(y.scores)
        finally:
            sharded.close()
            single.close()

    def test_shard_count_does_not_change_results(self, small_dataset, sharded_index):
        rng = np.random.default_rng(1)
        batch = _batch(rng, small_dataset.n_items)
        outs = []
        for n_shards in (1, 2, 4):
            engine = ShardedQueryEngine(sharded_index, n_shards=n_shards, cache_size=0)
            try:
                outs.append(engine.search_many(batch))
            finally:
                engine.close()
        for results in outs[1:]:
            for x, y in zip(outs[0], results):
                assert np.array_equal(x.ids, y.ids)

    def test_process_executor_matches_thread(self, small_dataset, sharded_index):
        rng = np.random.default_rng(2)
        batch = _batch(rng, small_dataset.n_items, size=6)
        procs = ShardedQueryEngine(
            sharded_index, n_shards=2, executor="process", cache_size=0
        )
        threads = ShardedQueryEngine(sharded_index, n_shards=2, cache_size=0)
        try:
            a = procs.search_many(batch)
            b = threads.search_many(batch)
            for x, y in zip(a, b):
                assert np.array_equal(x.ids, y.ids)
                assert x.scores == pytest.approx(y.scores)
        finally:
            procs.close()
            threads.close()

    def test_process_pool_resyncs_after_mutation(self, small_dataset):
        index = OnlineIndex.build(small_dataset, params=_params())
        # cache_size=0: this test exercises the snapshot-pool resync
        # itself, not the front-end cache (whose signup-contact seeding
        # would also evict the pre-signup answer).
        procs = ShardedQueryEngine(index, n_shards=2, executor="process", cache_size=0)
        oracle = QueryEngine(index, cache_size=0)
        query = small_dataset.profile(3)
        try:
            before = procs.search(query)
            assert 3 in before.ids  # sanity: the twin user tops the list
            uid = index.add_user(query)  # identical signup (score 1.0)
            after = procs.search(query)
            fresh = oracle.search(query)
            assert np.array_equal(after.ids, fresh.ids)  # snapshot was re-forked
            assert uid in after.ids  # the worker snapshot saw the signup
        finally:
            procs.close()
            oracle.close()


class TestShardedFrontEnd:
    def test_validation(self, sharded_index):
        with pytest.raises(ValueError):
            ShardedQueryEngine(sharded_index, n_shards=0)
        with pytest.raises(ValueError):
            ShardedQueryEngine(sharded_index, executor="greenlet")

    def test_cache_and_dedup(self, sharded_index):
        engine = ShardedQueryEngine(sharded_index, n_shards=2)
        try:
            a = engine.search_many([[1, 2], [2, 1], [5, 9]])
            assert a[0] is a[1]  # deduped within the batch
            b = engine.search([1, 2])
            assert b is a[0]  # served from the shared cache
            stats = engine.stats()
            assert stats["cache_hits_total"] == 1
            assert stats["dedup_hits_total"] == 1
            assert stats["cache_misses_total"] == 2
        finally:
            engine.close()

    def test_partial_invalidation_is_wired(self, small_dataset):
        index = OnlineIndex.build(small_dataset, params=_params())
        engine = ShardedQueryEngine(index, n_shards=2)
        try:
            a = engine.search([1, 2, 3])
            victim = int(a.ids[0])
            index.add_items(victim, [small_dataset.n_items - 1])
            assert engine.search([1, 2, 3]) is not a
            bystander_result = engine.search([7, 8])
            other = int(
                np.setdiff1d(index.dataset.active_users(), bystander_result.ids)[0]
            )
            index.add_items(other, [small_dataset.n_items - 2])
            assert engine.search([7, 8]) is bystander_result
        finally:
            engine.close()


class TestShardedConcurrency:
    def test_queries_race_mutations(self, small_dataset):
        """Hammer one engine from 4 threads while mutations stream in."""
        index = OnlineIndex.build(small_dataset, params=_params())
        engine = ShardedQueryEngine(index, n_shards=2)
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader(seed: int) -> None:
            rng = np.random.default_rng(seed)
            try:
                while not stop.is_set():
                    results = engine.search_many(
                        _batch(rng, small_dataset.n_items, size=4)
                    )
                    for r in results:
                        assert np.unique(r.ids).size == r.ids.size
                        assert np.all(r.ids < index.n_users)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader, args=(s,)) for s in range(4)]
        try:
            for t in threads:
                t.start()
            rng = np.random.default_rng(99)
            for _ in range(25):
                op = rng.random()
                active = index.dataset.active_users()
                if op < 0.5 and active.size:
                    index.add_items(
                        int(rng.choice(active)),
                        rng.integers(0, index.dataset.n_items, size=2),
                    )
                elif op < 0.8:
                    index.add_user(rng.integers(0, index.dataset.n_items, size=12))
                elif active.size > 200:
                    index.remove_user(int(rng.choice(active)))
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=30)
            engine.close()
        assert not errors, errors
        assert not any(t.is_alive() for t in threads)
        # After the storm the index is still coherent: an uncached walk
        # succeeds and returns a well-formed, active-only result set.
        oracle = QueryEngine(index, cache_size=0)
        try:
            fresh = oracle.search([1, 2, 3])
            active = index.dataset.active_mask()
            assert np.unique(fresh.ids).size == fresh.ids.size
            assert all(active[v] for v in fresh.ids)
        finally:
            oracle.close()
