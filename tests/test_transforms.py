"""Unit tests for repro.data.transforms."""

import numpy as np
import pytest

from repro.data import Dataset, binarize_ratings, compact_items, filter_min_ratings


class TestBinarize:
    def test_keeps_only_positive(self):
        ds = binarize_ratings(
            users=np.array([0, 0, 1, 1]),
            items=np.array([0, 1, 0, 2]),
            ratings=np.array([5.0, 2.0, 3.0, 4.0]),
            n_users=2,
            n_items=3,
        )
        assert list(ds.profile(0)) == [0]  # the 2.0 rating dropped
        assert list(ds.profile(1)) == [2]  # the 3.0 rating dropped (strict >)

    def test_custom_threshold(self):
        ds = binarize_ratings(
            users=np.array([0, 0]),
            items=np.array([0, 1]),
            ratings=np.array([1.0, 2.0]),
            threshold=0.5,
            n_users=1,
            n_items=2,
        )
        assert ds.n_ratings == 2

    def test_mismatched_arrays(self):
        with pytest.raises(ValueError, match="parallel"):
            binarize_ratings(np.array([0]), np.array([0, 1]), np.array([4.0]))


class TestFilterMinRatings:
    def test_drops_small_profiles(self):
        ds = Dataset.from_profiles([[0, 1, 2], [0], [1, 2, 3, 4]], n_items=5)
        filtered, kept = filter_min_ratings(ds, min_ratings=3)
        assert list(kept) == [0, 2]
        assert filtered.n_users == 2
        assert list(filtered.profile(1)) == [1, 2, 3, 4]

    def test_item_universe_preserved(self):
        ds = Dataset.from_profiles([[0], [1, 2]], n_items=10)
        filtered, _ = filter_min_ratings(ds, min_ratings=2)
        assert filtered.n_items == 10

    def test_all_pass(self):
        ds = Dataset.from_profiles([[0, 1], [2, 3]], n_items=4)
        filtered, kept = filter_min_ratings(ds, min_ratings=1)
        assert filtered.n_users == 2
        assert list(kept) == [0, 1]


class TestCompactItems:
    def test_remaps_densely(self):
        ds = Dataset.from_profiles([[5, 100], [100, 200]], n_items=300)
        compacted, mapping = compact_items(ds)
        assert compacted.n_items == 3
        assert list(mapping) == [5, 100, 200]
        assert list(compacted.profile(0)) == [0, 1]
        assert list(compacted.profile(1)) == [1, 2]

    def test_preserves_profile_sizes(self):
        ds = Dataset.from_profiles([[9, 17], [3]], n_items=20)
        compacted, _ = compact_items(ds)
        assert np.array_equal(compacted.profile_sizes, ds.profile_sizes)
