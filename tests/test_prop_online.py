"""Property tests for the online-update subsystem.

Hypothesis-style randomized sequences with fixed seeds (the repo has
no hypothesis dependency): generate arbitrary interleavings of
``add_items`` / ``add_user`` / ``remove_user``, then assert invariants
that must hold for *every* sequence — graph well-formedness, score
freshness, and the headline property: recall against brute-force
ground truth stays within a fixed margin of what a cold batch rebuild
achieves on the same final profiles.
"""

import numpy as np
import pytest

from repro import C2Params, cluster_and_conquer, edge_recall, make_engine
from repro.baselines import brute_force_knn
from repro.graph.heap import EMPTY
from repro.online import OnlineIndex
from repro.similarity import ExactEngine

RECALL_MARGIN = 0.10
K = 8


def _params(seed=1):
    return C2Params(k=K, n_buckets=64, n_hashes=4, split_threshold=80, seed=seed)


def _random_sequence(index, rng, n_ops):
    """Apply a random stream of updates; returns op counts."""
    counts = {"add_items": 0, "add_user": 0, "remove_user": 0}
    n_items = index.dataset.n_items
    for _ in range(n_ops):
        active = index.dataset.active_users()
        op = rng.random()
        if op < 0.70 and active.size:
            user = int(rng.choice(active))
            batch = rng.integers(0, n_items, size=int(rng.integers(1, 4)))
            if index.add_items(user, batch).size:
                counts["add_items"] += 1
        elif op < 0.85:
            size = int(rng.integers(5, 40))
            index.add_user(rng.integers(0, n_items, size=size))
            counts["add_user"] += 1
        elif active.size > 50:  # keep the population from draining
            index.remove_user(int(rng.choice(active)))
            counts["remove_user"] += 1
    return counts


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_recall_within_margin_of_cold_rebuild(small_dataset, seed):
    """After any random update sequence, the maintained graph's recall
    must stay within RECALL_MARGIN of a from-scratch rebuild's."""
    index = OnlineIndex.build(small_dataset, params=_params())
    rng = np.random.default_rng(seed)
    counts = _random_sequence(index, rng, n_ops=60)
    assert sum(counts.values()) > 0

    snapshot = index.dataset.snapshot()
    active = index.dataset.active_users()
    exact = brute_force_knn(ExactEngine(snapshot), k=K).graph
    cold = cluster_and_conquer(make_engine(snapshot), _params())

    online_recall = edge_recall(index.graph, exact, users=active)
    cold_recall = edge_recall(cold.graph, exact, users=active)
    assert online_recall >= cold_recall - RECALL_MARGIN


@pytest.mark.parametrize("seed", [3, 4])
def test_graph_invariants_after_any_sequence(small_dataset, seed):
    index = OnlineIndex.build(small_dataset, params=_params())
    rng = np.random.default_rng(seed)
    _random_sequence(index, rng, n_ops=50)

    heaps = index.graph.heaps
    active = set(int(u) for u in index.dataset.active_users())
    for u in range(index.n_users):
        row = heaps.ids[u]
        occupied = row[row != EMPTY]
        # no self-loops, no duplicates, ids in range
        assert u not in occupied
        assert np.unique(occupied).size == occupied.size
        assert occupied.size == 0 or (
            occupied.min() >= 0 and occupied.max() < index.n_users
        )
        # tombstoned users have no edges in either direction
        if u not in active:
            assert occupied.size == 0
        assert not any(int(v) not in active for v in occupied)
        # occupied slots carry finite scores, empty slots -inf
        assert np.isfinite(heaps.scores[u][row != EMPTY]).all()
        assert (heaps.scores[u][row == EMPTY] == -np.inf).all()


@pytest.mark.parametrize("seed", [5, 6])
def test_scores_stay_fresh_after_any_sequence(small_dataset, seed):
    """Stored edge scores always equal the engine's current estimate —
    no stale similarity survives an update touching its endpoint."""
    index = OnlineIndex.build(small_dataset, params=_params())
    rng = np.random.default_rng(seed)
    _random_sequence(index, rng, n_ops=40)

    active = index.dataset.active_users()
    for u in rng.choice(active, size=min(25, active.size), replace=False):
        ids, scores = index.graph.neighborhood(int(u))
        if ids.size:
            assert scores == pytest.approx(index.engine.one_to_many(int(u), ids))


def test_membership_partition_invariant(small_dataset):
    """Every active user sits in exactly one cluster per configuration,
    and the assignment tables agree with the member lists."""
    index = OnlineIndex.build(small_dataset, params=_params())
    rng = np.random.default_rng(7)
    _random_sequence(index, rng, n_ops=50)

    per_config_members: list[dict[int, int]] = [
        {} for _ in range(index.n_configs)
    ]
    for cid, members in enumerate(index._members):
        config = index._cluster_key[cid][0]
        for u in members:
            assert u not in per_config_members[config], "user in two clusters"
            per_config_members[config][u] = cid

    active = set(int(u) for u in index.dataset.active_users())
    for u in range(index.n_users):
        for config in range(index.n_configs):
            cid = index._assign[u][config]
            if u in active:
                assert per_config_members[config].get(u) == cid
            else:
                assert cid == -1


def test_equivalent_to_batch_build_on_same_profiles(small_dataset):
    """An index that ingested users one by one must reach the same
    quality ballpark as one built in batch: sanity that incremental
    state does not diverge structurally."""
    params = _params()
    batch = OnlineIndex.build(small_dataset, params=params)

    # start from the first 200 users, stream in the remaining 100
    first = small_dataset.subset(np.arange(200), name="warm")
    index = OnlineIndex.build(first, params=params)
    for u in range(200, small_dataset.n_users):
        index.add_user(small_dataset.profile(u))
    assert index.n_users == small_dataset.n_users

    exact = brute_force_knn(ExactEngine(small_dataset), k=K).graph
    streamed = edge_recall(index.graph, exact)
    batched = edge_recall(batch.graph, exact)
    assert streamed >= batched - RECALL_MARGIN
