"""Cross-module integration tests: the paper's claims on small data.

These encode the *shape* of the paper's results as assertions: C² must
beat the greedy baselines on similarity count while staying within a
small quality margin, recursive splitting must tame skewed datasets,
and the recommendation pipeline must survive the C² approximation.
"""

import numpy as np
import pytest

from repro import C2Params, cluster_and_conquer, make_engine
from repro.baselines import brute_force_knn, hyrec_knn, lsh_knn, nndescent_knn
from repro.data import SyntheticSpec, generate, k_fold_split
from repro.graph import quality
from repro.recommend import recall_at
from repro.similarity import ExactEngine


@pytest.fixture(scope="module")
def skewed_dataset():
    """A MovieLens-like dataset: dense, strong popularity skew."""
    spec = SyntheticSpec(
        name="skewed",
        n_users=1000,
        n_items=600,
        mean_profile_size=45.0,
        popularity_exponent=1.2,
        n_communities=20,
        community_pool_size=100,
        min_profile_size=15,
    )
    return generate(spec, seed=11)


@pytest.fixture(scope="module")
def exact_graph(skewed_dataset):
    return brute_force_knn(ExactEngine(skewed_dataset), k=15).graph


@pytest.fixture(scope="module")
def c2_params():
    return C2Params(k=15, n_buckets=64, n_hashes=8, split_threshold=120, seed=3)


class TestPaperShape:
    def test_c2_beats_greedy_on_comparisons(self, skewed_dataset, c2_params):
        """The headline claim, in hardware-independent form: C² needs
        far fewer similarity computations than Hyrec / NN-Descent."""
        c2 = cluster_and_conquer(make_engine(skewed_dataset), c2_params)
        hyrec = hyrec_knn(make_engine(skewed_dataset), k=15, seed=3)
        nnd = nndescent_knn(make_engine(skewed_dataset), k=15, seed=3)
        assert c2.comparisons < hyrec.comparisons
        assert c2.comparisons < nnd.comparisons

    def test_c2_quality_within_margin(self, skewed_dataset, exact_graph, c2_params):
        """Quality loss vs the best baseline stays small (Table II: the
        paper sees between -0.01 and +0.04)."""
        c2 = cluster_and_conquer(make_engine(skewed_dataset), c2_params)
        hyrec = hyrec_knn(make_engine(skewed_dataset), k=15, seed=3)
        q_c2 = quality(c2.graph, exact_graph, skewed_dataset)
        q_hy = quality(hyrec.graph, exact_graph, skewed_dataset)
        assert q_c2 > q_hy - 0.1
        assert q_c2 > 0.8

    def test_splitting_bounds_biggest_cluster(self, skewed_dataset, c2_params):
        """Fig. 8's mechanism: with splitting the biggest cluster is
        near N; without it the popularity skew creates a giant one."""
        engine = make_engine(skewed_dataset)
        with_split = cluster_and_conquer(engine, c2_params)
        without = cluster_and_conquer(engine, c2_params.with_(split_threshold=None))
        assert without.extra["max_cluster_size"] > with_split.extra["max_cluster_size"]

    def test_frh_beats_minhash_inside_c2(self, skewed_dataset, exact_graph, c2_params):
        """Table IV's shape: C²/FRH needs fewer comparisons than
        C²/MinHash at comparable quality (dense dataset)."""
        frh = cluster_and_conquer(make_engine(skewed_dataset), c2_params)
        minhash = cluster_and_conquer(
            make_engine(skewed_dataset),
            c2_params.with_(hash_family="minhash", split_threshold=None),
        )
        assert frh.comparisons < minhash.comparisons

    def test_c2_vs_lsh(self, skewed_dataset, exact_graph, c2_params):
        """Table II's shape on dense data: C² needs fewer comparisons
        than LSH."""
        c2 = cluster_and_conquer(make_engine(skewed_dataset), c2_params)
        lsh = lsh_knn(make_engine(skewed_dataset), k=15, n_hashes=10, seed=3)
        assert c2.comparisons < lsh.comparisons


class TestRecommendationPipeline:
    def test_c2_recall_close_to_exact(self, skewed_dataset, c2_params):
        """Table III's shape: C² recommendations lose only a small
        fraction of recall vs exact-graph recommendations."""
        fold = k_fold_split(skewed_dataset, n_folds=5, seed=0)[0]

        exact = brute_force_knn(ExactEngine(fold.train), k=15).graph
        c2 = cluster_and_conquer(make_engine(fold.train), c2_params).graph

        r_exact = recall_at(fold.train, exact, fold.test_indptr, fold.test_indices)
        r_c2 = recall_at(fold.train, c2, fold.test_indptr, fold.test_indices)
        assert r_exact > 0.1  # the pipeline finds signal at all
        assert r_c2 > 0.8 * r_exact


class TestGoldFingerAblation:
    def test_table5_shape(self, skewed_dataset, exact_graph, c2_params):
        """GoldFinger and raw-data C² both deliver usable quality; raw
        data is at least as accurate."""
        gf = cluster_and_conquer(make_engine(skewed_dataset), c2_params)
        raw = cluster_and_conquer(
            make_engine(skewed_dataset, backend="exact"), c2_params
        )
        q_gf = quality(gf.graph, exact_graph, skewed_dataset)
        q_raw = quality(raw.graph, exact_graph, skewed_dataset)
        assert q_raw >= q_gf - 0.02
        assert q_gf > 0.75
