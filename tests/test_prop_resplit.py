"""Property tests for online cluster re-split (repro.online, PR 6).

Randomized churn tapes (fixed seeds, no hypothesis dependency) drive
an ``auto_resplit`` index with the viral-bundle scenario — the traffic
shape that actually swells clusters past ``split_threshold`` — and
check the re-split contract against strict oracles:

* every online re-split partitions the oversized cluster **exactly**
  as the batch splitter (:func:`repro.core.clustering.split_cluster`)
  would partition the same member set at that moment — same children,
  same residual, recursively (checked live, inside the journal
  callback, so the oracle sees the same profiles the split saw);
* after any tape the index satisfies the size invariant (every
  cluster at or under the threshold, or frozen unsplittable) and the
  members/assignment tables stay a bijection;
* a lagging replica fed the journal deltas converges to the primary's
  exact routing state and edge digest, and a :class:`DurableIndex`
  recovery reproduces both with zero similarity evaluations.

The CI property matrix shifts the seed base via ``REPRO_PROP_SEED`` so
tier-1 stays at two seeds per run but tapes vary across jobs.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import C2Params
from repro.bench.scenarios import IndexWorld, make_scenario, play
from repro.core.clustering import Cluster, split_cluster
from repro.data import SyntheticSpec, generate
from repro.online import OnlineIndex
from repro.persist import DurableIndex
from repro.serve.replica import edge_digest

K = 6
N_OPS = 260
THRESHOLD = 30

_SEED_BASE = int(os.environ.get("REPRO_PROP_SEED", "0"))
SEEDS = [_SEED_BASE, _SEED_BASE + 1]


def _index(seed, auto_resplit=True):
    spec = SyntheticSpec(
        name="propsplit", n_users=140, n_items=280, mean_profile_size=22.0,
        n_communities=8, community_pool_size=60, min_profile_size=8,
    )
    dataset = generate(spec, seed=seed)
    params = C2Params(
        k=K, n_buckets=64, n_hashes=4, split_threshold=THRESHOLD, seed=1
    )
    return OnlineIndex.build(dataset, params=params, auto_resplit=auto_resplit)


def _churn(index, seed, n_ops=N_OPS):
    """Drive the viral-bundle churn tape; returns the op count.

    ``IndexWorld`` without an engine skips query ops, so the tape is
    effectively its mutation stream — signup followers, bundle
    adoptions and removals, the mix that forces re-splits.
    """
    world = IndexWorld(index)
    scenario = make_scenario("churn", n_ops, seed=seed, bundle_size=60)
    return play(scenario, world)


@pytest.mark.parametrize("seed", SEEDS)
def test_resplit_partitions_match_batch_split_oracle(seed):
    """Each online re-split equals a batch split of the same members.

    The oracle runs inside the journal callback — at that instant the
    dataset holds exactly the profiles the online split hashed, so
    :func:`split_cluster` on the reconstructed parent must produce the
    identical partition (children and residuals compared as sets of
    member frozensets; empty residuals dropped on both sides, since
    the batch splitter omits them).
    """
    index = _index(seed)
    checked = []

    def oracle(delta) -> None:
        if delta.event != "resplit":
            return
        payload = delta.resplit
        config = payload["config"]
        frozen = payload["unsplittable"]
        # The event's root: the frozen cluster with the shortest
        # lineage (its descendants were split in the same event).
        root = min(frozen, key=lambda c: len(index._cluster_key[c][1]))
        lineage = index._cluster_key[root][1]
        members = sorted(
            u for _, mem in payload["members"] for u in mem
        )
        parent = Cluster(
            users=np.array(members, dtype=np.int64),
            config=config,
            eta=int(lineage[-1]),
            path=tuple(lineage),
        )
        pieces, _ = split_cluster(
            index.dataset, index._router._frh[config], parent, THRESHOLD
        )
        want = {frozenset(int(u) for u in p.users) for p in pieces}
        got = {
            frozenset(mem) for _, mem in payload["members"] if mem
        }
        assert got == want
        checked.append(root)

    index.subscribe_deltas(oracle)
    _churn(index, seed)
    # The tape must actually have exercised the mechanism.
    assert checked and index.stats()["resplits_total"] > 0


@pytest.mark.parametrize("seed", SEEDS)
def test_post_tape_size_invariant_and_assignment_bijection(seed):
    """After any tape: sizes bounded and membership tables consistent."""
    index = _index(seed)
    _churn(index, seed)
    assert index.stats()["resplits_total"] > 0
    for cid, members in enumerate(index._members):
        if len(members) > THRESHOLD:
            # Only frozen residuals may stay oversized.
            assert cid in index._unsplittable
        config, _ = index._cluster_key[cid]
        for u in members:
            assert index._assign[u][config] == cid
    # Every active user sits in exactly the clusters assigned to her.
    for u in index.dataset.active_users():
        for config, cid in enumerate(index._assign[int(u)]):
            if cid >= 0:
                assert int(u) in index._members[cid]


@pytest.mark.parametrize("seed", SEEDS)
def test_lagging_replica_converges_through_resplits(seed):
    """Buffered journal deltas replay re-splits to the identical state."""
    primary = _index(seed)
    primary.reverse_index()
    replica = primary.clone()
    replica.reverse_index()
    queue: list = []
    primary.subscribe_deltas(queue.append)
    rng = np.random.default_rng(seed + 500)
    world = IndexWorld(primary)
    scenario = make_scenario("churn", N_OPS, seed=seed, bundle_size=60)
    for op in scenario.ops(world):
        world.apply(op)
        if queue and rng.random() < 0.3:
            take = int(rng.integers(1, len(queue) + 1))
            batch, queue[:] = queue[:take], queue[take:]
            for delta in batch:
                assert replica.apply_delta(delta)
    for delta in queue:
        assert replica.apply_delta(delta)
    assert primary.stats()["resplits_total"] > 0
    assert replica.version == primary.version
    assert replica._members == primary._members
    assert replica._assign == primary._assign
    assert replica._unsplittable == primary._unsplittable
    assert replica._router.split_paths == primary._router.split_paths
    assert edge_digest(replica.graph.heaps) == edge_digest(primary.graph.heaps)


@pytest.mark.parametrize("seed", SEEDS)
def test_durable_recovery_reproduces_resplit_state(seed, tmp_path):
    """WAL recovery replays re-splits: same routing, digest, 0 evals."""
    index = _index(seed)
    index.reverse_index()
    durable = index.attach_persistence(tmp_path, checkpoint_bytes=0)
    _churn(index, seed)
    assert index.stats()["resplits_total"] > 0
    durable.close()
    recovered = DurableIndex.recover(tmp_path)
    try:
        assert recovered.recovery.evaluations == 0
        rec = recovered.index
        assert rec.version == index.version
        assert rec._members == index._members
        assert rec._assign == index._assign
        assert rec._unsplittable == index._unsplittable
        assert rec._router.split_paths == index._router.split_paths
        assert edge_digest(rec.graph.heaps) == edge_digest(index.graph.heaps)
    finally:
        recovered.close()
