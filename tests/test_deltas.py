"""Unit tests for the declarative delta pipeline (``repro.deltas``, PR 9).

Covers the framework half and its contracts:

* :class:`DeltaBus` mechanics — monotonic seq stamping, priority-band
  delivery order, register/unregister error contracts, the
  ``needs_scored`` export economy, counted resyncs, lag reporting;
* :class:`DerivedView` base behaviour — cursor adoption on register,
  ``apply``/``resync`` must be implemented, idempotent close,
  snapshot/hydrate cursor plumbing;
* the one-release deprecation shims around ``OnlineIndex.subscribe`` /
  ``subscribe_deltas`` — warning emission, delivery parity, the
  ``ValueError`` unsubscribe contract, clone/pickle dropping them;
* the :class:`AntiEntropy` auditor — the acceptance scenario: an
  injected replica divergence (right version, wrong edges) is detected
  and repaired, while merely lagging replicas are left alone.

The resync-equals-incremental property per ported consumer lives in
``tests/test_prop_deltas.py`` (REPRO_PROP_SEED matrix).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import C2Params
from repro.deltas import (
    AntiEntropy,
    CallbackView,
    Delta,
    DeltaBus,
    DerivedView,
    ReplicaDeltaView,
)
from repro.graph import ReverseAdjacency, edge_digest
from repro.online import OnlineIndex, ReplicaDelta
from repro.serve import QueryEngine, ReplicaSet

K = 6


@pytest.fixture()
def index(small_dataset):
    params = C2Params(k=K, n_buckets=64, n_hashes=4, split_threshold=60, seed=1)
    return OnlineIndex.build(small_dataset, params=params)


def _churn(index, rng, n=25):
    for _ in range(n):
        op = rng.random()
        active = index.dataset.active_users()
        if op < 0.5 and active.size:
            index.add_items(
                int(rng.choice(active)),
                rng.integers(0, index.dataset.n_items, size=2),
            )
        elif op < 0.8:
            index.add_user(rng.integers(0, index.dataset.n_items, size=10))
        elif active.size > 40:
            index.remove_user(int(rng.choice(active)))


class _Recorder(DerivedView):
    """A view that records every delivered delta (default priority)."""

    name = "recorder"

    def __init__(self, name=None, log=None):
        super().__init__(name=name)
        self.deltas = []
        self.resynced = 0
        self._log = log

    def apply(self, delta):
        self.deltas.append(delta)
        if self._log is not None:
            self._log.append(self.name)

    def resync(self):
        self.resynced += 1


# ----------------------------------------------------------------------
# Bus mechanics
# ----------------------------------------------------------------------


class TestDeltaBus:
    def test_register_adopts_cursor_and_returns_view(self, index):
        view = index.deltas.register(_Recorder())
        assert view is index.deltas.view("recorder")
        assert view.seq == index.version == index.deltas.seq
        assert view.lag == 0

    def test_double_register_raises(self, index):
        view = index.deltas.register(_Recorder())
        with pytest.raises(ValueError):
            index.deltas.register(view)

    def test_unregister_unknown_view_raises(self, index):
        with pytest.raises(ValueError):
            index.deltas.unregister(_Recorder())

    def test_publish_stamps_monotonic_gapless_seq(self, index, rng):
        view = index.deltas.register(_Recorder())
        before = index.version
        _churn(index, rng, n=30)
        seqs = [d.seq for d in view.deltas]
        assert seqs  # the tape mutated something
        assert seqs == list(range(before + 1, before + 1 + len(seqs)))
        assert view.seq == seqs[-1] == index.version
        assert view.applied_total == len(seqs)
        assert view.lag == 0
        view.close()

    def test_delivery_follows_priority_bands(self, index):
        order = []

        class _Early(_Recorder):
            name = "early"
            priority = 0

        class _Late(_Recorder):
            name = "late"
            priority = 90

        # Registered late-first: priority must win over registration order.
        index.deltas.register(_Late(log=order))
        index.deltas.register(_Recorder(name="mid", log=order))
        index.deltas.register(_Early(log=order))
        index.add_user(np.arange(8))
        assert order == ["early", "mid", "late"]
        names = [v.name for v in index.deltas.views()]
        # The built-in reverse view shares the early band.
        assert names.index("early") < names.index("mid") < names.index("late")

    def test_needs_scored_economy(self, index):
        plain = index.deltas.register(_Recorder())
        assert not index.deltas.needs_scored
        index.add_user(np.arange(6))
        assert plain.deltas[-1].replica is None

        class _Scored(_Recorder):
            name = "scored"
            needs_scored = True

        scored = index.deltas.register(_Scored())
        assert index.deltas.needs_scored
        index.add_user(np.arange(6, 12))
        assert isinstance(scored.deltas[-1].replica, ReplicaDelta)
        assert plain.deltas[-1].replica is scored.deltas[-1].replica

        scored.close()
        index.add_user(np.arange(12, 18))
        assert plain.deltas[-1].replica is None

    def test_delta_describes_the_mutation(self, index):
        view = index.deltas.register(_Recorder())
        profile = np.arange(10)
        user = index.add_user(profile)
        delta = view.deltas[-1]
        assert delta.event == "add_user" and delta.user == user
        assert delta.n_users == index.graph.heaps.n
        assert delta.n_items == index.dataset.n_items
        assert delta.edges and all(len(e) == 3 for e in delta.edges)
        assert delta.resplit is None

    def test_bus_resync_counts_and_fast_forwards(self, index):
        view = index.deltas.register(_Recorder())
        view.seq = -1  # simulate a gap
        assert view.lag == index.version + 1
        index.deltas.resync(view)
        assert view.resynced == 1
        assert view.seq == index.deltas.seq and view.lag == 0
        assert view.resyncs_total == 1
        assert index.deltas.stats()["resyncs_total"] == 1

    def test_stats_and_lags_shape(self, index):
        view = index.deltas.register(_Recorder())
        stats = index.deltas.stats()
        assert stats["component"] == "delta_bus"
        assert stats["seq"] == index.version
        assert "recorder" in stats["views"]
        assert stats["needs_scored"] is False
        lags = index.deltas.lags()
        assert lags["recorder"] == 0 and "reverse_adjacency" in lags
        view.seq -= 3
        assert index.deltas.lags()["recorder"] == 3
        assert index.deltas.stats()["lag"] == 3


# ----------------------------------------------------------------------
# DerivedView base contract
# ----------------------------------------------------------------------


class TestDerivedView:
    def test_base_contract_must_be_implemented(self):
        view = DerivedView(name="bare")
        with pytest.raises(NotImplementedError):
            view.apply(None)
        with pytest.raises(NotImplementedError):
            view.resync()

    def test_snapshot_hydrate_cursor_plumbing(self):
        view = _Recorder()
        assert view.snapshot() is None
        view.hydrate(None, 41)
        assert view.seq == 41

    def test_close_is_idempotent(self, index):
        view = index.deltas.register(_Recorder())
        view.close()
        view.close()  # second close is a no-op, not a ValueError
        assert index.deltas.view("recorder") is None
        assert view.lag == 0  # detached views do not report phantom lag

    def test_unbound_view_defaults(self):
        view = _Recorder()
        assert view.seq == -1 and view.lag == 0
        view.close()  # never registered: still a no-op


# ----------------------------------------------------------------------
# Deprecation shims
# ----------------------------------------------------------------------


class TestDeprecationShims:
    def test_subscribe_warns_and_delivers(self, index):
        events = []

        def listener(event, user, deltas):
            events.append((event, user, len(deltas)))

        with pytest.warns(DeprecationWarning, match="subscribe is deprecated"):
            index.subscribe(listener)
        assert isinstance(index.deltas.view("legacy_callback"), CallbackView)
        user = index.add_user(np.arange(8))
        assert events and events[-1][0] == "add_user" and events[-1][1] == user
        with pytest.warns(DeprecationWarning):
            index.unsubscribe(listener)
        index.add_user(np.arange(8, 16))
        assert len(events) == 1  # detached: no further delivery

    def test_subscribe_deltas_warns_and_ships_scored(self, index):
        shipped = []
        with pytest.warns(DeprecationWarning, match="subscribe_deltas"):
            index.subscribe_deltas(shipped.append)
        view = index.deltas.view("legacy_delta_callback")
        assert isinstance(view, ReplicaDeltaView)
        assert index.deltas.needs_scored
        index.add_user(np.arange(8))
        assert isinstance(shipped[-1], ReplicaDelta)
        with pytest.warns(DeprecationWarning):
            index.unsubscribe_deltas(shipped.append)
        assert not index.deltas.needs_scored

    def test_unsubscribe_unknown_callback_raises(self, index):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                index.unsubscribe(lambda *a: None)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                index.unsubscribe_deltas(lambda d: None)

    def test_clone_drops_legacy_views_but_keeps_bus(self, index, rng):
        events = []
        with pytest.warns(DeprecationWarning):
            index.subscribe(lambda *a: events.append(a))
        clone = index.clone()
        assert [v.name for v in clone.deltas.views()] == ["reverse_adjacency"]
        clone.add_user(np.arange(8))
        assert events == []  # listeners never leak across the clone
        # The recreated bus still stamps and delivers on the clone.
        view = clone.deltas.register(_Recorder())
        _churn(clone, rng, n=10)
        assert view.applied_total > 0 and view.seq == clone.version

    def test_pickle_roundtrip_recreates_bus(self, index):
        index.reverse_index()
        copy = pickle.loads(pickle.dumps(index))
        assert copy.deltas is not index.deltas
        assert copy.deltas.seq == index.version
        assert [v.name for v in copy.deltas.views()] == ["reverse_adjacency"]
        copy.add_user(np.arange(8))
        # The restored reverse view keeps maintaining in-edge state.
        want = ReverseAdjacency.from_heaps(copy.graph.heaps)
        assert [set(s) for s in copy._reverse._in] == [
            set(s) for s in want._in
        ]


# ----------------------------------------------------------------------
# Ported consumers register as named views
# ----------------------------------------------------------------------


class TestConsumerRegistration:
    def test_builtin_reverse_view_rides_the_bus(self, index, rng):
        index.reverse_index()
        view = index.deltas.view("reverse_adjacency")
        assert view is not None and view.priority == 0
        _churn(index, rng, n=30)
        assert view.lag == 0
        want = ReverseAdjacency.from_heaps(index.graph.heaps)
        assert [set(s) for s in index._reverse._in] == [
            set(s) for s in want._in
        ]

    def test_engine_and_replica_views_attach_and_detach(self, index):
        engine = QueryEngine(index, k=K, invalidation="partial")
        replicas = ReplicaSet(index, 1, mode="thread")
        names = [v.name for v in index.deltas.views()]
        assert "result_cache" in names and "replica_ship" in names
        assert index.deltas.needs_scored  # shipping wants the scored export
        replicas.close()
        engine.close()
        names = [v.name for v in index.deltas.views()]
        assert "result_cache" not in names and "replica_ship" not in names
        assert not index.deltas.needs_scored


# ----------------------------------------------------------------------
# Anti-entropy: injected divergence is detected and repaired
# ----------------------------------------------------------------------


class _StubReplicas:
    """A fake replica tier with scripted audit states."""

    def __init__(self, states):
        self.states = states
        self.resynced = []

    def replica_states(self):
        return list(self.states)

    def resync_replica(self, i):
        self.resynced.append(i)


class TestAntiEntropy:
    def test_every_must_be_positive(self, index):
        with pytest.raises(ValueError):
            AntiEntropy(index, _StubReplicas([]), every=0)

    def test_detects_and_repairs_injected_divergence(self, index, rng):
        replicas = ReplicaSet(index, 2, mode="thread")
        auditor = index.deltas.register(AntiEntropy(index, replicas, every=4))
        _churn(index, rng, n=10)
        assert replicas.converged()
        assert auditor.checks_total >= 2
        assert auditor.divergences_total == 0

        # Corrupt replica 0 in place: right version, wrong edges — the
        # failure mode no seq guard can see.
        victim = replicas.replica(0)
        victim.graph.heaps.ids[0, 0] = victim.graph.heaps.ids[0, 1]
        assert not replicas.converged()

        assert auditor.check() == 1
        assert auditor.divergences_total == 1
        assert auditor.repairs_total == 1
        assert replicas.converged()
        stats = auditor.stats()
        assert stats["component"] == "anti_entropy"
        assert stats["repairs_total"] == 1
        auditor.close()
        replicas.close()

    def test_divergence_repaired_by_riding_the_tape(self, index, rng):
        """The in-band path: the scheduled check flags a live divergence."""

        class _AlwaysDiverged:
            # Tracks the primary's version but never its digest — drift
            # that incremental shipping can never repair.
            def __init__(self):
                self.resynced = []

            def replica_states(self):
                return [
                    (int(index.version), edge_digest(index.graph.heaps) ^ 1)
                ]

            def resync_replica(self, i):
                self.resynced.append(i)

        stub = _AlwaysDiverged()
        auditor = index.deltas.register(AntiEntropy(index, stub, every=3))
        for _ in range(2):  # below the cadence: no audit yet
            index.add_items(0, rng.integers(0, index.dataset.n_items, size=2))
        assert auditor.checks_total == 0 and stub.resynced == []
        index.add_items(0, rng.integers(0, index.dataset.n_items, size=2))
        assert auditor.checks_total == 1
        assert auditor.repairs_total == 1 and stub.resynced == [0]
        auditor.close()

    def test_lagging_replica_is_not_flagged(self, index):
        want = (int(index.version), edge_digest(index.graph.heaps))
        stub = _StubReplicas([
            (want[0] - 1, want[1] + 1),  # lagging: older version
            want,                        # healthy
        ])
        auditor = AntiEntropy(index, stub, every=1)
        assert auditor.check() == 0
        assert stub.resynced == []
        assert auditor.divergences_total == 0

    def test_same_version_wrong_digest_is_flagged(self, index):
        want = (int(index.version), edge_digest(index.graph.heaps))
        stub = _StubReplicas([want, (want[0], want[1] ^ 1)])
        auditor = AntiEntropy(index, stub, every=1)
        assert auditor.check() == 1
        assert stub.resynced == [1]

    def test_resync_recipe_is_a_check(self, index):
        stub = _StubReplicas([])
        auditor = index.deltas.register(AntiEntropy(index, stub, every=100))
        index.deltas.resync(auditor)
        assert auditor.checks_total == 1
        assert auditor.resyncs_total == 1
        auditor.close()


# ----------------------------------------------------------------------
# Standalone bus (unit-level, no index)
# ----------------------------------------------------------------------


class _FakeSource:
    """A minimal publisher: anything with a ``version``."""

    def __init__(self):
        self.version = 0


def test_standalone_bus_delivers_hand_built_deltas():
    source = _FakeSource()
    bus = DeltaBus(source)
    view = bus.register(_Recorder())
    assert view.seq == 0
    for seq in (1, 2, 3):
        source.version = seq
        bus.publish(Delta(seq=seq, event="add_items", user=0, edges=[]))
    assert [d.seq for d in view.deltas] == [1, 2, 3]
    assert bus.published_total == 3
    assert bus.stats()["views"] == ["recorder"]
