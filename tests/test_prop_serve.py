"""Property tests for the serving layer under concurrent mutation.

Randomized interleavings (fixed seeds, no hypothesis dependency) of
``OnlineIndex`` mutations with cached queries. The invariant under
test is the cache-coherence contract: a :class:`QueryEngine` answer
must always equal what a fresh, uncached search against the *current*
index state returns — the cache may save work, it may never serve
neighbours from before a mutation.
"""

import numpy as np
import pytest

from repro import C2Params
from repro.data import SyntheticSpec, generate
from repro.online import OnlineIndex
from repro.serve import GraphSearcher, QueryEngine

K = 6
N_OPS = 60


def _index(seed):
    spec = SyntheticSpec(
        name="prop", n_users=150, n_items=300, mean_profile_size=25.0,
        n_communities=8, community_pool_size=60, min_profile_size=8,
    )
    dataset = generate(spec, seed=seed)
    params = C2Params(k=K, n_buckets=64, n_hashes=4, split_threshold=60, seed=1)
    return OnlineIndex.build(dataset, params=params)


def _mutate(index, rng):
    active = index.dataset.active_users()
    op = rng.random()
    if op < 0.5 and active.size:
        user = int(rng.choice(active))
        index.add_items(user, rng.integers(0, index.dataset.n_items, size=2))
    elif op < 0.75:
        index.add_user(rng.integers(0, index.dataset.n_items, size=15))
    elif active.size > 40:
        index.remove_user(int(rng.choice(active)))


def _random_profile(index, rng):
    if rng.random() < 0.5 and index.dataset.active_users().size:
        base = index.dataset.profile(int(rng.choice(index.dataset.active_users())))
        keep = rng.random(base.size) > 0.4
        return base[keep] if keep.any() else base
    return rng.integers(0, index.dataset.n_items, size=int(rng.integers(3, 25)))


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_cache_never_serves_stale_neighbors(seed):
    index = _index(seed)
    # Full invalidation is the mode with the strict contract this test
    # asserts (cached answer == fresh search, always); the relaxed
    # partial mode has its own suite in test_prop_serve_incremental.py.
    queries = QueryEngine(index, k=K, invalidation="full")
    oracle = GraphSearcher(index)  # same defaults as the engine's searcher
    rng = np.random.default_rng(seed + 100)
    hits_checked = 0
    try:
        for _ in range(N_OPS):
            if rng.random() < 0.5:
                _mutate(index, rng)
            profile = _random_profile(index, rng)
            served = queries.search(profile, k=K)
            fresh = oracle.top_k(np.unique(np.asarray(profile, dtype=np.int64)), k=K)
            assert np.array_equal(served.ids, fresh.ids)
            assert served.scores == pytest.approx(fresh.scores)
            # re-ask: the second answer comes from cache and must still
            # match the current index state
            again = queries.search(profile, k=K)
            assert again is served
            hits_checked += 1
    finally:
        queries.close()
    stats = queries.stats()
    assert stats["cache_hits_total"] >= hits_checked  # the re-asks all hit
    assert stats["evictions_total"] > 0  # and mutations really dropped entries


@pytest.mark.parametrize("seed", [3, 4])
def test_served_results_only_contain_active_users(seed):
    index = _index(seed)
    queries = QueryEngine(index, k=K)
    rng = np.random.default_rng(seed)
    try:
        for _ in range(30):
            _mutate(index, rng)
            result = queries.search(_random_profile(index, rng), k=K)
            active = index.dataset.active_mask()
            assert all(active[v] for v in result.ids)
            assert np.unique(result.ids).size == result.ids.size
    finally:
        queries.close()


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_partial_cache_sound_across_online_resplits(seed):
    """Partial invalidation survives re-splits without staleness.

    A re-split moves no edges and no profiles — it only re-routes a
    cluster lineage — so the partial mode evicts exactly the cached
    answers that routed through the split clusters (tracked via
    ``SearchResult.routed``) and keeps the rest warm. The tape here
    churns a low-threshold index hard enough that re-splits genuinely
    fire mid-stream, and every served answer — cached, kept across a
    re-split, or fresh — must still equal an uncached search against
    the current index state.
    """
    from repro.bench.scenarios import IndexWorld, make_scenario

    spec = SyntheticSpec(
        name="propresplit", n_users=150, n_items=300,
        mean_profile_size=25.0, n_communities=8, community_pool_size=60,
        min_profile_size=8,
    )
    dataset = generate(spec, seed=seed)
    params = C2Params(k=K, n_buckets=64, n_hashes=4, split_threshold=30, seed=1)
    index = OnlineIndex.build(dataset, params=params)
    queries = QueryEngine(index, k=K, invalidation="partial")
    oracle = GraphSearcher(index)
    rng = np.random.default_rng(seed + 300)
    world = IndexWorld(index)
    scenario = make_scenario("churn", 200, seed=seed, bundle_size=60)
    try:
        for op in scenario.ops(world):
            world.apply(op)
            profile = _random_profile(index, rng)
            served = queries.search(profile, k=K)
            fresh = oracle.top_k(
                np.unique(np.asarray(profile, dtype=np.int64)), k=K
            )
            assert np.array_equal(served.ids, fresh.ids)
            assert served.scores == pytest.approx(fresh.scores)
        stats = queries.stats()
    finally:
        queries.close()
    # The property is vacuous unless the tape actually re-split.
    assert index.stats()["resplits_total"] > 0
    # And the selective eviction must have done real work: at least one
    # re-split found a warm cache and kept entries outside the split
    # lineage alive (otherwise this is just the full clear in disguise).
    assert stats["resplit_evictions_total"] + stats["resplit_kept"] > 0
    assert stats["resplit_kept"] > 0
