"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Dataset, SyntheticSpec, generate


@pytest.fixture(scope="session")
def tiny_dataset() -> Dataset:
    """A fixed 6-user dataset with hand-checkable similarities."""
    return Dataset.from_profiles(
        [
            [0, 1, 2, 3],        # u0
            [0, 1, 2, 4],        # u1: J(u0,u1)=3/5
            [0, 1, 2, 3],        # u2: identical to u0
            [5, 6, 7],           # u3: disjoint from u0
            [3, 5, 6, 7, 8],     # u4
            [0, 3],              # u5
        ],
        n_items=9,
        name="tiny",
    )


@pytest.fixture(scope="session")
def small_dataset() -> Dataset:
    """A 300-user synthetic dataset with planted community structure."""
    spec = SyntheticSpec(
        name="small",
        n_users=300,
        n_items=500,
        mean_profile_size=35.0,
        n_communities=10,
        community_pool_size=80,
        min_profile_size=10,
    )
    return generate(spec, seed=123)


@pytest.fixture(scope="session")
def medium_dataset() -> Dataset:
    """A 800-user synthetic dataset (for integration tests)."""
    spec = SyntheticSpec(
        name="medium",
        n_users=800,
        n_items=1200,
        mean_profile_size=40.0,
        n_communities=16,
        community_pool_size=120,
        min_profile_size=15,
    )
    return generate(spec, seed=7)


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic RNG per test."""
    return np.random.default_rng(0)
