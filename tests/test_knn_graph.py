"""Unit tests for repro.graph.knn_graph and repro.graph.metrics."""

import numpy as np
import pytest

from repro.baselines import brute_force_knn
from repro.graph import KNNGraph, average_similarity, edge_recall, quality, random_graph
from repro.similarity import ExactEngine


class TestKNNGraph:
    def test_add_and_neighborhood(self):
        g = KNNGraph(3, 2)
        g.add(0, 1, 0.9)
        g.add(0, 2, 0.4)
        ids, scores = g.neighborhood(0)
        assert list(ids) == [1, 2]
        assert list(scores) == pytest.approx([0.9, 0.4])

    def test_edge_count(self):
        g = KNNGraph(3, 2)
        g.add(0, 1, 0.9)
        g.add(2, 1, 0.2)
        assert g.edge_count() == 2

    def test_to_dict(self):
        g = KNNGraph(2, 2)
        g.add(0, 1, 0.5)
        d = g.to_dict()
        assert d[0] == [(1, 0.5)]
        assert d[1] == []

    def test_copy_is_deep(self):
        g = KNNGraph(2, 2)
        g.add(0, 1, 0.5)
        g2 = g.copy()
        g2.add(0, 1, 0.9)  # rejected duplicate, but try mutation:
        g2.add(1, 0, 0.3)
        assert g.neighbors(1).size == 0

    def test_to_arrays_copies(self):
        g = KNNGraph(2, 2)
        ids, _ = g.to_arrays()
        ids[0, 0] = 99
        assert g.neighbors(0).size == 0


class TestRandomGraph:
    def test_degree_and_no_self_loops(self, small_dataset):
        engine = ExactEngine(small_dataset)
        g = random_graph(engine, k=5, seed=1)
        for u in range(g.n_users):
            nbrs = g.neighbors(u)
            assert nbrs.size == 5
            assert u not in nbrs
            assert np.unique(nbrs).size == 5

    def test_scores_are_true_similarities(self, tiny_dataset):
        engine = ExactEngine(tiny_dataset)
        g = random_graph(engine, k=2, seed=0)
        for u in range(g.n_users):
            ids, scores = g.neighborhood(u)
            for v, s in zip(ids, scores):
                assert s == pytest.approx(engine._pair(u, int(v)))

    def test_counts_similarities(self, small_dataset):
        engine = ExactEngine(small_dataset)
        random_graph(engine, k=5, seed=1)
        assert engine.comparisons == small_dataset.n_users * 5

    def test_k_larger_than_population(self):
        from repro.data import Dataset

        ds = Dataset.from_profiles([[0], [1], [2]], n_items=3)
        engine = ExactEngine(ds)
        g = random_graph(engine, k=10, seed=0)
        assert g.neighbors(0).size == 2


class TestMetrics:
    @pytest.fixture(scope="class")
    def exact(self, small_dataset):
        return brute_force_knn(ExactEngine(small_dataset), k=5).graph

    def test_exact_graph_quality_is_one(self, small_dataset, exact):
        assert quality(exact, exact, small_dataset) == pytest.approx(1.0)

    def test_exact_graph_recall_is_one(self, exact):
        assert edge_recall(exact, exact) == pytest.approx(1.0)

    def test_average_similarity_range(self, small_dataset, exact):
        avg = average_similarity(exact, small_dataset)
        assert 0.0 < avg <= 1.0

    def test_random_graph_quality_below_exact(self, small_dataset, exact):
        engine = ExactEngine(small_dataset)
        rand = random_graph(engine, k=5, seed=3)
        q = quality(rand, exact, small_dataset)
        assert q < 0.9

    def test_quality_of_empty_graph_is_zero(self, small_dataset, exact):
        empty = KNNGraph(small_dataset.n_users, 5)
        assert quality(empty, exact, small_dataset) == 0.0

    def test_edge_recall_partial(self, exact, small_dataset):
        partial = KNNGraph(small_dataset.n_users, 5)
        # copy only 2 neighbours per user
        for u in range(exact.n_users):
            ids, scores = exact.neighborhood(u)
            for v, s in zip(ids[:2], scores[:2]):
                partial.add(u, int(v), float(s))
        r = edge_recall(partial, exact)
        assert 0.3 < r < 0.5

    def test_edge_recall_user_mismatch(self, exact):
        with pytest.raises(ValueError):
            edge_recall(KNNGraph(3, 5), exact)

    def test_average_similarity_counts_missing_slots_as_zero(self, small_dataset):
        g = KNNGraph(small_dataset.n_users, 10)
        g.add(0, 1, 1.0)  # single edge, rest empty
        avg = average_similarity(g, small_dataset)
        from repro.similarity import jaccard_pair

        true = jaccard_pair(small_dataset.profile(0), small_dataset.profile(1))
        assert avg == pytest.approx(true / (10 * small_dataset.n_users))


class TestReverseAdjacency:
    """In-edge sets: cold build, per-edge patching, targeted detach."""

    def _graph(self, n=10, k=3, seed=2):
        from repro.graph import KNNGraph

        g = KNNGraph(n, k)
        rng = np.random.default_rng(seed)
        for u in range(n):
            cands = rng.choice(n - 1, size=k, replace=False)
            cands[cands >= u] += 1
            g.add_batch(u, cands, rng.random(k))
        return g

    def test_from_heaps_matches_bruteforce(self):
        from repro.graph import ReverseAdjacency

        g = self._graph()
        rev = ReverseAdjacency.from_heaps(g.heaps)
        for v in range(g.n_users):
            expected = {
                u for u in range(g.n_users) if (g.heaps.ids[u] == v).any()
            }
            assert set(rev.holders(v)) == expected
            assert rev.degree(v) == len(expected)

    def test_apply_tracks_journal(self):
        from repro.graph import ReverseAdjacency

        g = self._graph()
        rev = ReverseAdjacency.from_heaps(g.heaps)
        g.heaps.attach_journal()
        rng = np.random.default_rng(7)
        for _ in range(60):
            u, v = rng.choice(g.n_users, size=2, replace=False)
            g.add(int(u), int(v), float(rng.random()))
            rev.apply(g.heaps.drain_journal())
            assert rev.to_sets() == ReverseAdjacency.from_heaps(g.heaps).to_sets()

    def test_grow_extends_with_empty_sets(self):
        from repro.graph import ReverseAdjacency

        rev = ReverseAdjacency(3)
        rev.grow(6)
        assert rev.n == 6
        assert rev.holders(5).size == 0

    def test_remove_user_with_holders_matches_scan(self):
        from repro.graph import ReverseAdjacency

        a, b = self._graph(seed=5), self._graph(seed=5)
        rev = ReverseAdjacency.from_heaps(b.heaps)
        losers_scan = a.remove_user(4)
        losers_targeted = b.remove_user(4, holders=rev.holders(4))
        assert np.array_equal(losers_scan, losers_targeted)
        assert np.array_equal(a.heaps.ids, b.heaps.ids)
