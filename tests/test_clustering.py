"""Unit tests for repro.core.clustering (Step 1 + recursive splitting)."""

import numpy as np
import pytest

from repro.core import (
    Cluster,
    cluster_dataset,
    make_hash_family,
    make_minhash_family,
    minhash_cluster_dataset,
)
from repro.core.clustering import split_cluster
from repro.core.fastrandomhash import FastRandomHash
from repro.core.hashing import GenerativeHash


def _all_users_covered(clusters, config, n_users):
    got = np.sort(np.concatenate([c.users for c in clusters if c.config == config]))
    return np.array_equal(got, np.arange(n_users))


class TestClusterDataset:
    def test_each_config_partitions_users(self, small_dataset):
        hashes = make_hash_family(small_dataset.n_items, 16, t=3, seed=0)
        result = cluster_dataset(small_dataset, hashes, split_threshold=None)
        assert result.n_configs == 3
        for config in range(3):
            assert _all_users_covered(result.clusters, config, small_dataset.n_users)

    def test_cluster_eta_matches_members(self, small_dataset):
        hashes = make_hash_family(small_dataset.n_items, 16, t=1, seed=0)
        result = cluster_dataset(small_dataset, hashes, split_threshold=None)
        frh = FastRandomHash(hashes[0])
        user_hashes = frh.user_hashes(small_dataset)
        for cluster in result.clusters:
            assert np.all(user_hashes[cluster.users] == cluster.eta)

    def test_no_splitting_when_threshold_none(self, small_dataset):
        hashes = make_hash_family(small_dataset.n_items, 4, t=1, seed=0)
        result = cluster_dataset(small_dataset, hashes, split_threshold=None)
        assert result.n_splits == 0
        assert len(result.clusters) <= 4

    def test_splitting_caps_splittable_cluster_sizes(self, small_dataset):
        hashes = make_hash_family(small_dataset.n_items, 4, t=2, seed=1)
        threshold = 40
        result = cluster_dataset(small_dataset, hashes, split_threshold=threshold)
        for cluster in result.clusters:
            # Residual (unsplittable) clusters may exceed the threshold;
            # every splittable cluster must respect it.
            if cluster.splittable:
                assert cluster.size <= threshold

    def test_splitting_preserves_partition(self, small_dataset):
        hashes = make_hash_family(small_dataset.n_items, 4, t=2, seed=1)
        result = cluster_dataset(small_dataset, hashes, split_threshold=30)
        for config in range(2):
            assert _all_users_covered(result.clusters, config, small_dataset.n_users)

    def test_splitting_creates_more_clusters(self, small_dataset):
        hashes = make_hash_family(small_dataset.n_items, 4, t=1, seed=1)
        no_split = cluster_dataset(small_dataset, hashes, split_threshold=None)
        split = cluster_dataset(small_dataset, hashes, split_threshold=30)
        assert len(split.clusters) > len(no_split.clusters)
        assert split.n_splits > 0

    def test_sizes_descending(self, small_dataset):
        hashes = make_hash_family(small_dataset.n_items, 8, t=2, seed=0)
        result = cluster_dataset(small_dataset, hashes, split_threshold=None)
        sizes = result.sizes()
        assert np.all(np.diff(sizes) <= 0)

    def test_config_clusters_filter(self, small_dataset):
        hashes = make_hash_family(small_dataset.n_items, 8, t=2, seed=0)
        result = cluster_dataset(small_dataset, hashes, split_threshold=None)
        for c in result.config_clusters(1):
            assert c.config == 1


class TestSplitCluster:
    @pytest.fixture()
    def setup(self, small_dataset):
        gen = GenerativeHash(small_dataset.n_items, 8, seed=2)
        frh = FastRandomHash(gen)
        hashes = frh.user_hashes(small_dataset)
        # biggest cluster
        values, counts = np.unique(hashes, return_counts=True)
        eta = int(values[np.argmax(counts)])
        users = np.flatnonzero(hashes == eta)
        return frh, Cluster(users=users, config=0, eta=eta)

    def test_split_preserves_users(self, small_dataset, setup):
        frh, cluster = setup
        pieces, _ = split_cluster(small_dataset, frh, cluster, threshold=10)
        got = np.sort(np.concatenate([p.users for p in pieces]))
        assert np.array_equal(got, np.sort(cluster.users))

    def test_split_noop_below_threshold(self, small_dataset, setup):
        frh, cluster = setup
        pieces, n = split_cluster(small_dataset, frh, cluster, cluster.size)
        assert pieces == [cluster]
        assert n == 0

    def test_residual_marked_unsplittable(self, small_dataset, setup):
        frh, cluster = setup
        pieces, _ = split_cluster(small_dataset, frh, cluster, threshold=10)
        residuals = [p for p in pieces if p.eta == cluster.eta]
        assert all(not p.splittable for p in residuals)

    def test_children_have_higher_eta(self, small_dataset, setup):
        frh, cluster = setup
        pieces, _ = split_cluster(small_dataset, frh, cluster, threshold=10)
        for p in pieces:
            if p.eta != cluster.eta:
                assert p.eta > cluster.eta

    def test_no_singleton_splittable_children(self, small_dataset, setup):
        """Singleton new clusters stay in the parent (paper rule), so a
        splittable child always has >= 2 members. Residual clusters
        (splittable=False) may shrink to any size during recursion."""
        frh, cluster = setup
        pieces, _ = split_cluster(small_dataset, frh, cluster, threshold=10)
        for p in pieces:
            if p.splittable and p.eta != cluster.eta:
                assert p.size >= 2

    def test_unsplittable_cluster_untouched(self, small_dataset, setup):
        frh, cluster = setup
        frozen = Cluster(users=cluster.users, config=0, eta=cluster.eta, splittable=False)
        pieces, n = split_cluster(small_dataset, frh, frozen, threshold=2)
        assert pieces == [frozen]
        assert n == 0


class TestMinHashClustering:
    def test_partitions_users(self, small_dataset):
        perms = make_minhash_family(small_dataset.n_items, t=2, seed=0)
        result = minhash_cluster_dataset(small_dataset, perms)
        for config in range(2):
            assert _all_users_covered(result.clusters, config, small_dataset.n_users)

    def test_more_fragmented_than_frh(self, small_dataset):
        """MinHash's huge hash space fragments users into more, smaller
        buckets than FRH with small b — the contrast of paper §II-E."""
        perms = make_minhash_family(small_dataset.n_items, t=4, seed=0)
        minhash = minhash_cluster_dataset(small_dataset, perms)
        hashes = make_hash_family(small_dataset.n_items, 8, t=4, seed=0)
        frh = cluster_dataset(small_dataset, hashes, split_threshold=None)
        assert len(minhash.clusters) > len(frh.clusters)

    def test_never_splittable(self, small_dataset):
        perms = make_minhash_family(small_dataset.n_items, t=1, seed=0)
        result = minhash_cluster_dataset(small_dataset, perms)
        assert all(not c.splittable for c in result.clusters)
