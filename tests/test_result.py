"""Unit tests for repro.result (BuildResult + track_build)."""

import time

import pytest

from repro.graph import KNNGraph
from repro.result import BuildResult, track_build
from repro.similarity import ExactEngine


class TestBuildResult:
    def test_scan_rate(self):
        result = BuildResult(graph=KNNGraph(10, 3), seconds=1.0, comparisons=45)
        assert result.scan_rate == pytest.approx(1.0)  # 45 == C(10,2)

    def test_scan_rate_single_user(self):
        result = BuildResult(graph=KNNGraph(1, 3), seconds=1.0, comparisons=0)
        assert result.scan_rate == 0.0

    def test_extra_defaults_empty(self):
        result = BuildResult(graph=KNNGraph(2, 1), seconds=0.1, comparisons=1)
        assert result.extra == {}


class TestTrackBuild:
    def test_measures_time_and_comparisons(self, tiny_dataset):
        engine = ExactEngine(tiny_dataset)
        with track_build(engine) as info:
            engine.pair(0, 1)
            engine.pair(0, 2)
            time.sleep(0.01)
        assert info["comparisons"] == 2
        assert info["seconds"] >= 0.01

    def test_delta_not_absolute(self, tiny_dataset):
        """Counts from earlier runs on the same engine are excluded."""
        engine = ExactEngine(tiny_dataset)
        engine.pair(0, 1)
        with track_build(engine) as info:
            engine.pair(1, 2)
        assert info["comparisons"] == 1

    def test_records_on_exception(self, tiny_dataset):
        engine = ExactEngine(tiny_dataset)
        info_ref = None
        with pytest.raises(RuntimeError):
            with track_build(engine) as info:
                info_ref = info
                engine.pair(0, 1)
                raise RuntimeError("boom")
        assert info_ref["comparisons"] == 1
        assert "seconds" in info_ref
