"""Unit tests for repro.core.merge (Alg. 3)."""

import numpy as np
import pytest

from repro.core import merge_partials
from repro.core.local_knn import PartialKNN
from repro.graph.heap import EMPTY


def _partial(users, edges, k):
    """Build a PartialKNN from {user: [(nbr, score), ...]}."""
    users = np.asarray(users, dtype=np.int64)
    ids = np.full((users.size, k), EMPTY, dtype=np.int32)
    scores = np.full((users.size, k), -np.inf, dtype=np.float64)
    for pos, u in enumerate(users):
        for slot, (v, s) in enumerate(edges.get(int(u), [])):
            ids[pos, slot] = v
            scores[pos, slot] = s
    return PartialKNN(users, ids, scores)


class TestMergePartials:
    def test_single_partial_roundtrip(self):
        p = _partial([0, 1], {0: [(1, 0.5)], 1: [(0, 0.5)]}, k=2)
        graph = merge_partials([p], n_users=3, k=2)
        assert graph.to_dict()[0] == [(1, 0.5)]
        assert graph.to_dict()[2] == []

    def test_keeps_best_k_across_partials(self):
        p1 = _partial([0], {0: [(1, 0.2), (2, 0.4)]}, k=2)
        p2 = _partial([0], {0: [(3, 0.9), (4, 0.1)]}, k=2)
        graph = merge_partials([p1, p2], n_users=5, k=2)
        assert {v for v, _ in graph.to_dict()[0]} == {3, 2}

    def test_duplicate_edges_not_doubled(self):
        p1 = _partial([0], {0: [(1, 0.5)]}, k=3)
        p2 = _partial([0], {0: [(1, 0.5), (2, 0.3)]}, k=3)
        graph = merge_partials([p1, p2], n_users=3, k=3)
        assert graph.to_dict()[0] == [(1, 0.5), (2, 0.3)]

    def test_merge_equals_offline_topk(self, rng):
        """Merging many partials == offline top-k over the union of all
        candidate edges (the paper's t*k -> k reduction)."""
        n, k, t = 30, 4, 5
        partials = []
        edges_by_user: dict[int, dict[int, float]] = {u: {} for u in range(n)}
        for _ in range(t):
            edges = {}
            for u in range(n):
                cands = rng.choice(n - 1, size=k, replace=False)
                cands[cands >= u] += 1
                pairs = []
                for v in cands:
                    s = round(float(rng.random()), 3)
                    # similarities are deterministic per pair: keep one value
                    s = edges_by_user[u].setdefault(int(v), s)
                    pairs.append((int(v), s))
                edges[u] = pairs
            partials.append(_partial(np.arange(n), edges, k))

        graph = merge_partials(partials, n_users=n, k=k)
        for u in range(n):
            union = edges_by_user[u]
            ids = np.array(sorted(union))
            scores = np.array([union[int(v)] for v in ids])
            order = np.lexsort((ids, -scores))[:k]
            expected = {int(ids[j]) for j in order}
            got = set(graph.neighbors(u).tolist())
            assert got == expected, f"user {u}"

    def test_empty_partials(self):
        graph = merge_partials([], n_users=4, k=2)
        assert graph.edge_count() == 0
