"""Integration tests for Cluster-and-Conquer (repro.core)."""

import numpy as np
import pytest

from repro import C2Params, cluster_and_conquer, make_engine, paper_params
from repro.baselines import brute_force_knn
from repro.graph import quality
from repro.similarity import ExactEngine


@pytest.fixture(scope="module")
def exact(medium_dataset):
    return brute_force_knn(ExactEngine(medium_dataset), k=10).graph


def _params(**kw):
    base = dict(k=10, n_buckets=32, n_hashes=6, split_threshold=100, seed=1)
    base.update(kw)
    return C2Params(**base)


class TestC2EndToEnd:
    def test_quality_close_to_exact(self, medium_dataset, exact):
        engine = ExactEngine(medium_dataset)
        result = cluster_and_conquer(engine, _params())
        q = quality(result.graph, exact, medium_dataset)
        assert q > 0.85

    def test_goldfinger_backend_quality(self, medium_dataset, exact):
        engine = make_engine(medium_dataset, n_bits=1024)
        result = cluster_and_conquer(engine, _params())
        q = quality(result.graph, exact, medium_dataset)
        assert q > 0.8

    def test_fewer_comparisons_than_bruteforce(self, medium_dataset):
        n = medium_dataset.n_users
        engine = ExactEngine(medium_dataset)
        result = cluster_and_conquer(engine, _params(n_hashes=2))
        assert result.comparisons < n * (n - 1) // 2

    def test_deterministic_given_seed(self, medium_dataset):
        a = cluster_and_conquer(ExactEngine(medium_dataset), _params())
        b = cluster_and_conquer(ExactEngine(medium_dataset), _params())
        assert np.array_equal(a.graph.heaps.ids, b.graph.heaps.ids)

    def test_parallel_equals_serial(self, medium_dataset):
        serial = cluster_and_conquer(ExactEngine(medium_dataset), _params(n_workers=1))
        parallel = cluster_and_conquer(ExactEngine(medium_dataset), _params(n_workers=4))
        assert np.array_equal(serial.graph.heaps.ids, parallel.graph.heaps.ids)

    def test_extra_diagnostics(self, medium_dataset):
        result = cluster_and_conquer(ExactEngine(medium_dataset), _params())
        extra = result.extra
        assert extra["n_clusters"] == len(extra["cluster_sizes"])
        assert extra["time_clustering"] >= 0
        assert extra["time_local_knn"] >= 0
        assert extra["time_merge"] >= 0
        assert extra["max_cluster_size"] == extra["cluster_sizes"][0]

    def test_more_hashes_improve_quality(self, medium_dataset, exact):
        """Fig. 6's t trade-off: more hash functions -> better quality."""
        engine = ExactEngine(medium_dataset)
        q1 = quality(
            cluster_and_conquer(engine, _params(n_hashes=1)).graph, exact, medium_dataset
        )
        q8 = quality(
            cluster_and_conquer(engine, _params(n_hashes=8)).graph, exact, medium_dataset
        )
        assert q8 > q1

    def test_minhash_variant_runs(self, medium_dataset, exact):
        engine = ExactEngine(medium_dataset)
        result = cluster_and_conquer(
            engine, _params(hash_family="minhash", split_threshold=None)
        )
        q = quality(result.graph, exact, medium_dataset)
        assert q > 0.5
        assert result.extra["n_splits"] == 0

    def test_every_user_gets_neighbors(self, medium_dataset):
        result = cluster_and_conquer(ExactEngine(medium_dataset), _params())
        degrees = (result.graph.heaps.ids != -1).sum(axis=1)
        assert degrees.min() >= 1

    def test_neighbors_carry_true_engine_scores(self, medium_dataset):
        engine = ExactEngine(medium_dataset)
        result = cluster_and_conquer(engine, _params(n_hashes=2))
        for u in (0, 13, 99):
            ids, scores = result.graph.neighborhood(u)
            for v, s in zip(ids, scores):
                assert s == pytest.approx(engine._pair(u, int(v)))


class TestC2Params:
    def test_defaults_match_paper(self):
        p = C2Params()
        assert (p.k, p.n_buckets, p.n_hashes, p.split_threshold, p.rho) == (
            30,
            4096,
            8,
            2000,
            5,
        )

    def test_paper_params_per_dataset(self):
        assert paper_params("DBLP").n_hashes == 15
        assert paper_params("GW").n_hashes == 15
        assert paper_params("ml10M").n_hashes == 8
        assert paper_params("ml20M").split_threshold == 4000
        assert paper_params("AM").split_threshold == 2000

    def test_validation(self):
        with pytest.raises(ValueError):
            C2Params(k=0)
        with pytest.raises(ValueError):
            C2Params(n_hashes=0)
        with pytest.raises(ValueError):
            C2Params(hash_family="simhash")
        with pytest.raises(ValueError):
            C2Params(split_threshold=1)

    def test_with_(self):
        p = C2Params().with_(n_hashes=3)
        assert p.n_hashes == 3
        assert p.k == 30
