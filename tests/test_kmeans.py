"""Unit tests for repro.baselines.kmeans (§VII [41] comparison point)."""

import numpy as np
import pytest

from repro.baselines import brute_force_knn, kmeans_cluster_dataset, kmeans_knn
from repro.graph import quality
from repro.similarity import ExactEngine


class TestKMeansClustering:
    def test_partitions_users(self, small_dataset):
        engine = ExactEngine(small_dataset)
        result = kmeans_cluster_dataset(engine, n_clusters=8, seed=1)
        members = np.sort(np.concatenate([c.users for c in result.clusters]))
        assert np.array_equal(members, np.arange(small_dataset.n_users))

    def test_charges_assignment_similarities(self, small_dataset):
        engine = ExactEngine(small_dataset)
        kmeans_cluster_dataset(engine, n_clusters=8, n_iterations=3, seed=1)
        assert engine.comparisons == small_dataset.n_users * 8 * 3

    def test_groups_similar_users(self, small_dataset):
        """Users sharing a cluster must be more similar on average than
        random pairs (k-means finds the planted communities)."""
        from repro.similarity import jaccard_matrix

        engine = ExactEngine(small_dataset)
        result = kmeans_cluster_dataset(engine, n_clusters=10, n_iterations=10, seed=0)
        sims = jaccard_matrix(small_dataset)
        np.fill_diagonal(sims, np.nan)
        within = []
        for c in result.clusters:
            if c.size >= 2:
                block = sims[np.ix_(c.users, c.users)]
                within.append(np.nanmean(block))
        assert np.mean(within) > 1.25 * np.nanmean(sims)

    def test_cluster_count_capped_by_users(self, tiny_dataset):
        engine = ExactEngine(tiny_dataset)
        result = kmeans_cluster_dataset(engine, n_clusters=100, seed=0)
        assert len(result.clusters) <= tiny_dataset.n_users

    def test_validation(self, tiny_dataset):
        with pytest.raises(ValueError):
            kmeans_cluster_dataset(ExactEngine(tiny_dataset), n_clusters=0)

    def test_deterministic(self, small_dataset):
        a = kmeans_cluster_dataset(ExactEngine(small_dataset), 6, seed=3)
        b = kmeans_cluster_dataset(ExactEngine(small_dataset), 6, seed=3)
        for ca, cb in zip(a.clusters, b.clusters):
            assert np.array_equal(ca.users, cb.users)


class TestKMeansKNN:
    def test_quality_reasonable(self, medium_dataset):
        exact = brute_force_knn(ExactEngine(medium_dataset), k=10).graph
        result = kmeans_knn(ExactEngine(medium_dataset), k=10, n_clusters=12, seed=1)
        assert quality(result.graph, exact, medium_dataset) > 0.75

    def test_comparisons_include_clustering(self, medium_dataset):
        result = kmeans_knn(ExactEngine(medium_dataset), k=10, n_clusters=12, seed=1)
        assert result.comparisons >= result.extra["clustering_comparisons"]

    def test_single_membership(self, small_dataset):
        """[41]'s design: each user in exactly one cluster (no FRH-style
        redundancy), so cluster sizes sum to n."""
        result = kmeans_knn(ExactEngine(small_dataset), k=5, n_clusters=6, seed=1)
        assert result.extra["cluster_sizes"].sum() == small_dataset.n_users
