"""Unit tests for repro.core.theory (Theorems 1-2)."""

import numpy as np
import pytest

from repro.core import GenerativeHash
from repro.core.theory import (
    collision_density_threshold,
    count_collisions,
    empirical_same_hash_probability,
    paper_numeric_example,
    same_hash_probability,
    theorem1_lower_bound,
    theorem1_upper_bound,
    theorem2_probability_bound,
)
from repro.similarity import jaccard_pair


class TestClosedForms:
    def test_lower_bound_value(self):
        assert theorem1_lower_bound(0.5, kappa=10, ell=100) == pytest.approx(0.4)

    def test_upper_bound_value(self):
        # (J + x) / (1 - x) with x = 0.1
        assert theorem1_upper_bound(0.5, kappa=10, ell=100) == pytest.approx(0.6 / 0.9)

    def test_upper_bound_tighter_than_expansion(self):
        """Exact form <= J + 3x + 9x^2 for x <= 1/2 (Eq. 5 region)."""
        for j in (0.1, 0.5, 0.9):
            for kappa in (0, 5, 20, 49):
                x = kappa / 100
                exact = theorem1_upper_bound(j, kappa, 100)
                expansion = j + 3 * x + 9 * x * x
                assert exact <= expansion + 1e-9

    def test_zero_collisions_brackets_jaccard(self):
        assert theorem1_lower_bound(0.3, 0, 50) == pytest.approx(0.3)
        assert theorem1_upper_bound(0.3, 0, 50) == pytest.approx(0.3)

    def test_threshold_monotone_in_d(self):
        assert collision_density_threshold(256, 4096, 1.5) > collision_density_threshold(
            256, 4096, 0.5
        )

    def test_probability_bound_in_unit_interval(self):
        for d in (0.5, 1.0, 2.0):
            p = theorem2_probability_bound(256, 4096, d)
            assert 0.0 <= p <= 1.0

    def test_probability_increases_with_d(self):
        p1 = theorem2_probability_bound(256, 4096, 0.5)
        p2 = theorem2_probability_bound(256, 4096, 1.5)
        assert p2 > p1

    def test_validation(self):
        with pytest.raises(ValueError):
            theorem1_lower_bound(0.5, 0, 0)
        with pytest.raises(ValueError):
            theorem1_upper_bound(0.5, 100, 100)
        with pytest.raises(ValueError):
            theorem2_probability_bound(256, 4096, 0)


class TestPaperExample:
    def test_quoted_numbers(self):
        """margin 0.078, upper 0.234, probability 0.998 (see module note
        on the paper's d=0.5 vs d=1.5 discrepancy)."""
        ex = paper_numeric_example()
        assert ex.lower_margin == pytest.approx(0.078, abs=0.001)
        assert ex.upper_margin == pytest.approx(0.234, abs=0.002)
        assert ex.probability == pytest.approx(0.998, abs=0.001)

    def test_paper_stated_d_does_not_reproduce(self):
        """Documents the typo: d=0.5 gives probability ~0.58, not 0.998."""
        assert theorem2_probability_bound(256, 4096, 0.5) < 0.7


class TestExactQuantities:
    def test_count_collisions_no_collision(self):
        h = GenerativeHash(10, 1_000_000, seed=0)
        union = np.arange(10)
        assert count_collisions(h, union) == 10 - np.unique(h(union)).size

    def test_count_collisions_single_bucket(self):
        h = GenerativeHash(10, 1, seed=0)
        assert count_collisions(h, np.arange(10)) == 9

    def test_same_hash_probability_identical_profiles(self):
        h = GenerativeHash(20, 8, seed=1)
        p = np.arange(10)
        assert same_hash_probability(h, p, p) == 1.0

    def test_same_hash_probability_bracketed_by_theorem1(self, rng):
        """Eq. (6) value must lie within the Theorem 1 bracket computed
        from the same hash's collision count — for every random hash."""
        n_items = 500
        p1 = np.sort(rng.choice(n_items, size=60, replace=False))
        p2_pool = np.concatenate([p1[:30], rng.choice(n_items, 60, replace=False)])
        p2 = np.unique(p2_pool)[:60]
        union = np.union1d(p1, p2)
        j = jaccard_pair(p1, p2)
        ell = union.size
        for seed in range(50):
            h = GenerativeHash(n_items, 64, seed=seed)
            kappa = count_collisions(h, union)
            prob = same_hash_probability(h, p1, p2)
            assert theorem1_lower_bound(j, kappa, ell) <= prob + 1e-9
            assert prob <= theorem1_upper_bound(j, kappa, ell) + 1e-9


class TestMonteCarlo:
    def test_empirical_probability_tracks_jaccard(self, rng):
        """P[H(u1)=H(u2)] ~= J for a large hash space (few collisions)."""
        n_items = 2000
        shared = rng.choice(n_items, size=40, replace=False)
        extra1 = rng.choice(n_items, size=40, replace=False)
        extra2 = rng.choice(n_items, size=40, replace=False)
        p1 = np.unique(np.concatenate([shared, extra1]))
        p2 = np.unique(np.concatenate([shared, extra2]))
        j = jaccard_pair(p1, p2)
        est = empirical_same_hash_probability(
            p1, p2, n_items, n_buckets=4096, n_trials=400, seed=1
        )
        assert est == pytest.approx(j, abs=0.1)

    def test_identical_users_always_collide(self):
        p = np.arange(30)
        est = empirical_same_hash_probability(p, p, 100, 16, n_trials=50)
        assert est == 1.0
