"""Property tests for durable-serving recovery (repro.persist, PR 5).

Randomized mutation tapes (fixed seeds, no hypothesis dependency)
drive a persisted :class:`~repro.online.OnlineIndex` and check the
durability contract against the live index as oracle:

* after any tape — interleaving add_items / add_user / remove_user /
  refills and randomly-placed checkpoints — a recovery from disk is
  **state-parity identical** to the live index: version, per-row
  neighbour-id sets (edge digest), reverse adjacency, cluster routing,
  active users and profiles;
* recovery charges **zero similarity evaluations** no matter where the
  checkpoints fell;
* serving through the recovered index returns exactly the live
  index's answers;
* chopping any suffix off the WAL recovers a valid *earlier* version
  (the log is consistent at every prefix, not just at the end).

The CI property matrix shifts the seed base via ``REPRO_PROP_SEED`` so
tier-1 stays at two seeds per run but tapes vary across jobs.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import C2Params
from repro.data import SyntheticSpec, generate
from repro.online import OnlineIndex
from repro.persist import DurableIndex, WriteAheadLog
from repro.persist.wal import _HEADER, MAGIC
from repro.serve import GraphSearcher
from repro.serve.replica import edge_digest

K = 6
N_OPS = 40

_SEED_BASE = int(os.environ.get("REPRO_PROP_SEED", "0"))
SEEDS = [_SEED_BASE, _SEED_BASE + 1]


def _index(seed):
    spec = SyntheticSpec(
        name="propdur", n_users=140, n_items=280, mean_profile_size=22.0,
        n_communities=8, community_pool_size=60, min_profile_size=8,
    )
    dataset = generate(spec, seed=seed)
    params = C2Params(k=K, n_buckets=64, n_hashes=4, split_threshold=60, seed=1)
    return OnlineIndex.build(dataset, params=params)


def _mutate(index, rng):
    """One random mutation (including refill-triggering reads)."""
    active = index.dataset.active_users()
    op = rng.random()
    if op < 0.4 and active.size:
        user = int(rng.choice(active))
        index.add_items(user, rng.integers(0, index.dataset.n_items, size=2))
    elif op < 0.65:
        index.add_user(rng.integers(0, index.dataset.n_items, size=12))
    elif op < 0.85 and active.size > 40:
        index.remove_user(int(rng.choice(active)))
    elif active.size:
        # Reading a degraded row refills it — a mutation with its own
        # delta, so recovery must reproduce the repair too.
        index.neighborhood(int(rng.choice(active)))


def _assert_parity(live: OnlineIndex, recovered: OnlineIndex) -> None:
    assert recovered.version == live.version
    assert edge_digest(recovered.graph.heaps) == edge_digest(live.graph.heaps)
    assert np.array_equal(
        recovered.dataset.active_users(), live.dataset.active_users()
    )
    for user in live.dataset.active_users():
        assert np.array_equal(
            recovered.dataset.profile(int(user)), live.dataset.profile(int(user))
        )
        assert recovered._assign[int(user)] == live._assign[int(user)]
    assert recovered.graph.heaps.edge_sets() == live.graph.heaps.edge_sets()
    rev_live = live.reverse_index()
    rev_rec = recovered.reverse_index()
    for user in range(live.n_users):
        assert np.array_equal(
            np.sort(rev_rec.holders(user)), np.sort(rev_live.holders(user))
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_recovery_state_parity_after_random_tape(seed, tmp_path):
    index = _index(seed)
    index.reverse_index()
    durable = index.attach_persistence(tmp_path, checkpoint_bytes=0)
    rng = np.random.default_rng(seed + 1000)
    for step in range(N_OPS):
        _mutate(index, rng)
        if rng.random() < 0.1:
            durable.checkpoint()  # randomly-placed checkpoints
    durable.close()
    recovered = DurableIndex.recover(tmp_path)
    assert recovered.recovery.evaluations == 0
    _assert_parity(index, recovered.index)
    recovered.close()


@pytest.mark.parametrize("seed", SEEDS)
def test_recovered_serving_equals_live_serving(seed, tmp_path):
    index = _index(seed)
    durable = index.attach_persistence(tmp_path, checkpoint_bytes=0)
    rng = np.random.default_rng(seed + 2000)
    for _ in range(N_OPS):
        _mutate(index, rng)
    durable.close()
    recovered = DurableIndex.recover(tmp_path)
    live = GraphSearcher(index, ef=16)
    back = GraphSearcher(recovered.index, ef=16)
    for _ in range(8):
        profile = rng.integers(0, index.dataset.n_items, size=14)
        a = live.top_k(profile, k=K)
        b = back.top_k(profile, k=K)
        assert np.array_equal(a.ids, b.ids)
        np.testing.assert_allclose(a.scores, b.scores)
    recovered.close()


@pytest.mark.parametrize("seed", SEEDS)
def test_every_wal_prefix_recovers_a_valid_version(seed, tmp_path):
    """Chopping the log after any record yields that record's state.

    The crash model: a restart may find any prefix of the appended
    stream on disk. Each prefix must recover cleanly to exactly the
    version its last record produced — checked against digests
    collected from the live index as the tape ran.
    """
    index = _index(seed)
    durable = index.attach_persistence(
        tmp_path, checkpoint_bytes=0, segment_bytes=1 << 12
    )
    rng = np.random.default_rng(seed + 3000)
    digests = {index.version: edge_digest(index.graph.heaps)}
    for _ in range(N_OPS // 2):
        _mutate(index, rng)
        digests[index.version] = edge_digest(index.graph.heaps)
    durable.close()

    # Walk the committed record boundaries of the final segment and
    # truncate to each in turn (deepest cut last).
    wal = WriteAheadLog(tmp_path)
    seg = wal.segments()[-1]
    wal.close()
    data = seg.read_bytes()
    boundaries = []
    offset = len(MAGIC)
    while offset < len(data):
        _crc, length, seq = _HEADER.unpack_from(data, offset)
        offset += _HEADER.size + length
        boundaries.append((offset, seq))
    for end, seq in reversed(boundaries[:-1]):
        seg.write_bytes(data[:end])
        recovered = DurableIndex.recover(tmp_path)
        assert recovered.index.version == seq
        assert edge_digest(recovered.index.graph.heaps) == digests[seq]
        recovered.close()
