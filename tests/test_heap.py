"""Unit tests for repro.graph.heap (bounded neighbour lists)."""

import numpy as np
import pytest

from repro.graph import EMPTY, NeighborHeaps


class TestPush:
    def test_fills_empty_slots(self):
        h = NeighborHeaps(2, 3)
        assert h.push(0, 1, 0.5)
        assert h.size(0) == 1
        assert h.contains(0, 1)

    def test_rejects_self_loop(self):
        h = NeighborHeaps(2, 3)
        assert not h.push(0, 0, 0.9)
        assert h.size(0) == 0

    def test_duplicate_never_doubles(self):
        h = NeighborHeaps(2, 3)
        h.push(0, 1, 0.5)
        h.push(0, 1, 0.9)
        assert h.size(0) == 1

    def test_duplicate_keeps_max_score(self):
        h = NeighborHeaps(2, 3)
        h.push(0, 1, 0.5)
        assert h.push(0, 1, 0.9)  # raises the stored score
        assert not h.push(0, 1, 0.7)  # lower re-offer is a no-op
        _, scores = h.items(0)
        assert scores[0] == pytest.approx(0.9)

    def test_evicts_minimum_when_full(self):
        h = NeighborHeaps(1, 2)
        h.push(0, 1, 0.3)
        h.push(0, 2, 0.5)
        assert h.push(0, 3, 0.4)  # evicts 1 (score 0.3)
        assert not h.contains(0, 1)
        assert h.contains(0, 2)
        assert h.contains(0, 3)

    def test_rejects_worse_than_minimum_when_full(self):
        h = NeighborHeaps(1, 2)
        h.push(0, 1, 0.3)
        h.push(0, 2, 0.5)
        assert not h.push(0, 3, 0.2)

    def test_rejects_equal_to_minimum_when_full(self):
        h = NeighborHeaps(1, 2)
        h.push(0, 1, 0.3)
        h.push(0, 2, 0.5)
        assert not h.push(0, 3, 0.3)

    def test_min_score(self):
        h = NeighborHeaps(1, 2)
        assert h.min_score(0) == -np.inf
        h.push(0, 1, 0.3)
        h.push(0, 2, 0.5)
        assert h.min_score(0) == pytest.approx(0.3)

    def test_rejects_k_zero(self):
        with pytest.raises(ValueError):
            NeighborHeaps(1, 0)


class TestItems:
    def test_sorted_best_first(self):
        h = NeighborHeaps(1, 4)
        h.push(0, 1, 0.2)
        h.push(0, 2, 0.9)
        h.push(0, 3, 0.5)
        ids, scores = h.items(0)
        assert list(ids) == [2, 3, 1]
        assert list(scores) == pytest.approx([0.9, 0.5, 0.2])

    def test_neighbors_excludes_empty(self):
        h = NeighborHeaps(1, 4)
        h.push(0, 5, 0.1)
        assert set(h.neighbors(0)) == {5}


class TestPushBatch:
    def test_basic_insert(self):
        h = NeighborHeaps(1, 3)
        inserted = h.push_batch(0, np.array([1, 2]), np.array([0.5, 0.7]))
        assert set(inserted.tolist()) == {1, 2}
        assert h.size(0) == 2

    def test_keeps_top_k(self):
        h = NeighborHeaps(1, 2)
        h.push_batch(0, np.array([1, 2, 3, 4]), np.array([0.1, 0.9, 0.5, 0.3]))
        assert set(h.neighbors(0).tolist()) == {2, 3}

    def test_merges_with_existing(self):
        h = NeighborHeaps(1, 2)
        h.push(0, 1, 0.8)
        inserted = h.push_batch(0, np.array([2, 3]), np.array([0.9, 0.1]))
        assert set(inserted.tolist()) == {2}
        assert set(h.neighbors(0).tolist()) == {1, 2}

    def test_filters_self(self):
        h = NeighborHeaps(1, 3)
        inserted = h.push_batch(0, np.array([0, 1]), np.array([1.0, 0.5]))
        assert set(inserted.tolist()) == {1}
        assert not h.contains(0, 0)

    def test_duplicate_candidates_keep_max(self):
        h = NeighborHeaps(1, 3)
        h.push_batch(0, np.array([1, 1, 1]), np.array([0.2, 0.9, 0.4]))
        ids, scores = h.items(0)
        assert list(ids) == [1]
        assert scores[0] == pytest.approx(0.9)

    def test_empty_batch(self):
        h = NeighborHeaps(1, 3)
        assert h.push_batch(0, np.array([]), np.array([])).size == 0

    def test_reoffering_same_batch_is_stable(self):
        """Re-offering identical candidates must produce zero insertions
        even with score ties (no churn -> greedy delta-termination works)."""
        h = NeighborHeaps(1, 3)
        cands = np.array([1, 2, 3, 4, 5])
        scores = np.array([0.5, 0.5, 0.5, 0.5, 0.5])
        h.push_batch(0, cands, scores)
        again = h.push_batch(0, cands, scores)
        assert again.size == 0

    def test_matches_scalar_pushes(self, rng):
        """Batch insert must equal the offline top-k of everything seen."""
        h_batch = NeighborHeaps(1, 5)
        cands = rng.permutation(40)[:20] + 1
        scores = rng.random(20)
        h_batch.push_batch(0, cands, scores)
        # offline reference: top-5 by (-score, id)
        order = np.lexsort((cands, -scores))[:5]
        assert set(h_batch.neighbors(0).tolist()) == set(cands[order].tolist())

    def test_empty_marker_value(self):
        assert EMPTY == -1


class TestGeometricGrowth:
    """m one-row grows must cost O(log m) reallocations, not m."""

    def test_reallocation_count_is_logarithmic(self):
        h = NeighborHeaps(4, 3)
        m = 1000
        for n in range(5, 5 + m):
            h.grow(n)
        assert h.n == 4 + m
        # doubling from 4: 8, 16, ..., 1024 -> ceil(log2(1004/4)) = 8
        assert h.reallocations <= int(np.ceil(np.log2((4 + m) / 4))) + 1

    def test_grown_rows_behave_like_fresh_rows(self):
        h = NeighborHeaps(2, 3)
        h.push(0, 1, 0.5)
        for n in range(3, 40):
            h.grow(n)
        assert h.ids.shape == (39, 3)
        assert h.size(0) == 1 and h.contains(0, 1)  # survives reallocation
        assert h.size(35) == 0
        assert h.push(35, 2, 0.7)
        ids, scores = h.items(35)
        assert list(ids) == [2] and scores[0] == pytest.approx(0.7)

    def test_views_stay_coherent_after_growth(self):
        """Writes through ids/scores land in the backing buffer."""
        h = NeighborHeaps(2, 2)
        h.grow(50)
        h.ids[49, 0] = 7
        h.scores[49, 0] = 0.25
        assert h.contains(49, 7)
        h.grow(60)  # re-slices (and possibly reallocates) the views
        assert h.contains(49, 7)
        assert h.min_score(49) == -np.inf

    def test_purge_covers_only_live_rows(self):
        h = NeighborHeaps(2, 2)
        h.grow(10)  # capacity may exceed 10; purge must not see spare rows
        h.push(3, 9, 0.5)
        rows = h.purge_id(9)
        assert list(rows) == [3]
        assert h.size(3) == 0


class TestEdgeJournal:
    """The journal must record exactly the structural edge changes."""

    def _journaled(self, n=6, k=3):
        h = NeighborHeaps(n, k)
        h.attach_journal()
        return h

    def test_detached_by_default(self):
        h = NeighborHeaps(4, 2)
        h.push(0, 1, 0.5)
        assert h.journal is None
        assert h.drain_journal() == []

    def test_push_records_add(self):
        h = self._journaled()
        h.push(0, 1, 0.5)
        assert h.drain_journal() == [(0, 1, True)]
        assert h.drain_journal() == []  # drained

    def test_push_eviction_records_drop_then_add(self):
        h = self._journaled(k=1)
        h.push(0, 1, 0.5)
        h.drain_journal()
        h.push(0, 2, 0.9)  # evicts 1
        assert h.drain_journal() == [(0, 1, False), (0, 2, True)]

    def test_score_improvement_is_not_structural(self):
        h = self._journaled()
        h.push(0, 1, 0.5)
        h.drain_journal()
        h.push(0, 1, 0.8)  # same edge, better score
        assert h.drain_journal() == []

    def test_rejected_push_records_nothing(self):
        h = self._journaled(k=1)
        h.push(0, 1, 0.9)
        h.drain_journal()
        assert not h.push(0, 2, 0.5)
        assert h.drain_journal() == []

    def test_push_batch_records_net_change(self):
        h = self._journaled(k=2)
        h.push_batch(0, np.array([1, 2]), np.array([0.5, 0.6]))
        assert sorted(h.drain_journal()) == [(0, 1, True), (0, 2, True)]
        h.push_batch(0, np.array([3]), np.array([0.9]))  # evicts 1 (min)
        assert sorted(h.drain_journal()) == [(0, 1, False), (0, 3, True)]

    def test_clear_and_purge_record_drops(self):
        h = self._journaled()
        h.push(0, 1, 0.5)
        h.push(2, 1, 0.4)
        h.push(2, 3, 0.6)
        h.drain_journal()
        h.clear_row(2)
        assert sorted(h.drain_journal()) == [(2, 1, False), (2, 3, False)]
        h.purge_id(1)
        assert h.drain_journal() == [(0, 1, False)]

    def test_purge_id_rows_matches_full_purge(self):
        full = NeighborHeaps(8, 3)
        targeted = NeighborHeaps(8, 3)
        for h in (full, targeted):
            rng = np.random.default_rng(4)  # identical fills for both
            for u in range(8):
                for v in rng.choice(8, size=3, replace=False):
                    if v != u:
                        h.push(u, int(v), float(rng.random()))
        # identical fill order → identical tables
        holders = np.flatnonzero((targeted.ids == 5).any(axis=1))
        a = full.purge_id(5)
        b = targeted.purge_id_rows(5, holders)
        assert np.array_equal(a, b)
        assert np.array_equal(full.ids, targeted.ids)
        assert np.array_equal(full.scores, targeted.scores)

    def test_purge_id_rows_ignores_rows_without_the_id(self):
        h = self._journaled()
        h.push(0, 1, 0.5)
        h.drain_journal()
        rows = h.purge_id_rows(1, np.array([0, 2, 4]))
        assert list(rows) == [0]
        assert h.drain_journal() == [(0, 1, False)]


class TestPickleRoundtrip:
    """Snapshot clones must keep the view/buffer invariant (PR 5 fix)."""

    def test_views_rebind_to_buffers_after_unpickle(self):
        import pickle

        h = NeighborHeaps(4, 3)
        h.push(0, 1, 0.5)
        h.grow(6)  # doubles capacity: views now cover a prefix only
        h2 = pickle.loads(pickle.dumps(h))
        assert h2.ids.base is h2._ids_buf
        assert h2.scores.base is h2._scores_buf

    def test_within_capacity_grow_keeps_post_unpickle_edits(self):
        """The corruption the WAL property suite caught: a clone taken
        while spare capacity existed lost every post-clone edge change
        on its next within-capacity grow (the views were rebound to the
        stale pickled buffer)."""
        import pickle

        h = NeighborHeaps(4, 3)
        h.push(0, 1, 0.5)
        h.grow(6)  # capacity now 8 > n
        h2 = pickle.loads(pickle.dumps(h))
        h2.push(0, 2, 0.9)  # post-clone edit
        h2.grow(7)  # within whatever capacity the clone kept
        assert h2.contains(0, 2)
        assert h2.ids.base is h2._ids_buf
