"""End-to-end audit of the similarity-comparison accounting protocol.

The paper's hardware-independent cost metric is the number of
similarity evaluations, so the counting protocol *is* the measurement
instrument: solvers that exploit symmetry compute with
``block(..., counted=False)`` and charge an analytic pair count via
``charge()`` instead. These tests pin that protocol end to end for
every engine backend — both against the paper's closed-form cost
models and against an independent tally of the evaluations actually
performed by the backend kernels.
"""

import numpy as np
import pytest

from repro import C2Params, cluster_and_conquer
from repro.baselines import brute_force_knn
from repro.core import brute_force_local, hyrec_local, solve_cluster
from repro.online import MutableDataset, OnlineIndex
from repro.similarity import make_engine

BACKENDS = ["exact", "goldfinger", "bloom"]


def _engine(dataset, backend):
    return make_engine(dataset, backend=backend, n_bits=256)


class _Audit:
    """Independently tallies raw kernel evaluations on an engine.

    Wraps the uncounted backend hooks, so ``audit.pairs`` is the
    number of (u, v) similarity values the backend truly produced —
    the ground truth the ``comparisons`` counter is audited against.
    """

    def __init__(self, engine):
        from repro.similarity.engine import SimilarityEngine

        self.pairs = 0
        orig_otm = engine._one_to_many

        def one_to_many(user, others):
            self.pairs += int(np.asarray(others).size)
            return orig_otm(user, others)

        engine._one_to_many = one_to_many
        # Only audit _block where the backend truly overrides it — the
        # base implementation delegates to _one_to_many row by row and
        # would be double-counted.
        if type(engine)._block is not SimilarityEngine._block:
            orig_block = engine._block

            def block(us, vs):
                self.pairs += int(np.asarray(us).size * np.asarray(vs).size)
                return orig_block(us, vs)

            engine._block = block


class TestAnalyticCostModels:
    """comparisons must equal the paper's closed-form counts exactly."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matrix_charges_distinct_pairs(self, small_dataset, backend):
        engine = _engine(small_dataset, backend)
        users = np.arange(40)
        engine.matrix(users)
        assert engine.comparisons == 40 * 39 // 2

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_brute_force_local_charges_pair_count(self, small_dataset, backend):
        engine = _engine(small_dataset, backend)
        users = np.arange(55)
        brute_force_local(engine, users, k=5)
        assert engine.comparisons == 55 * 54 // 2

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_brute_force_knn_charges_pair_count(self, small_dataset, backend):
        engine = _engine(small_dataset, backend)
        n = small_dataset.n_users
        brute_force_knn(engine, k=5)
        assert engine.comparisons == n * (n - 1) // 2

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_uncounted_block_charges_nothing(self, small_dataset, backend):
        engine = _engine(small_dataset, backend)
        engine.block(np.arange(10), np.arange(20), counted=False)
        assert engine.comparisons == 0
        engine.charge(7)
        assert engine.comparisons == 7


class TestChargedMatchesPerformed:
    """Where no closed form exists (greedy solvers), the counter must
    equal an independent tally of evaluations the kernels performed."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_hyrec_local_counts_every_evaluation(self, small_dataset, backend):
        engine = _engine(small_dataset, backend)
        audit = _Audit(engine)
        hyrec_local(engine, np.arange(small_dataset.n_users), k=5, seed=3)
        assert engine.comparisons == audit.pairs

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_solve_cluster_hybrid_accounting(self, small_dataset, backend):
        """Below the rho·k² switch the analytic charge applies even
        though the kernel materialises a full (blocked) c×c product."""
        engine = _engine(small_dataset, backend)
        audit = _Audit(engine)
        users = np.arange(30)
        solve_cluster(engine, users, k=3, rho=5)  # 30 < 45 -> brute force
        assert engine.comparisons == 30 * 29 // 2
        assert audit.pairs == 30 * 30  # one symmetric block, both directions

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cluster_and_conquer_total_is_sum_of_cluster_models(
        self, small_dataset, backend
    ):
        """End to end: with every cluster below the Hyrec switch, the
        C² total must be exactly sum of |C|(|C|-1)/2 over clusters."""
        engine = _engine(small_dataset, backend)
        params = C2Params(k=10, n_buckets=32, n_hashes=4, split_threshold=100, seed=2)
        result = cluster_and_conquer(engine, params, keep_clustering=True)
        clusters = result.extra["clustering"].clusters
        assert all(c.size < params.rho * params.k**2 for c in clusters)
        expected = sum(c.size * (c.size - 1) // 2 for c in clusters)
        assert result.comparisons == expected

    def test_online_updates_are_fully_counted(self, small_dataset):
        """The online path must route every similarity through the
        counted API: the counter delta equals the kernel tally."""
        data = MutableDataset.from_dataset(small_dataset)
        engine = _engine(data, "goldfinger")
        params = C2Params(k=8, n_buckets=64, n_hashes=4, split_threshold=80, seed=1)
        index = OnlineIndex(engine, params=params)

        audit = _Audit(engine)
        base_charged = engine.comparisons
        rng = np.random.default_rng(0)
        for _ in range(20):
            u = int(rng.choice(index.dataset.active_users()))
            index.add_items(u, [int(rng.integers(0, data.n_items))])
        assert engine.comparisons - base_charged == audit.pairs
        assert index.update_comparisons == audit.pairs
