"""Unit/integration tests for repro.recommend."""

import numpy as np
import pytest

from repro.baselines import brute_force_knn
from repro.data import Dataset
from repro.graph import KNNGraph
from repro.recommend import evaluate_recall, recall_at, recommend_all, recommend_items
from repro.similarity import ExactEngine


@pytest.fixture()
def handmade():
    """u0 and u1 nearly identical; item 4 known to u1 only."""
    ds = Dataset.from_profiles(
        [
            [0, 1, 2, 3],
            [0, 1, 2, 4],
            [5, 6, 7],
            [5, 6, 8],
        ],
        n_items=9,
    )
    graph = KNNGraph(4, 2)
    graph.add(0, 1, 0.6)
    graph.add(1, 0, 0.6)
    graph.add(2, 3, 0.5)
    graph.add(3, 2, 0.5)
    return ds, graph


class TestRecommendItems:
    def test_recommends_neighbor_exclusive_item(self, handmade):
        ds, graph = handmade
        recs = recommend_items(ds, graph, user=0, n_recommendations=5)
        assert 4 in recs

    def test_excludes_own_items(self, handmade):
        ds, graph = handmade
        recs = recommend_items(ds, graph, user=0, n_recommendations=5)
        assert not set(recs) & ds.profile_set(0)

    def test_scores_order(self):
        """Items backed by more/better neighbours rank first."""
        ds = Dataset.from_profiles(
            [[0], [1, 2], [1, 3]],
            n_items=4,
        )
        graph = KNNGraph(3, 2)
        graph.add(0, 1, 0.9)
        graph.add(0, 2, 0.4)
        recs = recommend_items(ds, graph, user=0, n_recommendations=3)
        # item 1 scored 0.9+0.4, item 2 scored 0.9, item 3 scored 0.4
        assert list(recs) == [1, 2, 3]

    def test_no_neighbors_no_recs(self, handmade):
        ds, _ = handmade
        empty = KNNGraph(4, 2)
        assert recommend_items(ds, empty, 0).size == 0

    def test_limit_respected(self, handmade):
        ds, graph = handmade
        recs = recommend_items(ds, graph, user=0, n_recommendations=1)
        assert recs.size <= 1

    def test_recommend_all_shape(self, handmade):
        ds, graph = handmade
        recs = recommend_all(ds, graph, n_recommendations=3)
        assert len(recs) == 4


class TestRecallAt:
    def test_perfect_recall(self, handmade):
        ds, graph = handmade
        # hide item 4 from user 0's test set; the recommender finds it.
        test_indptr = np.array([0, 1, 1, 1, 1])
        test_indices = np.array([4], dtype=np.int32)
        r = recall_at(ds, graph, test_indptr, test_indices, n_recommendations=5)
        assert r == 1.0

    def test_zero_recall(self, handmade):
        ds, graph = handmade
        test_indptr = np.array([0, 1, 1, 1, 1])
        test_indices = np.array([8], dtype=np.int32)  # nobody recommends 8 to u0
        r = recall_at(ds, graph, test_indptr, test_indices, n_recommendations=5)
        assert r == 0.0

    def test_skips_users_without_test_items(self, handmade):
        ds, graph = handmade
        test_indptr = np.zeros(5, dtype=np.int64)
        test_indices = np.empty(0, dtype=np.int32)
        assert recall_at(ds, graph, test_indptr, test_indices) == 0.0


class TestEvaluateRecall:
    def test_end_to_end_beats_random(self, small_dataset):
        """KNN-based CF must beat chance by a wide margin on data with
        planted communities (the Table III sanity bar)."""

        def builder(train):
            return brute_force_knn(ExactEngine(train), k=10).graph

        result = evaluate_recall(small_dataset, builder, n_folds=3, seed=0)
        assert result.n_folds == 3
        assert len(result.fold_recalls) == 3
        # random recall ~ n_recs / n_items = 30/500 = 0.06
        assert result.mean_recall > 0.15

    def test_mean_consistent(self, small_dataset):
        def builder(train):
            return brute_force_knn(ExactEngine(train), k=5).graph

        result = evaluate_recall(small_dataset, builder, n_folds=2, seed=1)
        assert result.mean_recall == pytest.approx(
            float(np.mean(result.fold_recalls))
        )
