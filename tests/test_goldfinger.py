"""Unit tests for repro.similarity.goldfinger."""

import numpy as np
import pytest

from repro.data import Dataset
from repro.similarity import GoldFinger, jaccard_matrix


class TestConstruction:
    def test_rejects_bad_width(self, tiny_dataset):
        with pytest.raises(ValueError):
            GoldFinger(tiny_dataset, n_bits=100)
        with pytest.raises(ValueError):
            GoldFinger(tiny_dataset, n_bits=0)

    def test_word_layout(self, tiny_dataset):
        gf = GoldFinger(tiny_dataset, n_bits=256)
        assert gf.n_words == 4
        assert gf.fingerprints.shape == (6, 4)
        assert gf.fingerprints.dtype == np.uint64

    def test_fingerprint_size_bounded_by_profile(self, tiny_dataset):
        gf = GoldFinger(tiny_dataset, n_bits=1024)
        for u in range(tiny_dataset.n_users):
            assert 0 < gf.fingerprint_size(u) <= tiny_dataset.profile_sizes[u]

    def test_empty_profile_all_zero(self):
        ds = Dataset.from_profiles([[], [1]], n_items=3)
        gf = GoldFinger(ds, n_bits=64)
        assert gf.fingerprint_size(0) == 0

    def test_deterministic_in_seed(self, tiny_dataset):
        a = GoldFinger(tiny_dataset, n_bits=256, seed=5)
        b = GoldFinger(tiny_dataset, n_bits=256, seed=5)
        assert np.array_equal(a.fingerprints, b.fingerprints)

    def test_different_seeds_differ(self, small_dataset):
        a = GoldFinger(small_dataset, n_bits=256, seed=1)
        b = GoldFinger(small_dataset, n_bits=256, seed=2)
        assert not np.array_equal(a.fingerprints, b.fingerprints)


class TestEstimates:
    def test_identical_profiles_estimate_one(self, tiny_dataset):
        gf = GoldFinger(tiny_dataset, n_bits=512)
        assert gf.estimate_pair(0, 2) == 1.0  # u0 and u2 identical

    def test_disjoint_profiles_estimate_near_zero(self, tiny_dataset):
        # Wide fingerprints make bit collisions for disjoint sets unlikely.
        gf = GoldFinger(tiny_dataset, n_bits=8192)
        assert gf.estimate_pair(0, 3) <= 0.1

    def test_one_to_many_matches_pair(self, small_dataset):
        gf = GoldFinger(small_dataset, n_bits=512)
        others = np.arange(1, 40)
        got = gf.estimate_one_to_many(0, others)
        want = [gf.estimate_pair(0, int(v)) for v in others]
        np.testing.assert_allclose(got, want)

    def test_matrix_matches_pair(self, small_dataset):
        gf = GoldFinger(small_dataset, n_bits=512)
        users = np.arange(20)
        m = gf.estimate_matrix(users)
        for i in range(20):
            for j in range(20):
                assert m[i, j] == pytest.approx(gf.estimate_pair(i, j))

    def test_block_matches_matrix(self, small_dataset):
        gf = GoldFinger(small_dataset, n_bits=512)
        us, vs = np.arange(10), np.arange(5, 25)
        blk = gf.estimate_block(us, vs)
        m = gf.estimate_matrix(np.arange(25))
        np.testing.assert_allclose(blk, m[np.ix_(us, vs)])

    def test_estimate_accuracy_with_wide_fingerprints(self, small_dataset):
        """1024-bit fingerprints on ~35-item profiles: estimates should
        track exact Jaccard closely (paper reports negligible loss)."""
        gf = GoldFinger(small_dataset, n_bits=1024)
        users = np.arange(60)
        est = gf.estimate_matrix(users)
        exact = jaccard_matrix(small_dataset, users)
        err = np.abs(est - exact)
        assert err.mean() < 0.05
        assert np.quantile(err, 0.95) < 0.15

    def test_wider_fingerprints_more_accurate(self, small_dataset):
        users = np.arange(60)
        exact = jaccard_matrix(small_dataset, users)
        errors = {}
        for bits in (64, 1024):
            gf = GoldFinger(small_dataset, n_bits=bits)
            errors[bits] = np.abs(gf.estimate_matrix(users) - exact).mean()
        assert errors[1024] < errors[64]
