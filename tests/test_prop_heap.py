"""Property-based tests for the bounded neighbour heaps."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import NeighborHeaps

edge = st.tuples(st.integers(1, 30), st.floats(0.0, 1.0, allow_nan=False))


class TestHeapInvariants:
    @given(edges=st.lists(edge, max_size=60), k=st.integers(1, 8))
    @settings(max_examples=80, deadline=None)
    def test_scalar_pushes_keep_topk(self, edges, k):
        """After arbitrary pushes, the heap holds the top-k by score of
        the best score seen per distinct id."""
        h = NeighborHeaps(1, k)
        best: dict[int, float] = {}
        for v, s in edges:
            h.push(0, v, s)
            best[v] = max(best.get(v, -1.0), s)
        ids, scores = h.items(0)
        assert ids.size == min(k, len(best))
        if best:
            kth = sorted(best.values(), reverse=True)[: k][-1] if best else 0.0
            # every kept score is >= the k-th best overall
            assert all(s >= kth - 1e-12 for s in scores)

    @given(edges=st.lists(edge, max_size=60), k=st.integers(1, 8))
    @settings(max_examples=80, deadline=None)
    def test_no_duplicates_ever(self, edges, k):
        h = NeighborHeaps(1, k)
        for v, s in edges:
            h.push(0, v, s)
        ids = h.neighbors(0)
        assert np.unique(ids).size == ids.size

    @given(edges=st.lists(edge, min_size=1, max_size=60), k=st.integers(1, 8))
    @settings(max_examples=80, deadline=None)
    def test_batch_equals_offline_topk(self, edges, k):
        """push_batch == offline top-k under the (-score, id) order,
        with per-id max-score dedupe."""
        h = NeighborHeaps(1, k)
        cands = np.array([v for v, _ in edges], dtype=np.int64)
        scores = np.array([s for _, s in edges], dtype=np.float64)
        h.push_batch(0, cands, scores)

        best: dict[int, float] = {}
        for v, s in edges:
            best[v] = max(best.get(v, -1.0), s)
        ids = np.array(sorted(best))
        sc = np.array([best[int(i)] for i in ids])
        expected = set(ids[np.lexsort((ids, -sc))[:k]].tolist())
        assert set(h.neighbors(0).tolist()) == expected

    @given(
        edges=st.lists(edge, min_size=1, max_size=40),
        k=st.integers(1, 6),
        split=st.integers(0, 40),
    )
    @settings(max_examples=80, deadline=None)
    def test_batch_split_invariance(self, edges, k, split):
        """Offering candidates in one batch or two must give the same
        final neighbourhood (merge associativity)."""
        cands = np.array([v for v, _ in edges], dtype=np.int64)
        scores = np.array([s for _, s in edges], dtype=np.float64)
        split = min(split, len(edges))

        one = NeighborHeaps(1, k)
        one.push_batch(0, cands, scores)

        two = NeighborHeaps(1, k)
        two.push_batch(0, cands[:split], scores[:split])
        two.push_batch(0, cands[split:], scores[split:])

        assert set(one.neighbors(0).tolist()) == set(two.neighbors(0).tolist())

    @given(edges=st.lists(edge, min_size=1, max_size=40), k=st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_idempotent_reoffer(self, edges, k):
        h = NeighborHeaps(1, k)
        cands = np.array([v for v, _ in edges], dtype=np.int64)
        scores = np.array([s for _, s in edges], dtype=np.float64)
        h.push_batch(0, cands, scores)
        before = h.neighbors(0).copy()
        inserted = h.push_batch(0, cands, scores)
        assert inserted.size == 0
        assert set(h.neighbors(0).tolist()) == set(before.tolist())
