"""Property tests for the delta pipeline (``repro.deltas``, PR 9).

One randomized program, one invariant, for **every ported consumer**:
after folding a random mutation tape incrementally through the bus,
running the view's ``resync()`` recipe from scratch reproduces the
same derived state the incremental path maintained —

* **reverse adjacency**: the maintained in-edge sets equal a cold
  :meth:`~repro.graph.ReverseAdjacency.from_heaps` group-by;
* **result caches** (engine and sharded front ends): resync clears to
  exactly a fresh engine's state, and post-resync answers match a
  fresh engine's answers query for query;
* **replica shipping**: each replica's ``(version, digest)`` equals
  the primary's after the tape, and again after a forced resync;
* **durable WAL**: recovery from disk reaches state parity with the
  live index both before and after the view's resync (a checkpoint);
* **journal metrics**: the incrementally-maintained gauges equal a
  freshly resynced exporter's on the same index;
* **anti-entropy**: a tape with injected divergence ends converged —
  the auditor's scheduled checks repaired every corruption.

The CI property matrix shifts the seed base via ``REPRO_PROP_SEED`` so
tier-1 stays at two seeds per run but the tapes vary across jobs.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import C2Params
from repro.data import SyntheticSpec, generate
from repro.deltas import AntiEntropy
from repro.graph import ReverseAdjacency, edge_digest
from repro.obs import JournalMetrics, MetricsRegistry
from repro.online import OnlineIndex
from repro.persist import DurableIndex
from repro.serve import QueryEngine, ReplicaSet, ShardedQueryEngine

_SEED_BASE = int(os.environ.get("REPRO_PROP_SEED", "0"))
SEEDS = [_SEED_BASE, _SEED_BASE + 1]

K = 6


def _index(seed, split_threshold=45):
    spec = SyntheticSpec(
        name="propdeltas", n_users=150, n_items=300, mean_profile_size=22.0,
        n_communities=8, community_pool_size=60, min_profile_size=8,
    )
    dataset = generate(spec, seed=seed)
    params = C2Params(
        k=K, n_buckets=64, n_hashes=4, split_threshold=split_threshold, seed=1
    )
    return OnlineIndex.build(dataset, params=params)


def _churn(index, rng, n=60):
    """A random tape crossing every event type the journal emits."""
    for _ in range(n):
        op = rng.random()
        active = index.dataset.active_users()
        if op < 0.45 and active.size:
            index.add_items(
                int(rng.choice(active)),
                rng.integers(0, index.dataset.n_items, size=3),
            )
        elif op < 0.8:
            index.add_user(rng.integers(0, index.dataset.n_items, size=12))
        elif active.size > 60:
            index.remove_user(int(rng.choice(active)))


def _rev_state(rev):
    return [set(s) for s in rev._in]


def _state(index):
    return index.version, edge_digest(index.graph.heaps)


# ----------------------------------------------------------------------
# Reverse adjacency
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_reverse_view_resync_equals_incremental(seed):
    index = _index(seed)
    index.reverse_index()
    view = index.deltas.view("reverse_adjacency")
    _churn(index, np.random.default_rng(seed + 10))
    incremental = _rev_state(index._reverse)
    assert incremental == _rev_state(
        ReverseAdjacency.from_heaps(index.graph.heaps)
    )
    index.deltas.resync(view)
    assert _rev_state(index._reverse) == incremental
    assert view.lag == 0 and view.resyncs_total == 1


# ----------------------------------------------------------------------
# Result caches (both front ends)
# ----------------------------------------------------------------------


def _pool(rng, index, n=30):
    return [rng.integers(0, index.dataset.n_items, size=10) for _ in range(n)]


@pytest.mark.parametrize("seed", SEEDS)
def test_engine_cache_resync_equals_fresh_engine(seed):
    index = _index(seed)
    rng = np.random.default_rng(seed + 20)
    engine = QueryEngine(index, k=K, invalidation="partial")
    try:
        pool = _pool(rng, index)
        for _ in range(3):  # interleave queries and mutations
            for profile in pool:
                engine.search(profile)
            _churn(index, rng, n=10)
        assert engine.stats()["cache_entries"] > 0
        index.deltas.resync(engine._view)
        # Resynced-from-scratch state IS a fresh engine's state: empty
        # cache, and identical answers on the warmed pool.
        assert engine.stats()["cache_entries"] == 0
        fresh = QueryEngine(index, k=K, invalidation="partial")
        try:
            for profile in pool:
                a = engine.search(profile)
                b = fresh.search(profile)
                assert a.ids.tolist() == b.ids.tolist()
        finally:
            fresh.close()
    finally:
        engine.close()


@pytest.mark.parametrize("seed", SEEDS)
def test_sharded_cache_resync_equals_fresh_frontend(seed):
    index = _index(seed)
    rng = np.random.default_rng(seed + 30)
    sharded = ShardedQueryEngine(index, n_shards=2, k=K)
    try:
        pool = _pool(rng, index, n=20)
        for _ in range(2):
            sharded.search_many(pool)
            _churn(index, rng, n=8)
        index.deltas.resync(sharded._view)
        assert sharded.stats()["cache_entries"] == 0
        fresh = ShardedQueryEngine(index, n_shards=2, k=K)
        try:
            got = sharded.search_many(pool)
            want = fresh.search_many(pool)
            for a, b in zip(got, want):
                assert a.ids.tolist() == b.ids.tolist()
        finally:
            fresh.close()
    finally:
        sharded.close()


# ----------------------------------------------------------------------
# Replica shipping
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_replica_view_resync_equals_incremental(seed):
    index = _index(seed)
    replicas = ReplicaSet(index, 2, mode="thread")
    try:
        _churn(index, np.random.default_rng(seed + 40))
        want = _state(index)
        # Incrementally shipped state equals the primary...
        assert replicas.replica_states() == [want, want]
        # ...and the from-scratch recipe lands on the same state.
        index.deltas.resync(replicas._view)
        assert replicas.replica_states() == [want, want]
        assert replicas.converged()
    finally:
        replicas.close()


# ----------------------------------------------------------------------
# Durable WAL
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_wal_view_resync_equals_incremental(seed, tmp_path):
    index = _index(seed)
    durable = DurableIndex(index, tmp_path)
    try:
        _churn(index, np.random.default_rng(seed + 50), n=40)
        want = _state(index)
        assert durable.lag() == 0
        recovered = DurableIndex.recover(tmp_path)
        assert _state(recovered.index) == want
        recovered.close()
        # The WAL view's resync recipe is a checkpoint: recovery after
        # it replays nothing and still reaches the same state.
        index.deltas.resync(durable._view)
        recovered = DurableIndex.recover(tmp_path)
        assert _state(recovered.index) == want
        assert recovered.recovery.replayed == 0
        recovered.close()
    finally:
        durable.close()


# ----------------------------------------------------------------------
# Journal metrics
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_journal_metrics_resync_equals_incremental(seed):
    index = _index(seed)
    incremental = JournalMetrics(index, registry=MetricsRegistry())
    try:
        _churn(index, np.random.default_rng(seed + 60))
        incremental.collect()
        assert incremental.seq == index.version
        # A fresh exporter resynced from the live index reports the
        # same derived gauges the incremental one maintained.
        fresh_registry = MetricsRegistry()
        fresh = JournalMetrics(index, registry=fresh_registry)
        try:
            inc_reg = incremental.registry
            for gauge in ("journal_clusters", "journal_max_cluster_size"):
                assert (
                    fresh_registry.gauge(gauge).value
                    == inc_reg.gauge(gauge).value
                )
            assert fresh.seq == incremental.seq
        finally:
            fresh.close()
    finally:
        incremental.close()


# ----------------------------------------------------------------------
# Anti-entropy heals a corrupted tape
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_anti_entropy_heals_random_corruptions_on_the_tape(seed):
    index = _index(seed)
    rng = np.random.default_rng(seed + 70)
    replicas = ReplicaSet(index, 2, mode="thread")
    auditor = index.deltas.register(AntiEntropy(index, replicas, every=8))
    try:
        for round_ in range(4):
            _churn(index, rng, n=12)
            # Corrupt a random replica in place mid-tape: same version,
            # different edges — only the digest audit can see it.
            victim = replicas.replica(int(rng.integers(0, 2)))
            row = int(rng.integers(0, victim.graph.heaps.n))
            with victim.lock.write():
                ids = victim.graph.heaps.ids
                ids[row, 0] = ids[row, 1]  # duplicate: multiset changes
            auditor.check()
        assert replicas.converged()
        assert auditor.checks_total >= 4
        # A row whose first two slots already matched diverges nothing;
        # every divergence that did occur was healed.
        assert auditor.repairs_total == auditor.divergences_total
    finally:
        auditor.close()
        replicas.close()
