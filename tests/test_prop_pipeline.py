"""Property-based tests over the full C² pipeline on random datasets."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import C2Params, cluster_and_conquer
from repro.data import Dataset
from repro.graph.heap import EMPTY
from repro.similarity import ExactEngine

profile = st.sets(st.integers(0, 49), min_size=1, max_size=15)
datasets = st.lists(profile, min_size=2, max_size=20)


def _params(t, b, n):
    return C2Params(k=3, n_buckets=b, n_hashes=t, split_threshold=n, seed=1)


class TestC2Invariants:
    @given(
        profs=datasets,
        t=st.integers(1, 4),
        b=st.sampled_from([2, 8, 32]),
        n=st.one_of(st.none(), st.integers(2, 10)),
    )
    @settings(max_examples=40, deadline=None)
    def test_graph_wellformed(self, profs, t, b, n):
        """Whatever the parameters: neighbour ids are valid users, no
        self-loops, no duplicate neighbours, scores in [0, 1]."""
        ds = Dataset.from_profiles([sorted(p) for p in profs], n_items=50)
        result = cluster_and_conquer(ExactEngine(ds), _params(t, b, n))
        ids, scores = result.graph.to_arrays()
        for u in range(ds.n_users):
            row = ids[u][ids[u] != EMPTY]
            assert np.all((row >= 0) & (row < ds.n_users))
            assert u not in row
            assert np.unique(row).size == row.size
            row_scores = scores[u][ids[u] != EMPTY]
            assert np.all((row_scores >= 0.0) & (row_scores <= 1.0))

    @given(
        profs=datasets,
        t=st.integers(1, 3),
    )
    @settings(max_examples=30, deadline=None)
    def test_scores_are_true_similarities(self, profs, t):
        """Every edge carries the exact engine similarity of its pair."""
        ds = Dataset.from_profiles([sorted(p) for p in profs], n_items=50)
        engine = ExactEngine(ds)
        result = cluster_and_conquer(engine, _params(t, 8, None))
        for u in range(ds.n_users):
            nbrs, scores = result.graph.neighborhood(u)
            for v, s in zip(nbrs, scores):
                assert abs(s - engine._pair(u, int(v))) < 1e-12

    @given(profs=datasets, seed=st.integers(0, 5))
    @settings(max_examples=30, deadline=None)
    def test_deterministic(self, profs, seed):
        ds = Dataset.from_profiles([sorted(p) for p in profs], n_items=50)
        params = C2Params(k=3, n_buckets=8, n_hashes=2, split_threshold=None, seed=seed)
        a = cluster_and_conquer(ExactEngine(ds), params)
        b = cluster_and_conquer(ExactEngine(ds), params)
        assert np.array_equal(a.graph.heaps.ids, b.graph.heaps.ids)

    @given(profs=datasets)
    @settings(max_examples=30, deadline=None)
    def test_identical_users_find_each_other(self, profs):
        """Two identical profiles co-hash in every configuration, so
        they must be in each other's final neighbourhood (their mutual
        similarity is 1.0, the maximum)."""
        dup = sorted(profs[0])
        ds = Dataset.from_profiles([dup, dup] + [sorted(p) for p in profs[1:]], n_items=50)
        result = cluster_and_conquer(ExactEngine(ds), _params(2, 8, None))
        assert 1 in result.graph.neighbors(0)
        assert 0 in result.graph.neighbors(1)
