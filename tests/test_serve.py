"""Tests for the query-serving subsystem (repro.serve)."""

import asyncio

import numpy as np
import pytest

from repro import C2Params
from repro.cli import main
from repro.online import MutableDataset, OnlineIndex
from repro.recommend import recommend_from_neighbors
from repro.serve import (
    GraphSearcher,
    QueryEngine,
    Recommender,
    SearchResult,
    brute_force_top_k,
)
from repro.similarity import make_engine


def _params(**kw):
    base = dict(k=8, n_buckets=64, n_hashes=4, split_threshold=80, seed=1)
    base.update(kw)
    return C2Params(**base)


@pytest.fixture(scope="module")
def served_index(small_dataset):
    return OnlineIndex.build(small_dataset, params=_params())


class TestQueryProtocol:
    """prepare_query/query_many must agree with the in-index path."""

    @pytest.mark.parametrize("backend", ["exact", "goldfinger", "bloom"])
    def test_matches_one_to_many_for_indexed_profiles(self, small_dataset, backend):
        engine = make_engine(
            MutableDataset.from_dataset(small_dataset), backend=backend, n_bits=256
        )
        others = np.arange(1, 40)
        query = engine.prepare_query(small_dataset.profile(0))
        assert engine.query_many(query, others) == pytest.approx(
            engine.one_to_many(0, others)
        )

    @pytest.mark.parametrize("backend", ["exact", "goldfinger", "bloom"])
    def test_charges_per_candidate_and_prep_is_free(self, small_dataset, backend):
        engine = make_engine(
            MutableDataset.from_dataset(small_dataset), backend=backend, n_bits=256
        )
        before = engine.comparisons
        query = engine.prepare_query([1, 2, 3])
        assert engine.comparisons == before
        engine.query_many(query, np.arange(25))
        assert engine.comparisons == before + 25

    def test_exact_cosine_metric(self, small_dataset):
        engine = make_engine(
            MutableDataset.from_dataset(small_dataset), backend="exact", metric="cosine"
        )
        others = np.arange(1, 20)
        query = engine.prepare_query(small_dataset.profile(0))
        assert engine.query_many(query, others) == pytest.approx(
            engine.one_to_many(0, others)
        )

    @pytest.mark.parametrize("backend", ["exact", "goldfinger", "bloom"])
    def test_unseen_items_do_not_crash(self, small_dataset, backend):
        engine = make_engine(
            MutableDataset.from_dataset(small_dataset), backend=backend, n_bits=256
        )
        huge = small_dataset.n_items + 1000
        query = engine.prepare_query([huge, huge + 1])
        sims = engine.query_many(query, np.arange(10))
        assert sims.shape == (10,)

    def test_exact_unseen_items_count_toward_union(self, tiny_dataset):
        engine = make_engine(MutableDataset.from_dataset(tiny_dataset), backend="exact")
        # u0 = {0,1,2,3}; query = {0,1,2,3, 100} -> J = 4/5
        query = engine.prepare_query([0, 1, 2, 3, 100])
        assert engine.query_many(query, np.array([0]))[0] == pytest.approx(4 / 5)

    @pytest.mark.parametrize("backend", ["goldfinger", "bloom"])
    def test_queries_never_grow_shared_item_tables(self, small_dataset, backend):
        """A read with a huge item id must not allocate O(id) memory."""
        engine = make_engine(
            MutableDataset.from_dataset(small_dataset), backend=backend, n_bits=256
        )
        table = engine.goldfinger if backend == "goldfinger" else engine.bloom
        words = table._item_words if backend == "goldfinger" else table._item_words[0]
        size_before = words.size
        query = engine.prepare_query([1, 2, 50_000_000])
        engine.query_many(query, np.arange(5))
        words = table._item_words if backend == "goldfinger" else table._item_words[0]
        assert words.size == size_before

    def test_unseen_item_hash_matches_extended_table(self, tiny_dataset):
        """On-the-fly hashing must equal extend-then-fingerprint."""
        from repro.similarity import GoldFinger

        a = GoldFinger(tiny_dataset, n_bits=128, seed=7)
        on_the_fly = a.fingerprint_profile([1, 2, 500])
        a._ensure_items(501)
        extended = a.fingerprint_profile([1, 2, 500])
        assert np.array_equal(on_the_fly, extended)


class TestGraphSearcher:
    def test_twin_profile_is_top_result(self, small_dataset, served_index):
        searcher = GraphSearcher(served_index)
        twin_of = 11
        result = searcher.top_k(small_dataset.profile(twin_of), k=5)
        assert result.ids[0] == twin_of
        assert result.scores[0] == pytest.approx(1.0)

    def test_deterministic(self, served_index):
        searcher = GraphSearcher(served_index)
        a = searcher.top_k([1, 5, 9, 200], k=6)
        b = searcher.top_k([1, 5, 9, 200], k=6)
        assert np.array_equal(a.ids, b.ids)
        assert a.scores == pytest.approx(b.scores)
        assert a.evaluations == b.evaluations

    def test_counts_evaluations_through_engine(self, served_index):
        searcher = GraphSearcher(served_index)
        before = served_index.engine.comparisons
        result = searcher.top_k([3, 7, 42], k=5)
        assert served_index.engine.comparisons - before == result.evaluations
        assert result.evaluations > 0

    def test_budget_is_respected(self, served_index):
        searcher = GraphSearcher(served_index, budget=40)
        result = searcher.top_k([3, 7, 42], k=5)
        assert result.evaluations <= 40

    def test_exclude(self, small_dataset, served_index):
        searcher = GraphSearcher(served_index)
        profile = small_dataset.profile(11)
        result = searcher.top_k(profile, k=5, exclude=(11,))
        assert 11 not in result.ids

    def test_empty_profile(self, served_index):
        searcher = GraphSearcher(served_index)
        result = searcher.top_k([], k=5)
        assert len(result) == 5  # arbitrary users, all zero-similar
        assert result.scores == pytest.approx(np.zeros(5))

    def test_results_sorted_best_first(self, served_index):
        searcher = GraphSearcher(served_index)
        result = searcher.top_k([1, 5, 9, 200], k=8)
        assert np.all(np.diff(result.scores) <= 0)
        assert np.unique(result.ids).size == result.ids.size

    def test_never_returns_tombstones(self, small_dataset):
        index = OnlineIndex.build(small_dataset, params=_params())
        searcher = GraphSearcher(index)
        victim = int(searcher.top_k(small_dataset.profile(4), k=1).ids[0])
        index.remove_user(victim)
        result = searcher.top_k(small_dataset.profile(4), k=10)
        assert victim not in result.ids

    def test_huge_item_id_query_is_safe(self, served_index):
        """Out-of-universe ids neither crash nor grow router tables."""
        searcher = GraphSearcher(served_index)
        hash_table = served_index._router._hashes[0]
        size_before = hash_table.table.size
        result = searcher.top_k([1, 2, 50_000_000], k=5)
        assert len(result) == 5
        assert hash_table.table.size == size_before

    def test_brute_force_reference(self, small_dataset, served_index):
        profile = small_dataset.profile(2)
        ref = brute_force_top_k(served_index.engine, profile, k=3)
        assert isinstance(ref, SearchResult)
        assert ref.evaluations == served_index.dataset.active_users().size
        assert ref.ids[0] == 2 and ref.scores[0] == pytest.approx(1.0)


class TestExactRerank:
    """rerank="exact" re-scores the final frontier from raw profiles."""

    def test_invalid_params_rejected(self, served_index):
        with pytest.raises(ValueError):
            GraphSearcher(served_index, rerank="approximate")
        with pytest.raises(ValueError):
            GraphSearcher(served_index, reverse="csr")

    def test_rerank_scores_are_exact_jaccard(self, small_dataset):
        index = OnlineIndex.build(small_dataset, params=_params(), backend="goldfinger")
        searcher = GraphSearcher(index, rerank="exact")
        profile = np.unique(small_dataset.profile(3)[:12])
        result = searcher.top_k(profile, k=5)
        for v, s in zip(result.ids, result.scores):
            other = small_dataset.profile(int(v))
            inter = np.intersect1d(profile, other).size
            union = profile.size + other.size - inter
            assert s == pytest.approx(inter / union)

    def test_rerank_evaluations_are_charged(self, small_dataset):
        index = OnlineIndex.build(small_dataset, params=_params(), backend="goldfinger")
        plain = GraphSearcher(index)
        rerank = GraphSearcher(index, rerank="exact")
        profile = small_dataset.profile(9)[:15]
        before = index.engine.comparisons
        result = rerank.top_k(profile, k=5)
        assert index.engine.comparisons - before == result.evaluations
        # the frontier re-scoring costs extra (counted) evaluations
        assert result.evaluations > plain.top_k(profile, k=5).evaluations

    def test_rerank_deterministic(self, small_dataset):
        index = OnlineIndex.build(small_dataset, params=_params(), backend="goldfinger")
        searcher = GraphSearcher(index, rerank="exact")
        a = searcher.top_k([1, 5, 9, 200], k=6)
        b = searcher.top_k([1, 5, 9, 200], k=6)
        assert np.array_equal(a.ids, b.ids)
        assert a.scores == pytest.approx(b.scores)


class TestOutOfSampleRecall:
    """Graph-walk answers must track brute force for unseen profiles."""

    def test_recall_at_10_vs_brute_force(self, medium_dataset):
        rng = np.random.default_rng(3)
        index = OnlineIndex.build(
            medium_dataset, params=_params(k=10, n_buckets=128, split_threshold=120)
        )
        searcher = GraphSearcher(index, ef=32)
        recalls, fractions = [], []
        for _ in range(40):
            base = medium_dataset.profile(int(rng.integers(0, medium_dataset.n_users)))
            profile = base[rng.random(base.size) > 0.3]
            result = searcher.top_k(profile, k=10)
            reference = brute_force_top_k(index.engine, profile, k=10)
            recalls.append(float(np.isin(reference.ids, result.ids).mean()))
            fractions.append(result.evaluations / reference.evaluations)
        assert np.mean(recalls) >= 0.85
        assert np.mean(fractions) < 0.6  # small n: walk overhead dominates


class TestQueryEngine:
    def test_cache_hit_returns_same_result(self, served_index):
        queries = QueryEngine(served_index)
        try:
            a = queries.search([1, 2, 3])
            b = queries.search([3, 2, 1, 1])  # canonicalised to the same key
            assert b is a
            assert queries.stats()["cache_hits_total"] == 1
        finally:
            queries.close()

    def test_mutation_invalidates_cache_full_mode(self, small_dataset):
        index = OnlineIndex.build(small_dataset, params=_params())
        queries = QueryEngine(index, invalidation="full")
        try:
            a = queries.search([1, 2, 3])
            index.add_items(0, [small_dataset.n_items - 1])
            b = queries.search([1, 2, 3])
            assert b is not a
            assert queries.stats()["evictions_total"] >= 1
        finally:
            queries.close()

    def test_partial_mode_evicts_entries_touching_mutated_user(self, small_dataset):
        index = OnlineIndex.build(small_dataset, params=_params())
        queries = QueryEngine(index)  # partial is the default
        try:
            assert queries.invalidation == "partial"
            a = queries.search([1, 2, 3])
            victim = int(a.ids[0])
            index.add_items(victim, [small_dataset.n_items - 1])
            b = queries.search([1, 2, 3])
            assert b is not a  # result set contained the mutated user
            assert queries.stats()["evictions_total"] >= 1
        finally:
            queries.close()

    def test_partial_mode_keeps_untouched_entries(self, small_dataset):
        index = OnlineIndex.build(small_dataset, params=_params())
        queries = QueryEngine(index)
        try:
            a = queries.search([1, 2, 3])
            bystander = int(
                np.setdiff1d(index.dataset.active_users(), a.ids)[0]
            )
            index.add_items(bystander, [small_dataset.n_items - 1])
            assert queries.search([1, 2, 3]) is a  # survived the write
            assert queries.stats()["cache_hits_total"] == 1
        finally:
            queries.close()

    def test_partial_mode_never_serves_removed_user(self, small_dataset):
        index = OnlineIndex.build(small_dataset, params=_params())
        queries = QueryEngine(index)
        try:
            a = queries.search([1, 2, 3])
            victim = int(a.ids[0])
            index.remove_user(victim)
            b = queries.search([1, 2, 3])
            assert b is not a
            assert victim not in b.ids
        finally:
            queries.close()

    def test_rebuild_clears_partial_cache(self, small_dataset):
        index = OnlineIndex.build(small_dataset, params=_params())
        queries = QueryEngine(index)
        try:
            a = queries.search([1, 2, 3])
            index.rebuild()
            assert queries.search([1, 2, 3]) is not a
        finally:
            queries.close()

    def test_batch_dedup(self, served_index):
        queries = QueryEngine(served_index, cache_size=0)  # isolate dedup from cache
        try:
            results = queries.search_many([[1, 2], [5, 9], [2, 1], [1, 2]])
            assert results[0] is results[2] is results[3]
            assert results[1] is not results[0]
            stats = queries.stats()
            assert stats["cache_misses_total"] == 2
            assert stats["dedup_hits_total"] == 2
        finally:
            queries.close()

    def test_lru_eviction(self, served_index):
        queries = QueryEngine(served_index, cache_size=2)
        try:
            a = queries.search([1])
            queries.search([2])
            queries.search([3])  # evicts [1]
            assert queries.stats()["cache_entries"] == 2
            assert queries.search([1]) is not a
        finally:
            queries.close()

    def test_close_detaches_hook(self, small_dataset):
        index = OnlineIndex.build(small_dataset, params=_params())
        queries = QueryEngine(index, invalidation="full")
        queries.close()
        index.add_items(0, [small_dataset.n_items - 1])  # must not raise
        # full mode: version stamps still protect stale reads post-close
        a = queries.search([4, 5])
        index.add_items(1, [small_dataset.n_items - 1])
        assert queries.search([4, 5]) is not a

    def test_close_clears_partial_cache(self, small_dataset):
        # A closed partial-mode engine no longer sees mutations, so it
        # must not keep answers around that nothing will ever evict.
        index = OnlineIndex.build(small_dataset, params=_params())
        queries = QueryEngine(index)
        a = queries.search([4, 5])
        queries.close()
        assert queries.stats()["cache_entries"] == 0
        assert queries.search([4, 5]) is not a

    def test_async_concurrent_queries_share_one_batch(self, served_index):
        queries = QueryEngine(served_index)
        try:
            async def burst():
                return await asyncio.gather(
                    *(queries.search_async([7, 8, 9]) for _ in range(6))
                )

            results = asyncio.run(burst())
            assert all(r is results[0] for r in results)
            stats = queries.stats()
            assert stats["cache_misses_total"] == 1
            assert stats["dedup_hits_total"] == 5
        finally:
            queries.close()

    def test_async_mixed_k(self, served_index):
        queries = QueryEngine(served_index)
        try:
            async def burst():
                return await asyncio.gather(
                    queries.search_async([7, 8, 9], k=3),
                    queries.search_async([7, 8, 9], k=5),
                )

            small, large = asyncio.run(burst())
            assert len(small) == 3 and len(large) == 5
        finally:
            queries.close()


class TestRecommender:
    def test_recommends_unseen_items(self, small_dataset, served_index):
        queries = QueryEngine(served_index)
        try:
            recommender = Recommender(queries, n_neighbors=8)
            profile = small_dataset.profile(6)[:10]
            items = recommender.recommend(profile, n_recommendations=5)
            assert 0 < items.size <= 5
            assert not np.isin(items, profile).any()
        finally:
            queries.close()

    def test_matches_manual_scoring(self, small_dataset, served_index):
        queries = QueryEngine(served_index)
        try:
            recommender = Recommender(queries, n_neighbors=8)
            profile = np.unique(small_dataset.profile(6)[:10])
            items = recommender.recommend(profile)
            result = queries.search(profile, k=8)
            expected = recommend_from_neighbors(
                served_index.dataset, profile, result.ids, result.scores, 30
            )
            assert np.array_equal(items, expected)
        finally:
            queries.close()

    def test_zero_recommendations_returns_empty(self, small_dataset, served_index):
        queries = QueryEngine(served_index)
        try:
            recommender = Recommender(queries, n_neighbors=8)
            items = recommender.recommend(small_dataset.profile(6), n_recommendations=0)
            assert items.size == 0
        finally:
            queries.close()

    def test_async_path(self, small_dataset, served_index):
        queries = QueryEngine(served_index)
        try:
            recommender = Recommender(queries, n_neighbors=8)
            profile = small_dataset.profile(2)[:12]
            sync_items = recommender.recommend(profile)
            async_items = asyncio.run(recommender.recommend_async(profile))
            assert np.array_equal(sync_items, async_items)
        finally:
            queries.close()


class TestServeDemoCLI:
    def test_runs_and_reports(self, capsys):
        code = main(
            [
                "serve-demo",
                "--dataset",
                "ml1M",
                "--scale",
                "0.02",
                "--k",
                "8",
                "--queries",
                "20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "QPS" in out and "Recall@10" in out
