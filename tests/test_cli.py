"""Unit tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main
from repro.data import save_dataset


class TestDatasetsCommand:
    def test_prints_table(self, capsys):
        assert main(["datasets", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        for name in ("ml1M", "ml10M", "AM", "DBLP", "GW"):
            assert name in out


class TestBuildCommand:
    def test_c2_with_quality(self, capsys):
        code = main(
            ["build", "--dataset", "ml1M", "--scale", "0.02", "--k", "5", "--algo", "C2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Quality" in out
        assert "C2" in out

    def test_no_quality_flag(self, capsys):
        code = main(
            [
                "build",
                "--dataset",
                "ml1M",
                "--scale",
                "0.02",
                "--k",
                "5",
                "--algo",
                "LSH",
                "--no-quality",
            ]
        )
        assert code == 0
        assert "Quality" not in capsys.readouterr().out

    def test_from_file(self, tmp_path, tiny_dataset, capsys):
        path = tmp_path / "tiny.txt"
        save_dataset(tiny_dataset, path)
        code = main(
            ["build", "--file", str(path), "--k", "2", "--algo", "BruteForce"]
        )
        assert code == 0
        assert "BruteForce" in capsys.readouterr().out

    def test_rejects_unknown_algo(self):
        with pytest.raises(SystemExit):
            main(["build", "--algo", "FAISS"])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            main(["build", "--dataset", "netflix"])


class TestRecallCommand:
    def test_runs(self, capsys):
        code = main(
            [
                "recall",
                "--dataset",
                "ml1M",
                "--scale",
                "0.02",
                "--k",
                "5",
                "--folds",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Brute force" in out
        assert "Delta" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
