"""Unit tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main
from repro.data import save_dataset


class TestDatasetsCommand:
    def test_prints_table(self, capsys):
        assert main(["datasets", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        for name in ("ml1M", "ml10M", "AM", "DBLP", "GW"):
            assert name in out


class TestBuildCommand:
    def test_c2_with_quality(self, capsys):
        code = main(
            ["build", "--dataset", "ml1M", "--scale", "0.02", "--k", "5", "--algo", "C2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Quality" in out
        assert "C2" in out

    def test_no_quality_flag(self, capsys):
        code = main(
            [
                "build",
                "--dataset",
                "ml1M",
                "--scale",
                "0.02",
                "--k",
                "5",
                "--algo",
                "LSH",
                "--no-quality",
            ]
        )
        assert code == 0
        assert "Quality" not in capsys.readouterr().out

    def test_from_file(self, tmp_path, tiny_dataset, capsys):
        path = tmp_path / "tiny.txt"
        save_dataset(tiny_dataset, path)
        code = main(
            ["build", "--file", str(path), "--k", "2", "--algo", "BruteForce"]
        )
        assert code == 0
        assert "BruteForce" in capsys.readouterr().out

    def test_rejects_unknown_algo(self):
        with pytest.raises(SystemExit):
            main(["build", "--algo", "FAISS"])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            main(["build", "--dataset", "netflix"])


class TestRecallCommand:
    def test_runs(self, capsys):
        code = main(
            [
                "recall",
                "--dataset",
                "ml1M",
                "--scale",
                "0.02",
                "--k",
                "5",
                "--folds",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Brute force" in out
        assert "Delta" in out


class TestMetricsDumpCommand:
    def test_table_reports_every_layer(self, capsys):
        code = main(["metrics-dump", "--users", "80", "--ops", "30"])
        assert code == 0
        out = capsys.readouterr().out
        # One metric per instrumented layer proves the whole stack
        # published into the shared registry.
        for needle in (
            "index_mutation_seconds",  # online index
            "serve_query_seconds",     # searcher
            "cache_hits_total",        # query engine
            "replica_deltas_shipped_total",  # replica set
            "wal_appends_total",       # WAL
            "journal_mutations_total",  # journal exporter
        ):
            assert needle in out, needle

    def test_prometheus_format(self, capsys):
        code = main(
            ["metrics-dump", "--users", "80", "--ops", "20",
             "--format", "prometheus"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE serve_query_seconds histogram" in out
        assert 'le="+Inf"' in out

    def test_json_format(self, capsys):
        import json

        code = main(
            ["metrics-dump", "--users", "80", "--ops", "20",
             "--format", "json"]
        )
        assert code == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["histograms"]["serve_query_seconds"]["count"] > 0


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
