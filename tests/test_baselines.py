"""Unit/integration tests for the baseline KNN-graph builders."""

import numpy as np
import pytest

from repro.baselines import brute_force_knn, hyrec_knn, lsh_knn, nndescent_knn
from repro.graph import edge_recall, quality
from repro.similarity import ExactEngine, jaccard_matrix, make_engine


@pytest.fixture(scope="module")
def engine(medium_dataset):
    return ExactEngine(medium_dataset)


@pytest.fixture(scope="module")
def exact(medium_dataset):
    return brute_force_knn(ExactEngine(medium_dataset), k=10).graph


class TestBruteForce:
    def test_is_exact(self, medium_dataset):
        """Brute force must find, for every user, neighbours whose worst
        score equals the true k-th best similarity."""
        k = 8
        result = brute_force_knn(ExactEngine(medium_dataset), k=k)
        sims = jaccard_matrix(medium_dataset)
        np.fill_diagonal(sims, -np.inf)
        for u in range(60):
            _, scores = result.graph.neighborhood(u)
            kth_true = np.sort(sims[u][np.isfinite(sims[u])])[::-1][k - 1]
            assert scores.min() == pytest.approx(kth_true)

    def test_charges_exactly_pair_count(self, medium_dataset):
        engine = ExactEngine(medium_dataset)
        result = brute_force_knn(engine, k=5)
        n = medium_dataset.n_users
        assert result.comparisons == n * (n - 1) // 2

    def test_scan_rate_is_one(self, medium_dataset):
        result = brute_force_knn(ExactEngine(medium_dataset), k=5)
        assert result.scan_rate == pytest.approx(1.0)

    def test_full_degree(self, medium_dataset):
        result = brute_force_knn(ExactEngine(medium_dataset), k=5)
        degrees = (result.graph.heaps.ids != -1).sum(axis=1)
        assert np.all(degrees == 5)


class TestHyrec:
    def test_converges_to_high_quality(self, medium_dataset, exact):
        result = hyrec_knn(ExactEngine(medium_dataset), k=10, seed=2)
        assert quality(result.graph, exact, medium_dataset) > 0.9

    def test_terminates_before_max_iterations(self, medium_dataset):
        result = hyrec_knn(ExactEngine(medium_dataset), k=10, seed=2)
        assert result.iterations < 30

    def test_fewer_comparisons_than_bruteforce(self, medium_dataset):
        n = medium_dataset.n_users
        result = hyrec_knn(ExactEngine(medium_dataset), k=10, seed=2)
        assert 0 < result.comparisons  # counted at all
        # Hyrec on a small dataset may exceed n(n-1)/2; just sanity-check
        # the count is consistent with the update log.
        assert len(result.extra["updates_per_iteration"]) == result.iterations

    def test_updates_decrease(self, medium_dataset):
        result = hyrec_knn(ExactEngine(medium_dataset), k=10, seed=2)
        ups = result.extra["updates_per_iteration"]
        assert ups[0] > ups[-1]

    def test_max_iterations_respected(self, medium_dataset):
        result = hyrec_knn(ExactEngine(medium_dataset), k=10, max_iterations=2, seed=2)
        assert result.iterations <= 2


class TestNNDescent:
    def test_converges_to_high_quality(self, medium_dataset, exact):
        result = nndescent_knn(ExactEngine(medium_dataset), k=10, seed=2)
        assert quality(result.graph, exact, medium_dataset) > 0.9

    def test_edge_recall_high(self, medium_dataset, exact):
        result = nndescent_knn(ExactEngine(medium_dataset), k=10, seed=2)
        assert edge_recall(result.graph, exact) > 0.7

    def test_terminates(self, medium_dataset):
        result = nndescent_knn(ExactEngine(medium_dataset), k=10, seed=2)
        assert result.iterations < 30

    def test_sample_rate_validation(self, medium_dataset):
        with pytest.raises(ValueError):
            nndescent_knn(ExactEngine(medium_dataset), sample_rate=0.0)

    def test_sampling_reduces_comparisons(self, medium_dataset):
        full = nndescent_knn(ExactEngine(medium_dataset), k=10, seed=3)
        sampled = nndescent_knn(
            ExactEngine(medium_dataset), k=10, sample_rate=0.5, seed=3
        )
        assert sampled.comparisons < full.comparisons


class TestLSH:
    def test_quality_reasonable(self, medium_dataset, exact):
        result = lsh_knn(make_engine(medium_dataset), k=10, n_hashes=10, seed=1)
        assert quality(result.graph, exact, medium_dataset) > 0.8

    def test_bucket_diagnostics(self, medium_dataset):
        result = lsh_knn(make_engine(medium_dataset), k=10, n_hashes=4, seed=1)
        assert result.extra["n_buckets"] > 0
        assert result.extra["max_bucket_size"] <= medium_dataset.n_users

    def test_more_hashes_improve_quality(self, medium_dataset, exact):
        q = {}
        for t in (1, 8):
            result = lsh_knn(ExactEngine(medium_dataset), k=10, n_hashes=t, seed=1)
            q[t] = quality(result.graph, exact, medium_dataset)
        assert q[8] > q[1]

    def test_parallel_matches_serial(self, medium_dataset):
        serial = lsh_knn(ExactEngine(medium_dataset), k=10, n_hashes=3, seed=1)
        parallel = lsh_knn(
            ExactEngine(medium_dataset), k=10, n_hashes=3, seed=1, n_workers=4
        )
        assert np.array_equal(serial.graph.heaps.ids, parallel.graph.heaps.ids)


class TestBuildResult:
    def test_seconds_positive(self, medium_dataset):
        result = brute_force_knn(ExactEngine(medium_dataset), k=5)
        assert result.seconds > 0

    def test_comparisons_isolated_per_run(self, medium_dataset):
        engine = ExactEngine(medium_dataset)
        first = brute_force_knn(engine, k=5)
        second = brute_force_knn(engine, k=5)
        assert first.comparisons == second.comparisons
