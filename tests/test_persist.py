"""Unit tests for repro.persist — WAL, snapshots, DurableIndex (PR 5).

The failure modes the ISSUE calls out get explicit coverage here:

* a **torn tail** (crash mid-append) is truncated away and recovery
  proceeds from the last committed record;
* a **checksum-corrupt** record raises :class:`WALCorruptError` naming
  the offending seq instead of serving a hole;
* restart **after a checkpoint** replays only the post-checkpoint
  tail (compaction removed the covered segments);
* recovery reaches exact state parity with the pre-restart index and
  charges **zero similarity evaluations**.

The randomized state-parity property lives in
``tests/test_prop_persist.py`` (REPRO_PROP_SEED matrix).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import C2Params
from repro.online import OnlineIndex
from repro.persist import (
    DurableIndex,
    SnapshotStore,
    WALCorruptError,
    WALError,
    WriteAheadLog,
)
from repro.persist.wal import _HEADER, MAGIC
from repro.serve import GraphSearcher, ReplicaSet
from repro.serve.replica import edge_digest

K = 6


@pytest.fixture()
def index(small_dataset):
    params = C2Params(k=K, n_buckets=64, n_hashes=4, split_threshold=60, seed=1)
    return OnlineIndex.build(small_dataset, params=params)


def _churn(index, rng, n=25):
    for _ in range(n):
        op = rng.random()
        active = index.dataset.active_users()
        if op < 0.5 and active.size:
            index.add_items(
                int(rng.choice(active)), rng.integers(0, index.dataset.n_items, size=2)
            )
        elif op < 0.8:
            index.add_user(rng.integers(0, index.dataset.n_items, size=10))
        elif active.size > 40:
            index.remove_user(int(rng.choice(active)))


def _state(index):
    return index.version, edge_digest(index.graph.heaps)


# ----------------------------------------------------------------------
# WriteAheadLog
# ----------------------------------------------------------------------


class TestWriteAheadLog:
    def test_append_replay_roundtrip(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        payloads = [bytes([i]) * (i + 1) for i in range(10)]
        for i, payload in enumerate(payloads):
            wal.append(i + 1, payload)
        assert list(wal.replay()) == [(i + 1, p) for i, p in enumerate(payloads)]
        assert list(wal.replay(after_seq=7)) == [(8, payloads[7]), (9, payloads[8]), (10, payloads[9])]
        wal.close()

    def test_seq_must_increase(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(5, b"x")
        with pytest.raises(ValueError, match="not after"):
            wal.append(5, b"y")
        with pytest.raises(ValueError, match="not after"):
            wal.append(4, b"y")
        wal.close()

    def test_reopen_resumes_in_fresh_segment(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(1, b"a")
        wal.close()
        wal2 = WriteAheadLog(tmp_path)
        assert wal2.last_seq == 1
        wal2.append(2, b"b")
        assert len(wal2.segments()) == 2
        assert list(wal2.replay()) == [(1, b"a"), (2, b"b")]
        wal2.close()

    def test_torn_tail_truncated_on_open(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(1, b"alpha")
        wal.append(2, b"beta")
        wal.close()
        seg = wal.segments()[-1]
        data = seg.read_bytes()
        seg.write_bytes(data[:-3])  # crash mid-append: torn final record
        wal2 = WriteAheadLog(tmp_path)
        assert wal2.tail_torn
        assert wal2.last_seq == 1
        assert list(wal2.replay()) == [(1, b"alpha")]
        # and appending continues cleanly after the committed prefix
        wal2.append(2, b"beta2")
        assert list(wal2.replay()) == [(1, b"alpha"), (2, b"beta2")]
        wal2.close()

    def test_tail_torn_before_any_record_drops_file(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(1, b"alpha")
        wal.rotate()
        wal.append(2, b"beta")
        wal.close()
        seg = wal.segments()[-1]
        seg.write_bytes(seg.read_bytes()[: len(MAGIC) + 4])
        wal2 = WriteAheadLog(tmp_path)
        assert wal2.last_seq == 1
        assert list(wal2.replay()) == [(1, b"alpha")]
        wal2.close()

    def test_corrupt_record_raises_with_seq(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(1, b"alpha")
        wal.append(2, b"beta")
        wal.append(3, b"gamma")
        wal.close()
        seg = wal.segments()[-1]
        data = bytearray(seg.read_bytes())
        # Flip one payload byte of record 2 (seq=2). Record layout:
        # MAGIC, then per record HEADER + payload.
        offset = len(MAGIC) + _HEADER.size + 5  # past record 1
        data[offset + _HEADER.size] ^= 0xFF
        seg.write_bytes(bytes(data))
        with pytest.raises(WALCorruptError) as err:
            WriteAheadLog(tmp_path)
        assert err.value.seq == 2
        assert "seq 2" in str(err.value)

    def test_mid_stream_truncation_is_corruption(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(1, b"alpha")
        wal.rotate()
        wal.append(2, b"beta")
        wal.close()
        first = wal.segments()[0]
        first.write_bytes(first.read_bytes()[:-2])
        wal2 = WriteAheadLog(tmp_path)  # open scans only the final segment
        with pytest.raises(WALCorruptError, match="mid-stream"):
            list(wal2.replay())
        wal2.close()

    def test_rotate_and_compact(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for seq in range(1, 6):
            wal.append(seq, b"x" * 10)
            wal.rotate()
        assert len(wal.segments()) == 5
        removed = wal.compact(3)
        assert removed == 3
        assert list(wal.replay()) == [(4, b"x" * 10), (5, b"x" * 10)]
        # replay with the seq guard skips what a snapshot would cover
        assert [s for s, _ in wal.replay(after_seq=4)] == [5]
        wal.close()

    def test_compact_never_splits_a_segment(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(1, b"a")
        wal.append(2, b"b")
        wal.rotate()
        wal.append(3, b"c")
        # seq 1 is covered but lives in a segment that also holds 2:
        assert wal.compact(1) == 0
        assert wal.compact(2) == 1
        assert [s for s, _ in wal.replay()] == [3]
        wal.close()

    def test_size_rotation(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_bytes=64)
        for seq in range(1, 8):
            wal.append(seq, b"y" * 40)
        assert len(wal.segments()) > 1
        assert [s for s, _ in wal.replay()] == list(range(1, 8))
        wal.close()

    def test_closed_log_rejects_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(1, b"a")
        wal.close()
        with pytest.raises(WALError, match="closed"):
            wal.append(2, b"b")


# ----------------------------------------------------------------------
# SnapshotStore
# ----------------------------------------------------------------------


class TestSnapshotStore:
    def test_save_load_latest(self, tmp_path):
        store = SnapshotStore(tmp_path)
        assert store.load_latest() is None
        store.save(b"one", 3)
        store.save(b"two", 7)
        assert store.load_latest() == (b"two", 7)
        assert store.latest_seq() == 7

    def test_prunes_older_snapshots(self, tmp_path):
        store = SnapshotStore(tmp_path)
        for seq in (1, 2, 3):
            store.save(b"p%d" % seq, seq)
        snaps = list(tmp_path.glob("snapshot-*.pkl"))
        assert len(snaps) == 1
        assert store.load_latest() == (b"p3", 3)

    def test_keep_two(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        for seq in (1, 2, 3):
            store.save(b"p", seq)
        assert len(list(tmp_path.glob("snapshot-*.pkl"))) == 2

    def test_no_tmp_residue(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(b"x", 1)
        assert not list(tmp_path.glob("*.tmp"))


# ----------------------------------------------------------------------
# DurableIndex
# ----------------------------------------------------------------------


class TestDurableIndex:
    def test_fresh_attach_writes_baseline_snapshot(self, index, tmp_path):
        durable = DurableIndex(index, tmp_path, checkpoint_bytes=0)
        assert durable.store.latest_seq() == index.version
        durable.close()

    def test_recover_reaches_state_parity(self, index, tmp_path, rng):
        durable = index.attach_persistence(tmp_path, checkpoint_bytes=0)
        _churn(index, rng)
        want = _state(index)
        durable.close()
        recovered = DurableIndex.recover(tmp_path)
        assert _state(recovered.index) == want
        assert recovered.recovery.evaluations == 0
        assert recovered.recovery.replayed > 0
        # profiles came back too, not just edges
        assert np.array_equal(
            recovered.index.dataset.active_users(), index.dataset.active_users()
        )
        recovered.close()

    def test_recovered_index_keeps_persisting(self, index, tmp_path, rng):
        durable = index.attach_persistence(tmp_path, checkpoint_bytes=0)
        _churn(index, rng, n=10)
        durable.close()
        second = DurableIndex.recover(tmp_path)
        _churn(second.index, rng, n=10)
        want = _state(second.index)
        second.close()
        third = DurableIndex.recover(tmp_path)
        assert _state(third.index) == want
        third.close()

    def test_restart_after_compaction_replays_only_tail(self, index, tmp_path, rng):
        durable = index.attach_persistence(tmp_path, checkpoint_bytes=0)
        _churn(index, rng, n=20)
        durable.checkpoint()
        assert durable.wal.size_bytes() == 0  # fully compacted
        index.add_user(rng.integers(0, index.dataset.n_items, size=10))
        index.add_user(rng.integers(0, index.dataset.n_items, size=10))
        want = _state(index)
        durable.close()
        recovered = DurableIndex.recover(tmp_path)
        assert recovered.recovery.replayed == 2
        assert recovered.recovery.skipped == 0
        assert _state(recovered.index) == want
        recovered.close()

    def test_torn_final_record_recovers_to_committed_prefix(
        self, index, tmp_path, rng
    ):
        durable = index.attach_persistence(tmp_path, checkpoint_bytes=0)
        _churn(index, rng, n=8)
        want_version = index.version
        durable.close()
        seg = sorted(tmp_path.glob("*.wal"))[-1]
        seg.write_bytes(seg.read_bytes()[:-4])  # crash mid-append
        recovered = DurableIndex.recover(tmp_path)
        assert recovered.recovery.tail_torn
        assert recovered.index.version == want_version - 1
        recovered.close()

    def test_rebuild_checkpoints_inline(self, index, tmp_path, rng):
        durable = index.attach_persistence(tmp_path, checkpoint_bytes=0)
        _churn(index, rng, n=5)
        index.rebuild()
        assert durable.store.latest_seq() == index.version
        index.add_user(rng.integers(0, index.dataset.n_items, size=10))
        want = _state(index)
        durable.close()
        recovered = DurableIndex.recover(tmp_path)
        assert _state(recovered.index) == want
        recovered.close()

    def test_auto_checkpoint_by_size(self, index, tmp_path, rng):
        durable = DurableIndex(
            index, tmp_path, checkpoint_bytes=1, background_checkpoints=False
        )
        _churn(index, rng, n=5)
        assert durable.checkpoints >= 5  # every append tips the threshold
        durable.close()
        recovered = DurableIndex.recover(tmp_path)
        assert _state(recovered.index) == _state(index)
        recovered.close()

    def test_attach_version_mismatch_rejected(self, index, tmp_path, rng):
        durable = index.attach_persistence(tmp_path, checkpoint_bytes=0)
        _churn(index, rng, n=5)
        durable.close()
        fresh = OnlineIndex.build(
            index.dataset.snapshot(), params=index.params
        )
        with pytest.raises(ValueError, match="recover"):
            DurableIndex(fresh, tmp_path)

    def test_recover_empty_dir_raises(self, tmp_path):
        with pytest.raises(WALError, match="no snapshot"):
            DurableIndex.recover(tmp_path)

    def test_recovered_serving_matches_live(self, index, tmp_path, rng):
        durable = index.attach_persistence(tmp_path, checkpoint_bytes=0)
        _churn(index, rng)
        durable.close()
        recovered = DurableIndex.recover(tmp_path)
        live = GraphSearcher(index, ef=16)
        back = GraphSearcher(recovered.index, ef=16)
        for _ in range(5):
            profile = rng.integers(0, index.dataset.n_items, size=12)
            a = live.top_k(profile, k=K)
            b = back.top_k(profile, k=K)
            assert np.array_equal(a.ids, b.ids)
        recovered.close()

    def test_hydrate_feeds_replicas(self, index, tmp_path, rng):
        durable = index.attach_persistence(tmp_path, checkpoint_bytes=0)
        _churn(index, rng, n=10)
        replicas = ReplicaSet(index, 2, hydrate=durable.hydrate)
        assert replicas.converged()
        assert replicas.resyncs == 0
        _churn(index, rng, n=5)
        assert replicas.converged()
        replicas.close()
        durable.close()

    def test_wal_payloads_are_replica_deltas(self, index, tmp_path, rng):
        from repro.online import ReplicaDelta

        durable = index.attach_persistence(tmp_path, checkpoint_bytes=0)
        _churn(index, rng, n=5)
        for seq, raw in durable.wal.replay():
            delta = pickle.loads(raw)
            assert isinstance(delta, ReplicaDelta)
            assert delta.seq == seq
        durable.close()

    def test_context_manager_closes(self, index, tmp_path):
        with index.attach_persistence(tmp_path, checkpoint_bytes=0) as durable:
            index.add_user([1, 2, 3])
        assert durable._closed
        # detached: further mutations don't reach the closed log
        index.add_user([4, 5, 6])
        recovered = DurableIndex.recover(tmp_path)
        assert recovered.index.version == index.version - 1
        recovered.close()


class TestReadonlyHydration:
    """hydrate() must never repair (mutate) the live log it reads."""

    def test_readonly_open_leaves_torn_tail_untouched(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(1, b"alpha")
        wal.append(2, b"beta")
        wal.close()
        seg = wal.segments()[-1]
        torn = seg.read_bytes()[:-3]
        seg.write_bytes(torn)
        ro = WriteAheadLog(tmp_path, readonly=True)
        assert ro.tail_torn
        assert list(ro.replay()) == [(1, b"alpha")]
        assert seg.read_bytes() == torn  # no truncation happened
        with pytest.raises(WALError, match="readonly"):
            ro.append(3, b"gamma")
        ro.close()

    def test_readonly_open_keeps_recordless_final_segment(self, tmp_path):
        from repro.persist.wal import MAGIC

        wal = WriteAheadLog(tmp_path)
        wal.append(1, b"alpha")
        wal.close()
        # The moment after a live writer opened a fresh segment and
        # flushed only its magic — a reader must not unlink it.
        fresh = tmp_path / f"{2:020d}.wal"
        fresh.write_bytes(MAGIC)
        ro = WriteAheadLog(tmp_path, readonly=True)
        assert ro.last_seq == 1
        assert fresh.exists()
        ro.close()

    def test_hydrate_leaves_live_log_appendable(self, index, tmp_path, rng):
        durable = index.attach_persistence(tmp_path, checkpoint_bytes=0)
        _churn(index, rng, n=10)
        hydrated = durable.hydrate()
        assert _state(hydrated) == _state(index)
        # the live log was untouched: keep mutating, then recover all
        _churn(index, rng, n=10)
        want = _state(index)
        durable.close()
        recovered = DurableIndex.recover(tmp_path)
        assert _state(recovered.index) == want
        recovered.close()


class TestClosedLifecycle:
    def test_rotate_after_close_is_noop(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(1, b"a")
        wal.close()
        wal.rotate()  # must not crash or silently reopen
        with pytest.raises(WALError, match="closed"):
            wal.append(2, b"b")

    def test_checkpoint_after_close_raises(self, index, tmp_path):
        durable = index.attach_persistence(tmp_path, checkpoint_bytes=0)
        durable.close()
        with pytest.raises(WALError, match="closed"):
            durable.checkpoint()

    def test_size_bytes_tracks_without_stat(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for seq in range(1, 5):
            wal.append(seq, b"z" * 32)
            wal.rotate()
        on_disk = sum(p.stat().st_size for p in tmp_path.glob("*.wal"))
        assert wal.size_bytes() == on_disk
        wal.compact(2)
        on_disk = sum(p.stat().st_size for p in tmp_path.glob("*.wal"))
        assert wal.size_bytes() == on_disk
        wal.close()
        reopened = WriteAheadLog(tmp_path)
        assert reopened.size_bytes() == on_disk
        reopened.close()
