"""Unit tests for repro.core.hashing."""

import numpy as np
import pytest

from repro.core import (
    GenerativeHash,
    MinHashPermutation,
    make_hash_family,
    make_minhash_family,
    splitmix64,
    splitmix64_array,
)


class TestSplitmix:
    def test_deterministic(self):
        assert splitmix64(123, 7) == splitmix64(123, 7)

    def test_seed_changes_output(self):
        assert splitmix64(123, 7) != splitmix64(123, 8)

    def test_array_matches_scalar(self):
        vals = np.array([0, 1, 99], dtype=np.uint64)
        out = splitmix64_array(vals, 5)
        for v, o in zip(vals, out):
            assert splitmix64(int(v), 5) == int(o)

    def test_uniformity_rough(self):
        """Hash of 0..n-1 should fill buckets roughly evenly."""
        out = splitmix64_array(np.arange(100_000, dtype=np.uint64), 3)
        buckets = np.bincount((out % np.uint64(16)).astype(int), minlength=16)
        assert buckets.min() > 0.8 * buckets.mean()
        assert buckets.max() < 1.2 * buckets.mean()


class TestGenerativeHash:
    def test_range(self):
        h = GenerativeHash(n_items=1000, n_buckets=7, seed=1)
        vals = h(np.arange(1000))
        assert vals.min() >= 1
        assert vals.max() <= 7

    def test_deterministic(self):
        a = GenerativeHash(100, 8, seed=3)(np.arange(100))
        b = GenerativeHash(100, 8, seed=3)(np.arange(100))
        assert np.array_equal(a, b)

    def test_rejects_zero_buckets(self):
        with pytest.raises(ValueError):
            GenerativeHash(10, 0, seed=0)

    def test_single_bucket(self):
        h = GenerativeHash(10, 1, seed=0)
        assert np.all(h(np.arange(10)) == 1)

    def test_family_independent(self):
        fam = make_hash_family(500, 16, t=4, seed=0)
        assert len(fam) == 4
        tables = [f.table for f in fam]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.array_equal(tables[i], tables[j])

    def test_family_deterministic(self):
        a = make_hash_family(100, 8, t=3, seed=5)
        b = make_hash_family(100, 8, t=3, seed=5)
        for fa, fb in zip(a, b):
            assert np.array_equal(fa.table, fb.table)

    def test_roughly_uniform_over_buckets(self):
        h = GenerativeHash(50_000, 10, seed=2)
        counts = np.bincount(h(np.arange(50_000)), minlength=11)[1:]
        assert counts.min() > 0.85 * counts.mean()


class TestMinHashPermutation:
    def test_is_permutation(self):
        p = MinHashPermutation(100, seed=1)
        assert sorted(p.table.tolist()) == list(range(100))

    def test_lookup(self):
        p = MinHashPermutation(10, seed=2)
        items = np.array([3, 7])
        assert np.array_equal(p(items), p.table[items])

    def test_family(self):
        fam = make_minhash_family(50, t=3, seed=1)
        assert len(fam) == 3
        assert not np.array_equal(fam[0].table, fam[1].table)
