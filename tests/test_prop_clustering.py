"""Property-based tests for FastRandomHash clustering invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FastRandomHash, GenerativeHash, cluster_dataset, make_hash_family
from repro.core.clustering import Cluster, split_cluster
from repro.core.theory import (
    count_collisions,
    same_hash_probability,
    theorem1_lower_bound,
    theorem1_upper_bound,
)
from repro.data import Dataset
from repro.similarity import jaccard_pair

profile = st.sets(st.integers(0, 79), min_size=1, max_size=25)


def _dataset(profs):
    return Dataset.from_profiles([sorted(p) for p in profs], n_items=80)


class TestClusteringInvariants:
    @given(
        profs=st.lists(profile, min_size=2, max_size=25),
        b=st.sampled_from([2, 4, 16]),
        t=st.integers(1, 3),
        seed=st.integers(0, 5),
    )
    @settings(max_examples=50, deadline=None)
    def test_each_config_is_partition(self, profs, b, t, seed):
        ds = _dataset(profs)
        hashes = make_hash_family(ds.n_items, b, t, seed=seed)
        result = cluster_dataset(ds, hashes, split_threshold=None)
        for config in range(t):
            members = np.concatenate(
                [c.users for c in result.clusters if c.config == config]
            )
            assert sorted(members.tolist()) == list(range(ds.n_users))

    @given(
        profs=st.lists(profile, min_size=4, max_size=30),
        b=st.sampled_from([2, 4, 8]),
        threshold=st.integers(2, 10),
        seed=st.integers(0, 5),
    )
    @settings(max_examples=50, deadline=None)
    def test_split_preserves_partition(self, profs, b, threshold, seed):
        ds = _dataset(profs)
        hashes = make_hash_family(ds.n_items, b, 1, seed=seed)
        result = cluster_dataset(ds, hashes, split_threshold=threshold)
        members = np.concatenate([c.users for c in result.clusters])
        assert sorted(members.tolist()) == list(range(ds.n_users))

    @given(
        profs=st.lists(profile, min_size=4, max_size=30),
        b=st.sampled_from([2, 4, 8]),
        threshold=st.integers(2, 10),
        seed=st.integers(0, 5),
    )
    @settings(max_examples=50, deadline=None)
    def test_splittable_pieces_within_threshold(self, profs, b, threshold, seed):
        ds = _dataset(profs)
        gen = GenerativeHash(ds.n_items, b, seed=seed)
        frh = FastRandomHash(gen)
        hashes = frh.user_hashes(ds)
        for eta in np.unique(hashes):
            users = np.flatnonzero(hashes == eta)
            cluster = Cluster(users=users, config=0, eta=int(eta))
            pieces, _ = split_cluster(ds, frh, cluster, threshold)
            for p in pieces:
                if p.splittable:
                    assert p.size <= threshold
                # residuals keep the parent's eta
                else:
                    assert p.eta >= cluster.eta

    @given(
        profs=st.lists(profile, min_size=2, max_size=20),
        seed=st.integers(0, 5),
    )
    @settings(max_examples=50, deadline=None)
    def test_identical_profiles_always_cohash(self, profs, seed):
        """Two users with the same profile always share every cluster."""
        ds = Dataset.from_profiles(
            [sorted(profs[0])] + [sorted(p) for p in profs], n_items=80
        )
        frh = FastRandomHash(GenerativeHash(ds.n_items, 8, seed=seed))
        hashes = frh.user_hashes(ds)
        assert hashes[0] == hashes[1]


class TestTheorem1Property:
    @given(
        a=profile,
        b=profile,
        n_buckets=st.sampled_from([4, 16, 64]),
        seed=st.integers(0, 20),
    )
    @settings(max_examples=100, deadline=None)
    def test_eq6_within_theorem1_bracket(self, a, b, n_buckets, seed):
        """For any profiles and any hash, the exact per-hash probability
        (Eq. 6) lies in the Theorem 1 bracket built from that hash's
        collision count."""
        p1, p2 = np.array(sorted(a)), np.array(sorted(b))
        union = np.union1d(p1, p2)
        h = GenerativeHash(80, n_buckets, seed=seed)
        kappa = count_collisions(h, union)
        ell = union.size
        j = jaccard_pair(p1, p2)
        prob = same_hash_probability(h, p1, p2)
        assert theorem1_lower_bound(j, kappa, ell) <= prob + 1e-9
        if kappa < ell:
            assert prob <= theorem1_upper_bound(j, kappa, ell) + 1e-9
