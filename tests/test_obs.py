"""Unit tests for the telemetry layer (``repro.obs``).

Covers the histogram quantile math against numpy ground truth, exact
totals under thread contention, tracer span nesting and ring buffers,
the disabled (null) fast paths, the exposition formats, the canonical
stats-key aliasing helper, and the re-split-aware selective cache
eviction the engine layer builds on top of the metrics.
"""

import json
import threading

import numpy as np
import pytest

from repro import C2Params
from repro.data import SyntheticSpec, generate
from repro.obs import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    Histogram,
    JournalMetrics,
    MetricsRegistry,
    Tracer,
    format_span,
)
from repro.online import OnlineIndex
from repro.serve import QueryEngine


# ----------------------------------------------------------------------
# Histogram math
# ----------------------------------------------------------------------


def test_histogram_percentiles_track_numpy():
    """Bucketed estimates stay within one bucket width of exact quantiles."""
    rng = np.random.default_rng(7)
    samples = rng.lognormal(mean=-6.0, sigma=1.0, size=20_000)  # ~ms latencies
    hist = Histogram("lat", bounds=LATENCY_BUCKETS)
    for s in samples:
        hist.observe(float(s))
    for q in (0.5, 0.9, 0.99, 0.999):
        exact = float(np.quantile(samples, q))
        est = hist.percentile(q)
        # Factor-2 buckets: the estimate lands in the right bucket, so it
        # is within [exact/2, exact*2] — and clamped to the true range.
        assert exact / 2 <= est <= exact * 2, (q, exact, est)
        assert samples.min() <= est <= samples.max()


def test_histogram_percentile_clamps_to_observed_range():
    hist = Histogram("h", bounds=(1.0, 2.0, 4.0))
    for v in (1.5, 1.6, 1.7):
        hist.observe(v)
    assert hist.percentile(0.001) >= 1.5
    assert hist.percentile(1.0) <= 1.7


def test_histogram_overflow_bucket_reports_max():
    hist = Histogram("h", bounds=(1.0,))
    hist.observe(50.0)
    hist.observe(90.0)
    assert hist.percentile(0.99) == 90.0
    assert hist.count == 2


def test_histogram_snapshot_shape():
    hist = Histogram("h", bounds=COUNT_BUCKETS)
    for v in (1, 2, 3, 100):
        hist.observe(v)
    snap = hist.snapshot()
    assert snap["count"] == 4
    assert snap["sum"] == pytest.approx(106.0)
    assert snap["min"] == 1.0 and snap["max"] == 100.0
    assert set(snap) >= {"p50", "p90", "p99", "p999"}


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram("h", bounds=())
    with pytest.raises(ValueError):
        Histogram("h", bounds=(2.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("h", bounds=(1.0, 2.0)).percentile(0.0)


# ----------------------------------------------------------------------
# Thread safety: exact totals under contention
# ----------------------------------------------------------------------


def test_concurrent_observations_are_exact():
    """No lost updates: totals are exact after 8 threads × 2000 ops."""
    registry = MetricsRegistry()
    counter = registry.counter("ops_total")
    hist = registry.histogram("lat", bounds=LATENCY_BUCKETS)
    n_threads, per_thread = 8, 2000

    def work(tid):
        for i in range(per_thread):
            counter.inc()
            hist.observe(1e-4 * ((tid + i) % 7 + 1))

    threads = [threading.Thread(target=work, args=(t,)) for t in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert counter.value == n_threads * per_thread
    assert hist.count == n_threads * per_thread
    # Cumulative bucket counts are monotone and end at the total.
    cum = [c for _, c in hist.bucket_counts()]
    assert cum == sorted(cum)
    assert cum[-1] == n_threads * per_thread


def test_registry_get_or_create_is_stable_across_threads():
    registry = MetricsRegistry()
    handles = []

    def grab():
        handles.append(registry.counter("shared", shard=1))

    threads = [threading.Thread(target=grab) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert all(h is handles[0] for h in handles)


def test_registry_rejects_kind_mismatch():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")


# ----------------------------------------------------------------------
# Disabled fast paths
# ----------------------------------------------------------------------


def test_disabled_registry_hands_out_noops():
    registry = MetricsRegistry(enabled=False)
    c = registry.counter("a")
    h = registry.histogram("b")
    c.inc(5)
    h.observe(1.0)
    assert c.value == 0.0 and h.count == 0
    assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
    assert registry.to_prometheus() == ""


def test_disabled_tracer_yields_shared_null_span():
    tracer = Tracer(enabled=False)
    with tracer.span("a") as sa:
        with tracer.span("b") as sb:
            sb.note(x=1)
    assert sa is sb
    assert sa.tags == {}
    assert tracer.recent() == []


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------


def test_spans_nest_into_a_tree():
    tracer = Tracer(slow_ms=0.0)
    with tracer.span("query", k=10):
        with tracer.span("search"):
            with tracer.span("walk") as walk:
                walk.note(hops=3)
        with tracer.span("cache_store"):
            pass
    (root,) = tracer.recent(1)
    assert root.name == "query" and root.tags == {"k": 10}
    assert [c.name for c in root.children] == ["search", "cache_store"]
    assert root.children[0].children[0].tags == {"hops": 3}
    assert root.duration >= root.children[0].duration >= 0.0
    # Root crossed slow_ms=0, so it is also in the slow log.
    assert tracer.slow(1)[0] is root
    rendered = format_span(root)
    assert "query" in rendered and "walk" in rendered and "hops=3" in rendered


def test_span_stack_unwinds_on_exception():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("outer"):
            with tracer.span("inner"):
                raise RuntimeError("boom")
    # Both spans closed; a fresh span is a root again.
    with tracer.span("next"):
        pass
    assert tracer.recent(1)[0].name == "next"


def test_ring_buffer_keeps_most_recent():
    tracer = Tracer(capacity=4, slow_ms=1e9)
    for i in range(10):
        with tracer.span(f"s{i}"):
            pass
    names = [s.name for s in tracer.recent()]
    assert names == ["s9", "s8", "s7", "s6"]
    assert tracer.slow() == []  # nothing crossed the slow threshold
    tracer.clear()
    assert tracer.recent() == []


def test_span_to_dict_roundtrips_to_json():
    tracer = Tracer()
    with tracer.span("query", k=5):
        with tracer.span("walk"):
            pass
    tree = tracer.recent(1)[0].to_dict()
    parsed = json.loads(json.dumps(tree))
    assert parsed["name"] == "query"
    assert parsed["children"][0]["name"] == "walk"
    assert parsed["duration_ms"] >= parsed["children"][0]["duration_ms"]


# ----------------------------------------------------------------------
# Exposition formats
# ----------------------------------------------------------------------


def test_prometheus_exposition_shape():
    registry = MetricsRegistry()
    registry.counter("reqs_total", frontend="engine").inc(3)
    registry.gauge("lag").set(2)
    registry.histogram("lat", bounds=(0.1, 1.0)).observe(0.05)
    text = registry.to_prometheus()
    assert '# TYPE reqs_total counter' in text
    assert 'reqs_total{frontend="engine"} 3' in text
    assert "# TYPE lag gauge" in text and "lag 2" in text
    assert 'lat_bucket{le="0.1"} 1' in text
    assert 'lat_bucket{le="+Inf"} 1' in text
    assert "lat_count 1" in text


def test_json_export_matches_snapshot():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    assert json.loads(registry.to_json()) == registry.snapshot()


# ----------------------------------------------------------------------
# Journal metrics + selective re-split eviction (integration-ish units)
# ----------------------------------------------------------------------


def _small_index(seed=3, split_threshold=60):
    spec = SyntheticSpec(
        name="obs", n_users=120, n_items=260, mean_profile_size=22.0,
        n_communities=6, community_pool_size=50, min_profile_size=8,
    )
    dataset = generate(spec, seed=seed)
    params = C2Params(
        k=6, n_buckets=64, n_hashes=4, split_threshold=split_threshold, seed=1
    )
    return OnlineIndex.build(dataset, params=params)


def test_journal_metrics_counts_match_ops():
    index = _small_index()
    registry = MetricsRegistry()
    jm = JournalMetrics(index, registry=registry)
    try:
        rng = np.random.default_rng(5)
        for _ in range(10):
            user = int(rng.choice(index.dataset.active_users()))
            index.add_items(user, rng.integers(0, index.dataset.n_items, size=2))
        for _ in range(4):
            index.add_user(rng.integers(0, index.dataset.n_items, size=12))
        counts = jm.counts()
        assert counts["add_items"] == 10
        assert counts["add_user"] == 4
        assert registry.counter("journal_mutations_total", op="add_items").value == 10
        assert jm.seq == index.version
        assert jm.mutation_rate() > 0.0
        jm.collect()
        assert registry.gauge("journal_clusters").value == index.stats()["clusters"]
    finally:
        jm.close()
    # After close the journal no longer feeds the consumer.
    index.add_user(np.arange(10))
    assert jm.counts().get("add_user", 0) == 4


def test_journal_lag_sources_become_gauges():
    index = _small_index()
    registry = MetricsRegistry()
    jm = JournalMetrics(index, registry=registry)
    try:
        jm.attach_lag("replicas", lambda: 3)
        jm.collect()
        assert registry.gauge("journal_lag", consumer="replicas").value == 3.0
    finally:
        jm.close()


def test_resplit_evicts_only_split_lineage():
    """A re-split drops routed-through entries and keeps the rest warm."""
    index = _small_index(split_threshold=30)
    registry = MetricsRegistry()
    engine = QueryEngine(index, k=6, invalidation="partial", registry=registry)
    try:
        rng = np.random.default_rng(9)
        pool = [
            rng.integers(0, index.dataset.n_items, size=12) for _ in range(60)
        ]
        resplit_stats = None
        for step in range(400):
            for profile in pool:
                engine.search(profile)
            index.add_user(rng.integers(0, index.dataset.n_items, size=14))
            if index.stats()["resplits_total"] > 0:
                resplit_stats = engine.stats()
                break
        assert resplit_stats is not None, "tape never re-split"
        assert (
            resplit_stats["resplit_evictions_total"]
            + resplit_stats["resplit_kept"]
            > 0
        )
        assert resplit_stats["resplit_kept"] > 0, "re-split cleared everything"
        assert (
            registry.counter(
                "cache_resplit_evictions_total", frontend="engine"
            ).value
            == resplit_stats["resplit_evictions_total"]
        )
    finally:
        engine.close()
