"""Property tests for the telemetry layer (repro.obs, PR 7).

Randomized programs (fixed seeds, no hypothesis dependency) checked
against strict oracles:

* a random recursive span program executed through :class:`Tracer`
  reconstructs **exactly** the tree that generated it — names, order,
  nesting — and every parent's duration bounds its children's sum;
* a random mutation tape folded by :class:`JournalMetrics` produces
  per-op counts, edge-delta totals and a re-split counter equal to
  ground truth recomputed independently from the same journal events
  and the index's own accounting;
* random latency samples pushed through the fixed-bucket
  :class:`Histogram` yield quantile estimates within one factor-2
  bucket of numpy's exact quantiles, for every standard quantile.

The CI property matrix shifts the seed base via ``REPRO_PROP_SEED`` so
tier-1 stays at two seeds per run but the programs vary across jobs.
"""

import os

import numpy as np
import pytest

from repro import C2Params
from repro.data import SyntheticSpec, generate
from repro.obs import (
    LATENCY_BUCKETS,
    Histogram,
    JournalMetrics,
    MetricsRegistry,
    Tracer,
)
from repro.online import OnlineIndex

_SEED_BASE = int(os.environ.get("REPRO_PROP_SEED", "0"))
SEEDS = [_SEED_BASE, _SEED_BASE + 1]


# ----------------------------------------------------------------------
# Span nesting reconstructs the generating program
# ----------------------------------------------------------------------


def _random_tree(rng, depth=0):
    """A random span program: (name, [children...])."""
    n_children = int(rng.integers(0, 4 - depth)) if depth < 3 else 0
    return (
        f"op{int(rng.integers(0, 10))}",
        [_random_tree(rng, depth + 1) for _ in range(n_children)],
    )


def _execute(tracer, node):
    name, children = node
    with tracer.span(name):
        for child in children:
            _execute(tracer, child)


def _shape(span):
    return (span.name, [_shape(c) for c in span.children])


def _check_durations(span):
    assert span.duration is not None and span.duration >= 0.0
    child_sum = sum(c.duration for c in span.children)
    assert child_sum <= span.duration + 1e-6
    for child in span.children:
        _check_durations(child)


@pytest.mark.parametrize("seed", SEEDS)
def test_tracer_reconstructs_random_span_programs(seed):
    rng = np.random.default_rng(seed)
    tracer = Tracer(capacity=64)
    programs = [_random_tree(rng) for _ in range(40)]
    for program in programs:
        _execute(tracer, program)
    recent = tracer.recent()  # newest first
    got = [_shape(s) for s in reversed(recent)]
    assert got == programs[-len(recent) :]
    for span in recent:
        _check_durations(span)


@pytest.mark.parametrize("seed", SEEDS)
def test_tracer_nesting_survives_random_exceptions(seed):
    """Spans unwind correctly when programs abort at random depths."""
    rng = np.random.default_rng(seed + 50)
    tracer = Tracer()

    def run(depth=0):
        with tracer.span(f"d{depth}"):
            if rng.random() < 0.3:
                raise RuntimeError
            if depth < 3:
                for _ in range(int(rng.integers(0, 3))):
                    run(depth + 1)

    for _ in range(30):
        try:
            run()
        except RuntimeError:
            pass
        # The stack must be empty between programs: the next root is a
        # root, not a child of a leaked frame.
        with tracer.span("probe"):
            pass
        assert tracer.recent(1)[0].name == "probe"


# ----------------------------------------------------------------------
# Journal counts equal ground truth
# ----------------------------------------------------------------------


def _index(seed):
    spec = SyntheticSpec(
        name="propobs", n_users=140, n_items=280, mean_profile_size=22.0,
        n_communities=8, community_pool_size=60, min_profile_size=8,
    )
    dataset = generate(spec, seed=seed)
    params = C2Params(k=6, n_buckets=64, n_hashes=4, split_threshold=40, seed=1)
    return OnlineIndex.build(dataset, params=params)


@pytest.mark.parametrize("seed", SEEDS)
def test_journal_metrics_match_ground_truth_tape(seed):
    index = _index(seed)
    registry = MetricsRegistry()
    truth = {"counts": {}, "added": 0, "removed": 0}

    def oracle(event, user, deltas):
        truth["counts"][event] = truth["counts"].get(event, 0) + 1
        for _u, _v, was_added, *_ in deltas:
            truth["added" if was_added else "removed"] += 1

    index.subscribe(oracle)
    jm = JournalMetrics(index, registry=registry)
    resplits_before = index.stats()["resplits_total"]
    try:
        rng = np.random.default_rng(seed + 900)
        for _ in range(80):
            active = index.dataset.active_users()
            op = rng.random()
            if op < 0.45 and active.size:
                user = int(rng.choice(active))
                index.add_items(
                    user, rng.integers(0, index.dataset.n_items, size=3)
                )
            elif op < 0.8:
                index.add_user(rng.integers(0, index.dataset.n_items, size=14))
            elif active.size > 40:
                index.remove_user(int(rng.choice(active)))
        assert jm.counts() == truth["counts"]
        for event, n in truth["counts"].items():
            assert (
                registry.counter("journal_mutations_total", op=event).value == n
            )
        assert (
            registry.counter("journal_edges_added_total").value == truth["added"]
        )
        assert (
            registry.counter("journal_edges_removed_total").value
            == truth["removed"]
        )
        assert (
            registry.counter("journal_resplits_total").value
            == index.stats()["resplits_total"] - resplits_before
        )
        assert jm.seq == index.version
        jm.collect()
        stats = index.stats()
        assert registry.gauge("journal_clusters").value == stats["clusters"]
        assert (
            registry.gauge("journal_max_cluster_size").value
            == stats["max_cluster_size"]
        )
        # The derived size distribution covers every live cluster.
        assert (
            registry.histogram("journal_cluster_size").count == stats["clusters"]
        )
    finally:
        jm.close()
        index.unsubscribe(oracle)


# ----------------------------------------------------------------------
# Histogram estimates track exact quantiles for random sample sets
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_histogram_quantiles_bounded_by_bucket_width(seed):
    rng = np.random.default_rng(seed + 123)
    sigma = float(rng.uniform(0.5, 1.5))
    samples = rng.lognormal(mean=-6.5, sigma=sigma, size=5_000)
    hist = Histogram("lat", bounds=LATENCY_BUCKETS)
    for s in samples:
        hist.observe(float(s))
    for q in (0.5, 0.9, 0.99, 0.999):
        exact = float(np.quantile(samples, q))
        est = hist.percentile(q)
        assert exact / 2 <= est <= exact * 2, (q, exact, est)
