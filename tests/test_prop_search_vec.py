"""Differential property suite: vectorized walk == scalar oracle.

The numpy walk kernels (``GraphSearcher(walk_impl="numpy")``, the
default) promise **bit-equivalence** with the original per-node python
loop (``walk_impl="python"``) — not approximate agreement: identical
ids, identical float scores, identical ``evaluations``/``hops``
charges and identical ``routed`` provenance. This suite pins that
promise on randomized indexes and mutation tapes across the full
parameter grid (k/ef/budget/exclude/extra_seeds, both similarity
backends, both reverse-edge sources, rerank on/off) including the
degenerate corners: empty seed sets, budgets smaller than the seed
count, all-excluded neighbourhoods, and post-re-split indexes.

The CI property matrix shifts the seed base via ``REPRO_PROP_SEED`` so
tier-1 stays at two seeds per run but tapes vary across jobs.
"""

import os

import numpy as np
import pytest

from repro import C2Params
from repro.bench.scenarios import IndexWorld, make_scenario, play
from repro.data import SyntheticSpec, generate
from repro.online import OnlineIndex
from repro.serve import GraphSearcher

K = 6

_SEED_BASE = int(os.environ.get("REPRO_PROP_SEED", "0"))
SEEDS = [_SEED_BASE, _SEED_BASE + 1]


def _index(seed, backend="exact", auto_resplit=False, threshold=60):
    spec = SyntheticSpec(
        name="propvec", n_users=150, n_items=300, mean_profile_size=25.0,
        n_communities=8, community_pool_size=60, min_profile_size=8,
    )
    dataset = generate(spec, seed=seed)
    params = C2Params(
        k=K, n_buckets=64, n_hashes=4, split_threshold=threshold, seed=1
    )
    return OnlineIndex.build(
        dataset, params=params, backend=backend, auto_resplit=auto_resplit
    )


def _mutate(index, rng):
    active = index.dataset.active_users()
    op = rng.random()
    if op < 0.5 and active.size:
        user = int(rng.choice(active))
        index.add_items(user, rng.integers(0, index.dataset.n_items, size=2))
    elif op < 0.75:
        index.add_user(rng.integers(0, index.dataset.n_items, size=15))
    elif active.size > 40:
        index.remove_user(int(rng.choice(active)))


def _random_profile(index, rng):
    if rng.random() < 0.5 and index.dataset.active_users().size:
        base = index.dataset.profile(int(rng.choice(index.dataset.active_users())))
        keep = rng.random(base.size) > 0.4
        return base[keep] if keep.any() else base
    return rng.integers(0, index.dataset.n_items, size=int(rng.integers(3, 25)))


def _assert_identical(a, b, ctx=""):
    assert np.array_equal(a.ids, b.ids), f"ids diverge {ctx}: {a.ids} vs {b.ids}"
    assert np.array_equal(a.scores, b.scores), f"scores diverge {ctx}"
    assert a.evaluations == b.evaluations, (
        f"evaluations diverge {ctx}: {a.evaluations} vs {b.evaluations}"
    )
    assert a.hops == b.hops, f"hops diverge {ctx}: {a.hops} vs {b.hops}"
    assert a.routed == b.routed, f"routed diverges {ctx}"


def _pair(index, **kwargs):
    return (
        GraphSearcher(index, walk_impl="numpy", **kwargs),
        GraphSearcher(index, walk_impl="python", **kwargs),
    )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("backend", ["exact", "goldfinger"])
def test_numpy_equals_python_across_parameter_grid(seed, backend):
    """Random tapes + random k/ef/budget/exclude/extra_seeds combos."""
    index = _index(seed, backend=backend)
    rng = np.random.default_rng(seed + 11)
    for _ in range(25):
        _mutate(index, rng)
    for reverse in ("incremental", "rebuild"):
        for rerank in (None, "exact"):
            s_np, s_py = _pair(index, reverse=reverse, rerank=rerank)
            for trial in range(10):
                profile = _random_profile(index, rng)
                k = int(rng.integers(1, 15))
                ef = int(rng.integers(1, 40))
                budget = (None, int(rng.integers(1, 180)), 3)[trial % 3]
                exclude = rng.choice(
                    index.dataset.n_users,
                    size=int(rng.integers(0, 10)), replace=False,
                )
                extra = (
                    rng.choice(
                        index.dataset.n_users,
                        size=int(rng.integers(0, 5)), replace=False,
                    )
                    if trial % 2
                    else None
                )
                a = s_np.top_k(
                    profile, k=k, ef=ef, budget=budget,
                    exclude=exclude, extra_seeds=extra,
                )
                b = s_py.top_k(
                    profile, k=k, ef=ef, budget=budget,
                    exclude=exclude, extra_seeds=extra,
                )
                _assert_identical(
                    a, b, f"(rev={reverse} rerank={rerank} trial={trial})"
                )


@pytest.mark.parametrize("seed", SEEDS)
def test_numpy_equals_python_under_interleaved_mutations(seed):
    """Equivalence must hold at every intermediate index state."""
    index = _index(seed)
    s_np, s_py = _pair(index)
    rng = np.random.default_rng(seed + 23)
    for step in range(40):
        _mutate(index, rng)
        profile = _random_profile(index, rng)
        budget = None if step % 2 else int(rng.integers(10, 120))
        a = s_np.top_k(profile, k=K, budget=budget)
        b = s_py.top_k(profile, k=K, budget=budget)
        _assert_identical(a, b, f"(step={step})")


@pytest.mark.parametrize("seed", SEEDS)
def test_degenerate_empty_seeds(seed):
    """Excluding every user empties the seed set in both impls."""
    index = _index(seed)
    s_np, s_py = _pair(index)
    everyone = np.arange(index.dataset.n_users)
    a = s_np.top_k([1, 2, 3], k=K, exclude=everyone)
    b = s_py.top_k([1, 2, 3], k=K, exclude=everyone)
    assert len(a) == 0 and a.evaluations == 0 and a.hops == 0
    _assert_identical(a, b)


@pytest.mark.parametrize("seed", SEEDS)
def test_degenerate_budget_below_seed_count(seed):
    """A budget smaller than the seed set truncates seeds identically."""
    index = _index(seed)
    rng = np.random.default_rng(seed + 31)
    s_np, s_py = _pair(index)
    for budget in (1, 2, 5):
        profile = _random_profile(index, rng)
        a = s_np.top_k(profile, k=K, ef=32, budget=budget)
        b = s_py.top_k(profile, k=K, ef=32, budget=budget)
        assert a.evaluations <= budget
        _assert_identical(a, b, f"(budget={budget})")


@pytest.mark.parametrize("seed", SEEDS)
def test_degenerate_all_excluded_neighborhoods(seed):
    """Seeds whose entire neighbourhoods are excluded stall both walks
    at the same point."""
    index = _index(seed)
    rng = np.random.default_rng(seed + 47)
    s_np, s_py = _pair(index)
    active = index.dataset.active_users()
    seeds = active[: min(4, active.size)]
    # Exclude every out/in-neighbour of the seeds: the walk can score
    # the seeds but every expansion comes back empty.
    rev = index.reverse_index()
    banned: set[int] = set()
    for u in seeds:
        banned.update(int(v) for v in index.graph.neighbors(int(u)))
        banned.update(int(v) for v in rev.holders(int(u)))
    banned -= {int(u) for u in seeds}
    profile = _random_profile(index, rng)
    a = s_np.top_k(profile, k=K, exclude=np.fromiter(banned, dtype=np.int64),
                   extra_seeds=seeds)
    b = s_py.top_k(profile, k=K, exclude=np.fromiter(banned, dtype=np.int64),
                   extra_seeds=seeds)
    _assert_identical(a, b)


@pytest.mark.parametrize("seed", SEEDS)
def test_numpy_equals_python_after_resplit(seed):
    """Post-re-split routing state serves identical walks."""
    index = _index(seed, auto_resplit=True, threshold=30)
    world = IndexWorld(index)
    play(make_scenario("churn", 220, seed=seed, bundle_size=60), world)
    rng = np.random.default_rng(seed + 61)
    s_np, s_py = _pair(index)
    for _ in range(12):
        profile = _random_profile(index, rng)
        a = s_np.top_k(profile, k=K)
        b = s_py.top_k(profile, k=K)
        _assert_identical(a, b)
