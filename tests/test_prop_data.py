"""Property-based tests for the data substrate (dataset + CV)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Dataset, k_fold_split

profile = st.sets(st.integers(0, 59), min_size=2, max_size=20)


class TestDatasetProperties:
    @given(profs=st.lists(profile, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_from_profiles_roundtrip(self, profs):
        ds = Dataset.from_profiles([sorted(p) for p in profs], n_items=60)
        assert ds.n_users == len(profs)
        for u, p in enumerate(profs):
            assert ds.profile_set(u) == p

    @given(profs=st.lists(profile, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_from_ratings_equals_from_profiles(self, profs):
        users, items = [], []
        for u, p in enumerate(profs):
            for i in p:
                users.append(u)
                items.append(i)
        a = Dataset.from_ratings(
            np.array(users, dtype=np.int64),
            np.array(items, dtype=np.int64),
            n_users=len(profs),
            n_items=60,
        )
        b = Dataset.from_profiles([sorted(p) for p in profs], n_items=60)
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)

    @given(
        profs=st.lists(profile, min_size=1, max_size=15),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_subset_profiles_match(self, profs, data):
        ds = Dataset.from_profiles([sorted(p) for p in profs], n_items=60)
        picks = data.draw(
            st.lists(st.integers(0, len(profs) - 1), min_size=0, max_size=8)
        )
        sub = ds.subset(np.array(picks, dtype=np.int64))
        for pos, u in enumerate(picks):
            assert sub.profile_set(pos) == ds.profile_set(u)


class TestCVProperties:
    @given(
        profs=st.lists(profile, min_size=1, max_size=12),
        n_folds=st.integers(2, 4),
        seed=st.integers(0, 5),
    )
    @settings(max_examples=50, deadline=None)
    def test_folds_partition_each_profile(self, profs, n_folds, seed):
        ds = Dataset.from_profiles([sorted(p) for p in profs], n_items=60)
        folds = k_fold_split(ds, n_folds=n_folds, seed=seed)
        for u in range(ds.n_users):
            all_test = np.concatenate([f.test_items(u) for f in folds])
            assert sorted(all_test.tolist()) == ds.profile(u).tolist()
            for f in folds:
                train = set(f.train.profile(u).tolist())
                test = set(f.test_items(u).tolist())
                assert not train & test
                assert train | test == ds.profile_set(u)
