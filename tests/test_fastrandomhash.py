"""Unit tests for repro.core.fastrandomhash."""

import numpy as np

from repro.core import FastRandomHash, GenerativeHash, UNDEFINED
from repro.data import Dataset


class _FixedHash:
    """A hand-written generative hash for deterministic tests."""

    def __init__(self, table: dict[int, int], n_buckets: int) -> None:
        self.n_buckets = n_buckets
        self._table = table
        self.table = np.array(
            [table.get(i, n_buckets) for i in range(max(table) + 1)], dtype=np.int32
        )

    def __call__(self, items: np.ndarray) -> np.ndarray:
        return self.table[items]


class TestPaperExample:
    """The worked example of §II-D: h(i1..i5) = 2,3,2,1,3 with b=3."""

    def setup_method(self):
        self.h = _FixedHash({0: 2, 1: 3, 2: 2, 3: 1, 4: 3}, n_buckets=3)
        # P_u = {i1,i2,i3} -> items 0,1,2 ; P_v = {i3,i4,i5} -> items 2,3,4
        self.dataset = Dataset.from_profiles([[0, 1, 2], [2, 3, 4]], n_items=5)
        self.frh = FastRandomHash(self.h)

    def test_hash_of_u_is_2(self):
        hashes = self.frh.user_hashes(self.dataset)
        assert hashes[0] == 2  # min{2, 3, 2}

    def test_hash_of_v_is_1(self):
        hashes = self.frh.user_hashes(self.dataset)
        assert hashes[1] == 1  # min{2, 1, 3}

    def test_second_configuration_collides(self):
        """h2(i1..i5) = 1,3,3,2,1: both users hash to 1 (paper §II-D)."""
        h2 = _FixedHash({0: 1, 1: 3, 2: 3, 3: 2, 4: 1}, n_buckets=3)
        hashes = FastRandomHash(h2).user_hashes(self.dataset)
        assert hashes[0] == 1 and hashes[1] == 1


class TestUserHashes:
    def test_empty_profile_undefined(self):
        ds = Dataset.from_profiles([[], [0]], n_items=2)
        frh = FastRandomHash(GenerativeHash(2, 4, seed=0))
        hashes = frh.user_hashes(ds)
        assert hashes[0] == UNDEFINED
        assert hashes[1] != UNDEFINED

    def test_is_minimum_of_item_hashes(self, small_dataset):
        gen = GenerativeHash(small_dataset.n_items, 32, seed=4)
        frh = FastRandomHash(gen)
        hashes = frh.user_hashes(small_dataset)
        for u in range(0, small_dataset.n_users, 17):
            expected = int(gen(small_dataset.profile(u)).min())
            assert hashes[u] == expected

    def test_range(self, small_dataset):
        frh = FastRandomHash(GenerativeHash(small_dataset.n_items, 8, seed=1))
        hashes = frh.user_hashes(small_dataset)
        assert hashes.min() >= 1
        assert hashes.max() <= 8


class TestExcluding:
    def test_excludes_up_to_eta(self):
        h = _FixedHash({0: 2, 1: 3, 2: 2, 3: 1, 4: 3}, n_buckets=3)
        ds = Dataset.from_profiles([[0, 1, 2], [2, 3, 4]], n_items=5)
        frh = FastRandomHash(h)
        # Exclude hashes <= 2: u (hashes 2,3,2) -> min{3} = 3
        out = frh.user_hashes_excluding(ds, np.array([0]), eta=2)
        assert out[0] == 3

    def test_undefined_when_all_excluded(self):
        h = _FixedHash({0: 1, 1: 1}, n_buckets=3)
        ds = Dataset.from_profiles([[0, 1]], n_items=2)
        frh = FastRandomHash(h)
        out = frh.user_hashes_excluding(ds, np.array([0]), eta=1)
        assert out[0] == UNDEFINED

    def test_single_item_user_undefined(self):
        """Paper: users with one item have H\\eta undefined (their only
        hash value is the cluster's own eta)."""
        h = _FixedHash({0: 2}, n_buckets=3)
        ds = Dataset.from_profiles([[0]], n_items=1)
        out = FastRandomHash(h).user_hashes_excluding(ds, np.array([0]), eta=2)
        assert out[0] == UNDEFINED

    def test_matches_bruteforce(self, small_dataset):
        gen = GenerativeHash(small_dataset.n_items, 16, seed=9)
        frh = FastRandomHash(gen)
        users = np.arange(0, small_dataset.n_users, 13)
        out = frh.user_hashes_excluding(small_dataset, users, eta=3)
        for pos, u in enumerate(users):
            vals = gen(small_dataset.profile(int(u)))
            above = vals[vals > 3]
            expected = int(above.min()) if above.size else UNDEFINED
            assert out[pos] == expected
