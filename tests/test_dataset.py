"""Unit tests for repro.data.dataset."""

import numpy as np
import pytest

from repro.data import Dataset


class TestConstruction:
    def test_from_profiles_basic(self):
        ds = Dataset.from_profiles([[1, 2], [0], [2, 3, 4]], n_items=5)
        assert ds.n_users == 3
        assert ds.n_items == 5
        assert ds.n_ratings == 6
        assert list(ds.profile(0)) == [1, 2]
        assert list(ds.profile(2)) == [2, 3, 4]

    def test_from_profiles_dedupes_and_sorts(self):
        ds = Dataset.from_profiles([[3, 1, 3, 2, 1]])
        assert list(ds.profile(0)) == [1, 2, 3]

    def test_from_profiles_infers_n_items(self):
        ds = Dataset.from_profiles([[0, 7], [2]])
        assert ds.n_items == 8

    def test_from_profiles_empty_profile(self):
        ds = Dataset.from_profiles([[], [1]], n_items=3)
        assert ds.profile(0).size == 0
        assert ds.profile_sizes[0] == 0

    def test_from_profiles_no_users(self):
        ds = Dataset.from_profiles([], n_items=4)
        assert ds.n_users == 0
        assert ds.n_ratings == 0

    def test_from_ratings_basic(self):
        ds = Dataset.from_ratings(
            users=np.array([0, 0, 1, 2, 2, 2]),
            items=np.array([1, 2, 0, 4, 3, 2]),
        )
        assert ds.n_users == 3
        assert list(ds.profile(2)) == [2, 3, 4]

    def test_from_ratings_dedupes_pairs(self):
        ds = Dataset.from_ratings(
            users=np.array([0, 0, 0]), items=np.array([1, 1, 2])
        )
        assert ds.n_ratings == 2

    def test_from_ratings_user_gap(self):
        ds = Dataset.from_ratings(
            users=np.array([0, 3]), items=np.array([1, 1]), n_users=5
        )
        assert ds.n_users == 5
        assert ds.profile(1).size == 0
        assert list(ds.profile(3)) == [1]

    def test_from_ratings_shape_mismatch(self):
        with pytest.raises(ValueError, match="same shape"):
            Dataset.from_ratings(np.array([0]), np.array([1, 2]))

    def test_malformed_indptr_rejected(self):
        with pytest.raises(ValueError, match="indptr"):
            Dataset(
                indptr=np.array([1, 2]),
                indices=np.array([0, 1], dtype=np.int32),
                n_items=2,
            )

    def test_decreasing_indptr_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            Dataset(
                indptr=np.array([0, 2, 1, 2]),
                indices=np.array([0, 1], dtype=np.int32),
                n_items=2,
            )

    def test_item_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="item ids"):
            Dataset.from_profiles([[5]], n_items=3)


class TestAccessors:
    def test_profile_sizes(self, tiny_dataset):
        assert list(tiny_dataset.profile_sizes) == [4, 4, 4, 3, 5, 2]

    def test_profile_set(self, tiny_dataset):
        assert tiny_dataset.profile_set(3) == {5, 6, 7}

    def test_iter_profiles(self, tiny_dataset):
        pairs = list(tiny_dataset.iter_profiles())
        assert len(pairs) == 6
        assert pairs[0][0] == 0
        assert list(pairs[5][1]) == [0, 3]

    def test_density(self):
        ds = Dataset.from_profiles([[0, 1], [2, 3]], n_items=4)
        assert ds.density == pytest.approx(4 / 8)

    def test_density_empty(self):
        ds = Dataset.from_profiles([], n_items=0)
        assert ds.density == 0.0

    def test_to_csr_matrix(self, tiny_dataset):
        m = tiny_dataset.to_csr_matrix()
        assert m.shape == (6, 9)
        assert m.sum() == tiny_dataset.n_ratings
        assert m[0, 3] == 1
        assert m[3, 0] == 0


class TestSubset:
    def test_subset_reindexes(self, tiny_dataset):
        sub = tiny_dataset.subset(np.array([2, 4]))
        assert sub.n_users == 2
        assert list(sub.profile(0)) == list(tiny_dataset.profile(2))
        assert list(sub.profile(1)) == list(tiny_dataset.profile(4))

    def test_subset_keeps_item_universe(self, tiny_dataset):
        sub = tiny_dataset.subset(np.array([0]))
        assert sub.n_items == tiny_dataset.n_items

    def test_subset_empty(self, tiny_dataset):
        sub = tiny_dataset.subset(np.array([], dtype=np.int64))
        assert sub.n_users == 0
