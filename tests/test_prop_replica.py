"""Property tests for replica convergence (repro.serve.replica, PR 4).

Randomized interleavings (fixed seeds, no hypothesis dependency) of
primary mutations with delta shipping and replica reads, checking the
replication contract against strict oracles:

* a replica fed every delta is **identical to the primary** in the
  serving currency — per-row neighbour-id sets, reverse adjacency,
  routing tables, cluster membership — at every step, and its walks
  return exactly the primary's answers;
* a **lagging** replica (deltas buffered, applied later in random
  chunks — the process transport's queue, minus the processes)
  converges to the same state once drained, and re-applying already
  seen deltas is an idempotent no-op;
* the **process transport** end-to-end returns single-worker answers
  after churn with zero snapshot re-forks.

The CI property matrix shifts the seed base via ``REPRO_PROP_SEED`` so
tier-1 stays at two seeds per run but interleavings vary across jobs.
"""

import os

import numpy as np
import pytest

from repro import C2Params
from repro.data import SyntheticSpec, generate
from repro.online import OnlineIndex
from repro.serve import GraphSearcher, QueryEngine, ReplicaSet, ShardedQueryEngine
from repro.serve.replica import edge_digest

K = 6
N_OPS = 40

_SEED_BASE = int(os.environ.get("REPRO_PROP_SEED", "0"))
SEEDS = [_SEED_BASE, _SEED_BASE + 1]


def _index(seed, backend="goldfinger"):
    spec = SyntheticSpec(
        name="proprep", n_users=140, n_items=280, mean_profile_size=22.0,
        n_communities=8, community_pool_size=60, min_profile_size=8,
    )
    dataset = generate(spec, seed=seed)
    params = C2Params(k=K, n_buckets=64, n_hashes=4, split_threshold=60, seed=1)
    return OnlineIndex.build(dataset, params=params, backend=backend)


def _mutate(index, rng):
    """One random mutation (including refills); returns the user (or -1)."""
    active = index.dataset.active_users()
    op = rng.random()
    if op < 0.4 and active.size:
        user = int(rng.choice(active))
        index.add_items(user, rng.integers(0, index.dataset.n_items, size=2))
        return user
    if op < 0.65:
        return index.add_user(rng.integers(0, index.dataset.n_items, size=12))
    if op < 0.85 and active.size > 40:
        user = int(rng.choice(active))
        index.remove_user(user)
        return user
    degraded = list(index.degraded)
    if degraded:
        user = int(rng.choice(degraded))
        index.refill(user)
        return user
    return -1


def _random_profile(index, rng):
    if rng.random() < 0.5 and index.dataset.active_users().size:
        base = index.dataset.profile(int(rng.choice(index.dataset.active_users())))
        keep = rng.random(base.size) > 0.4
        return base[keep] if keep.any() else base
    return rng.integers(0, index.dataset.n_items, size=int(rng.integers(3, 20)))


def _assert_state_parity(replica, primary):
    """The full serving-state oracle a converged replica must satisfy."""
    assert replica.version == primary.version
    assert replica.graph.heaps.edge_sets() == primary.graph.heaps.edge_sets()
    assert edge_digest(replica.graph.heaps) == edge_digest(primary.graph.heaps)
    assert replica.reverse_index().to_sets() == primary.reverse_index().to_sets()
    assert replica._assign == primary._assign
    assert replica._members == primary._members
    assert replica.dataset.n_items == primary.dataset.n_items
    assert np.array_equal(
        replica.dataset.active_mask(), primary.dataset.active_mask()
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_synchronous_replica_is_identical_at_every_step(seed):
    primary = _index(seed)
    primary.reverse_index()  # maintained on both sides from the start
    replicas = ReplicaSet(primary, 2, mode="thread")
    walk_primary = GraphSearcher(primary)
    walk_replica = GraphSearcher(replicas.replica(0))
    rng = np.random.default_rng(seed + 600)
    try:
        for _ in range(N_OPS):
            _mutate(primary, rng)
            _assert_state_parity(replicas.replica(0), primary)
            # Behaviour oracle: the replica's walk answers exactly what
            # the primary's would, profile by profile.
            profile = _random_profile(primary, rng)
            a = walk_primary.top_k(profile, k=K)
            b = walk_replica.top_k(profile, k=K)
            assert np.array_equal(a.ids, b.ids)
            assert a.scores == pytest.approx(b.scores)
            assert a.evaluations == b.evaluations and a.hops == b.hops
        assert replicas.stats()["resyncs_total"] == 0
        assert replicas.converged()
    finally:
        replicas.close()


@pytest.mark.parametrize("seed", SEEDS)
def test_lagging_replica_converges_once_drained(seed):
    """The process-queue semantics, process-free: buffer, drain in chunks."""
    primary = _index(seed)
    primary.reverse_index()
    replica = primary.clone()
    replica.reverse_index()
    queue = []
    primary.subscribe_deltas(queue.append)
    rng = np.random.default_rng(seed + 700)
    try:
        for _ in range(N_OPS):
            _mutate(primary, rng)
            if queue and rng.random() < 0.4:
                # Drain a random prefix — the replica lags behind by
                # whatever remains buffered.
                take = int(rng.integers(1, len(queue) + 1))
                batch, queue[:] = queue[:take], queue[take:]
                for delta in batch:
                    assert replica.apply_delta(delta)
        for delta in queue:
            assert replica.apply_delta(delta)
        _assert_state_parity(replica, primary)
        # Idempotence: a replayed tail (a retry after a worker hiccup)
        # changes nothing.
        replayed = []
        primary.subscribe_deltas(replayed.append)
        _mutate(primary, np.random.default_rng(seed + 701))
        for delta in replayed:
            assert replica.apply_delta(delta)
            assert not replica.apply_delta(delta)
        _assert_state_parity(replica, primary)
        primary.unsubscribe_deltas(replayed.append)
    finally:
        primary.unsubscribe_deltas(queue.append)


@pytest.mark.parametrize("seed", SEEDS)
def test_snapshot_raced_deltas_are_skipped(seed):
    """A delta older than the snapshot it joined must be a no-op."""
    primary = _index(seed)
    deltas = []
    primary.subscribe_deltas(deltas.append)
    rng = np.random.default_rng(seed + 800)
    try:
        for _ in range(5):
            _mutate(primary, rng)
        clone = primary.clone()  # snapshot already contains all 5
        for delta in deltas:
            assert not clone.apply_delta(delta)
        _assert_state_parity(clone, primary)
    finally:
        primary.unsubscribe_deltas(deltas.append)


@pytest.mark.parametrize("seed", SEEDS[:1])
def test_process_transport_matches_single_worker_after_churn(seed):
    """End-to-end: pinned worker pools, pickled delta queue, no re-forks."""
    primary = _index(seed)
    primary.reverse_index()
    engine = ShardedQueryEngine(
        primary, 2, executor="process", replicas=True, cache_size=0
    )
    oracle = QueryEngine(primary, cache_size=0)
    rng = np.random.default_rng(seed + 900)
    try:
        for round_ in range(4):
            for _ in range(5):
                _mutate(primary, rng)
            batch = [_random_profile(primary, rng) for _ in range(6)]
            for got, want in zip(
                engine.search_many(batch, k=K), oracle.search_many(batch, k=K)
            ):
                assert np.array_equal(got.ids, want.ids)
                assert got.scores == pytest.approx(want.scores)
        stats = engine.stats()
        assert stats["resyncs_total"] == 0
        assert stats["deltas_shipped_total"] == primary.version
        assert engine.replica_set.converged()
    finally:
        engine.close()
        oracle.close()
