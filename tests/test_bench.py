"""Unit tests for the benchmark harness (repro.bench)."""

import numpy as np
import pytest

from repro.bench import (
    ALGORITHMS,
    Workload,
    evaluate_run,
    exact_graph,
    format_table,
    paper_workload,
    run_algorithm,
    scaled_c2_params,
)
from repro.data import SyntheticSpec, generate


@pytest.fixture(scope="module")
def bench_dataset():
    spec = SyntheticSpec(
        name="bench-mini",
        n_users=150,
        n_items=300,
        mean_profile_size=25.0,
        n_communities=6,
        community_pool_size=60,
        min_profile_size=10,
    )
    return generate(spec, seed=5)


@pytest.fixture(scope="module")
def workload():
    return Workload(dataset="ml1M", scale=0.02, k=5)


class TestWorkloads:
    def test_paper_workload_defaults(self):
        wl = paper_workload("ml10M", scale=0.05)
        assert wl.dataset == "ml10M"
        assert wl.k == 30
        assert wl.lsh_hashes == 10

    def test_scaled_params_shrink_with_scale(self):
        full = scaled_c2_params("ml10M", 1.0)
        small = scaled_c2_params("ml10M", 0.05)
        assert full.n_buckets == 4096
        assert full.split_threshold == 2000
        assert small.n_buckets == full.n_buckets  # b is scale-free
        assert small.split_threshold < full.split_threshold

    def test_scaled_params_keep_scale_free_knobs(self):
        p = scaled_c2_params("DBLP", 0.05)
        assert p.n_hashes == 15  # paper's DBLP setting survives scaling
        assert p.rho == 5

    def test_c2_params_property(self, workload):
        params = workload.c2_params
        assert params.n_buckets >= 64


class TestRunner:
    def test_all_algorithms_run(self, bench_dataset, workload):
        for name in ALGORITHMS:
            result = run_algorithm(name, bench_dataset, workload)
            assert result.graph.n_users == bench_dataset.n_users, name
            assert result.comparisons > 0, name

    def test_unknown_algorithm(self, bench_dataset, workload):
        with pytest.raises(KeyError, match="unknown algorithm"):
            run_algorithm("FLANN", bench_dataset, workload)

    def test_exact_graph_memoised(self, bench_dataset):
        a, avg_a = exact_graph(bench_dataset, k=5)
        b, avg_b = exact_graph(bench_dataset, k=5)
        assert a is b
        assert avg_a == avg_b
        assert 0 < avg_a <= 1

    def test_evaluate_run(self, bench_dataset, workload):
        result = run_algorithm("BruteForce", bench_dataset, workload)
        run = evaluate_run("BruteForce", bench_dataset, workload, result)
        assert run.quality > 0.9  # GoldFinger brute force ~ exact
        assert run.as_row()["Algo"] == "BruteForce"


class TestReport:
    def test_format_table_alignment(self):
        rows = [
            {"Algo": "C2", "Time": "1.0"},
            {"Algo": "LongerName", "Time": "22.5"},
        ]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("Algo")
        assert len(set(len(line) for line in lines if line)) <= 2

    def test_format_table_missing_cells(self):
        text = format_table([{"A": 1}, {"A": 2, "B": 3}])
        assert "B" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_table_title(self):
        text = format_table([{"A": 1}], title="Table II")
        assert text.startswith("Table II")
