"""Unit tests for repro.data.stats and repro.data.io."""

import numpy as np
import pytest

from repro.data import Dataset, describe, load_dataset, save_dataset


class TestDescribe:
    def test_counts(self, tiny_dataset):
        stats = describe(tiny_dataset)
        assert stats.n_users == 6
        assert stats.n_items == 9
        assert stats.n_ratings == 22

    def test_mean_profile_size(self, tiny_dataset):
        stats = describe(tiny_dataset)
        assert stats.mean_profile_size == pytest.approx(22 / 6)

    def test_mean_item_degree_ignores_unused(self):
        ds = Dataset.from_profiles([[0], [0]], n_items=10)
        stats = describe(ds)
        assert stats.mean_item_degree == pytest.approx(2.0)

    def test_density(self, tiny_dataset):
        stats = describe(tiny_dataset)
        assert stats.density == pytest.approx(22 / (6 * 9))

    def test_as_row_format(self, tiny_dataset):
        row = describe(tiny_dataset).as_row()
        assert row["Dataset"] == "tiny"
        assert row["Users"] == 6
        assert row["Density"].endswith("%")

    def test_empty_dataset(self):
        stats = describe(Dataset.from_profiles([], n_items=0))
        assert stats.mean_profile_size == 0.0
        assert stats.mean_item_degree == 0.0


class TestIO:
    def test_roundtrip(self, tiny_dataset, tmp_path):
        path = tmp_path / "tiny.txt"
        save_dataset(tiny_dataset, path)
        loaded = load_dataset(path)
        assert loaded.n_users == tiny_dataset.n_users
        assert loaded.n_items == tiny_dataset.n_items
        assert np.array_equal(loaded.indices, tiny_dataset.indices)
        assert np.array_equal(loaded.indptr, tiny_dataset.indptr)
        assert loaded.name == "tiny"

    def test_roundtrip_with_empty_profile(self, tmp_path):
        ds = Dataset.from_profiles([[], [0, 2]], n_items=3, name="gap")
        path = tmp_path / "gap.txt"
        save_dataset(ds, path)
        loaded = load_dataset(path)
        assert loaded.profile(0).size == 0
        assert list(loaded.profile(1)) == [0, 2]

    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("not a dataset\n")
        with pytest.raises(ValueError, match="not a repro dataset"):
            load_dataset(path)

    def test_rejects_truncated(self, tmp_path):
        path = tmp_path / "trunc.txt"
        path.write_text("#users 3 5 x\n0 1\n")
        with pytest.raises(ValueError, match="truncated"):
            load_dataset(path)
