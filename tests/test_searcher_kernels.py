"""Unit tests for the vectorized walk kernels (``walk_impl="numpy"``).

Complements the differential suite (``tests/test_prop_search_vec.py``)
with direct checks of the kernel machinery itself: the reusable
visited/excluded bitmap must come back all-clear after every query
(leaked bits would silently skip candidates in later queries), budget
truncation must be exact and deterministic, tie-breaking must be
(score desc, id asc) bit-for-bit, and — the regression pinned by the
sorted-``_adjacent`` fix — results must not depend on heap *slot
layout*, only on the edge sets, even under tight budgets where a
truncated candidate prefix would expose iteration order.
"""

import pickle
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import C2Params
from repro.data import Dataset, SyntheticSpec, generate
from repro.online import OnlineIndex
from repro.serve import GraphSearcher
from repro.serve.searcher import brute_force_top_k

K = 6


def _index(seed=0, n_users=120, backend="exact"):
    spec = SyntheticSpec(
        name="kernels", n_users=n_users, n_items=240, mean_profile_size=20.0,
        n_communities=6, community_pool_size=50, min_profile_size=6,
    )
    dataset = generate(spec, seed=seed)
    params = C2Params(k=K, n_buckets=64, n_hashes=4, split_threshold=60, seed=1)
    return OnlineIndex.build(dataset, params=params, backend=backend)


# ----------------------------------------------------------------------
# Visited-bitmap reuse
# ----------------------------------------------------------------------


def test_bitmap_all_clear_after_each_query():
    """Every bit the walk sets must be cleared before the next query."""
    index = _index()
    searcher = GraphSearcher(index, ef=24, walk_impl="numpy")
    rng = np.random.default_rng(3)
    n = index.dataset.n_users
    for trial in range(8):
        profile = rng.integers(0, index.dataset.n_items, size=12)
        exclude = rng.choice(n, size=int(rng.integers(0, 8)), replace=False)
        budget = None if trial % 2 else int(rng.integers(5, 60))
        searcher.top_k(profile, k=K, exclude=exclude, budget=budget)
        buf = searcher._blocked_bitmap(n)
        assert not buf.any(), f"bitmap leaked bits after trial {trial}"


def test_bitmap_cleared_even_when_engine_raises():
    """A query that dies mid-walk must not poison the next one."""
    index = _index()
    searcher = GraphSearcher(index, ef=16, walk_impl="numpy")
    baseline = searcher.top_k([1, 2, 3], k=K)

    calls = {"n": 0}
    orig = index.engine.query_many

    def flaky(query, users):
        calls["n"] += 1
        if calls["n"] == 3:  # die on a mid-walk hop, after some bits are set
            raise RuntimeError("boom")
        return orig(query, users)

    index.engine.query_many = flaky
    try:
        with pytest.raises(RuntimeError, match="boom"):
            searcher.top_k([1, 2, 3], k=K)
    finally:
        index.engine.query_many = orig
    assert not searcher._blocked_bitmap(index.dataset.n_users).any()
    after = searcher.top_k([1, 2, 3], k=K)
    assert np.array_equal(baseline.ids, after.ids)
    assert np.array_equal(baseline.scores, after.scores)


def test_bitmap_buffer_reused_and_grown_geometrically():
    index = _index()
    searcher = GraphSearcher(index, walk_impl="numpy")
    buf = searcher._blocked_bitmap(50)
    assert buf.size >= 50 and not buf.any()
    assert searcher._blocked_bitmap(30) is buf  # wide enough: reused
    bigger = searcher._blocked_bitmap(buf.size + 1)
    assert bigger is not buf
    assert bigger.size >= 2 * buf.size  # geometric growth, no O(n) churn
    assert not bigger.any()


def test_bitmap_is_thread_local():
    """Concurrent walks on one shared searcher must not share scratch."""
    index = _index()
    searcher = GraphSearcher(index, ef=24, walk_impl="numpy")
    rng = np.random.default_rng(11)
    profiles = [rng.integers(0, index.dataset.n_items, size=10) for _ in range(16)]
    serial = [searcher.top_k(p, k=K) for p in profiles]
    with ThreadPoolExecutor(max_workers=4) as pool:
        threaded = list(pool.map(lambda p: searcher.top_k(p, k=K), profiles))
    for a, b in zip(serial, threaded):
        assert np.array_equal(a.ids, b.ids)
        assert np.array_equal(a.scores, b.scores)
    import threading

    buffers = []
    lock = threading.Lock()

    def grab():
        buf = searcher._blocked_bitmap(10)  # held alive: ids stay unique
        with lock:
            buffers.append(buf)

    workers = [threading.Thread(target=grab) for _ in range(4)]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    assert len({id(buf) for buf in buffers}) == 4  # one buffer per thread


# ----------------------------------------------------------------------
# Budget truncation
# ----------------------------------------------------------------------


@pytest.mark.parametrize("walk_impl", ["numpy", "python"])
def test_budget_is_an_exact_hard_cap(walk_impl):
    index = _index()
    searcher = GraphSearcher(index, ef=32, walk_impl=walk_impl)
    rng = np.random.default_rng(17)
    for budget in (1, 3, 7, 20, 55):
        profile = rng.integers(0, index.dataset.n_items, size=10)
        result = searcher.top_k(profile, k=K, budget=budget)
        assert result.evaluations <= budget
        again = searcher.top_k(profile, k=K, budget=budget)
        assert np.array_equal(result.ids, again.ids)
        assert result.evaluations == again.evaluations


def test_budget_truncation_keeps_sorted_id_prefix():
    """The truncated hop keeps the lowest candidate ids — not whichever
    slots the heap row happened to store first."""
    index = _index()
    searcher = GraphSearcher(index, ef=8, walk_impl="numpy")
    oracle = GraphSearcher(index, ef=8, walk_impl="python")
    rng = np.random.default_rng(23)
    for _ in range(10):
        profile = rng.integers(0, index.dataset.n_items, size=8)
        # A budget barely above the seed count forces a truncated hop.
        seeds, _ = searcher._seeds(
            np.unique(profile), 8, index.dataset.active_mask(), set(), None
        )
        budget = int(seeds.size) + int(rng.integers(1, 4))
        a = searcher.top_k(profile, k=K, ef=8, budget=budget)
        b = oracle.top_k(profile, k=K, ef=8, budget=budget)
        assert np.array_equal(a.ids, b.ids)
        assert a.evaluations == b.evaluations <= budget


# ----------------------------------------------------------------------
# Slot-layout invariance (regression for the sorted-_adjacent fix)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("walk_impl", ["numpy", "python"])
def test_results_invariant_under_heap_slot_permutation(walk_impl):
    """Two graphs with identical edge sets but different slot layouts
    must serve identical results, including under tight budgets."""
    index_a = _index(seed=5)
    index_b = _index(seed=5)
    heaps = index_b.graph.heaps
    rng = np.random.default_rng(99)
    for u in range(heaps.n):
        perm = rng.permutation(heaps.k)
        heaps.ids[u] = heaps.ids[u][perm]
        heaps.scores[u] = heaps.scores[u][perm]
    assert index_a.graph.heaps.edge_sets() == heaps.edge_sets()
    assert not np.array_equal(index_a.graph.heaps.ids, heaps.ids)

    sa = GraphSearcher(index_a, ef=12, walk_impl=walk_impl)
    sb = GraphSearcher(index_b, ef=12, walk_impl=walk_impl)
    for trial in range(12):
        profile = rng.integers(0, index_a.dataset.n_items, size=10)
        budget = (None, 25, 60)[trial % 3]
        a = sa.top_k(profile, k=K, budget=budget)
        b = sb.top_k(profile, k=K, budget=budget)
        assert np.array_equal(a.ids, b.ids), f"trial {trial} budget={budget}"
        assert np.array_equal(a.scores, b.scores)
        assert a.evaluations == b.evaluations
        assert a.hops == b.hops


# ----------------------------------------------------------------------
# Tie-breaking
# ----------------------------------------------------------------------


@pytest.mark.parametrize("walk_impl", ["numpy", "python"])
def test_tie_breaking_on_fully_tied_scores(walk_impl):
    """All users share one profile: every score ties, so the result must
    be exactly the lowest ids — identical to the brute-force oracle."""
    n = 40
    dataset = Dataset.from_profiles([[0, 1, 2, 3, 4]] * n, n_items=16)
    params = C2Params(k=4, n_buckets=16, n_hashes=2, split_threshold=30, seed=1)
    index = OnlineIndex.build(dataset, params=params, backend="exact")
    searcher = GraphSearcher(index, ef=n, walk_impl=walk_impl)
    for profile in ([0, 1, 2], [0, 1, 2, 3, 4], [2, 4, 9]):
        walked = searcher.top_k(profile, k=10)
        brute = brute_force_top_k(index.engine, profile, k=10)
        assert np.array_equal(walked.ids, brute.ids)
        assert np.array_equal(walked.scores, brute.scores)
        assert np.array_equal(walked.ids, np.sort(walked.ids))  # id asc at ties


@pytest.mark.parametrize("walk_impl", ["numpy", "python"])
def test_walk_with_full_beam_matches_brute_force(walk_impl):
    """With ``ef >= n`` the walk sees everyone; its (score desc, id asc)
    pool order must match the brute-force lexsort bit-for-bit —
    including partial ties from a coarse similarity lattice."""
    rng = np.random.default_rng(7)
    # Tiny profiles from a tiny universe: few distinct Jaccard values,
    # so score ties are everywhere.
    profiles = [rng.choice(10, size=3, replace=False) for _ in range(50)]
    dataset = Dataset.from_profiles(profiles, n_items=10)
    params = C2Params(k=4, n_buckets=16, n_hashes=2, split_threshold=40, seed=1)
    index = OnlineIndex.build(dataset, params=params, backend="exact")
    searcher = GraphSearcher(index, ef=64, walk_impl=walk_impl)
    for _ in range(8):
        profile = rng.choice(10, size=int(rng.integers(2, 5)), replace=False)
        walked = searcher.top_k(profile, k=12, ef=64)
        brute = brute_force_top_k(index.engine, profile, k=12)
        assert np.array_equal(walked.ids, brute.ids)
        assert np.array_equal(walked.scores, brute.scores)


def test_seed_lexsort_matches_heap_semantics():
    """The lexsort seed initialisation equals push-all-then-pop-to-ef."""
    rng = np.random.default_rng(41)
    import heapq

    for _ in range(50):
        n = int(rng.integers(1, 30))
        ef = int(rng.integers(1, 12))
        seeds = rng.choice(1000, size=n, replace=False).astype(np.int64)
        sims = rng.choice([0.1, 0.25, 0.5, 0.5, 0.9], size=n)  # force ties
        heap_ref: list[tuple[float, int]] = []
        for v, s in zip(seeds, sims):
            heapq.heappush(heap_ref, (float(s), -int(v)))
            if len(heap_ref) > ef:
                heapq.heappop(heap_ref)
        order = np.lexsort((seeds, -sims))[:ef]
        lex = [(float(sims[i]), -int(seeds[i])) for i in order]
        assert sorted(lex) == sorted(heap_ref)


def test_empty_index_pickles_do_not_share_scratch():
    """Searchers are constructed per process; pickling the scratch
    holder would be a bug (thread.local is unpicklable) — assert the
    searcher is never accidentally made picklable with live scratch."""
    index = _index(n_users=30)
    searcher = GraphSearcher(index, walk_impl="numpy")
    searcher.top_k([1, 2], k=3)
    with pytest.raises(Exception):
        pickle.dumps(searcher)
