"""Quickstart: build a KNN graph with Cluster-and-Conquer.

Generates a MovieLens-like dataset, builds the approximate KNN graph
with C² (GoldFinger-backed Jaccard, the paper's default setup), and
compares it against the exact graph.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import C2Params, cluster_and_conquer, data, make_engine
from repro.baselines import brute_force_knn
from repro.graph import edge_recall, quality
from repro.similarity import ExactEngine

K = 15


def main() -> None:
    # 1. A dataset: users with item-set profiles. `data.load` generates
    #    a synthetic stand-in for one of the paper's datasets; use
    #    `data.Dataset.from_profiles(...)` for your own data.
    dataset = data.load("ml1M", scale=0.1)
    print(f"dataset: {dataset}")

    # 2. A similarity engine. GoldFinger 1024-bit fingerprints estimate
    #    Jaccard cheaply (the paper's setup for all algorithms).
    engine = make_engine(dataset, n_bits=1024)

    # 3. Cluster-and-Conquer. The defaults are the paper's; here we
    #    shrink N to suit the small dataset.
    params = C2Params(k=K, split_threshold=120, seed=1)
    result = cluster_and_conquer(engine, params)
    print(
        f"C2 built a {K}-NN graph over {dataset.n_users} users in "
        f"{result.seconds:.2f}s using {result.comparisons:,} similarity "
        f"evaluations ({result.extra['n_clusters']} clusters, "
        f"max size {result.extra['max_cluster_size']})"
    )

    # 4. Inspect a neighbourhood: ids and similarity scores, best first.
    ids, scores = result.graph.neighborhood(0)
    pretty = ", ".join(f"{v}:{s:.2f}" for v, s in list(zip(ids, scores))[:5])
    print(f"user 0's top neighbours: {pretty}")

    # 5. Compare against the exact graph (brute force on raw profiles).
    exact = brute_force_knn(ExactEngine(dataset), k=K)
    q = quality(result.graph, exact.graph, dataset)
    r = edge_recall(result.graph, exact.graph)
    brute_pairs = dataset.n_users * (dataset.n_users - 1) // 2
    print(
        f"quality vs exact: {q:.3f}, edge recall: {r:.3f}, "
        f"scan rate: {result.comparisons / brute_pairs:.2f} "
        f"(1.0 = brute force)"
    )


if __name__ == "__main__":
    main()
