"""Recall drift under adversarial churn — and why online re-split exists.

Drives the viral-bundle :class:`~repro.bench.scenarios.SustainedChurn`
tape twice against the same population — online re-split enabled and
disabled — while a :class:`~repro.bench.scenarios.DriftTracker` probes
follower-like queries every window against a brute-force oracle. The
printed curves show the baseline's swollen clusters dragging windowed
recall down while the re-split index holds it flat, at zero extra
similarity evaluations (re-splitting is hashing + list surgery).

Run:  python examples/scenario_drift.py
"""

from __future__ import annotations

import numpy as np

from repro import C2Params
from repro.bench import format_table
from repro.bench.scenarios import (
    DriftTracker,
    IndexWorld,
    SimWorld,
    make_scenario,
    play,
)
from repro.data import SyntheticSpec, generate
from repro.online import OnlineIndex
from repro.serve import GraphSearcher

N_USERS = 600
N_OPS = 1600
WINDOW = 200
THRESHOLD = 40


def build_population(seed: int = 11):
    spec = SyntheticSpec(
        name="drift", n_users=N_USERS, n_items=600,
        mean_profile_size=35.0, n_communities=12,
        community_pool_size=90, community_affinity=0.95,
        min_profile_size=12,
    )
    return generate(spec, seed=seed)


def drive(dataset, scenario, probes, auto_resplit: bool):
    params = C2Params(
        k=16, n_buckets=128, n_hashes=8,
        split_threshold=THRESHOLD, seed=1,
    )
    index = OnlineIndex.build(
        dataset, params=params,
        auto_resplit=auto_resplit, update_cap=48,
    )
    index.reverse_index()
    tracker = DriftTracker(
        index, GraphSearcher(index, ef=40, budget=176), probes,
        k=10, window=WINDOW,
    )
    play(scenario, IndexWorld(index), tracker)
    return index, tracker


def main() -> None:
    dataset = build_population()
    scenario = make_scenario("churn", N_OPS, seed=11)
    # Probe what the tape degrades: follower-like queries (the viral
    # bundle plus a community slice), fixed before the tape runs.
    probe_world = SimWorld(
        [dataset.profile(u) for u in range(dataset.n_users)],
        n_items=dataset.n_items,
    )
    probes = scenario.probes(probe_world, 40)

    rows = []
    for label, auto in (("re-split", True), ("baseline", False)):
        index, tracker = drive(dataset, scenario, probes, auto_resplit=auto)
        stats = index.stats()
        for point in tracker.curve:
            rows.append({
                "series": label,
                "op": point["op"],
                "recall@10": f"{point['recall']:.3f}",
                "re-splits": point["resplits"],
                "max cluster": point["max_cluster"],
            })
        print(
            f"{label}: worst window {tracker.worst:.3f}, "
            f"final {tracker.final:.3f}, "
            f"{stats['resplits_total']} re-splits, "
            f"max cluster {stats['max_cluster_size']} "
            f"(threshold {THRESHOLD}), {stats['rebuilds_total']} rebuilds"
        )
    print()
    print(format_table(rows, title="windowed recall drift (viral-bundle churn)"))
    worst = min(float(r["recall@10"]) for r in rows if r["series"] == "re-split")
    assert worst >= 0.0 and np.isfinite(worst)


if __name__ == "__main__":
    main()
