"""Parameter sensitivity study: t, b and N (paper §VI, Figs. 6-7).

Sweeps Cluster-and-Conquer's three knobs on a MovieLens-like dataset
and prints the time x quality trade-off curves the paper charts:

* t (hash functions): more redundancy -> higher quality, more work;
* b (clusters per hash): more clusters -> faster AND better, for free;
* N (split threshold): smaller clusters -> faster but lower quality.

Run:  python examples/sensitivity_study.py
"""

from __future__ import annotations

from repro import C2Params, cluster_and_conquer, data, make_engine
from repro.baselines import brute_force_knn
from repro.bench import format_table
from repro.graph import quality
from repro.similarity import ExactEngine

K = 15


def sweep(dataset, exact, base: C2Params, field: str, values) -> None:
    rows = []
    for value in values:
        params = base.with_(**{field: value})
        result = cluster_and_conquer(make_engine(dataset), params)
        rows.append(
            {
                field: value,
                "time (s)": f"{result.seconds:.2f}",
                "similarities": result.comparisons,
                "quality": f"{quality(result.graph, exact, dataset):.3f}",
                "clusters": result.extra["n_clusters"],
                "max cluster": result.extra["max_cluster_size"],
            }
        )
    print(format_table(rows, title=f"sweep over {field}"))
    print()


def main() -> None:
    dataset = data.load("ml10M", scale=0.03)
    print(f"dataset: {dataset}\n")
    exact = brute_force_knn(ExactEngine(dataset), k=K).graph
    base = C2Params(k=K, split_threshold=80, seed=1)

    sweep(dataset, exact, base, "n_hashes", [1, 2, 4, 8, 10])
    sweep(dataset, exact, base, "n_buckets", [512, 2048, 8192])
    sweep(dataset, exact, base, "split_threshold", [40, 80, 200, 500])


if __name__ == "__main__":
    main()
