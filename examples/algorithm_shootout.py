"""Algorithm shoot-out: C2 vs Hyrec, NN-Descent, LSH and brute force.

A miniature Table II: every KNN-graph builder in the library runs on
the same dataset and engine setup, and the table reports time,
similarity evaluations (the paper's cost model), quality and edge
recall vs the exact graph.

Run:  python examples/algorithm_shootout.py
"""

from __future__ import annotations

from repro import C2Params, cluster_and_conquer, data, make_engine
from repro.baselines import brute_force_knn, hyrec_knn, lsh_knn, nndescent_knn
from repro.bench import format_table
from repro.graph import edge_recall, quality
from repro.similarity import ExactEngine

K = 20


def main() -> None:
    dataset = data.load("AM", scale=0.04)
    print(f"dataset: {dataset}\n")
    exact = brute_force_knn(ExactEngine(dataset), k=K).graph

    def run(name, fn):
        result = fn(make_engine(dataset))
        return {
            "algorithm": name,
            "time (s)": f"{result.seconds:.2f}",
            "similarities": result.comparisons,
            "quality": f"{quality(result.graph, exact, dataset):.3f}",
            "edge recall": f"{edge_recall(result.graph, exact):.3f}",
        }

    params = C2Params(k=K, split_threshold=100, seed=1)
    rows = [
        run("BruteForce", lambda e: brute_force_knn(e, k=K)),
        run("Hyrec", lambda e: hyrec_knn(e, k=K, seed=1)),
        run("NNDescent", lambda e: nndescent_knn(e, k=K, seed=1)),
        run("LSH", lambda e: lsh_knn(e, k=K, n_hashes=10, seed=1)),
        run("C2 (ours)", lambda e: cluster_and_conquer(e, params)),
    ]
    print(format_table(rows, title="mini Table II (GoldFinger 1024-bit engine)"))


if __name__ == "__main__":
    main()
