"""Serving queries: top-k neighbours for profiles the index never saw.

Builds a C² index once, then serves it like a live system: an
out-of-sample visitor profile is routed to its clusters and walked
through the graph (a few hundred similarity evaluations instead of a
full scan), a burst of concurrent ``asyncio`` queries is coalesced into
one deduplicated batch, the result cache is invalidated the moment the
index mutates, and served neighbours are turned into item
recommendations.

Run:  python examples/serving_queries.py
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro import C2Params, data
from repro.online import OnlineIndex
from repro.serve import GraphSearcher, QueryEngine, Recommender, brute_force_top_k

K = 10


def main() -> None:
    # 1. Build once; the serving layer reuses the engine, the graph and
    #    the recorded clustering.
    dataset = data.load("ml1M", scale=0.1)
    index = OnlineIndex.build(dataset, params=C2Params(k=15, split_threshold=120, seed=1))
    print(f"index built over {dataset}")

    # 2. One out-of-sample query: a visitor who shares part of user 3's
    #    history. Cluster routing + graph walk vs scanning everyone.
    rng = np.random.default_rng(5)
    base = dataset.profile(3)
    visitor = base[rng.random(base.size) > 0.4]
    searcher = GraphSearcher(index, ef=32)
    result = searcher.top_k(visitor, k=K)
    reference = brute_force_top_k(index.engine, visitor, k=K)
    found = np.isin(reference.ids, result.ids).mean()
    print(
        f"  visitor query: {result.evaluations} evaluations vs "
        f"{reference.evaluations} brute force "
        f"({result.evaluations / reference.evaluations:.0%}), "
        f"recall@{K} {found:.2f}, {result.hops} hops"
    )

    # 3. A burst of concurrent queries through the async front end:
    #    identical profiles collapse into one evaluation, the rest
    #    come back from the LRU cache on the next burst.
    queries = QueryEngine(index, k=K)

    async def burst():
        return await asyncio.gather(*(queries.search_async(visitor) for _ in range(16)))

    asyncio.run(burst())
    asyncio.run(burst())
    stats = queries.stats()
    print(
        f"  32 async queries -> {stats['cache_misses_total']} search(es), "
        f"{stats['dedup_hits_total']} dedup hit(s), {stats['cache_hits_total']} cache hit(s)"
    )

    # 4. Mutations invalidate cached answers — a cached result is never
    #    served across an index update.
    index.add_items(3, [int(dataset.n_items - 1)])
    queries.search(visitor)
    print(f"  after an update: {queries.stats()['evictions_total']} entries invalidated")

    # 5. Neighbours -> items: the CF scoring core applied to a served
    #    answer recommends for profiles that belong to no indexed user.
    recommender = Recommender(queries, n_neighbors=15)
    items = recommender.recommend(visitor, n_recommendations=5)
    print(f"  recommendations for the visitor: {list(map(int, items))}")


if __name__ == "__main__":
    main()
