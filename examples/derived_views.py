"""Derived views: build a secondary index as a delta-pipeline consumer.

Everything downstream of an ``OnlineIndex`` — reverse adjacency, cache
invalidation, replicas, the WAL, the metrics exporter — is a *derived
collection* over the mutation journal, written once as a
``repro.deltas.DerivedView`` and registered on ``index.deltas``. This
walkthrough writes a brand-new one from scratch: a toy **item → users**
secondary index (which users currently hold item *i* in their
profile), maintained incrementally from the stream and checked against
its own from-scratch ``resync()`` recipe.

It shows the full consumer lifecycle:

1. subclass ``DerivedView`` with ``apply`` (fold one delta) and
   ``resync`` (rebuild from the source of truth);
2. ``index.deltas.register(view)`` — the cursor adopts the stream seq;
3. a random churn tape; the view tracks every mutation with zero lag;
4. the declarative payoff: ``resync()`` from scratch reproduces the
   incrementally-maintained state exactly;
5. ``snapshot()`` / ``hydrate()`` — checkpoint the derived state and
   restore it elsewhere without replaying the tape;
6. the bus's own introspection: ``views()``, ``lags()``, ``stats()``.

Run:  PYTHONPATH=src python examples/derived_views.py
"""

from __future__ import annotations

import numpy as np

from repro import C2Params
from repro.data import SyntheticSpec, generate
from repro.deltas import DerivedView
from repro.online import OnlineIndex

K = 8
N_STEPS = 300


class ItemHolders(DerivedView):
    """Toy secondary index: ``item id -> set of users holding it``.

    The index's own data structures answer "which items does user u
    hold?"; this view maintains the transpose, folded per mutation
    from ``delta.items`` (the profile payload) — no index reads on the
    hot path.
    """

    name = "item_holders"

    def __init__(self, index) -> None:
        super().__init__()
        self._index = index
        self.holders: dict[int, set[int]] = {}

    # -- the transform: fold one journal event ---------------------------
    def apply(self, delta) -> None:
        """O(|payload|) per mutation, courtesy of the self-describing Delta."""
        if delta.event in ("add_user", "add_items"):
            for item in np.asarray(delta.items).tolist():
                self.holders.setdefault(int(item), set()).add(delta.user)
        elif delta.event == "remove_user":
            for item in list(self.holders):
                held = self.holders[item]
                held.discard(delta.user)
                if not held:  # keep parity with resync: no empty entries
                    del self.holders[item]
        # resplit / refill / rebuild move no profile items: nothing to fold.

    # -- the recipe: rebuild from the source of truth --------------------
    def resync(self) -> None:
        """From scratch: one pass over the live profiles."""
        self.holders = {}
        dataset = self._index.dataset
        for user in dataset.active_users().tolist():
            for item in dataset.profile(int(user)).tolist():
                self.holders.setdefault(int(item), set()).add(int(user))

    # -- optional: checkpoint instead of replay --------------------------
    def snapshot(self):
        """Picklable state for cross-process shipping."""
        return {item: set(held) for item, held in self.holders.items()}

    def hydrate(self, state, seq: int) -> None:
        """Restore a checkpoint; the cursor resumes at its seq."""
        super().hydrate(state, seq)
        self.holders = {item: set(held) for item, held in state.items()}

    def top(self, n: int = 3):
        """The ``n`` most-held items, ``(item, holders)``."""
        ranked = sorted(self.holders.items(), key=lambda kv: -len(kv[1]))
        return [(item, len(held)) for item, held in ranked[:n]]


def churn(index, rng) -> None:
    """One random mutation: ratings, a signup, or a deletion."""
    active = index.dataset.active_users()
    op = rng.random()
    if op < 0.5 and active.size:
        user = int(rng.choice(active))
        index.add_items(user, rng.integers(0, index.dataset.n_items, size=3))
    elif op < 0.85:
        index.add_user(rng.integers(0, index.dataset.n_items, size=14))
    elif active.size > 120:
        index.remove_user(int(rng.choice(active)))


def main() -> None:
    # 1. An index; its bus is born with the built-in reverse view.
    spec = SyntheticSpec(
        name="views", n_users=250, n_items=500, mean_profile_size=24.0,
        n_communities=10, community_pool_size=80, min_profile_size=8,
    )
    dataset = generate(spec, seed=11)
    params = C2Params(k=K, n_buckets=64, n_hashes=4, split_threshold=60, seed=1)
    index = OnlineIndex.build(dataset, params=params)

    # 2. Register: the view derives its state, then rides the stream.
    view = ItemHolders(index)
    view.resync()  # initial derivation from the live profiles
    index.deltas.register(view)
    print(f"registered {view.name!r} at seq {view.seq} "
          f"alongside {[v.name for v in index.deltas.views()]}")

    # 3. Churn. Every mutation folds into the view inside the mutation —
    #    by the time add_items returns, the secondary index is current.
    rng = np.random.default_rng(23)
    for _ in range(N_STEPS):
        churn(index, rng)
    print(f"\nafter {N_STEPS} mutations: seq {view.seq}, lag {view.lag}, "
          f"{view.applied_total} deltas folded")
    print(f"  most-held items: {view.top()}")

    # 4. The declarative contract, checked: the from-scratch recipe
    #    lands on exactly the incrementally-maintained state.
    incremental = view.snapshot()
    index.deltas.resync(view)
    assert view.holders == incremental, "resync diverged from incremental!"
    print("  resync() from scratch == incrementally-maintained state ✓")

    # 5. Ship the derived state without replaying the tape: checkpoint
    #    on this side, hydrate on the other.
    checkpoint, seq = view.snapshot(), view.seq
    other = ItemHolders(index)
    other.hydrate(checkpoint, seq)
    assert other.holders == view.holders and other.seq == seq
    print(f"  checkpoint/hydrate round-trip at seq {seq} ✓")

    # 6. The bus sees every consumer the same way.
    stats = index.deltas.stats()
    print(f"\nbus: {stats['published_total']} deltas published to "
          f"{stats['views']}, lags {index.deltas.lags()}")

    view.close()
    print(f"closed: views now {[v.name for v in index.deltas.views()]}")


if __name__ == "__main__":
    main()
