"""End-to-end item recommendation on a KNN graph (paper §V-B).

The paper's motivating application: user-based collaborative filtering
where the KNN graph supplies each user's taste neighbourhood. This
example reproduces the Table III protocol on a small scale — 5-fold
cross-validation, 30 recommendations per user, recall against held-out
items — and contrasts the exact graph with C²'s approximation.

Run:  python examples/recommender_pipeline.py
"""

from __future__ import annotations

from repro import C2Params, cluster_and_conquer, data, make_engine
from repro.baselines import brute_force_knn
from repro.recommend import evaluate_recall, recommend_items

K = 20
N_RECOMMENDATIONS = 30


def main() -> None:
    dataset = data.load("ml1M", scale=0.1)
    print(f"dataset: {dataset}")

    params = C2Params(k=K, split_threshold=120, seed=1)

    def exact_builder(train):
        return brute_force_knn(make_engine(train), k=K).graph

    def c2_builder(train):
        return cluster_and_conquer(make_engine(train), params).graph

    print("\n5-fold cross-validated recall @30 (paper Table III protocol):")
    exact = evaluate_recall(dataset, exact_builder, n_folds=5, seed=0)
    c2 = evaluate_recall(dataset, c2_builder, n_folds=5, seed=0)
    print(f"  brute-force graph:      {exact.mean_recall:.3f}")
    print(f"  Cluster-and-Conquer:    {c2.mean_recall:.3f}")
    print(f"  delta:                  {c2.mean_recall - exact.mean_recall:+.3f}")

    # Show concrete recommendations for one user.
    graph = c2_builder(dataset)
    user = 0
    recs = recommend_items(dataset, graph, user, N_RECOMMENDATIONS)
    print(f"\ntop-10 recommended items for user {user}: {recs[:10].tolist()}")
    print(f"(user {user} already rated {dataset.profile_sizes[user]} items)")


if __name__ == "__main__":
    main()
