"""FastRandomHash under the microscope (paper §II-D, §III, Fig. 3).

Walks through the clustering machinery on its own: the worked example
of §II-D, the collision behaviour Theorem 1 predicts, and the effect of
recursive splitting on a popularity-skewed dataset (Fig. 3's story).

Run:  python examples/clustering_demo.py
"""

from __future__ import annotations

import numpy as np

from repro import data
from repro.bench import format_table
from repro.core import (
    FastRandomHash,
    cluster_dataset,
    make_hash_family,
)
from repro.core.theory import (
    empirical_same_hash_probability,
    paper_numeric_example,
)
from repro.data import Dataset
from repro.similarity import jaccard_pair


def paper_worked_example() -> None:
    """§II-D: two users, two hash configurations."""
    print("=== paper §II-D worked example ===")
    # P_u = {i1,i2,i3}, P_v = {i3,i4,i5}; they share i3.
    dataset = Dataset.from_profiles([[0, 1, 2], [2, 3, 4]], n_items=5)

    class FixedHash:
        def __init__(self, table, n_buckets=3):
            self.table = np.array(table, dtype=np.int32)
            self.n_buckets = n_buckets

        def __call__(self, items):
            return self.table[items]

    h1 = FixedHash([2, 3, 2, 1, 3])  # the paper's h
    h2 = FixedHash([1, 3, 3, 2, 1])  # the paper's h2
    for label, h in (("H1", h1), ("H2", h2)):
        hashes = FastRandomHash(h).user_hashes(dataset)
        same = "same cluster" if hashes[0] == hashes[1] else "different clusters"
        print(f"  {label}: H(u)={hashes[0]}, H(v)={hashes[1]} -> {same}")
    print("  one shared item (i3) is enough for a non-zero co-hash probability\n")


def theorem1_in_action() -> None:
    """P[H(u)=H(v)] tracks the Jaccard similarity (Theorem 1)."""
    print("=== Theorem 1: co-hash probability ~ Jaccard ===")
    rng = np.random.default_rng(0)
    n_items, b = 5000, 4096
    rows = []
    for overlap in (0, 15, 30, 45):
        shared = rng.choice(n_items, size=overlap, replace=False)
        rest = np.setdiff1d(np.arange(n_items), shared)
        extra = rng.choice(rest, size=2 * (60 - overlap), replace=False)
        p1 = np.union1d(shared, extra[: 60 - overlap])
        p2 = np.union1d(shared, extra[60 - overlap :])
        j = jaccard_pair(p1, p2)
        prob = empirical_same_hash_probability(p1, p2, n_items, b, n_trials=500)
        rows.append({"Jaccard": f"{j:.3f}", "P[same hash] (MC)": f"{prob:.3f}"})
    print(format_table(rows))
    ex = paper_numeric_example()
    print(
        f"  paper bracket (ell={ex.ell}, b={ex.b}): J-{ex.lower_margin:.3f} .. "
        f"J+{ex.upper_margin:.3f} w.p. {ex.probability:.3f}\n"
    )


def splitting_demo() -> None:
    """Fig. 3's story on a skewed synthetic dataset."""
    print("=== recursive splitting on a skewed dataset ===")
    dataset = data.load("ml10M", scale=0.03)
    hashes = make_hash_family(dataset.n_items, 4096, 4, seed=0)
    rows = []
    for threshold in (None, 200, 50):
        result = cluster_dataset(dataset, hashes, split_threshold=threshold)
        sizes = result.sizes()
        rows.append(
            {
                "N": "off" if threshold is None else threshold,
                "clusters": len(result.clusters),
                "splits": result.n_splits,
                "biggest": int(sizes[0]),
                "top-5": str(sizes[:5].tolist()),
            }
        )
    print(format_table(rows))
    print("  smaller N caps the biggest cluster, adding a few extra clusters\n")


def main() -> None:
    paper_worked_example()
    theorem1_in_action()
    splitting_demo()


if __name__ == "__main__":
    main()
