"""Online updates: keep a C² KNN graph fresh without rebuilding.

Builds a graph once, then streams profile updates through an
``OnlineIndex`` — new ratings, a signup, a deletion — and compares the
maintained graph against a from-scratch rebuild: recall stays level
while the incremental path spends a small fraction of the similarity
budget.

Run:  python examples/online_updates.py
"""

from __future__ import annotations

import numpy as np

from repro import C2Params, cluster_and_conquer, data, edge_recall, make_engine
from repro.baselines import brute_force_knn
from repro.online import OnlineIndex
from repro.similarity import ExactEngine

K = 15


def main() -> None:
    # 1. Build once, keeping the clustering so the index can route
    #    future updates through the same FastRandomHash buckets.
    dataset = data.load("ml1M", scale=0.1)
    params = C2Params(k=K, split_threshold=120, seed=1)
    index = OnlineIndex.build(dataset, params=params)
    print(f"built over {dataset}")
    print(f"  initial build: {index.build_result.comparisons:,} similarities")

    # 2. Stream updates. Each costs one counted one_to_many over the
    #    user's cluster peers + existing edges — no rebuild.
    rng = np.random.default_rng(3)
    for _ in range(150):
        user = int(rng.choice(index.dataset.active_users()))
        index.add_items(user, [int(rng.integers(0, dataset.n_items))])

    newbie = index.add_user(rng.integers(0, dataset.n_items, size=25))
    ids, scores = index.neighborhood(newbie)
    pretty = ", ".join(f"{v}:{s:.2f}" for v, s in list(zip(ids, scores))[:5])
    print(f"  new user {newbie} connected instantly: {pretty}")

    index.remove_user(0)
    print(f"  user 0 removed; dangling edges: "
          f"{int((index.graph.heaps.ids == 0).sum())}")

    stats = index.stats()
    print(f"  {stats['mutations_total']} updates cost "
          f"{stats['update_comparisons']:,} similarities "
          f"({stats['update_comparisons'] / stats['build_comparisons']:.1%} "
          "of one build)")

    # 3. Sanity: the maintained graph vs a from-scratch rebuild on the
    #    final profiles, both judged against exact ground truth.
    snapshot = index.dataset.snapshot()
    rebuild = cluster_and_conquer(make_engine(snapshot), params)
    exact = brute_force_knn(ExactEngine(snapshot), k=K).graph
    active = index.dataset.active_users()
    print(f"  recall — online: {edge_recall(index.graph, exact, users=active):.3f}, "
          f"rebuild: {edge_recall(rebuild.graph, exact, users=active):.3f} "
          f"(rebuild spent {rebuild.comparisons:,} similarities)")


if __name__ == "__main__":
    main()
