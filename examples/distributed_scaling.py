"""Simulated map-reduce deployment of C² (paper §VIII).

The paper's conclusion argues C² suits map-reduce infrastructures:
clusters are independent map tasks, the bounded-heap merge is a
per-user reduce. This example runs the deterministic cost-model
simulator over worker counts and shows why recursive splitting is what
makes the map phase scale.

Run:  python examples/distributed_scaling.py
"""

from __future__ import annotations

from repro import data
from repro.bench import format_table
from repro.core import cluster_dataset, make_hash_family
from repro.distributed import simulate_mapreduce

K = 30


def main() -> None:
    dataset = data.load("ml10M", scale=0.05)
    print(f"dataset: {dataset}\n")

    hashes = make_hash_family(dataset.n_items, 4096, 8, seed=0)
    variants = {
        "with splitting (N=100)": cluster_dataset(dataset, hashes, split_threshold=100),
        "no splitting": cluster_dataset(dataset, hashes, split_threshold=None),
    }

    rows = []
    for label, clustering in variants.items():
        for workers in (1, 8, 16, 64):
            cost = simulate_mapreduce(clustering, n_workers=workers, k=K)
            rows.append(
                {
                    "variant": label,
                    "workers": workers,
                    "map speed-up": f"{cost.speedup:.2f}",
                    "efficiency": f"{cost.efficiency:.2f}",
                    "shuffle records": cost.shuffle_records,
                    "max reducer load": cost.max_reducer_load,
                }
            )
    print(format_table(rows, title="simulated map-reduce scaling (cost model)"))
    print(
        "\nwithout splitting, the biggest cluster dominates the map phase "
        "and caps the speed-up — the distributed face of Fig. 3."
    )


if __name__ == "__main__":
    main()
