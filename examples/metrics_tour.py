"""Metrics tour: watch the telemetry layer observe a churning index.

Builds a small synthetic index with every telemetry surface attached —
the process-wide :class:`~repro.obs.MetricsRegistry`, the per-query
:class:`~repro.obs.Tracer` and a :class:`~repro.obs.JournalMetrics`
exporter consuming the mutation journal — then drives a mixed
query/mutation tape through a ``QueryEngine`` with a thread-replica
tier shipping behind it. Along the way it prints:

1. a live registry snapshot (stage latencies, cache traffic, journal
   rates) mid-tape;
2. the drift between two snapshots — counters are cumulative, so the
   delta is the last window's traffic;
3. a re-split caught in the act: how many cached answers the split
   lineage evicted vs how many stayed warm;
4. the slowest recent query as a nested trace span tree;
5. the same registry exported as Prometheus text (the scrape surface
   ``repro metrics-dump --format prometheus`` serves).

Run:  PYTHONPATH=src python examples/metrics_tour.py
"""

from __future__ import annotations

import numpy as np

from repro import C2Params, obs
from repro.data import SyntheticSpec, generate
from repro.obs import JournalMetrics, format_span
from repro.online import OnlineIndex
from repro.serve import QueryEngine, ReplicaSet

K = 10
N_STEPS = 240


def churn(index, rng) -> None:
    """One random mutation: ratings, a signup, or a deletion."""
    active = index.dataset.active_users()
    op = rng.random()
    if op < 0.5 and active.size:
        user = int(rng.choice(active))
        index.add_items(user, rng.integers(0, index.dataset.n_items, size=3))
    elif op < 0.85:
        index.add_user(rng.integers(0, index.dataset.n_items, size=14))
    elif active.size > 120:
        index.remove_user(int(rng.choice(active)))


def show(title: str, pairs) -> None:
    """Print a two-column block."""
    print(f"\n{title}")
    for name, value in pairs:
        print(f"  {name:<38} {value}")


def main() -> None:
    registry = obs.metrics()  # the process-wide default everything binds to
    tracer = obs.tracer()

    # 1. A low split threshold makes re-splits fire within a short tape.
    spec = SyntheticSpec(
        name="tour", n_users=300, n_items=600, mean_profile_size=24.0,
        n_communities=10, community_pool_size=80, min_profile_size=8,
    )
    dataset = generate(spec, seed=7)
    params = C2Params(k=K, n_buckets=64, n_hashes=4, split_threshold=40, seed=1)
    index = OnlineIndex.build(dataset, params=params)
    index.reverse_index()

    journal = JournalMetrics(index, window_s=300.0)
    engine = QueryEngine(index, k=K, invalidation="partial")
    replicas = ReplicaSet(index, 2, mode="thread")
    journal.attach_lag("replicas", replicas.lag)
    print(f"index built over {dataset}; telemetry attached to every layer")

    rng = np.random.default_rng(13)
    pool = [rng.integers(0, dataset.n_items, size=12) for _ in range(50)]

    def drive(steps: int) -> None:
        for _ in range(steps):
            engine.search(pool[int(rng.integers(0, len(pool)))])
            churn(index, rng)

    hits_key = 'cache_hits_total{frontend="engine"}'
    misses_key = 'cache_misses_total{frontend="engine"}'
    lag_key = 'journal_lag{consumer="replicas"}'

    # 2. Half the tape, then a live snapshot.
    drive(N_STEPS // 2)
    journal.collect()
    snap = registry.snapshot()
    hist = snap["histograms"]
    q = hist["serve_query_seconds"]
    walk = hist["serve_walk_seconds"]
    mid = snap["counters"]
    show("mid-tape snapshot", [
        ("walk queries", int(q["count"])),
        ("query p50 / p99 (ms)", f"{q['p50'] * 1e3:.2f} / {q['p99'] * 1e3:.2f}"),
        ("walk-phase p99 (ms)", f"{walk['p99'] * 1e3:.2f}"),
        ("cache hits / misses",
         f"{mid[hits_key]:.0f} / {mid[misses_key]:.0f}"),
        ("journal mutation rate (events/s)",
         f"{snap['gauges']['journal_mutation_rate']:.1f}"),
        ("replica lag (versions)", f"{snap['gauges'][lag_key]:.0f}"),
    ])

    # 3. The rest of the tape; counters are cumulative, so the delta
    #    between snapshots is exactly the second half's traffic.
    drive(N_STEPS // 2)
    journal.collect()
    end = registry.snapshot()["counters"]
    show("drift since mid-tape (counter deltas)", [
        ("queries", int(end["serve_queries_total"] - mid["serve_queries_total"])),
        ("cache hits", int(end[hits_key] - mid[hits_key])),
        ("journal edges added",
         int(end["journal_edges_added_total"] - mid["journal_edges_added_total"])),
    ])

    # 4. Re-splits evict selectively: only answers that routed through
    #    the split cluster lineage, the rest stay warm.
    stats = engine.stats()
    show("re-split-aware cache invalidation", [
        ("re-splits on the tape", index.stats()["resplits_total"]),
        ("entries evicted (split lineage)", stats["resplit_evictions_total"]),
        ("entries kept warm (last re-split)", stats["resplit_kept"]),
    ])

    # 5. One bad query, end to end: the slowest recent root span.
    slow = tracer.slow(1) or tracer.recent(1)
    if slow:
        print("\nslowest recent query (trace span tree)")
        print(format_span(slow[-1], indent=1))

    # 6. The scrape surface: the same registry as Prometheus text.
    lines = registry.to_prometheus().splitlines()
    sample = [ln for ln in lines if ln.startswith("serve_query_seconds_bucket")]
    print("\nprometheus exposition (excerpt)")
    for line in sample[8:14]:
        print(f"  {line}")
    print(f"  ... {len(lines)} lines total "
          "(python -m repro metrics-dump --format prometheus)")

    replicas.close()
    engine.close()
    journal.close()


if __name__ == "__main__":
    main()
