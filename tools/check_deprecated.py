"""CI lint — internal use of deprecated delta entry points turns red.

``OnlineIndex.subscribe`` / ``subscribe_deltas`` (and their
``unsubscribe*`` mirrors) survive only as one-release deprecation shims
around ``index.deltas.register(view)``; no internal code may call them.
This script scans every ``src/repro`` module for ``.subscribe(`` /
``.subscribe_deltas(`` / ``.unsubscribe(`` / ``.unsubscribe_deltas(``
call sites and fails if any appear outside the shim definitions
themselves (``src/repro/online/index.py``). Tests and examples are
deliberately out of scope: the shim-coverage tests must keep calling
the deprecated surface until it is deleted.

Run::

    python tools/check_deprecated.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]

# The shims live here; everything else in src/repro must be ported.
ALLOWED = {ROOT / "src" / "repro" / "online" / "index.py"}

_CALL = re.compile(r"\.(?:un)?subscribe(?:_deltas)?\(")


def deprecated_calls() -> list[tuple[Path, int, str]]:
    """``(file, line number, line)`` for every offending call site."""
    hits: list[tuple[Path, int, str]] = []
    for path in sorted((ROOT / "src" / "repro").rglob("*.py")):
        if path in ALLOWED:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            code = line.split("#", 1)[0]
            if _CALL.search(code):
                hits.append((path, lineno, line.strip()))
    return hits


def main() -> int:
    """Scan and report; non-zero exit on any internal deprecated call."""
    hits = deprecated_calls()
    for path, lineno, line in hits:
        rel = path.relative_to(ROOT)
        print(
            f"{rel}:{lineno}: internal use of deprecated subscribe API: "
            f"{line}\n    port this consumer to a repro.deltas.DerivedView "
            "registered via index.deltas.register(view)"
        )
    if hits:
        print(f"\n{len(hits)} deprecated call site(s) found")
        return 1
    print("no internal use of deprecated subscribe entry points")
    return 0


if __name__ == "__main__":
    sys.exit(main())
