"""CI docs checker — dead links and phantom CLI flags turn the build red.

Two checks over ``README.md`` and every ``docs/*.md``:

1. **Relative links resolve.** Each markdown link or image whose
   target is not an URL or a pure fragment must point at a file or
   directory that exists in the repository (fragments are stripped
   first). Renaming a file without fixing the docs fails here.

2. **Referenced CLI flags exist.** Every ``--flag`` token the docs
   mention must appear in the ``--help`` output of one of the
   project's command-line surfaces: the ``python -m repro``
   subcommands, ``benchmarks/bench_serving.py``,
   ``benchmarks/perf_gate.py`` and this script. The help texts are
   scraped live, so a flag renamed in ``argparse`` but not in the docs
   (or vice versa) fails here.

Run::

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]

_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
_FLAG = re.compile(r"(?<![\w-])--[a-z][a-z0-9-]*")
_EXTERNAL = ("http://", "https://", "mailto:")


def doc_files() -> list[Path]:
    """The markdown surfaces the checks cover."""
    files = [ROOT / "README.md"]
    files.extend(sorted((ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def check_links(files: list[Path]) -> list[str]:
    """Relative links that do not resolve to an existing path."""
    failures = []
    for md in files:
        for match in _LINK.finditer(md.read_text(encoding="utf-8")):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                failures.append(
                    f"{md.relative_to(ROOT)}: dead relative link -> {target}"
                )
    return failures


def _help_text(cmd: list[str]) -> str:
    out = subprocess.run(
        cmd,
        capture_output=True,
        text=True,
        cwd=ROOT,
        env={**os.environ, "PYTHONPATH": str(ROOT / "src")},
    )
    if out.returncode != 0:
        raise RuntimeError(f"{' '.join(cmd)} failed:\n{out.stderr}")
    return out.stdout + out.stderr


def known_flags() -> set[str]:
    """Every ``--flag`` any documented CLI surface actually accepts."""
    surfaces = [
        [sys.executable, "-m", "repro", "--help"],
        [sys.executable, str(ROOT / "benchmarks" / "bench_serving.py"), "--help"],
        [sys.executable, str(ROOT / "benchmarks" / "perf_gate.py"), "--help"],
        [sys.executable, str(ROOT / "tools" / "check_docs.py"), "--help"],
    ]
    top = _help_text(surfaces[0])
    # argparse lists subcommands as "{build,datasets,...}"
    sub = re.search(r"\{([a-z,\-]+)\}", top)
    if sub:
        for name in sub.group(1).split(","):
            surfaces.append([sys.executable, "-m", "repro", name, "--help"])
    flags: set[str] = set()
    for cmd in surfaces:
        flags.update(_FLAG.findall(_help_text(cmd)))
    return flags


def check_flags(files: list[Path], flags: set[str]) -> list[str]:
    """Documented ``--flag`` tokens no CLI surface accepts."""
    failures = []
    for md in files:
        for match in _FLAG.finditer(md.read_text(encoding="utf-8")):
            if match.group(0) not in flags:
                failures.append(
                    f"{md.relative_to(ROOT)}: unknown CLI flag {match.group(0)}"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--skip-flags",
        action="store_true",
        help="only check links (flag scraping imports the library)",
    )
    args = parser.parse_args(argv)

    files = doc_files()
    failures = check_links(files)
    n_flags = 0
    if not args.skip_flags:
        flags = known_flags()
        n_flags = len(flags)
        failures.extend(check_flags(files, flags))
    if failures:
        print(f"docs check: {len(failures)} failures")
        for line in failures:
            print(f"  FAIL {line}")
        return 1
    print(
        f"docs check: {len(files)} files ok "
        f"({n_flags} known CLI flags scraped)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
