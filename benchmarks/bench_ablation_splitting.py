"""Ablation — recursive splitting on/off (DESIGN.md §5).

Not a paper table, but the design choice Figures 3/7/8 motivate: with
splitting disabled, the popularity skew of MovieLens-like datasets
leaves one giant cluster whose local brute force / Hyrec dominates the
runtime and the parallel makespan.
"""

from __future__ import annotations

from repro.bench import bench_scale, emit, evaluate_run
from repro.core import cluster_and_conquer, makespan_lower_bound
from repro.similarity import make_engine

from conftest import get_dataset, get_workload


def test_ablation_recursive_splitting(benchmark):
    dataset = get_dataset("ml10M")
    workload = get_workload("ml10M")
    params = workload.c2_params

    with_split_result = benchmark.pedantic(
        lambda: cluster_and_conquer(make_engine(dataset), params),
        rounds=1,
        iterations=1,
    )
    with_split = evaluate_run("C2 (split)", dataset, workload, with_split_result)
    without_result = cluster_and_conquer(
        make_engine(dataset), params.with_(split_threshold=None)
    )
    without = evaluate_run("C2 (no split)", dataset, workload, without_result)

    rows = []
    for run in (with_split, without):
        sizes = run.result.extra["cluster_sizes"]
        rows.append(
            {
                "Variant": run.algorithm,
                "Time (s)": f"{run.seconds:.2f}",
                "Similarities": run.comparisons,
                "Quality": f"{run.quality:.3f}",
                "Clusters": run.result.extra["n_clusters"],
                "Max cluster": run.result.extra["max_cluster_size"],
                "Makespan LB (8 cores)": f"{makespan_lower_bound(sizes.tolist(), 8):.0f}",
            }
        )

    emit(
        "ablation_splitting",
        f"Ablation: recursive splitting — ml10M at scale={bench_scale()}",
        rows,
    )

    # Splitting must cap the biggest cluster and cut the parallel makespan.
    assert (
        with_split.result.extra["max_cluster_size"]
        < without.result.extra["max_cluster_size"]
    )
    ms_with = makespan_lower_bound(
        with_split.result.extra["cluster_sizes"].tolist(), 8
    )
    ms_without = makespan_lower_bound(without.result.extra["cluster_sizes"].tolist(), 8)
    assert ms_with < ms_without
