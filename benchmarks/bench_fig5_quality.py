"""Figure 5 — KNN quality: C² vs the fastest native approach.

The paper's companion to Figure 4: on ml20M, AM, DBLP and GW, C²'s
quality matches or slightly exceeds the fastest baseline's (higher is
better).
"""

from __future__ import annotations

import pytest

from repro.bench import bench_scale, emit, evaluate_run, run_algorithm

from conftest import get_dataset, get_workload

# (baseline name, paper baseline quality, paper C2 quality) per Fig. 5.
PAPER_FIG5 = {
    "ml20M": ("Hyrec", 0.88, 0.89),
    "AM": ("Hyrec", 0.93, 0.95),
    "DBLP": ("NNDescent", 0.82, 0.84),
    "GW": ("Hyrec", 0.78, 0.82),
}


@pytest.mark.parametrize("dataset_name", list(PAPER_FIG5))
def test_fig5_quality(benchmark, dataset_name):
    dataset = get_dataset(dataset_name)
    workload = get_workload(dataset_name)
    baseline_name, paper_baseline, paper_c2 = PAPER_FIG5[dataset_name]

    c2_result = benchmark.pedantic(
        run_algorithm, args=("C2", dataset, workload), rounds=1, iterations=1
    )
    c2 = evaluate_run("C2", dataset, workload, c2_result)
    baseline = evaluate_run(
        baseline_name,
        dataset,
        workload,
        run_algorithm(baseline_name, dataset, workload),
    )

    emit(
        f"fig5_{dataset_name}",
        f"Fig. 5 analog — {dataset_name} at scale={bench_scale()} (higher is better)",
        [
            {
                "Series": f"Baseline ({baseline_name})",
                "Quality": f"{baseline.quality:.3f}",
                "paper Quality": paper_baseline,
            },
            {
                "Series": "C2 (ours)",
                "Quality": f"{c2.quality:.3f}",
                "paper Quality": paper_c2,
            },
        ],
    )

    # Shape: C2's quality is within a small margin of the baseline's.
    assert c2.quality > baseline.quality - 0.12
    assert c2.quality > 0.6
