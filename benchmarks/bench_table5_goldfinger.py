"""Table V — impact of GoldFinger: C² with fingerprints vs raw profiles.

The paper shows GoldFinger cuts C²'s time by ~4x (ml10M) while quality
moves only a few hundredths; C² on raw data is still competitive. Here
the wall-clock contrast is the relevant signal (both variants compute
the *same number* of similarities — GoldFinger makes each one cheaper),
so the assertion is on time per similarity, plus the small quality gap.
"""

from __future__ import annotations

import pytest

from repro.bench import bench_scale, emit, evaluate_run, run_algorithm

from conftest import get_dataset, get_workload

# (time s, quality) from the paper's Table V.
PAPER_TABLE5 = {
    "ml10M": {"Raw": (111.29, 0.94), "GoldFinger": (27.79, 0.89)},
    "AM": {"Raw": (35.05, 0.95), "GoldFinger": (14.11, 0.95)},
}


@pytest.mark.parametrize("dataset_name", ["ml10M", "AM"])
def test_table5_goldfinger(benchmark, dataset_name):
    dataset = get_dataset(dataset_name)
    workload = get_workload(dataset_name)

    gf_result = benchmark.pedantic(
        run_algorithm, args=("C2", dataset, workload), rounds=1, iterations=1
    )
    gf = evaluate_run("C2 (GoldFinger)", dataset, workload, gf_result)
    raw = evaluate_run(
        "C2 (raw data)", dataset, workload, run_algorithm("C2-raw", dataset, workload)
    )

    rows = []
    for run, key in ((raw, "Raw"), (gf, "GoldFinger")):
        paper_time, paper_quality = PAPER_TABLE5[dataset_name][key]
        rows.append(
            {
                "Mechanism": run.algorithm,
                "Time (s)": f"{run.seconds:.2f}",
                "Similarities": run.comparisons,
                "Quality": f"{run.quality:.2f}",
                "paper Time": paper_time,
                "paper Quality": paper_quality,
            }
        )

    emit(
        f"table5_{dataset_name}",
        f"Table V analog — {dataset_name} at scale={bench_scale()}\n"
        f"raw/GoldFinger wall-time ratio: x{raw.seconds / max(1e-9, gf.seconds):.2f} "
        f"(paper: x4.0 on ml10M, x2.5 on AM)",
        rows,
    )

    # Shape: same similarity counts (the pipeline is unchanged), small
    # quality gap, raw at least as accurate.
    assert raw.quality >= gf.quality - 0.05
    assert gf.quality > 0.7
