"""§III numeric example — Theorems 1 and 2, checked empirically.

Reproduces the paper's worked example (ℓ = 256, b = 4096:
``J - 0.078 <= P[H(u1)=H(u2)] <= J + 0.234`` with probability 0.998)
and validates both theorems by Monte-Carlo over random generative
hashes. Note: the paper's text says d = 0.5 but its numbers correspond
to d = 1.5 (see repro.core.theory); both are reported.
"""

from __future__ import annotations

import numpy as np

from repro.bench import emit
from repro.core import GenerativeHash
from repro.core.theory import (
    collision_density_threshold,
    count_collisions,
    empirical_same_hash_probability,
    paper_numeric_example,
    theorem2_probability_bound,
)
from repro.similarity import jaccard_pair

ELL = 256
B = 4096
N_ITEMS = 50_000
N_TRIALS = 2_000


def _profiles_with_overlap(overlap: int, rng):
    shared = rng.choice(N_ITEMS, size=overlap, replace=False)
    pool = np.setdiff1d(np.arange(N_ITEMS), shared)
    half = (ELL - overlap) // 2
    extra = rng.choice(pool, size=2 * half, replace=False)
    p1 = np.union1d(shared, extra[:half])
    p2 = np.union1d(shared, extra[half:])
    return p1, p2


def test_theory_numeric_example(benchmark):
    rng = np.random.default_rng(0)
    example = paper_numeric_example()

    def experiment():
        rows = []
        for overlap in (32, 96, 160):
            p1, p2 = _profiles_with_overlap(overlap, rng)
            j = jaccard_pair(p1, p2)
            est = empirical_same_hash_probability(
                p1, p2, N_ITEMS, B, n_trials=N_TRIALS, seed=overlap
            )
            rows.append(
                {
                    "Jaccard": f"{j:.3f}",
                    "P[H(u1)=H(u2)] (MC)": f"{est:.3f}",
                    "Thm bracket": f"[{j - example.lower_margin:.3f}, "
                    f"{j + example.upper_margin:.3f}]",
                    "_j": j,
                    "_est": est,
                }
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    # Theorem 2: measure how often kappa/ell exceeds the threshold.
    rng2 = np.random.default_rng(1)
    p1, p2 = _profiles_with_overlap(96, rng2)
    union = np.union1d(p1, p2)
    threshold = collision_density_threshold(union.size, B, example.d)
    exceed = 0
    trials = 1_000
    for seed in range(trials):
        h = GenerativeHash(N_ITEMS, B, seed=seed)
        if count_collisions(h, union) / union.size >= threshold:
            exceed += 1
    observed_prob = 1 - exceed / trials

    emit(
        "theory_bounds",
        "Paper §III numeric example (ell=256, b=4096)\n"
        f"margins: -{example.lower_margin:.3f} / +{example.upper_margin:.3f} "
        f"(paper: -0.078 / +0.234)\n"
        f"Theorem 2 bound P >= {example.probability:.4f} (paper: 0.998); "
        f"observed over {trials} hashes: {observed_prob:.4f}\n"
        f"note: with the paper's stated d=0.5 the bound evaluates to "
        f"{theorem2_probability_bound(ELL, B, 0.5):.3f} — the quoted numbers "
        "correspond to d=1.5",
        [{k: v for k, v in r.items() if not k.startswith("_")} for r in rows],
    )

    # Monte-Carlo estimates must fall inside the theorem bracket.
    for r in rows:
        assert r["_est"] >= r["_j"] - example.lower_margin - 0.02
        assert r["_est"] <= r["_j"] + example.upper_margin + 0.02
    # The concentration bound must hold empirically.
    assert observed_prob >= example.probability - 0.01
