"""Table I — dataset descriptions.

Regenerates the paper's dataset-statistics table for the synthetic
stand-ins, next to the paper's published numbers, so the reader can
check the generators preserve the properties that matter (profile
sizes, density contrast, item-universe scale).
"""

from __future__ import annotations

from repro.bench import bench_scale, emit, format_table
from repro.data import dataset_names, describe

from conftest import get_dataset

# Table I of the paper (full-size datasets).
PAPER_TABLE1 = {
    "ml1M": {"Users": 6_038, "Items": 3_533, "Ratings": 575_281, "|Pu|": 95.28, "Density": "2.697%"},
    "ml10M": {"Users": 69_816, "Items": 10_472, "Ratings": 5_885_448, "|Pu|": 84.30, "Density": "0.805%"},
    "ml20M": {"Users": 138_362, "Items": 22_884, "Ratings": 12_195_566, "|Pu|": 88.14, "Density": "0.385%"},
    "AM": {"Users": 57_430, "Items": 171_356, "Ratings": 3_263_050, "|Pu|": 56.82, "Density": "0.033%"},
    "DBLP": {"Users": 18_889, "Items": 203_030, "Ratings": 692_752, "|Pu|": 36.67, "Density": "0.018%"},
    "GW": {"Users": 20_270, "Items": 135_540, "Ratings": 1_107_467, "|Pu|": 54.64, "Density": "0.040%"},
}


def test_table1_dataset_statistics(benchmark):
    rows = []

    def build_all():
        return [describe(get_dataset(name)) for name in dataset_names()]

    stats = benchmark.pedantic(build_all, rounds=1, iterations=1)

    for stat in stats:
        paper = PAPER_TABLE1[stat.name]
        row = stat.as_row()
        row["paper Users"] = paper["Users"]
        row["paper |Pu|"] = paper["|Pu|"]
        row["paper Density"] = paper["Density"]
        rows.append(row)

    emit(
        "table1_datasets",
        f"Table I analog at scale={bench_scale()} (paper columns = full-size datasets)",
        rows,
    )

    # Shape assertions: the generators must preserve Table I's contrasts.
    by_name = {s.name: s for s in stats}
    assert by_name["ml10M"].density > 3 * by_name["AM"].density
    assert by_name["DBLP"].mean_profile_size < by_name["ml1M"].mean_profile_size
    for stat in stats:
        paper_pu = PAPER_TABLE1[stat.name]["|Pu|"]
        assert 0.5 * paper_pu <= stat.mean_profile_size <= 2.0 * paper_pu, stat.name
