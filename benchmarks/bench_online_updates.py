"""Online updates — incremental maintenance vs. from-scratch rebuilds.

Not a figure from the paper: the paper builds batch graphs. This
benchmark measures what the online subsystem adds on top — per-update
latency and similarity cost of `OnlineIndex` against the only
alternative a batch pipeline offers (rebuild the world), plus the
recall drift after a sustained update stream.

Scenario: a MovieLens-like workload; a stream of single-item ratings,
new-user signups and account deletions; ground truth recomputed by
brute force on the final profiles.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import brute_force_knn
from repro.bench import bench_scale, emit
from repro.core import cluster_and_conquer
from repro.graph import edge_recall
from repro.online import OnlineIndex
from repro.similarity import ExactEngine, make_engine

from conftest import get_dataset, get_workload

N_UPDATES = 100


def test_online_updates_vs_rebuild(benchmark):
    dataset = get_dataset("ml1M")
    workload = get_workload("ml1M")
    params = workload.c2_params
    rng = np.random.default_rng(7)

    index = OnlineIndex.build(dataset, params=params)
    build_comparisons = index.build_result.comparisons
    build_seconds = index.build_result.seconds

    def stream() -> None:
        for _ in range(N_UPDATES):
            op = rng.random()
            if op < 0.8:  # a user rates one new item
                user = int(rng.choice(index.dataset.active_users()))
                index.add_items(user, [int(rng.integers(0, dataset.n_items))])
            elif op < 0.9:  # a new user signs up
                size = int(rng.integers(15, 40))
                index.add_user(rng.integers(0, dataset.n_items, size=size))
            else:  # an account is deleted
                index.remove_user(int(rng.choice(index.dataset.active_users())))

    result = benchmark.pedantic(stream, rounds=1, iterations=1)  # noqa: F841

    # From-scratch rebuild on the final profiles: the cost an offline
    # pipeline would pay to reach the same state.
    snapshot = index.dataset.snapshot()
    rebuild = cluster_and_conquer(make_engine(snapshot), params)

    active = index.dataset.active_users()
    exact = brute_force_knn(ExactEngine(snapshot), k=params.k).graph
    online_recall = edge_recall(index.graph, exact, users=active)
    rebuild_recall = edge_recall(rebuild.graph, exact, users=active)

    per_update = index.update_comparisons / max(1, index.n_updates)
    emit(
        "online_updates",
        f"Online maintenance at scale={bench_scale()} — {N_UPDATES} mixed "
        "updates (80% new rating, 10% signup, 10% deletion)",
        [
            {
                "Series": "OnlineIndex (incremental)",
                "Similarities": index.update_comparisons,
                "Per update": f"{per_update:.0f}",
                "Recall": f"{online_recall:.3f}",
            },
            {
                "Series": "Full rebuild (batch C2)",
                "Similarities": rebuild.comparisons,
                "Per update": f"{rebuild.comparisons:.0f}",
                "Recall": f"{rebuild_recall:.3f}",
            },
            {
                "Series": "Initial build (reference)",
                "Similarities": build_comparisons,
                "Per update": "-",
                "Recall": f"(build {build_seconds:.2f}s)",
            },
        ],
    )

    # The whole point: the update stream costs a small fraction of one
    # rebuild, and recall does not drift below the rebuilt graph's.
    # Per-update cost is ~one cluster row while a rebuild pays ~n/2 of
    # them, so the achievable ratio scales like 2·updates/n — the bound
    # tracks that instead of pinning a constant that only holds at one
    # scale (at the paper's user counts it lands well under 5%).
    bound = min(0.5, 4.0 * N_UPDATES / max(1, active.size))
    assert index.update_comparisons < bound * rebuild.comparisons
    assert online_recall >= rebuild_recall - 0.05
