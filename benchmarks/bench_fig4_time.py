"""Figure 4 — execution time: C² vs the best competing approach.

Bar charts in the paper (ml20M, AM, DBLP, GW); here rendered as rows of
(baseline time, C² time) with the paper's values alongside. The paper's
best baseline per dataset: Hyrec on ml20M / AM / GW(≈), NN-Descent on
DBLP, and the bars show C² clearly faster on all four.
"""

from __future__ import annotations

import pytest

from repro.bench import bench_scale, emit, evaluate_run, run_algorithm

from conftest import get_dataset, get_workload

# Best baseline per Figure 4 / Table II: (name, paper time) and paper C2 time.
PAPER_FIG4 = {
    "ml20M": ("Hyrec", 289.23, 106.25),
    "AM": ("Hyrec", 62.41, 14.11),
    "DBLP": ("NNDescent", 24.43, 6.54),
    "GW": ("Hyrec", 21.88, 8.38),
}


@pytest.mark.parametrize("dataset_name", list(PAPER_FIG4))
def test_fig4_execution_time(benchmark, dataset_name):
    dataset = get_dataset(dataset_name)
    workload = get_workload(dataset_name)
    baseline_name, paper_baseline, paper_c2 = PAPER_FIG4[dataset_name]

    c2_result = benchmark.pedantic(
        run_algorithm, args=("C2", dataset, workload), rounds=1, iterations=1
    )
    c2 = evaluate_run("C2", dataset, workload, c2_result)
    baseline = evaluate_run(
        baseline_name,
        dataset,
        workload,
        run_algorithm(baseline_name, dataset, workload),
    )

    emit(
        f"fig4_{dataset_name}",
        f"Fig. 4 analog — {dataset_name} at scale={bench_scale()} (lower is better)",
        [
            {
                "Series": f"Baseline ({baseline_name})",
                "Time (s)": f"{baseline.seconds:.2f}",
                "Similarities": baseline.comparisons,
                "paper Time": paper_baseline,
            },
            {
                "Series": "C2 (ours)",
                "Time (s)": f"{c2.seconds:.2f}",
                "Similarities": c2.comparisons,
                "paper Time": paper_c2,
            },
        ],
    )

    # Shape: C2 beats the paper's best baseline on similarity count.
    assert c2.comparisons < baseline.comparisons
