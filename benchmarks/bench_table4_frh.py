"""Table IV — impact of FastRandomHash: C²/FRH vs C²/MinHash.

The paper's key ablation: replacing FastRandomHash with classic MinHash
inside the same pipeline (t permutations, one bucket per minimum item,
no recursive splitting) slows C² down by 4.6x-6.9x while quality stays
comparable — i.e. the clustering scheme, not the pipeline, is the win.
Run on ml10M (dense) and AM (sparse) like the paper.
"""

from __future__ import annotations

import pytest

from repro.bench import bench_scale, emit, evaluate_run, run_algorithm

from conftest import get_dataset, get_workload

# (time s, quality) from the paper's Table IV.
PAPER_TABLE4 = {
    "ml10M": {"MinHash": (126.74, 0.93), "FRH": (27.79, 0.89)},
    "AM": {"MinHash": (97.31, 0.95), "FRH": (14.11, 0.95)},
}


@pytest.mark.parametrize("dataset_name", ["ml10M", "AM"])
def test_table4_fastrandomhash(benchmark, dataset_name):
    dataset = get_dataset(dataset_name)
    workload = get_workload(dataset_name)

    frh_result = benchmark.pedantic(
        run_algorithm, args=("C2", dataset, workload), rounds=1, iterations=1
    )
    frh = evaluate_run("C2 (FRH)", dataset, workload, frh_result)
    minhash = evaluate_run(
        "C2 (MinHash)",
        dataset,
        workload,
        run_algorithm("C2-MinHash", dataset, workload),
    )

    rows = []
    for run, key in ((minhash, "MinHash"), (frh, "FRH")):
        paper_time, paper_quality = PAPER_TABLE4[dataset_name][key]
        rows.append(
            {
                "Mechanism": run.algorithm,
                "Time (s)": f"{run.seconds:.2f}",
                "Similarities": run.comparisons,
                "Quality": f"{run.quality:.2f}",
                "paper Time": paper_time,
                "paper Quality": paper_quality,
            }
        )

    emit(
        f"table4_{dataset_name}",
        f"Table IV analog — {dataset_name} at scale={bench_scale()}\n"
        f"FRH vs MinHash similarity ratio: "
        f"x{minhash.comparisons / max(1, frh.comparisons):.2f} (paper speed-up ~x4.6-6.9)",
        rows,
    )

    # Shape: on the dense, popularity-skewed dataset FRH needs far
    # fewer similarity computations (the paper's decisive result). On
    # the synthetic AM stand-in the popularity tail is flatter than the
    # real dataset's, so MinHash buckets stay small and the gap narrows
    # (see EXPERIMENTS.md); there we assert comparability, not victory.
    if dataset_name == "ml10M":
        assert frh.comparisons < minhash.comparisons
    else:
        assert frh.comparisons < 2 * minhash.comparisons
    assert frh.quality > minhash.quality - 0.1
