"""Ablation — FastRandomHash vs k-means pre-clustering (§VII, [41]).

The paper dismisses k-means-style clustering because "it requires to
compute many similarities while our main purpose is to limit as much
as possible the number of similarities computed". This bench measures
that argument: the same local-KNN + merge pipeline fed by (a) FRH
clusters (free: zero similarity computations) and (b) spherical
k-means clusters (n_users x n_clusters charged evaluations per
iteration).
"""

from __future__ import annotations

from repro.baselines import kmeans_knn
from repro.bench import bench_scale, emit, evaluate_run
from repro.core import cluster_and_conquer
from repro.similarity import make_engine

from conftest import get_dataset, get_workload


def test_ablation_kmeans_clustering(benchmark):
    dataset = get_dataset("ml10M")
    workload = get_workload("ml10M")

    c2_result = benchmark.pedantic(
        lambda: cluster_and_conquer(make_engine(dataset), workload.c2_params),
        rounds=1,
        iterations=1,
    )
    c2 = evaluate_run("C2 (FRH)", dataset, workload, c2_result)
    km_result = kmeans_knn(
        make_engine(dataset), k=workload.k, n_clusters=64, seed=workload.seed
    )
    km = evaluate_run("kmeans + local KNN [41]", dataset, workload, km_result)

    emit(
        "ablation_kmeans",
        f"Ablation: FRH vs k-means pre-clustering — ml10M at scale={bench_scale()}\n"
        f"k-means spends {km_result.extra['clustering_comparisons']:,} similarity "
        "evaluations on clustering alone; FastRandomHash spends 0",
        [
            {
                "Clustering": run.algorithm,
                "Time (s)": f"{run.seconds:.2f}",
                "Similarities": run.comparisons,
                "Quality": f"{run.quality:.3f}",
            }
            for run in (c2, km)
        ],
    )

    # The paper's §VII argument: similarity-based clustering costs more
    # total similarity evaluations than hash-based clustering.
    assert c2.comparisons < km.comparisons
    # Both produce usable graphs.
    assert km.quality > 0.7 and c2.quality > 0.7
