"""Extension — profile sampling before C² (§VII, ref [39]).

Caps every profile at a fraction of the median size before building
the graph, under the three policies of repro.data.sampling. The claim
of [39] (reproduced as an assertion): dropping the *most popular* items
first preserves KNN quality far better than dropping niche items, while
both cut similarity-evaluation cost the same way.

Deviation note (see EXPERIMENTS.md): on the synthetic stand-ins the
popularity *tail* is pure noise (items drawn once from a 100k+-item
Zipf tail) while community-pool items sit in the popularity mid-range,
so "keep the least popular" keeps noise and the [39] ordering inverts.
Real datasets have their discriminating items spread across the
popularity range, which is what [39] exploits. This bench therefore
asserts the mechanism (capping cuts cost; some policy retains quality)
and reports the per-policy ordering instead of asserting it.
"""

from __future__ import annotations

import numpy as np

from repro.bench import bench_scale, emit, exact_graph
from repro.core import cluster_and_conquer
from repro.data import sample_profiles
from repro.graph import quality
from repro.similarity import make_engine

from conftest import get_dataset, get_workload

POLICIES = ["least_popular", "uniform", "most_popular"]


def test_ext_profile_sampling(benchmark):
    dataset = get_dataset("AM")
    workload = get_workload("AM")
    params = workload.c2_params
    exact, _ = exact_graph(dataset, k=workload.k)
    cap = int(np.median(dataset.profile_sizes) * 0.5)

    def run_all():
        out = {}
        for policy in POLICIES:
            capped = sample_profiles(dataset, cap, policy=policy, seed=0)
            result = cluster_and_conquer(make_engine(capped), params)
            # Quality is evaluated on the ORIGINAL profiles.
            out[policy] = (result, quality(result.graph, exact, dataset))
        return out

    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    full = cluster_and_conquer(make_engine(dataset), params)
    q_full = quality(full.graph, exact, dataset)

    rows = [
        {
            "Profiles": "full",
            "Time (s)": f"{full.seconds:.2f}",
            "Similarities": full.comparisons,
            "Quality": f"{q_full:.3f}",
        }
    ]
    for policy in POLICIES:
        result, q = out[policy]
        rows.append(
            {
                "Profiles": f"cap {cap} ({policy})",
                "Time (s)": f"{result.seconds:.2f}",
                "Similarities": result.comparisons,
                "Quality": f"{q:.3f}",
            }
        )

    emit(
        "ext_sampling",
        f"Extension: profile sampling ([39]) + C2 — AM at scale={bench_scale()}, "
        f"cap={cap}",
        rows,
    )

    # Mechanism: capping cuts similarity work for the noise-dropping
    # policies, and at least one policy stays close to full quality.
    assert out["least_popular"][0].comparisons < full.comparisons
    assert out["uniform"][0].comparisons < full.comparisons
    best_quality = max(q for _, q in out.values())
    assert best_quality > q_full - 0.1
    # Sampling never beats full profiles (sanity).
    assert q_full >= best_quality - 0.05
