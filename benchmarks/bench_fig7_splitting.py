"""Figure 7 — effect of the maximum cluster size ``N`` on ml10M.

The paper sweeps N from 500 to 10,000 on MovieLens10M: reducing N
improves computation time at the expense of quality, with a knee point
around N = 3000; AmazonMovies is insensitive (its raw clusters are
already below N — see Figure 8's bench). N values are scaled with the
dataset like the paper's defaults.
"""

from __future__ import annotations

from repro.bench import bench_scale, emit, evaluate_run, scale_split_threshold
from repro.core import cluster_and_conquer
from repro.similarity import make_engine

from conftest import get_dataset, get_workload

N_VALUES = [500, 1000, 3000, 5000, 7500, 10000]


def test_fig7_split_threshold_sweep(benchmark):
    dataset = get_dataset("ml10M")
    workload = get_workload("ml10M")
    scale = workload.scale

    def sweep():
        rows = []
        for n in N_VALUES:
            params = workload.c2_params.with_(
                split_threshold=scale_split_threshold(n, scale)
            )
            result = cluster_and_conquer(make_engine(dataset), params)
            run = evaluate_run(f"C2(N={n})", dataset, workload, result)
            rows.append(
                {
                    "N (paper)": n,
                    "N (scaled)": params.split_threshold,
                    "Time (s)": f"{run.seconds:.2f}",
                    "Similarities": run.comparisons,
                    "Quality": f"{run.quality:.3f}",
                    "Max cluster": result.extra["max_cluster_size"],
                    "_q": run.quality,
                    "_c": run.comparisons,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "fig7_ml10M",
        f"Fig. 7 analog — ml10M at scale={bench_scale()} "
        "(reducing N improves time at the expense of quality)",
        [{k: v for k, v in r.items() if not k.startswith("_")} for r in rows],
    )

    by = {r["N (paper)"]: r for r in rows}
    # Shape: smaller N -> fewer similarities; larger N -> higher quality.
    assert by[500]["_c"] < by[10000]["_c"]
    assert by[10000]["_q"] >= by[500]["_q"]
