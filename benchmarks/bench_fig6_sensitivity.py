"""Figure 6 — sensitivity to the number of hash functions ``t`` and
clusters per hash function ``b`` (ml10M and AmazonMovies).

The paper sweeps t ∈ {1, 2, 4, 8, 10} for b ∈ {512, 2048, 8192} and
finds: (i) t trades time for quality with diminishing returns past 8;
(ii) larger b improves *both* time and quality; (iii) b matters more on
the sparse dataset (AM), because recursive splitting already caps
cluster sizes on ml10M. b interacts only with profile sizes, which do
not scale, so the paper's b values are used directly.
"""

from __future__ import annotations

import pytest

from repro.bench import bench_scale, emit, evaluate_run
from repro.core import cluster_and_conquer
from repro.similarity import make_engine

from conftest import get_dataset, get_workload

T_VALUES = [1, 2, 4, 8, 10]
B_VALUES = [512, 2048, 8192]


@pytest.mark.parametrize("dataset_name", ["ml10M", "AM"])
def test_fig6_t_and_b_sweep(benchmark, dataset_name):
    dataset = get_dataset(dataset_name)
    workload = get_workload(dataset_name)

    def sweep():
        rows = []
        for b in B_VALUES:
            for t in T_VALUES:
                params = workload.c2_params.with_(n_buckets=b, n_hashes=t)
                result = cluster_and_conquer(make_engine(dataset), params)
                run = evaluate_run(f"C2(b={b},t={t})", dataset, workload, result)
                rows.append(
                    {
                        "b": b,
                        "t": t,
                        "Time (s)": f"{run.seconds:.2f}",
                        "Similarities": run.comparisons,
                        "Quality": f"{run.quality:.3f}",
                        "_q": run.quality,
                        "_c": run.comparisons,
                    }
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        f"fig6_{dataset_name}",
        f"Fig. 6 analog — {dataset_name} at scale={bench_scale()} "
        "(each curve: fixed b, t in {1,2,4,8,10})",
        [{k: v for k, v in r.items() if not k.startswith("_")} for r in rows],
    )

    by = {(r["b"], r["t"]): r for r in rows}

    # Shape (i): more hash functions -> higher quality, more similarities.
    for b in B_VALUES:
        assert by[(b, 8)]["_q"] > by[(b, 1)]["_q"]
        assert by[(b, 8)]["_c"] > by[(b, 1)]["_c"]

    # Shape (ii): at t=8, larger b -> fewer similarities (faster).
    assert by[(8192, 8)]["_c"] < by[(512, 8)]["_c"]
