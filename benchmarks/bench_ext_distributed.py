"""Extension — simulated map-reduce scaling of C² (paper §VIII).

The paper's conclusion claims C² is "particularly amenable to
large-scale distributed deployments". This bench quantifies that with
the cost-model simulator: map-phase speed-up and efficiency for
1..64 workers, with and without recursive splitting (splitting is what
makes the map phase parallelise — one giant cluster caps the speed-up).
"""

from __future__ import annotations

from repro.bench import bench_scale, emit
from repro.core import cluster_dataset, make_hash_family
from repro.distributed import simulate_mapreduce

from conftest import get_dataset, get_workload

WORKERS = [1, 4, 8, 16, 64]


def test_ext_distributed_scaling(benchmark):
    dataset = get_dataset("ml10M")
    workload = get_workload("ml10M")
    params = workload.c2_params

    def build_clusterings():
        hashes = make_hash_family(
            dataset.n_items, params.n_buckets, params.n_hashes, seed=params.seed
        )
        return (
            cluster_dataset(dataset, hashes, split_threshold=params.split_threshold),
            cluster_dataset(dataset, hashes, split_threshold=None),
        )

    split, raw = benchmark.pedantic(build_clusterings, rounds=1, iterations=1)

    rows = []
    costs = {}
    for label, clustering in (("split", split), ("no split", raw)):
        for w in WORKERS:
            cost = simulate_mapreduce(clustering, n_workers=w, k=params.k, rho=params.rho)
            costs[(label, w)] = cost
            rows.append(
                {
                    "Variant": label,
                    "Workers": w,
                    "Speed-up": f"{cost.speedup:.2f}",
                    "Efficiency": f"{cost.efficiency:.2f}",
                    "Shuffle records": cost.shuffle_records,
                }
            )

    emit(
        "ext_distributed",
        f"Extension: simulated map-reduce scaling — ml10M at scale={bench_scale()}",
        rows,
    )

    # Speed-up grows with workers and splitting parallelises better.
    assert costs[("split", 16)].speedup > costs[("split", 1)].speedup
    assert costs[("split", 16)].speedup > costs[("no split", 16)].speedup
    # Shuffle volume does not depend on the worker count.
    assert costs[("split", 1)].shuffle_records == costs[("split", 64)].shuffle_records
