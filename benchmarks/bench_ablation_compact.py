"""Ablation — compact similarity structures inside C² (§VII).

Extends Table V with the Bloom-filter alternative the paper's related
work discusses: exact Jaccard vs GoldFinger (single-hash fingerprint)
vs 2-hash Bloom filters, all at 1024 bits, all driving the same C²
pipeline. GoldFinger's linear AND/OR estimator should match or beat the
Bloom cardinality-inversion estimator at equal width — the design
argument for choosing SHFs in the GoldFinger line of work.
"""

from __future__ import annotations

from repro.bench import bench_scale, emit, evaluate_run
from repro.core import cluster_and_conquer
from repro.similarity import make_engine

from conftest import get_dataset, get_workload

BACKENDS = [("exact", "raw profiles"), ("goldfinger", "GoldFinger 1024b"), ("bloom", "Bloom 1024b h=2")]


def test_ablation_compact_structures(benchmark):
    dataset = get_dataset("ml10M")
    workload = get_workload("ml10M")
    params = workload.c2_params

    def run_backend(backend: str):
        engine = make_engine(dataset, backend=backend, n_bits=1024)
        return cluster_and_conquer(engine, params)

    results = {}
    for backend, _ in BACKENDS:
        if backend == "goldfinger":
            results[backend] = benchmark.pedantic(
                run_backend, args=(backend,), rounds=1, iterations=1
            )
        else:
            results[backend] = run_backend(backend)

    rows = []
    runs = {}
    for backend, label in BACKENDS:
        run = evaluate_run(label, dataset, workload, results[backend])
        runs[backend] = run
        rows.append(
            {
                "Structure": label,
                "Time (s)": f"{run.seconds:.2f}",
                "Similarities": run.comparisons,
                "Quality": f"{run.quality:.3f}",
            }
        )

    emit(
        "ablation_compact",
        f"Ablation: compact similarity structures in C2 — ml10M at scale={bench_scale()}",
        rows,
    )

    # Same pipeline -> identical similarity counts across backends.
    assert runs["exact"].comparisons == runs["goldfinger"].comparisons
    # GoldFinger matches Bloom at equal width (usually beats it).
    assert runs["goldfinger"].quality >= runs["bloom"].quality - 0.03
    # Exact raw data is the accuracy ceiling.
    assert runs["exact"].quality >= runs["goldfinger"].quality - 0.02
