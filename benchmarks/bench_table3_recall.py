"""Table III — recommendation recall: brute force vs Cluster-and-Conquer.

30 items recommended per user, 5-fold cross-validation, recall against
the held-out fold. The paper reports a mean recall loss of only 2.05%
when replacing the exact KNN graph by C²'s approximation; the assertion
here is that same shape (small relative loss).
"""

from __future__ import annotations

import pytest

from repro.baselines import brute_force_knn
from repro.bench import bench_scale, emit
from repro.core import cluster_and_conquer
from repro.recommend import evaluate_recall
from repro.similarity import make_engine

from conftest import get_dataset, get_workload

# (brute-force recall, C2 recall) from the paper's Table III.
PAPER_TABLE3 = {
    "ml1M": (0.218, 0.214),
    "ml10M": (0.273, 0.271),
    "AM": (0.595, 0.570),
    "DBLP": (0.360, 0.355),
    "GW": (0.268, 0.261),
}

# A 3-dataset subset keeps the bench under a minute at default scale;
# REPRO_TABLE3_FULL=1 runs all five.
DATASETS = ["ml1M", "ml10M", "AM"]


@pytest.mark.parametrize("dataset_name", DATASETS)
def test_table3_recall(benchmark, dataset_name):
    dataset = get_dataset(dataset_name)
    workload = get_workload(dataset_name)
    k = workload.k
    folds = 5

    def brute_builder(train):
        return brute_force_knn(make_engine(train), k=k).graph

    def c2_builder(train):
        return cluster_and_conquer(make_engine(train), workload.c2_params).graph

    brute = evaluate_recall(dataset, brute_builder, n_folds=folds, seed=0)
    c2 = benchmark.pedantic(
        evaluate_recall,
        args=(dataset, c2_builder),
        kwargs={"n_folds": folds, "seed": 0},
        rounds=1,
        iterations=1,
    )

    paper_brute, paper_c2 = PAPER_TABLE3[dataset_name]
    emit(
        f"table3_{dataset_name}",
        f"Table III analog — {dataset_name} at scale={bench_scale()}",
        [
            {
                "Dataset": dataset_name,
                "Brute force": f"{brute.mean_recall:.3f}",
                "C2": f"{c2.mean_recall:.3f}",
                "Delta": f"{c2.mean_recall - brute.mean_recall:+.3f}",
                "paper Brute": paper_brute,
                "paper C2": paper_c2,
            }
        ],
    )

    # Shape: the pipeline finds real signal, and C2's loss is small.
    assert brute.mean_recall > 0.05
    assert c2.mean_recall > 0.85 * brute.mean_recall
