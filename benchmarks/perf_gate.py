"""CI perf gate — diff benchmark JSON against committed floors.

``bench_serving.py`` records machine-readable headline numbers in
``BENCH_serving.json`` (see ``repro.bench.emit_json``). This script
compares them against the floors committed in
``benchmarks/perf_floors.json`` and fails the build on a regression,
so a PR that quietly halves smoke throughput or drops recall below its
gate turns red instead of merging invisibly.

Floor semantics, per ``{run: {metric: floor}}`` entry:

* metrics whose name contains ``recall`` or ``converged`` are hard
  floors — the measured value must be ``>= floor`` (``converged`` is
  a boolean, floor ``true`` means "must be true");
* metrics whose name contains ``resyncs``, ``reforks``, ``resplits``
  or ``rebuilds`` are hard **ceilings** — the measured value must be
  ``<= floor`` (the replica tier's zero-re-fork contract and the
  scenario suite's bounded-resplit / no-rebuild contract, enforced on
  every CI run);
* metrics whose name contains ``overhead`` are hard ceilings too —
  the telemetry layer's ≤-5% instrumentation-cost contract gets no
  slack (the benchmark already takes min-of-reps, so noise cancels);
* latency metrics (name contains ``latency`` or ends in ``_ms``) are
  **ceilings with the throughput tolerance** — the measured value
  must be ``<= floor / 0.7``, the same 30% slack in the opposite
  direction (CI runners are slow; the gate catches a latency
  explosion, not jitter);
* every other metric is a **throughput** floor with 30% tolerance —
  the measured value must be ``>= 0.7 * floor``. Floors are set well
  below typical dev-machine numbers because CI runners are slow and
  noisy; the tolerance catches collapses, not jitter.

Runs or metrics missing from the JSON fail loudly: a silently skipped
benchmark is itself a regression. Run::

    python benchmarks/perf_gate.py \
        --json BENCH_serving.json --floors benchmarks/perf_floors.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

TOLERANCE = 0.7  # throughput may sag 30% below its floor before failing


def is_hard_floor(metric: str) -> bool:
    """Hard floors (recall, convergence) get no slack; throughput does."""
    return "recall" in metric or "converged" in metric


def is_ceiling(metric: str) -> bool:
    """Counters that must stay at-or-below their committed value."""
    return any(
        needle in metric
        for needle in ("resyncs", "reforks", "resplits", "rebuilds", "overhead")
    )


def is_latency_ceiling(metric: str) -> bool:
    """Time-denominated metrics: ceilings, with the throughput tolerance.

    Besides ``latency``/``_ms`` names this covers ``_s``/``seconds``
    duration metrics (``restart_s``, the recovery-time gate) — but a
    ``_s`` suffix on a *rate* (``ops_s``, per-second throughput) keeps
    floor semantics.
    """
    if "latency" in metric or metric.endswith("_ms") or "seconds" in metric:
        return True
    return metric.endswith("_s") and "ops" not in metric and "qps" not in metric


def check(runs: dict, floors: dict) -> list[str]:
    """All floor violations, as printable messages (empty = gate passes)."""
    failures: list[str] = []
    for run, metrics in floors.items():
        recorded = runs.get(run)
        if recorded is None:
            failures.append(f"{run}: missing from benchmark JSON (did it run?)")
            continue
        for metric, floor in metrics.items():
            value = recorded.get(metric)
            if value is None:
                failures.append(f"{run}.{metric}: not recorded")
            elif isinstance(floor, bool):
                if bool(value) is not floor:
                    failures.append(f"{run}.{metric}: {value} != required {floor}")
            elif is_ceiling(metric):
                if value > floor:
                    failures.append(
                        f"{run}.{metric}: {value} above hard ceiling {floor}"
                    )
            elif is_latency_ceiling(metric):
                if value > floor / TOLERANCE:
                    failures.append(
                        f"{run}.{metric}: {value} above ceiling {floor} "
                        f"with {1 / TOLERANCE - 1:.0%} tolerance "
                        "(latency explosion)"
                    )
            elif is_hard_floor(metric):
                if value < floor:
                    failures.append(
                        f"{run}.{metric}: {value} below hard floor {floor}"
                    )
            elif value < TOLERANCE * floor:
                failures.append(
                    f"{run}.{metric}: {value} below {TOLERANCE:.0%} of "
                    f"floor {floor} (>30% throughput regression)"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default="BENCH_serving.json",
                        help="benchmark JSON produced by the smoke runs")
    parser.add_argument("--floors", default="benchmarks/perf_floors.json",
                        help="committed floor values")
    args = parser.parse_args(argv)

    floors = json.loads(Path(args.floors).read_text(encoding="utf-8"))
    json_path = Path(args.json)
    if not json_path.exists():
        print(f"perf gate: {json_path} not found — benchmarks did not run")
        return 1
    runs = json.loads(json_path.read_text(encoding="utf-8")).get("runs", {})

    failures = check(runs, floors)
    n_checked = sum(len(m) for m in floors.values())
    if failures:
        print(f"perf gate: {len(failures)}/{n_checked} checks FAILED")
        for line in failures:
            print(f"  FAIL {line}")
        return 1
    print(f"perf gate: {n_checked} checks passed")
    for run, metrics in floors.items():
        for metric, floor in metrics.items():
            print(f"  ok {run}.{metric} = {runs[run][metric]} (floor {floor})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
